//! Property tests for the 802.11 substrate: the frame codec must
//! round-trip every representable frame, and channel/decode relations
//! must stay symmetric.

use marauder_wifi::capture_log::{parse_capture_log, write_capture_log};
use marauder_wifi::channel::Channel;
use marauder_wifi::frame::{Frame, FrameBody};
use marauder_wifi::mac::MacAddr;
use marauder_wifi::sniffer::{CaptureDatabase, CapturedFrame};
use marauder_wifi::ssid::Ssid;
use proptest::prelude::*;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr::new)
}

fn arb_ssid() -> impl Strategy<Value = Ssid> {
    "[a-zA-Z0-9 _-]{0,32}".prop_map(|s| Ssid::new(s).expect("within limit"))
}

fn arb_channel() -> impl Strategy<Value = Channel> {
    prop_oneof![
        (1u8..=11).prop_map(|n| Channel::bg(n).expect("valid")),
        prop::sample::select(marauder_wifi::channel::A_CHANNELS.to_vec())
            .prop_map(|n| Channel::a(n).expect("valid")),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    let body = prop_oneof![
        (arb_ssid(), any::<u16>())
            .prop_map(|(ssid, interval_tu)| FrameBody::Beacon { ssid, interval_tu }),
        prop::option::of(
            arb_ssid().prop_filter("directed probes have non-empty ssid", |s| !s.is_wildcard())
        )
        .prop_map(|ssid| FrameBody::ProbeRequest { ssid }),
        arb_ssid().prop_map(|ssid| FrameBody::ProbeResponse { ssid }),
        arb_ssid().prop_map(|ssid| FrameBody::AssociationRequest { ssid }),
        any::<u16>().prop_map(|auth_seq| FrameBody::Authentication { auth_seq }),
    ];
    (
        arb_mac(),
        arb_mac(),
        arb_mac(),
        arb_channel(),
        0u16..0x1000,
        body,
    )
        .prop_map(|(dst, src, bssid, channel, sequence, body)| Frame {
            dst,
            src,
            bssid,
            channel,
            sequence,
            body,
        })
}

fn arb_captured_frame() -> impl Strategy<Value = CapturedFrame> {
    // Times on a millisecond grid: the text format stores 6 decimal
    // digits, and k/1000 for integer k < 10^9 is exact in that width,
    // so write → parse reproduces the f64 bit for bit.
    (0u64..1_000_000_000, 0usize..8, arb_frame()).prop_map(|(ms, card, frame)| CapturedFrame {
        time_s: ms as f64 / 1000.0,
        card,
        frame,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn frame_codec_round_trips(frame in arb_frame()) {
        let bytes = frame.encode();
        let back = Frame::decode(&bytes).expect("own encoding must decode");
        prop_assert_eq!(frame, back);
    }

    #[test]
    fn decode_never_panics_on_noise(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = Frame::decode(&bytes); // must not panic, any Result is fine
    }

    #[test]
    fn decode_never_panics_on_corrupted_valid_frames(
        frame in arb_frame(),
        idx in 0usize..64,
        val in any::<u8>(),
    ) {
        let mut bytes = frame.encode();
        if !bytes.is_empty() {
            let i = idx % bytes.len();
            bytes[i] = val;
        }
        let _ = Frame::decode(&bytes);
    }

    #[test]
    fn overlap_is_symmetric(a in 1u8..=11, b in 1u8..=11) {
        let ca = Channel::bg(a).expect("valid");
        let cb = Channel::bg(b).expect("valid");
        prop_assert_eq!(ca.overlap_mhz(cb), cb.overlap_mhz(ca));
    }

    #[test]
    fn decode_probability_is_symmetric_and_bounded(a in 1u8..=11, b in 1u8..=11) {
        let ca = Channel::bg(a).expect("valid");
        let cb = Channel::bg(b).expect("valid");
        let p = ca.decode_probability(cb);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert_eq!(p, cb.decode_probability(ca));
        // Decoding across >= 3 channels of separation is impossible.
        if a.abs_diff(b) >= 3 {
            prop_assert_eq!(p, 0.0);
        }
    }

    #[test]
    fn capture_log_round_trips(frames in prop::collection::vec(arb_captured_frame(), 0..40)) {
        let db: CaptureDatabase = frames.into_iter().collect();
        let text = write_capture_log(&db);
        let back = parse_capture_log(&text).expect("own serialization must parse");
        prop_assert_eq!(back.len(), db.len());
        for (a, b) in db.iter().zip(back.iter()) {
            // Millisecond-grid times survive the %.6f text round trip
            // bit-exactly; frames and card indices are lossless.
            prop_assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
            prop_assert_eq!(a.card, b.card);
            prop_assert_eq!(&a.frame, &b.frame);
        }
    }

    #[test]
    fn malformed_line_numbers_are_one_based(
        frames in prop::collection::vec(arb_captured_frame(), 0..12),
        junk in prop::sample::select(vec![
            "notatime 0 40", "1.0 x 40", "1.0 0", "1.0 0 abc",
            "1.0 0 zz", "1.0 0 40 extra", "1.0 0 4000",
        ]),
    ) {
        // A log with n valid records and one malformed line appended:
        // the error must name exactly line n + 2 (header is line 1).
        let db: CaptureDatabase = frames.into_iter().collect();
        let n = db.len();
        let text = format!("{}{junk}\n", write_capture_log(&db));
        let err = parse_capture_log(&text).expect_err("junk line must fail");
        prop_assert_eq!(err.line(), n + 2);
    }

    #[test]
    fn window_boundaries_are_half_open_at_exact_multiples(
        k in -10_000i64..10_000,
        w in prop::sample::select(vec![0.5f64, 1.0, 2.0, 5.0, 15.0, 30.0, 60.0]),
    ) {
        // At exact multiples of window_s — where floating-point
        // misrounding would first show — windows must be half-open
        // [k·w, (k+1)·w): the start belongs to window k, the end to
        // window k+1, the midpoint stays inside. Every k·w, k·w + w
        // and k·w + w/2 here is exactly representable (w is a small
        // multiple of a power of two times ≤ 15, |k| ≤ 10⁴), so the
        // assertions are bit-exact, not tolerance-based.
        use marauder_wifi::sniffer::{window_index, window_start};
        let start = window_start(k, w);
        prop_assert_eq!(window_index(start, w), k, "start of window {} (w={})", k, w);
        prop_assert_eq!(window_index(start + w, w), k + 1, "end is exclusive (w={})", w);
        prop_assert_eq!(window_index(start + w * 0.5, w), k, "midpoint (w={})", w);
        // window_start is the left inverse of window_index on the grid.
        prop_assert_eq!(window_start(window_index(start, w), w).to_bits(), start.to_bits());
    }

    #[test]
    fn mac_parse_display_round_trips(mac in arb_mac()) {
        let s = mac.to_string();
        let back: MacAddr = s.parse().expect("displayed MAC must parse");
        prop_assert_eq!(mac, back);
    }

    #[test]
    fn pseudonyms_never_collide_with_global_macs(i in 0u64..1_000_000, epoch in any::<u32>()) {
        let base = MacAddr::from_index(i);
        let p = base.pseudonym(epoch);
        prop_assert!(p.is_locally_administered());
        prop_assert!(!p.is_multicast());
        prop_assert_ne!(p, base);
    }
}
