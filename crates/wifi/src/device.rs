//! Access points and mobile stations.
//!
//! The attack's feasibility rests on device behaviour: "most mobile
//! devices actively scan for available access points by sending out
//! probing requests" (Section IV-B, >50 % every day, 91.6 % at peak).
//! [`ScanBehavior`] and [`OsProfile`] model that population; the
//! simulator draws device mixes from them to regenerate Figs. 10–11.

use crate::channel::Channel;
use crate::mac::MacAddr;
use crate::ssid::Ssid;
use marauder_geo::Point;
use marauder_rf::chain::{Nic, ReceiverChain};
use marauder_rf::link_budget::Transmitter;
use marauder_rf::units::{Db, Dbi, Dbm, Meters};

/// An access point placed in the monitored area.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessPoint {
    /// The AP's BSSID (its radio MAC).
    pub bssid: MacAddr,
    /// Advertised network name.
    pub ssid: Ssid,
    /// Operating channel.
    pub channel: Channel,
    /// Planar position, meters in the local ENU frame.
    pub location: Point,
    /// Conducted transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Antenna gain, dBi.
    pub antenna_gain_dbi: f64,
    /// Beacon interval, time units (typically 100).
    pub beacon_interval_tu: u16,
}

impl AccessPoint {
    /// A typical 100 mW / 2 dBi AP.
    pub fn new(bssid: MacAddr, ssid: Ssid, channel: Channel, location: Point) -> Self {
        AccessPoint {
            bssid,
            ssid,
            channel,
            location,
            tx_power_dbm: 20.0,
            antenna_gain_dbi: 2.0,
            beacon_interval_tu: 100,
        }
    }

    /// The AP as a transmitter for link-budget purposes.
    pub fn transmitter(&self) -> Transmitter {
        Transmitter::new(Dbm::new(self.tx_power_dbm), Dbi::new(self.antenna_gain_dbi))
    }

    /// The AP's *maximum transmission distance* under the paper's
    /// free-space worst-case model: the farthest a typical mobile
    /// receiver still decodes the AP, given `environment_margin` of
    /// extra loss.
    ///
    /// This is the `rᵢ` that M-Loc consumes when ground-truth AP ranges
    /// are available.
    pub fn max_transmission_distance(&self, environment_margin: Db) -> Meters {
        typical_mobile_receiver().coverage_radius(
            &self.transmitter(),
            self.channel.center_frequency(),
            environment_margin,
        )
    }
}

/// How a mobile scans for networks.
#[derive(Debug, Clone, PartialEq)]
pub enum ScanBehavior {
    /// Sends probe requests every `interval_s` seconds; directed probes
    /// reveal the preferred-network list.
    Active {
        /// Seconds between scan rounds.
        interval_s: f64,
        /// Whether probes are directed at preferred SSIDs (vs. wildcard).
        directed: bool,
    },
    /// Never probes; only listens to beacons. Invisible to the passive
    /// attack but exposed by the active attack (spoofed beacons elicit
    /// association attempts) — modeled as catchable only by
    /// [`MobileStation::visible_to_active_attack`].
    PassiveOnly,
    /// Radio effectively silent (WiFi off / airplane mode).
    Quiet,
}

impl ScanBehavior {
    /// `true` when the device emits probe requests on its own.
    pub fn probes(&self) -> bool {
        matches!(self, ScanBehavior::Active { .. })
    }
}

/// Coarse operating-system profile, used to draw realistic device
/// populations (different OSes ship different scanning policies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OsProfile {
    /// Windows XP-era: aggressive directed probing of every remembered
    /// network.
    WindowsXp,
    /// Windows Vista/7: broadcast probes, moderate cadence.
    WindowsVista,
    /// Mac OS X: active scans with directed probes.
    MacOs,
    /// Linux (wpa_supplicant defaults): active broadcast scans.
    Linux,
    /// A quiet embedded device.
    Embedded,
}

impl OsProfile {
    /// The default scanning behaviour this OS shipped with.
    pub fn default_behavior(self) -> ScanBehavior {
        match self {
            OsProfile::WindowsXp => ScanBehavior::Active {
                interval_s: 60.0,
                directed: true,
            },
            OsProfile::WindowsVista => ScanBehavior::Active {
                interval_s: 120.0,
                directed: false,
            },
            OsProfile::MacOs => ScanBehavior::Active {
                interval_s: 45.0,
                directed: true,
            },
            OsProfile::Linux => ScanBehavior::Active {
                interval_s: 30.0,
                directed: false,
            },
            OsProfile::Embedded => ScanBehavior::PassiveOnly,
        }
    }
}

/// A mobile station (the victim device).
#[derive(Debug, Clone, PartialEq)]
pub struct MobileStation {
    /// Source MAC address (static for most real devices).
    pub mac: MacAddr,
    /// Preferred-network list (leaks via directed probes).
    pub preferred: Vec<Ssid>,
    /// Scanning behaviour.
    pub behavior: ScanBehavior,
    /// OS profile the behaviour was drawn from.
    pub os: OsProfile,
    /// Conducted transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Antenna gain, dBi.
    pub antenna_gain_dbi: f64,
}

impl MobileStation {
    /// A typical 15 dBm laptop with the given identity and behaviour.
    pub fn new(mac: MacAddr, os: OsProfile) -> Self {
        MobileStation {
            mac,
            preferred: Vec::new(),
            behavior: os.default_behavior(),
            os,
            tx_power_dbm: 15.0,
            antenna_gain_dbi: 2.0,
        }
    }

    /// Adds a preferred network (builder-style).
    pub fn with_preferred(mut self, ssid: Ssid) -> Self {
        self.preferred.push(ssid);
        self
    }

    /// Overrides the scan behaviour (builder-style).
    pub fn with_behavior(mut self, behavior: ScanBehavior) -> Self {
        self.behavior = behavior;
        self
    }

    /// The station as a transmitter.
    pub fn transmitter(&self) -> Transmitter {
        Transmitter::new(Dbm::new(self.tx_power_dbm), Dbi::new(self.antenna_gain_dbi))
    }

    /// `true` when the passive attack sees this device (it probes on its
    /// own).
    pub fn visible_to_passive_attack(&self) -> bool {
        self.behavior.probes()
    }

    /// `true` when the active attack sees this device: everything except
    /// fully quiet radios responds to spoofed beacons/probe responses for
    /// its preferred networks (Section II-A's active collection).
    pub fn visible_to_active_attack(&self) -> bool {
        !matches!(self.behavior, ScanBehavior::Quiet)
    }
}

/// The receiver of a typical mobile device: integrated antenna plus a
/// common 5 dB-NF card. Used to define AP "maximum transmission
/// distance" the way the paper measures it (driving around with a
/// laptop).
pub fn typical_mobile_receiver() -> ReceiverChain {
    ReceiverChain::builder()
        .name("typical mobile receiver")
        .nic(Nic {
            name: "typical client NIC",
            noise_figure_db: 5.0,
            snr_min_db: 10.0,
            bandwidth_mhz: 22.0,
            tx_power_dbm: 15.0,
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ap() -> AccessPoint {
        AccessPoint::new(
            MacAddr::from_index(100),
            Ssid::new("UML-Guest").unwrap(),
            Channel::bg(6).unwrap(),
            Point::new(10.0, 20.0),
        )
    }

    #[test]
    fn ap_defaults() {
        let ap = ap();
        assert_eq!(ap.tx_power_dbm, 20.0);
        assert_eq!(ap.beacon_interval_tu, 100);
        assert!((ap.transmitter().eirp().dbm() - 22.0).abs() < 1e-9);
    }

    #[test]
    fn ap_max_range_is_positive_and_shrinks_with_margin() {
        let ap = ap();
        let r0 = ap.max_transmission_distance(Db::new(20.0)).meters();
        let r1 = ap.max_transmission_distance(Db::new(30.0)).meters();
        assert!(r0 > r1);
        assert!(r1 > 0.0);
        // Typical campus AP ranges: tens to a few hundred meters.
        let r = ap.max_transmission_distance(Db::new(35.0)).meters();
        assert!((10.0..500.0).contains(&r), "range {r}");
    }

    #[test]
    fn scan_behavior_probing() {
        assert!(OsProfile::WindowsXp.default_behavior().probes());
        assert!(OsProfile::Linux.default_behavior().probes());
        assert!(!OsProfile::Embedded.default_behavior().probes());
        assert!(!ScanBehavior::Quiet.probes());
    }

    #[test]
    fn mobile_visibility() {
        let probing = MobileStation::new(MacAddr::from_index(1), OsProfile::MacOs);
        assert!(probing.visible_to_passive_attack());
        assert!(probing.visible_to_active_attack());

        let passive = MobileStation::new(MacAddr::from_index(2), OsProfile::Embedded);
        assert!(!passive.visible_to_passive_attack());
        assert!(passive.visible_to_active_attack());

        let quiet = MobileStation::new(MacAddr::from_index(3), OsProfile::Linux)
            .with_behavior(ScanBehavior::Quiet);
        assert!(!quiet.visible_to_passive_attack());
        assert!(!quiet.visible_to_active_attack());
    }

    #[test]
    fn builder_methods() {
        let m = MobileStation::new(MacAddr::from_index(4), OsProfile::WindowsXp)
            .with_preferred(Ssid::new("home").unwrap())
            .with_preferred(Ssid::new("work").unwrap());
        assert_eq!(m.preferred.len(), 2);
        assert_eq!(m.os, OsProfile::WindowsXp);
        assert!((m.transmitter().eirp().dbm() - 17.0).abs() < 1e-9);
    }

    #[test]
    fn typical_receiver_sensitivity_plausible() {
        let rx = typical_mobile_receiver();
        let s = rx.sensitivity().dbm();
        assert!((-95.0..-80.0).contains(&s), "sensitivity {s}");
    }
}
