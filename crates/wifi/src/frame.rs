//! 802.11 management frames and their wire codec.
//!
//! The sniffing system only ever inspects management traffic: beacons,
//! probe requests and probe responses (Section II-A "monitor 802.11
//! probing traffic"). The codec follows the real 802.11 management-frame
//! layout — frame control, three addresses, sequence control, fixed
//! fields and tagged parameters (SSID tag 0, DS Parameter Set tag 3) —
//! closely enough that captures look like what `tcpdump` showed the
//! authors, while staying compact.

use crate::channel::Channel;
use crate::mac::MacAddr;
use crate::ssid::Ssid;
use std::fmt;

/// Management-frame payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameBody {
    /// AP beacon, broadcast periodically.
    Beacon {
        /// The advertised network name.
        ssid: Ssid,
        /// Beacon interval in time units (TU = 1024 µs).
        interval_tu: u16,
    },
    /// Station probe request; `None` SSID is the wildcard (undirected)
    /// probe, `Some` is a directed probe revealing a preferred network.
    ProbeRequest {
        /// The probed network, or `None` for a wildcard scan.
        ssid: Option<Ssid>,
    },
    /// AP probe response, unicast to the probing station.
    ProbeResponse {
        /// The responding network's name.
        ssid: Ssid,
    },
    /// Station association request — the join attempt a baited device
    /// sends after authentication (active attack, Section II-A).
    AssociationRequest {
        /// The network being joined.
        ssid: Ssid,
    },
    /// Open-system authentication frame (either direction).
    Authentication {
        /// Sequence number within the auth handshake (1 or 2).
        auth_seq: u16,
    },
}

impl FrameBody {
    fn subtype(&self) -> u8 {
        match self {
            FrameBody::AssociationRequest { .. } => 0x0,
            FrameBody::ProbeRequest { .. } => 0x4,
            FrameBody::ProbeResponse { .. } => 0x5,
            FrameBody::Beacon { .. } => 0x8,
            FrameBody::Authentication { .. } => 0xB,
        }
    }
}

/// A management frame as captured on a channel.
///
/// See the [crate-level example](crate) for an encode/decode round trip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Receiver address (addr1).
    pub dst: MacAddr,
    /// Transmitter address (addr2).
    pub src: MacAddr,
    /// BSSID (addr3).
    pub bssid: MacAddr,
    /// Channel the frame was transmitted on (DS Parameter Set).
    pub channel: Channel,
    /// 12-bit sequence number.
    pub sequence: u16,
    /// Typed payload.
    pub body: FrameBody,
}

/// Error returned when decoding malformed frame bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input shorter than the fixed header.
    Truncated,
    /// Frame control does not describe a supported management subtype.
    UnsupportedType(u8),
    /// A tagged parameter ran past the end of the buffer.
    BadTag,
    /// SSID tag exceeded 32 bytes or was not UTF-8.
    BadSsid,
    /// Missing or invalid DS Parameter Set (channel) tag.
    BadChannel,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => f.write_str("frame truncated"),
            DecodeError::UnsupportedType(fc) => {
                write!(f, "unsupported frame control {fc:#04x}")
            }
            DecodeError::BadTag => f.write_str("malformed tagged parameter"),
            DecodeError::BadSsid => f.write_str("malformed ssid element"),
            DecodeError::BadChannel => f.write_str("missing or invalid channel element"),
        }
    }
}

impl std::error::Error for DecodeError {}

const TAG_SSID: u8 = 0;
const TAG_DS_PARAMS: u8 = 3;

impl Frame {
    /// A probe request from `src`, undirected when `ssid` is `None`.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is not a valid b/g channel number — use the
    /// typed constructors plus [`Channel`] directly for 802.11a frames.
    pub fn probe_request(src: MacAddr, ssid: Option<Ssid>, channel: u8) -> Frame {
        Frame {
            dst: MacAddr::BROADCAST,
            src,
            bssid: MacAddr::BROADCAST,
            // lint:allow(no-panic-in-lib) -- raw channel number is the caller's contract
            channel: Channel::bg(channel).expect("valid b/g channel"),
            sequence: 0,
            body: FrameBody::ProbeRequest { ssid },
        }
    }

    /// A probe response from AP `bssid` to station `dst`.
    pub fn probe_response(bssid: MacAddr, dst: MacAddr, ssid: Ssid, channel: Channel) -> Frame {
        Frame {
            dst,
            src: bssid,
            bssid,
            channel,
            sequence: 0,
            body: FrameBody::ProbeResponse { ssid },
        }
    }

    /// A beacon from AP `bssid`.
    pub fn beacon(bssid: MacAddr, ssid: Ssid, channel: Channel, interval_tu: u16) -> Frame {
        Frame {
            dst: MacAddr::BROADCAST,
            src: bssid,
            bssid,
            channel,
            sequence: 0,
            body: FrameBody::Beacon { ssid, interval_tu },
        }
    }

    /// A station's association request to AP `bssid` for `ssid`.
    pub fn association_request(
        src: MacAddr,
        bssid: MacAddr,
        ssid: Ssid,
        channel: Channel,
    ) -> Frame {
        Frame {
            dst: bssid,
            src,
            bssid,
            channel,
            sequence: 0,
            body: FrameBody::AssociationRequest { ssid },
        }
    }

    /// An open-system authentication frame from `src` to `dst` within
    /// the BSS `bssid`.
    pub fn authentication(
        src: MacAddr,
        dst: MacAddr,
        bssid: MacAddr,
        auth_seq: u16,
        channel: Channel,
    ) -> Frame {
        Frame {
            dst,
            src,
            bssid,
            channel,
            sequence: 0,
            body: FrameBody::Authentication { auth_seq },
        }
    }

    /// Sets the sequence number (builder-style).
    pub fn with_sequence(mut self, seq: u16) -> Frame {
        self.sequence = seq & 0x0fff;
        self
    }

    /// `true` for probe requests — the traffic the passive attack feeds
    /// on.
    pub fn is_probe_request(&self) -> bool {
        matches!(self.body, FrameBody::ProbeRequest { .. })
    }

    /// `true` for probe responses — the frames that reveal which APs can
    /// communicate with a mobile.
    pub fn is_probe_response(&self) -> bool {
        matches!(self.body, FrameBody::ProbeResponse { .. })
    }

    /// Encodes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        // Frame control: version 0, type 00 (mgmt), subtype.
        out.push(self.body.subtype() << 4);
        out.push(0);
        // Duration.
        out.extend_from_slice(&[0, 0]);
        out.extend_from_slice(&self.dst.octets());
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.bssid.octets());
        // Sequence control: fragment 0, sequence << 4.
        out.extend_from_slice(&(self.sequence << 4).to_le_bytes());
        // Fixed fields per subtype.
        match &self.body {
            FrameBody::Beacon { interval_tu, .. } => {
                out.extend_from_slice(&[0u8; 8]); // timestamp
                out.extend_from_slice(&interval_tu.to_le_bytes());
                out.extend_from_slice(&[0x01, 0x00]); // capability: ESS
            }
            FrameBody::ProbeResponse { .. } => {
                out.extend_from_slice(&[0u8; 8]);
                out.extend_from_slice(&100u16.to_le_bytes());
                out.extend_from_slice(&[0x01, 0x00]);
            }
            FrameBody::ProbeRequest { .. } => {}
            FrameBody::AssociationRequest { .. } => {
                out.extend_from_slice(&[0x01, 0x00]); // capability: ESS
                out.extend_from_slice(&10u16.to_le_bytes()); // listen interval
            }
            FrameBody::Authentication { auth_seq } => {
                out.extend_from_slice(&0u16.to_le_bytes()); // open system
                out.extend_from_slice(&auth_seq.to_le_bytes());
                out.extend_from_slice(&0u16.to_le_bytes()); // status: success
            }
        }
        // Tagged parameters: SSID then DS params (authentication frames
        // carry no SSID element).
        let ssid_bytes: Option<&[u8]> = match &self.body {
            FrameBody::Beacon { ssid, .. }
            | FrameBody::ProbeResponse { ssid }
            | FrameBody::AssociationRequest { ssid } => Some(ssid.as_str().as_bytes()),
            FrameBody::ProbeRequest { ssid } => Some(
                ssid.as_ref()
                    .map_or(&[] as &[u8], |s| s.as_str().as_bytes()),
            ),
            FrameBody::Authentication { .. } => None,
        };
        if let Some(bytes) = ssid_bytes {
            out.push(TAG_SSID);
            out.push(bytes.len() as u8);
            out.extend_from_slice(bytes);
        }
        out.push(TAG_DS_PARAMS);
        out.push(1);
        out.push(self.channel.number());
        out
    }

    /// Decodes wire bytes produced by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] describing the first malformation found.
    pub fn decode(bytes: &[u8]) -> Result<Frame, DecodeError> {
        if bytes.len() < 24 {
            return Err(DecodeError::Truncated);
        }
        let fc = bytes[0];
        let subtype = fc >> 4;
        if fc & 0x0f != 0 {
            return Err(DecodeError::UnsupportedType(fc));
        }
        let mac = |off: usize| {
            let mut o = [0u8; 6];
            o.copy_from_slice(&bytes[off..off + 6]);
            MacAddr::new(o)
        };
        let dst = mac(4);
        let src = mac(10);
        let bssid = mac(16);
        let sequence = u16::from_le_bytes([bytes[22], bytes[23]]) >> 4;

        let (mut pos, interval_tu, auth_seq) = match subtype {
            0x4 => (24usize, None, None),
            0x5 | 0x8 => {
                if bytes.len() < 24 + 12 {
                    return Err(DecodeError::Truncated);
                }
                let interval = u16::from_le_bytes([bytes[32], bytes[33]]);
                (36usize, Some(interval), None)
            }
            0x0 => {
                if bytes.len() < 24 + 4 {
                    return Err(DecodeError::Truncated);
                }
                (28usize, None, None)
            }
            0xB => {
                if bytes.len() < 24 + 6 {
                    return Err(DecodeError::Truncated);
                }
                let seq = u16::from_le_bytes([bytes[26], bytes[27]]);
                (30usize, None, Some(seq))
            }
            other => return Err(DecodeError::UnsupportedType(other << 4)),
        };

        let mut ssid: Option<Ssid> = None;
        let mut ssid_present = false;
        let mut channel: Option<Channel> = None;
        while pos + 2 <= bytes.len() {
            let tag = bytes[pos];
            let len = bytes[pos + 1] as usize;
            pos += 2;
            if pos + len > bytes.len() {
                return Err(DecodeError::BadTag);
            }
            let val = &bytes[pos..pos + len];
            pos += len;
            match tag {
                TAG_SSID => {
                    ssid_present = true;
                    if len > 32 {
                        return Err(DecodeError::BadSsid);
                    }
                    let text = std::str::from_utf8(val).map_err(|_| DecodeError::BadSsid)?;
                    if !text.is_empty() {
                        ssid = Some(Ssid::new(text).map_err(|_| DecodeError::BadSsid)?);
                    }
                }
                TAG_DS_PARAMS => {
                    if len != 1 {
                        return Err(DecodeError::BadChannel);
                    }
                    let n = val[0];
                    channel = Some(if n <= 11 {
                        Channel::bg(n).map_err(|_| DecodeError::BadChannel)?
                    } else {
                        Channel::a(n).map_err(|_| DecodeError::BadChannel)?
                    });
                }
                _ => {} // skip unknown tags, as real parsers do
            }
        }
        let channel = channel.ok_or(DecodeError::BadChannel)?;
        if !ssid_present && subtype != 0xB {
            return Err(DecodeError::BadSsid);
        }

        let body = match subtype {
            0x0 => FrameBody::AssociationRequest {
                ssid: ssid.unwrap_or_else(Ssid::wildcard),
            },
            0x4 => FrameBody::ProbeRequest { ssid },
            0x5 => FrameBody::ProbeResponse {
                ssid: ssid.unwrap_or_else(Ssid::wildcard),
            },
            0x8 => FrameBody::Beacon {
                ssid: ssid.unwrap_or_else(Ssid::wildcard),
                interval_tu: interval_tu.unwrap_or(100),
            },
            0xB => FrameBody::Authentication {
                auth_seq: auth_seq.unwrap_or(1),
            },
            _ => unreachable!("subtype validated above"),
        };
        Ok(Frame {
            dst,
            src,
            bssid,
            channel,
            sequence,
            body,
        })
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match &self.body {
            FrameBody::Beacon { .. } => "beacon",
            FrameBody::ProbeRequest { .. } => "probe-req",
            FrameBody::ProbeResponse { .. } => "probe-resp",
            FrameBody::AssociationRequest { .. } => "assoc-req",
            FrameBody::Authentication { .. } => "auth",
        };
        write!(
            f,
            "{kind} {} -> {} on {} seq {}",
            self.src, self.dst, self.channel, self.sequence
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(i: u64) -> MacAddr {
        MacAddr::from_index(i)
    }

    fn ch(n: u8) -> Channel {
        Channel::bg(n).unwrap()
    }

    #[test]
    fn probe_request_round_trip() {
        for ssid in [None, Some(Ssid::new("eduroam").unwrap())] {
            let f = Frame::probe_request(mac(1), ssid, 6).with_sequence(777);
            let back = Frame::decode(&f.encode()).unwrap();
            assert_eq!(f, back);
            assert!(back.is_probe_request());
            assert_eq!(back.sequence, 777);
        }
    }

    #[test]
    fn probe_response_round_trip() {
        let f = Frame::probe_response(mac(2), mac(1), Ssid::new("UML-Guest").unwrap(), ch(11));
        let back = Frame::decode(&f.encode()).unwrap();
        assert_eq!(f, back);
        assert!(back.is_probe_response());
        assert_eq!(back.bssid, mac(2));
        assert_eq!(back.dst, mac(1));
    }

    #[test]
    fn beacon_round_trip() {
        let f = Frame::beacon(mac(3), Ssid::new("linksys").unwrap(), ch(1), 100);
        let back = Frame::decode(&f.encode()).unwrap();
        assert_eq!(f, back);
        match back.body {
            FrameBody::Beacon { interval_tu, .. } => assert_eq!(interval_tu, 100),
            _ => panic!("not a beacon"),
        }
    }

    #[test]
    fn association_request_round_trip() {
        let f = Frame::association_request(mac(1), mac(2), Ssid::new("linksys").unwrap(), ch(6))
            .with_sequence(42);
        let back = Frame::decode(&f.encode()).unwrap();
        assert_eq!(f, back);
        assert_eq!(back.dst, mac(2));
        match back.body {
            FrameBody::AssociationRequest { ssid } => {
                assert_eq!(ssid.as_str(), "linksys")
            }
            _ => panic!("not an association request"),
        }
    }

    #[test]
    fn authentication_round_trip() {
        for seq in [1u16, 2] {
            let f = Frame::authentication(mac(1), mac(2), mac(2), seq, ch(11));
            let back = Frame::decode(&f.encode()).unwrap();
            assert_eq!(f, back);
            match back.body {
                FrameBody::Authentication { auth_seq } => assert_eq!(auth_seq, seq),
                _ => panic!("not an auth frame"),
            }
        }
    }

    #[test]
    fn auth_frames_carry_no_ssid() {
        let f = Frame::authentication(mac(1), mac(2), mac(2), 1, ch(6));
        let bytes = f.encode();
        // Fixed header 24 + fixed fields 6, then straight to DS params.
        assert_eq!(bytes[30], 3, "first tag must be DS params");
        let s = f.to_string();
        assert!(s.contains("auth"));
    }

    #[test]
    fn a_band_round_trip() {
        let f = Frame::probe_response(
            mac(4),
            mac(5),
            Ssid::new("a-band").unwrap(),
            Channel::a(36).unwrap(),
        );
        let back = Frame::decode(&f.encode()).unwrap();
        assert_eq!(back.channel, Channel::a(36).unwrap());
    }

    #[test]
    fn wildcard_probe_has_empty_ssid_tag() {
        let f = Frame::probe_request(mac(1), None, 6);
        let bytes = f.encode();
        // After the 24-byte header: tag 0, len 0.
        assert_eq!(&bytes[24..26], &[0, 0]);
    }

    #[test]
    fn decode_rejects_truncated() {
        assert_eq!(Frame::decode(&[]), Err(DecodeError::Truncated));
        assert_eq!(Frame::decode(&[0u8; 10]), Err(DecodeError::Truncated));
        let full = Frame::beacon(mac(1), Ssid::wildcard(), ch(1), 100).encode();
        assert_eq!(Frame::decode(&full[..30]), Err(DecodeError::Truncated));
    }

    #[test]
    fn decode_rejects_unknown_types() {
        let mut bytes = Frame::probe_request(mac(1), None, 6).encode();
        bytes[0] = 0x21; // not a pure mgmt frame control
        assert!(matches!(
            Frame::decode(&bytes),
            Err(DecodeError::UnsupportedType(_))
        ));
        bytes[0] = 0x90; // unsupported subtype 9 (ATIM)
        assert!(matches!(
            Frame::decode(&bytes),
            Err(DecodeError::UnsupportedType(_))
        ));
    }

    #[test]
    fn decode_rejects_bad_tags() {
        let mut bytes = Frame::probe_request(mac(1), None, 6).encode();
        let n = bytes.len();
        bytes[n - 2] = 200; // DS tag claims 200-byte length
        assert_eq!(Frame::decode(&bytes), Err(DecodeError::BadTag));
    }

    #[test]
    fn decode_requires_channel_tag() {
        let f = Frame::probe_request(mac(1), None, 6);
        let bytes = f.encode();
        // Strip the DS parameter tag (last 3 bytes).
        let stripped = &bytes[..bytes.len() - 3];
        assert_eq!(Frame::decode(stripped), Err(DecodeError::BadChannel));
    }

    #[test]
    fn decode_rejects_invalid_channel_number() {
        let mut bytes = Frame::probe_request(mac(1), None, 6).encode();
        let n = bytes.len();
        bytes[n - 1] = 13; // not a valid b/g or a channel
        assert_eq!(Frame::decode(&bytes), Err(DecodeError::BadChannel));
    }

    #[test]
    fn decode_rejects_bad_utf8_ssid() {
        let mut bytes = Frame::probe_request(mac(1), Some(Ssid::new("abc").unwrap()), 6).encode();
        bytes[26] = 0xff; // corrupt SSID byte
        assert_eq!(Frame::decode(&bytes), Err(DecodeError::BadSsid));
    }

    #[test]
    fn unknown_tags_are_skipped() {
        let f = Frame::probe_request(mac(1), Some(Ssid::new("x").unwrap()), 6);
        let mut bytes = f.encode();
        // Append a vendor-specific tag (221).
        bytes.extend_from_slice(&[221, 3, 0xaa, 0xbb, 0xcc]);
        let back = Frame::decode(&bytes).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn sequence_is_masked_to_12_bits() {
        let f = Frame::probe_request(mac(1), None, 6).with_sequence(0xffff);
        assert_eq!(f.sequence, 0x0fff);
        let back = Frame::decode(&f.encode()).unwrap();
        assert_eq!(back.sequence, 0x0fff);
    }

    #[test]
    fn display_is_informative() {
        let f = Frame::probe_request(mac(1), None, 6);
        let s = f.to_string();
        assert!(s.contains("probe-req"));
        assert!(s.contains("ch6"));
        assert!(s.contains("ff:ff:ff:ff:ff:ff"));
    }

    #[test]
    fn decode_error_display() {
        assert_eq!(DecodeError::Truncated.to_string(), "frame truncated");
        assert!(DecodeError::UnsupportedType(0x21)
            .to_string()
            .contains("0x21"));
    }
}
