//! The active attack: baiting quiet devices into transmitting.
//!
//! The passive attack only sees devices that probe on their own
//! (Section IV-B: > 50 % of devices each day). For the rest, the paper
//! proposes an *active* technique: the adversary transmits bait —
//! spoofed beacons and probe responses for popular network names — and
//! devices holding a matching preferred network answer with probe or
//! association traffic, exposing their MAC (and position) to the
//! sniffer. This module models the bait transmitter and the decision of
//! whether a given station takes the bait.

use crate::device::{MobileStation, ScanBehavior};
use crate::frame::Frame;
use crate::mac::MacAddr;
use crate::ssid::Ssid;
use rand::Rng;

/// A bait transmitter colocated with (or near) the sniffer.
///
/// # Example
///
/// ```
/// use marauder_wifi::active::BaitTransmitter;
/// use marauder_wifi::ssid::Ssid;
///
/// let bait = BaitTransmitter::with_popular_ssids();
/// assert!(bait.ssids().iter().any(|s| s.as_str() == "linksys"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BaitTransmitter {
    mac: MacAddr,
    ssids: Vec<Ssid>,
    /// Seconds between bait beacon bursts.
    pub burst_interval_s: f64,
}

impl BaitTransmitter {
    /// A bait transmitter advertising the given network names.
    pub fn new(ssids: Vec<Ssid>) -> Self {
        BaitTransmitter {
            mac: MacAddr::new([0x02, 0xBA, 0x17, 0x00, 0x00, 0x01]),
            ssids,
            burst_interval_s: 10.0,
        }
    }

    /// Baits with the perennial default SSIDs most preferred-network
    /// lists contain (the practical choice the paper implies: devices
    /// auto-join networks they have seen before, and default names are
    /// ubiquitous).
    pub fn with_popular_ssids() -> Self {
        let names = [
            "linksys",
            "default",
            "NETGEAR",
            "dlink",
            "belkin54g",
            "tmobile",
            "attwifi",
            "Free Public WiFi",
        ];
        BaitTransmitter::new(
            names
                .iter()
                // lint:allow(no-panic-in-lib) -- bait SSID table entries are short by construction
                .map(|n| Ssid::new(*n).expect("short ssid"))
                .collect(),
        )
    }

    /// The spoofed transmitter MAC (locally administered).
    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// The advertised network names.
    pub fn ssids(&self) -> &[Ssid] {
        &self.ssids
    }

    /// The bait frames of one burst on the given channel: one spoofed
    /// beacon per advertised SSID.
    pub fn burst(&self, channel: u8) -> Vec<Frame> {
        self.ssids
            .iter()
            .enumerate()
            .map(|(i, ssid)| {
                // Distinct BSSID per network, derived from the base MAC.
                let mut octets = self.mac.octets();
                octets[5] = octets[5].wrapping_add(i as u8);
                Frame::beacon(
                    MacAddr::new(octets),
                    ssid.clone(),
                    // lint:allow(no-panic-in-lib) -- caller passes a validated b/g channel number
                    crate::channel::Channel::bg(channel).expect("valid channel"),
                    100,
                )
            })
            .collect()
    }

    /// Does `station` answer this bait burst?
    ///
    /// A station bites when it is not radio-silent and one of the bait
    /// SSIDs is on its preferred-network list; `rng` models the client's
    /// scan/association timing (it must be awake and listening on the
    /// bait channel during the burst), with the given per-burst hit
    /// probability.
    pub fn bites<R: Rng + ?Sized>(
        &self,
        station: &MobileStation,
        hit_probability: f64,
        rng: &mut R,
    ) -> Option<Ssid> {
        if matches!(station.behavior, ScanBehavior::Quiet) {
            return None;
        }
        let matched = station
            .preferred
            .iter()
            .find(|p| self.ssids.contains(p))?
            .clone();
        if rng.gen_range(0.0..1.0) < hit_probability {
            Some(matched)
        } else {
            None
        }
    }

    /// The frame a biting station transmits: a directed probe request
    /// for the baited network (the first packet of its join attempt).
    pub fn elicited_frame(&self, station: &MobileStation, ssid: Ssid, channel: u8) -> Frame {
        Frame::probe_request(station.mac, Some(ssid), channel)
    }
}

impl Default for BaitTransmitter {
    fn default() -> Self {
        BaitTransmitter::with_popular_ssids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::OsProfile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn station(preferred: &[&str]) -> MobileStation {
        let mut m = MobileStation::new(MacAddr::from_index(9), OsProfile::Embedded);
        for p in preferred {
            m = m.with_preferred(Ssid::new(*p).expect("short"));
        }
        m
    }

    #[test]
    fn burst_contains_one_beacon_per_ssid() {
        let bait = BaitTransmitter::with_popular_ssids();
        let frames = bait.burst(6);
        assert_eq!(frames.len(), bait.ssids().len());
        // Distinct BSSIDs.
        let bssids: std::collections::HashSet<_> = frames.iter().map(|f| f.bssid).collect();
        assert_eq!(bssids.len(), frames.len());
        for f in &frames {
            assert_eq!(f.channel.number(), 6);
            assert!(matches!(f.body, crate::frame::FrameBody::Beacon { .. }));
        }
    }

    #[test]
    fn passive_station_with_matching_ssid_bites() {
        let bait = BaitTransmitter::with_popular_ssids();
        let s = station(&["linksys"]);
        assert!(!s.visible_to_passive_attack(), "embedded profile is quiet");
        let mut rng = StdRng::seed_from_u64(1);
        let got = bait.bites(&s, 1.0, &mut rng);
        assert_eq!(got.map(|s| s.as_str().to_string()), Some("linksys".into()));
    }

    #[test]
    fn no_preferred_match_means_no_bite() {
        let bait = BaitTransmitter::with_popular_ssids();
        let s = station(&["my-weird-home-net"]);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(bait.bites(&s, 1.0, &mut rng).is_none());
    }

    #[test]
    fn radio_silent_stations_never_bite() {
        let bait = BaitTransmitter::with_popular_ssids();
        let s = station(&["linksys"]).with_behavior(ScanBehavior::Quiet);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(bait.bites(&s, 1.0, &mut rng).is_none());
    }

    #[test]
    fn hit_probability_gates_the_bite() {
        let bait = BaitTransmitter::with_popular_ssids();
        let s = station(&["default"]);
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..2000)
            .filter(|_| bait.bites(&s, 0.3, &mut rng).is_some())
            .count();
        let rate = hits as f64 / 2000.0;
        assert!((rate - 0.3).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn elicited_frame_is_a_directed_probe_from_the_victim() {
        let bait = BaitTransmitter::with_popular_ssids();
        let s = station(&["linksys"]);
        let ssid = Ssid::new("linksys").expect("short");
        let f = bait.elicited_frame(&s, ssid.clone(), 6);
        assert!(f.is_probe_request());
        assert_eq!(f.src, s.mac);
        match f.body {
            crate::frame::FrameBody::ProbeRequest { ssid: Some(got) } => {
                assert_eq!(got, ssid)
            }
            _ => panic!("expected a directed probe"),
        }
    }
}
