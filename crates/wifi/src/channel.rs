//! 802.11 channel plan, spectral overlap, and adjacent-channel decoding.
//!
//! Section III-B1 of the paper: 802.11b/g has 11 channels, each 22 MHz
//! wide on a 5 MHz grid, so only channels 1/6/11 are mutually
//! non-interfering. Prior folklore held that 3 cards on channels 3/6/9
//! could capture everything; the paper's Fig. 9 refutes this — energy
//! leaks into neighbouring channels but the distorted signal does not
//! *decode*. [`Channel::decode_probability`] encodes that measured
//! behaviour, and [`CampusChannelMix`] reproduces the Fig. 8 empirical
//! channel distribution (93.7 % of campus APs on 1/6/11).

use marauder_rf::units::Hertz;
use rand::Rng;
use std::fmt;

/// Frequency band of a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Band {
    /// 2.4 GHz ISM band (802.11 b/g).
    G24,
    /// 5 GHz band (802.11a).
    A5,
}

/// An 802.11 channel.
///
/// # Example
///
/// ```
/// use marauder_wifi::channel::Channel;
/// let ch6 = Channel::bg(6).unwrap();
/// assert_eq!(ch6.center_frequency().mhz(), 2437.0);
/// let ch1 = Channel::bg(1).unwrap();
/// assert!(ch1.overlap_mhz(Channel::bg(3).unwrap()) > 0.0);
/// assert_eq!(ch1.overlap_mhz(ch6), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Channel {
    band: Band,
    number: u8,
}

/// Error returned for channel numbers outside the band's plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidChannelError {
    band: Band,
    number: u8,
}

impl fmt::Display for InvalidChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "channel {} does not exist in band {:?}",
            self.number, self.band
        )
    }
}

impl std::error::Error for InvalidChannelError {}

/// The 12 U.S. 802.11a channels the paper counts.
pub const A_CHANNELS: [u8; 12] = [36, 40, 44, 48, 52, 56, 60, 64, 149, 153, 157, 161];

/// Spectral width of a b/g DSSS channel, MHz.
pub const BG_CHANNEL_WIDTH_MHZ: f64 = 22.0;

/// Channel-grid spacing in the 2.4 GHz band, MHz.
pub const BG_CHANNEL_SPACING_MHZ: f64 = 5.0;

impl Channel {
    /// A 2.4 GHz b/g channel (1–11, U.S. plan).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidChannelError`] outside 1–11.
    pub fn bg(number: u8) -> Result<Self, InvalidChannelError> {
        if (1..=11).contains(&number) {
            Ok(Channel {
                band: Band::G24,
                number,
            })
        } else {
            Err(InvalidChannelError {
                band: Band::G24,
                number,
            })
        }
    }

    /// A 5 GHz 802.11a channel (one of [`A_CHANNELS`]).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidChannelError`] for numbers not in the plan.
    pub fn a(number: u8) -> Result<Self, InvalidChannelError> {
        if A_CHANNELS.contains(&number) {
            Ok(Channel {
                band: Band::A5,
                number,
            })
        } else {
            Err(InvalidChannelError {
                band: Band::A5,
                number,
            })
        }
    }

    /// All b/g channels 1–11.
    pub fn all_bg() -> impl Iterator<Item = Channel> {
        (1..=11).map(|n| Channel {
            band: Band::G24,
            number: n,
        })
    }

    /// All 802.11a channels of [`A_CHANNELS`], in table order.
    pub fn all_a() -> impl Iterator<Item = Channel> {
        A_CHANNELS.iter().map(|&n| Channel {
            band: Band::A5,
            number: n,
        })
    }

    /// The three non-overlapping b/g channels the paper's rig monitors.
    pub fn non_overlapping_bg() -> [Channel; 3] {
        [
            Channel {
                band: Band::G24,
                number: 1,
            },
            Channel {
                band: Band::G24,
                number: 6,
            },
            Channel {
                band: Band::G24,
                number: 11,
            },
        ]
    }

    /// The channel number.
    pub fn number(self) -> u8 {
        self.number
    }

    /// The band.
    pub fn band(self) -> Band {
        self.band
    }

    /// Center frequency.
    pub fn center_frequency(self) -> Hertz {
        match self.band {
            Band::G24 => Hertz::from_mhz(2412.0 + 5.0 * (self.number as f64 - 1.0)),
            Band::A5 => Hertz::from_mhz(5000.0 + 5.0 * self.number as f64),
        }
    }

    /// Spectral overlap in MHz between two channels' occupied bandwidth
    /// (zero across bands and for b/g channels ≥ 5 numbers apart).
    pub fn overlap_mhz(self, other: Channel) -> f64 {
        if self.band != other.band {
            return 0.0;
        }
        let df = (self.center_frequency().mhz() - other.center_frequency().mhz()).abs();
        (BG_CHANNEL_WIDTH_MHZ - df).max(0.0)
    }

    /// Probability that a card listening on `self` successfully decodes a
    /// frame transmitted on `other`.
    ///
    /// Same channel: near-certain. Neighbouring channels: although up to
    /// 77 % of the energy overlaps one channel over, the signal is
    /// distorted and the card "can recognize few or none of those
    /// packets" (paper Fig. 9); the residual probabilities here follow
    /// that measurement.
    pub fn decode_probability(self, other: Channel) -> f64 {
        if self.band != other.band {
            return 0.0;
        }
        match self.number.abs_diff(other.number) {
            0 => 0.98,
            1 => 0.03,
            2 => 0.005,
            _ => 0.0,
        }
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.band {
            Band::G24 => write!(f, "ch{}", self.number),
            Band::A5 => write!(f, "ch{}a", self.number),
        }
    }
}

/// Empirical campus channel distribution (paper Fig. 8): the weights
/// with which access points choose their channel.
///
/// The default mix puts 93.7 % of APs on channels 1/6/11, matching the
/// UML measurement, with the remainder spread over the other eight
/// channels.
#[derive(Debug, Clone, PartialEq)]
pub struct CampusChannelMix {
    /// `weights[i]` is the probability of b/g channel `i + 1`.
    weights: [f64; 11],
}

impl CampusChannelMix {
    /// The paper's measured UML mix.
    pub fn uml() -> Self {
        // 93.7% on 1/6/11 split as measured (6 most popular), remainder
        // uniform over the other 8 channels.
        let mut weights = [0.063 / 8.0; 11];
        weights[0] = 0.270; // ch 1
        weights[5] = 0.450; // ch 6
        weights[10] = 0.217; // ch 11
        CampusChannelMix { weights }
    }

    /// A custom mix.
    ///
    /// # Panics
    ///
    /// Panics unless the weights are non-negative and sum to 1 (±1e-6).
    pub fn new(weights: [f64; 11]) -> Self {
        let sum: f64 = weights.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "channel weights must sum to 1, got {sum}"
        );
        assert!(
            weights.iter().all(|w| *w >= 0.0),
            "channel weights must be non-negative"
        );
        CampusChannelMix { weights }
    }

    /// Probability weight of a given b/g channel.
    pub fn weight(&self, channel: Channel) -> f64 {
        match channel.band() {
            Band::G24 => self.weights[(channel.number() - 1) as usize],
            Band::A5 => 0.0,
        }
    }

    /// The combined weight of the non-overlapping channels 1/6/11.
    pub fn fraction_on_1_6_11(&self) -> f64 {
        self.weights[0] + self.weights[5] + self.weights[10]
    }

    /// Samples a channel for a new AP.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Channel {
        let mut u: f64 = rng.gen_range(0.0..1.0);
        for (i, w) in self.weights.iter().enumerate() {
            if u < *w {
                return Channel {
                    band: Band::G24,
                    number: i as u8 + 1,
                };
            }
            u -= w;
        }
        Channel {
            band: Band::G24,
            number: 11,
        }
    }
}

impl Default for CampusChannelMix {
    fn default() -> Self {
        CampusChannelMix::uml()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bg_channel_frequencies() {
        assert_eq!(Channel::bg(1).unwrap().center_frequency().mhz(), 2412.0);
        assert_eq!(Channel::bg(6).unwrap().center_frequency().mhz(), 2437.0);
        assert_eq!(Channel::bg(11).unwrap().center_frequency().mhz(), 2462.0);
    }

    #[test]
    fn invalid_channels_rejected() {
        assert!(Channel::bg(0).is_err());
        assert!(Channel::bg(12).is_err());
        assert!(Channel::a(37).is_err());
        let e = Channel::bg(14).unwrap_err();
        assert!(e.to_string().contains("channel 14"));
    }

    #[test]
    fn a_band_channels() {
        assert_eq!(A_CHANNELS.len(), 12, "paper counts 12 802.11a channels");
        for n in A_CHANNELS {
            let ch = Channel::a(n).unwrap();
            assert!(ch.center_frequency().mhz() > 5000.0);
        }
        assert_eq!(Channel::a(36).unwrap().center_frequency().mhz(), 5180.0);
    }

    #[test]
    fn overlap_structure() {
        let ch = |n| Channel::bg(n).unwrap();
        // 1/6/11 are mutually non-overlapping.
        assert_eq!(ch(1).overlap_mhz(ch(6)), 0.0);
        assert_eq!(ch(6).overlap_mhz(ch(11)), 0.0);
        assert_eq!(ch(1).overlap_mhz(ch(11)), 0.0);
        // Adjacent channels overlap by 17 MHz.
        assert_eq!(ch(1).overlap_mhz(ch(2)), 17.0);
        // Same channel: full width.
        assert_eq!(ch(3).overlap_mhz(ch(3)), 22.0);
        // Symmetric.
        assert_eq!(ch(2).overlap_mhz(ch(5)), ch(5).overlap_mhz(ch(2)));
        // Cross-band: none.
        assert_eq!(ch(1).overlap_mhz(Channel::a(36).unwrap()), 0.0);
    }

    #[test]
    fn decode_probability_matches_fig9() {
        let ch = |n| Channel::bg(n).unwrap();
        // Listening on the tx channel: decodes.
        assert!(ch(11).decode_probability(ch(11)) > 0.9);
        // The folklore "ch9 hears ch7..11" is false: neighbours decode
        // (almost) nothing despite spectral overlap.
        assert!(ch(9).decode_probability(ch(11)) < 0.01);
        assert!(ch(10).decode_probability(ch(11)) < 0.05);
        assert_eq!(ch(6).decode_probability(ch(11)), 0.0);
        assert_eq!(ch(1).decode_probability(Channel::a(36).unwrap()), 0.0);
    }

    #[test]
    fn uml_mix_matches_fig8() {
        let mix = CampusChannelMix::uml();
        assert!((mix.fraction_on_1_6_11() - 0.937).abs() < 1e-9);
        assert!(mix.weight(Channel::bg(6).unwrap()) > mix.weight(Channel::bg(1).unwrap()));
        assert_eq!(mix.weight(Channel::a(36).unwrap()), 0.0);
        let total: f64 = Channel::all_bg().map(|c| mix.weight(c)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_follows_weights() {
        let mix = CampusChannelMix::uml();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mut counts = [0u32; 11];
        for _ in 0..n {
            counts[(mix.sample(&mut rng).number() - 1) as usize] += 1;
        }
        let frac_ch6 = counts[5] as f64 / n as f64;
        assert!((frac_ch6 - 0.45).abs() < 0.02, "ch6 fraction {frac_ch6}");
        let frac_161 = (counts[0] + counts[5] + counts[10]) as f64 / n as f64;
        assert!((frac_161 - 0.937).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_mix_panics() {
        let _ = CampusChannelMix::new([0.5; 11]);
    }

    #[test]
    fn display() {
        assert_eq!(Channel::bg(6).unwrap().to_string(), "ch6");
        assert_eq!(Channel::a(36).unwrap().to_string(), "ch36a");
    }

    #[test]
    fn non_overlapping_set() {
        let [a, b, c] = Channel::non_overlapping_bg();
        assert_eq!((a.number(), b.number(), c.number()), (1, 6, 11));
    }
}
