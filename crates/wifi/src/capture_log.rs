//! Text serialization for capture databases.
//!
//! A portable interchange format so captures can move between the
//! simulator, the CLI tool and archived runs — one frame per line, with
//! the 802.11 bytes hex-encoded exactly as they would sit in a pcap:
//!
//! ```text
//! # marauder capture v1
//! 12.340 1 40000000ffffff...
//! ```

use crate::frame::Frame;
use crate::sniffer::{CaptureDatabase, CapturedFrame};
use std::fmt;

/// Magic first line of the format.
pub const HEADER: &str = "# marauder capture v1";

/// Error returned when parsing a malformed capture log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLogError {
    line: usize,
    reason: String,
}

impl fmt::Display for ParseLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "capture log parse error on line {}: {}",
            self.line, self.reason
        )
    }
}

impl std::error::Error for ParseLogError {}

/// Serializes a capture database to the text format.
pub fn write_capture_log(db: &CaptureDatabase) -> String {
    let mut out = String::with_capacity(db.len() * 80 + HEADER.len() + 1);
    out.push_str(HEADER);
    out.push('\n');
    for rec in db.iter() {
        out.push_str(&format!("{:.6} {} ", rec.time_s, rec.card));
        for b in rec.frame.encode() {
            out.push_str(&format!("{b:02x}"));
        }
        out.push('\n');
    }
    out
}

/// Parses the text format produced by [`write_capture_log`].
///
/// # Errors
///
/// Returns [`ParseLogError`] naming the first malformed line; a missing
/// or wrong header is reported as line 1.
pub fn parse_capture_log(text: &str) -> Result<CaptureDatabase, ParseLogError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        _ => {
            return Err(ParseLogError {
                line: 1,
                reason: format!("missing header {HEADER:?}"),
            })
        }
    }
    let mut db = CaptureDatabase::new();
    for (i, line) in lines {
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |reason: String| ParseLogError {
            line: i + 1,
            reason,
        };
        let mut parts = line.split_whitespace();
        let time_s: f64 = parts
            .next()
            .ok_or_else(|| err("missing time".into()))?
            .parse()
            .map_err(|e| err(format!("bad time: {e}")))?;
        let card: usize = parts
            .next()
            .ok_or_else(|| err("missing card".into()))?
            .parse()
            .map_err(|e| err(format!("bad card: {e}")))?;
        let hex = parts.next().ok_or_else(|| err("missing bytes".into()))?;
        if parts.next().is_some() {
            return Err(err("trailing fields".into()));
        }
        if hex.len() % 2 != 0 {
            return Err(err("odd hex length".into()));
        }
        let bytes: Vec<u8> = (0..hex.len() / 2)
            .map(|k| u8::from_str_radix(&hex[2 * k..2 * k + 2], 16))
            .collect::<Result<_, _>>()
            .map_err(|e| err(format!("bad hex: {e}")))?;
        let frame = Frame::decode(&bytes).map_err(|e| err(format!("bad frame: {e}")))?;
        db.push(CapturedFrame {
            time_s,
            card,
            frame,
        });
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;
    use crate::mac::MacAddr;
    use crate::ssid::Ssid;

    fn sample_db() -> CaptureDatabase {
        let mut db = CaptureDatabase::new();
        db.push(CapturedFrame {
            time_s: 1.25,
            card: 0,
            frame: Frame::probe_request(MacAddr::from_index(1), None, 6),
        });
        db.push(CapturedFrame {
            time_s: 2.5,
            card: 2,
            frame: Frame::probe_response(
                MacAddr::from_index(100),
                MacAddr::from_index(1),
                Ssid::new("net one").unwrap(),
                Channel::bg(11).unwrap(),
            ),
        });
        db
    }

    #[test]
    fn round_trip() {
        let db = sample_db();
        let text = write_capture_log(&db);
        assert!(text.starts_with(HEADER));
        let back = parse_capture_log(&text).unwrap();
        assert_eq!(back.len(), db.len());
        for (a, b) in db.iter().zip(back.iter()) {
            assert_eq!(a.frame, b.frame);
            assert_eq!(a.card, b.card);
            assert!((a.time_s - b.time_s).abs() < 1e-6);
        }
    }

    #[test]
    fn rejects_missing_header() {
        let e = parse_capture_log("1.0 0 abcd").unwrap_err();
        assert!(e.to_string().contains("missing header"));
        assert!(parse_capture_log("").is_err());
    }

    #[test]
    fn rejects_malformed_lines() {
        let mk = |body: &str| format!("{HEADER}\n{body}\n");
        assert!(parse_capture_log(&mk("notatime 0 40")).is_err());
        assert!(parse_capture_log(&mk("1.0 x 40")).is_err());
        assert!(parse_capture_log(&mk("1.0 0")).is_err());
        assert!(parse_capture_log(&mk("1.0 0 abc")).is_err()); // odd hex
        assert!(parse_capture_log(&mk("1.0 0 zz")).is_err());
        assert!(parse_capture_log(&mk("1.0 0 40 extra")).is_err());
        // Valid hex but truncated frame.
        assert!(parse_capture_log(&mk("1.0 0 4000")).is_err());
    }

    #[test]
    fn skips_comments_and_blanks() {
        let db = sample_db();
        let mut text = write_capture_log(&db);
        text.push_str("\n# trailing comment\n\n");
        let back = parse_capture_log(&text).unwrap();
        assert_eq!(back.len(), db.len());
    }
}
