//! Text serialization for capture databases.
//!
//! A portable interchange format so captures can move between the
//! simulator, the CLI tool and archived runs — one frame per line, with
//! the 802.11 bytes hex-encoded exactly as they would sit in a pcap:
//!
//! ```text
//! # marauder capture v1
//! 12.340 1 40000000ffffff...
//! ```

use crate::frame::Frame;
use crate::sniffer::{CaptureDatabase, CapturedFrame};
use std::fmt;

/// Magic first line of the format.
pub const HEADER: &str = "# marauder capture v1";

/// Error returned when parsing a malformed capture log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLogError {
    line: usize,
    reason: String,
}

impl ParseLogError {
    /// The 1-based line number of the first malformed line. A missing
    /// or wrong header is reported as line 1.
    pub fn line(&self) -> usize {
        self.line
    }

    /// Human-readable description of what was wrong with the line.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl fmt::Display for ParseLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "capture log parse error on line {}: {}",
            self.line, self.reason
        )
    }
}

impl std::error::Error for ParseLogError {}

/// Serializes a capture database to the text format.
pub fn write_capture_log(db: &CaptureDatabase) -> String {
    let mut out = String::with_capacity(db.len() * 80 + HEADER.len() + 1);
    out.push_str(HEADER);
    out.push('\n');
    for rec in db.iter() {
        out.push_str(&format!("{:.6} {} ", rec.time_s, rec.card));
        for b in rec.frame.encode() {
            out.push_str(&format!("{b:02x}"));
        }
        out.push('\n');
    }
    out
}

/// Parses one non-header line of the capture-log body.
///
/// Returns `Ok(None)` for blank lines and `#` comments. This is the
/// unit the streaming consumers (`marauder replay --follow`) use to
/// decode lines appended to a live log.
///
/// # Errors
///
/// Returns the malformation reason (without a line number — callers
/// tracking position wrap it into [`ParseLogError`]).
pub fn parse_capture_line(line: &str) -> Result<Option<CapturedFrame>, String> {
    if line.trim().is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let time_s: f64 = parts
        .next()
        .ok_or_else(|| "missing time".to_string())?
        .parse()
        .map_err(|e| format!("bad time: {e}"))?;
    let card: usize = parts
        .next()
        .ok_or_else(|| "missing card".to_string())?
        .parse()
        .map_err(|e| format!("bad card: {e}"))?;
    let hex = parts.next().ok_or_else(|| "missing bytes".to_string())?;
    if parts.next().is_some() {
        return Err("trailing fields".into());
    }
    if hex.len() % 2 != 0 {
        return Err("odd hex length".into());
    }
    let bytes: Vec<u8> = (0..hex.len() / 2)
        .map(|k| u8::from_str_radix(&hex[2 * k..2 * k + 2], 16))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("bad hex: {e}"))?;
    let frame = Frame::decode(&bytes).map_err(|e| format!("bad frame: {e}"))?;
    Ok(Some(CapturedFrame {
        time_s,
        card,
        frame,
    }))
}

/// Streaming iterator over the frames of a capture log: one
/// [`CapturedFrame`] at a time, without materializing a
/// [`CaptureDatabase`] — the frame feed for the live tracking engine.
///
/// The header is validated lazily on the first call to `next`; a
/// missing or wrong header is fatal and fuses the iterator. A
/// malformed *body* line yields `Some(Err(_))` with its 1-based line
/// number and iteration resumes at the following line — callers decide
/// whether to abort on the first error
/// ([`parse_capture_log`] does) or skip-and-count under an error
/// budget (`marauder_stream::replay_log` does).
#[derive(Debug, Clone)]
pub struct CaptureLogFrames<'a> {
    lines: std::str::Lines<'a>,
    line_no: usize,
    header_ok: bool,
    failed: bool,
}

/// Iterates over the frames of a capture log without building a
/// database. See [`CaptureLogFrames`].
pub fn capture_log_frames(text: &str) -> CaptureLogFrames<'_> {
    CaptureLogFrames {
        lines: text.lines(),
        line_no: 0,
        header_ok: false,
        failed: false,
    }
}

impl Iterator for CaptureLogFrames<'_> {
    type Item = Result<CapturedFrame, ParseLogError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        if !self.header_ok {
            self.line_no += 1;
            match self.lines.next() {
                Some(h) if h.trim() == HEADER => self.header_ok = true,
                _ => {
                    self.failed = true;
                    return Some(Err(ParseLogError {
                        line: 1,
                        reason: format!("missing header {HEADER:?}"),
                    }));
                }
            }
        }
        for line in self.lines.by_ref() {
            self.line_no += 1;
            match parse_capture_line(line) {
                Ok(None) => continue,
                Ok(Some(rec)) => return Some(Ok(rec)),
                // Body errors are recoverable: report, then resume on
                // the next line.
                Err(reason) => {
                    return Some(Err(ParseLogError {
                        line: self.line_no,
                        reason,
                    }));
                }
            }
        }
        None
    }
}

/// Parses the text format produced by [`write_capture_log`].
///
/// # Errors
///
/// Returns [`ParseLogError`] naming the first malformed line; a missing
/// or wrong header is reported as line 1.
pub fn parse_capture_log(text: &str) -> Result<CaptureDatabase, ParseLogError> {
    capture_log_frames(text).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;
    use crate::mac::MacAddr;
    use crate::ssid::Ssid;

    fn sample_db() -> CaptureDatabase {
        let mut db = CaptureDatabase::new();
        db.push(CapturedFrame {
            time_s: 1.25,
            card: 0,
            frame: Frame::probe_request(MacAddr::from_index(1), None, 6),
        });
        db.push(CapturedFrame {
            time_s: 2.5,
            card: 2,
            frame: Frame::probe_response(
                MacAddr::from_index(100),
                MacAddr::from_index(1),
                Ssid::new("net one").unwrap(),
                Channel::bg(11).unwrap(),
            ),
        });
        db
    }

    #[test]
    fn round_trip() {
        let db = sample_db();
        let text = write_capture_log(&db);
        assert!(text.starts_with(HEADER));
        let back = parse_capture_log(&text).unwrap();
        assert_eq!(back.len(), db.len());
        for (a, b) in db.iter().zip(back.iter()) {
            assert_eq!(a.frame, b.frame);
            assert_eq!(a.card, b.card);
            assert!((a.time_s - b.time_s).abs() < 1e-6);
        }
    }

    #[test]
    fn rejects_missing_header() {
        let e = parse_capture_log("1.0 0 abcd").unwrap_err();
        assert!(e.to_string().contains("missing header"));
        assert_eq!(e.line(), 1, "header errors are reported on line 1");
        assert!(parse_capture_log("").is_err());
        assert_eq!(parse_capture_log("").unwrap_err().line(), 1);
    }

    #[test]
    fn rejects_malformed_lines() {
        let mk = |body: &str| format!("{HEADER}\n{body}\n");
        assert!(parse_capture_log(&mk("notatime 0 40")).is_err());
        assert!(parse_capture_log(&mk("1.0 x 40")).is_err());
        assert!(parse_capture_log(&mk("1.0 0")).is_err());
        assert!(parse_capture_log(&mk("1.0 0 abc")).is_err()); // odd hex
        assert!(parse_capture_log(&mk("1.0 0 zz")).is_err());
        assert!(parse_capture_log(&mk("1.0 0 40 extra")).is_err());
        // Valid hex but truncated frame.
        assert!(parse_capture_log(&mk("1.0 0 4000")).is_err());
    }

    #[test]
    fn error_line_numbers_are_one_based_and_count_every_line() {
        // The header is line 1; the first body line is line 2.
        let e = parse_capture_log(&format!("{HEADER}\nnotatime 0 40\n")).unwrap_err();
        assert_eq!(e.line(), 2);
        assert!(e.reason().contains("bad time"), "{}", e.reason());
        // Blank and comment lines are skipped but still counted.
        let good = write_capture_log(&sample_db());
        let text = format!("{good}# comment\n\n1.0 0 zz\n");
        let e = parse_capture_log(&text).unwrap_err();
        // header + 2 records + comment + blank => bad line is line 6.
        assert_eq!(e.line(), 6);
        assert!(e.reason().contains("bad hex"), "{}", e.reason());
    }

    #[test]
    fn frame_iterator_streams_without_a_database() {
        let db = sample_db();
        let text = write_capture_log(&db);
        let frames: Vec<CapturedFrame> = capture_log_frames(&text)
            .collect::<Result<_, _>>()
            .expect("valid log");
        assert_eq!(frames.len(), db.len());
        for (a, b) in db.iter().zip(&frames) {
            assert_eq!(a.frame, b.frame);
            assert_eq!(a.card, b.card);
        }
        // A malformed body line surfaces as Err; iteration resumes on
        // the next line so callers can skip-and-count.
        let lines: Vec<&str> = text.lines().collect();
        let text = format!("{}\n{}\n1.0 0 zz\n{}\n", lines[0], lines[1], lines[2]);
        let mut it = capture_log_frames(&text);
        assert!(it.next().unwrap().is_ok());
        let err = it.next().unwrap().unwrap_err();
        assert_eq!(err.line(), 3);
        let resumed = it.next().expect("iteration resumes after a body error");
        assert_eq!(resumed.unwrap().frame, db.iter().nth(1).unwrap().frame);
        assert!(it.next().is_none());
        // A header failure is fatal: the iterator fuses.
        let mut it = capture_log_frames("no header\n1.0 0 40\n");
        assert!(it.next().unwrap().is_err());
        assert!(it.next().is_none(), "header errors fuse the iterator");
    }

    #[test]
    fn truncated_mid_record_reports_the_cut_line() {
        // A sniffer process killed mid-write leaves the final record
        // cut in the middle of its hex bytes.
        let text = write_capture_log(&sample_db());
        let cut = &text[..text.len() - 10];
        let e = parse_capture_log(cut).unwrap_err();
        assert_eq!(e.line(), 3, "1-based: header, record 1, cut record");
        assert!(
            e.reason().contains("odd hex") || e.reason().contains("bad frame"),
            "{}",
            e.reason()
        );
        // The streaming iterator still yields everything before the cut.
        let mut it = capture_log_frames(cut);
        assert!(it.next().unwrap().is_ok());
        assert!(it.next().unwrap().is_err());
        assert!(it.next().is_none());
    }

    #[test]
    fn parse_capture_line_skips_blanks_and_comments() {
        assert!(parse_capture_line("").unwrap().is_none());
        assert!(parse_capture_line("   ").unwrap().is_none());
        assert!(parse_capture_line("# note").unwrap().is_none());
        assert!(parse_capture_line("1.0 0 zz").is_err());
    }

    #[test]
    fn skips_comments_and_blanks() {
        let db = sample_db();
        let mut text = write_capture_log(&db);
        text.push_str("\n# trailing comment\n\n");
        let back = parse_capture_log(&text).unwrap();
        assert_eq!(back.len(), db.len());
    }
}
