//! IEEE 802 MAC addresses.
//!
//! The tracking system keys every observation on MAC addresses: mobiles
//! are tracked by their (usually static) source MAC, access points by
//! their BSSID. The paper notes that even pseudonymous MACs can be
//! re-linked through implicit identifiers (Pang et al. \[13\]); the device
//! model supports rotating locally-administered addresses for that
//! experiment.

use std::fmt;
use std::str::FromStr;

/// A 48-bit MAC address.
///
/// # Example
///
/// ```
/// use marauder_wifi::mac::MacAddr;
/// let mac: MacAddr = "00:1f:3b:02:44:55".parse().unwrap();
/// assert_eq!(mac.to_string(), "00:1f:3b:02:44:55");
/// assert!(!mac.is_broadcast());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MacAddr([u8; 6]);

/// Error returned when parsing a malformed MAC address string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMacError {
    input: String,
}

impl fmt::Display for ParseMacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address syntax: {:?}", self.input)
    }
}

impl std::error::Error for ParseMacError {}

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Creates an address from its six octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// The six octets.
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }

    /// `true` for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// `true` when the group (multicast) bit is set.
    pub fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// `true` when the locally-administered bit is set — the convention
    /// for randomized/pseudonym MACs.
    pub fn is_locally_administered(self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// Deterministically derives a unicast, globally-administered address
    /// from an index — used by simulators to mint device populations.
    pub fn from_index(index: u64) -> Self {
        let b = index.to_be_bytes();
        // Low 32 bits of the index fill the NIC-specific octets; the
        // first octet has the group and local bits clear.
        MacAddr([0x00, 0x16, b[4], b[5], b[6], b[7]])
    }

    /// Looks up the adapter vendor from the OUI (first three octets), a
    /// small embedded table of the vendors common in 2008-era captures.
    ///
    /// Locally-administered (randomized) addresses return `None` — which
    /// is itself a signal: rotating MACs erases the vendor field, so
    /// pseudonym linking must fall back to probe fingerprints.
    ///
    /// # Example
    ///
    /// ```
    /// use marauder_wifi::mac::MacAddr;
    /// let mac = MacAddr::new([0x00, 0x1B, 0x63, 0x01, 0x02, 0x03]);
    /// assert_eq!(mac.vendor(), Some("Apple"));
    /// ```
    pub fn vendor(self) -> Option<&'static str> {
        if self.is_locally_administered() || self.is_multicast() {
            return None;
        }
        let oui = (self.0[0], self.0[1], self.0[2]);
        let v = match oui {
            (0x00, 0x0B, 0x86) => "Aruba Networks",
            (0x00, 0x0C, 0x41) => "Linksys",
            (0x00, 0x0F, 0x66) => "Linksys",
            (0x00, 0x12, 0x17) => "Linksys",
            (0x00, 0x13, 0x10) => "Linksys",
            (0x00, 0x0D, 0x88) => "D-Link",
            (0x00, 0x15, 0xE9) => "D-Link",
            (0x00, 0x17, 0x9A) => "D-Link",
            (0x00, 0x09, 0x5B) => "Netgear",
            (0x00, 0x0F, 0xB5) => "Netgear",
            (0x00, 0x14, 0x6C) => "Netgear",
            (0x00, 0x18, 0x4D) => "Netgear",
            (0x00, 0x02, 0x2D) => "Agere/Orinoco",
            (0x00, 0x0E, 0x35) => "Intel",
            (0x00, 0x13, 0x02) => "Intel",
            (0x00, 0x13, 0xE8) => "Intel",
            (0x00, 0x15, 0x00) => "Intel",
            (0x00, 0x16, 0x6F) => "Intel",
            (0x00, 0x1B, 0x77) => "Intel",
            (0x00, 0x03, 0x93) => "Apple",
            (0x00, 0x0A, 0x95) => "Apple",
            (0x00, 0x11, 0x24) => "Apple",
            (0x00, 0x16, 0xCB) => "Apple",
            (0x00, 0x17, 0xF2) => "Apple",
            (0x00, 0x1B, 0x63) => "Apple",
            (0x00, 0x1E, 0xC2) => "Apple",
            (0x00, 0x0A, 0xB7) => "Cisco",
            (0x00, 0x0B, 0x5F) => "Cisco",
            (0x00, 0x12, 0x7F) => "Cisco",
            (0x00, 0x18, 0x68) => "Cisco/Scientific Atlanta",
            (0x00, 0x03, 0x7F) => "Atheros",
            (0x00, 0x0A, 0xF5) => "Airgo/Qualcomm",
            (0x00, 0x10, 0x18) => "Broadcom",
            (0x00, 0x90, 0x4C) => "Broadcom (reference)",
            (0x00, 0x15, 0x6D) => "Ubiquiti",
            (0x00, 0x0E, 0x8E) => "SparkLAN",
            (0x00, 0x14, 0xA4) => "Hon Hai/Foxconn",
            (0x00, 0x16, 0x44) => "LITE-ON",
            (0x00, 0x19, 0x7D) => "Hon Hai/Foxconn",
            (0x00, 0x0E, 0x9B) => "Ambit/TCL",
            _ => return None,
        };
        Some(v)
    }

    /// Derives a locally-administered pseudonym from this address and a
    /// rotation epoch, for the pseudonym-tracking experiment.
    pub fn pseudonym(self, epoch: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.0 {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= epoch as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
        let x = h.to_be_bytes();
        // Set local bit, clear group bit.
        MacAddr([(x[0] & 0xfc) | 0x02, x[1], x[2], x[3], x[4], x[5]])
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl FromStr for MacAddr {
    type Err = ParseMacError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseMacError {
            input: s.to_string(),
        };
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 6 {
            return Err(err());
        }
        let mut octets = [0u8; 6];
        for (o, p) in octets.iter_mut().zip(parts) {
            if p.len() != 2 {
                return Err(err());
            }
            *o = u8::from_str_radix(p, 16).map_err(|_| err())?;
        }
        Ok(MacAddr(octets))
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

impl From<MacAddr> for [u8; 6] {
    fn from(mac: MacAddr) -> Self {
        mac.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in [
            "00:1f:3b:02:44:55",
            "ff:ff:ff:ff:ff:ff",
            "02:00:00:00:00:01",
        ] {
            let mac: MacAddr = s.parse().unwrap();
            assert_eq!(mac.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        for s in [
            "",
            "00:11:22:33:44",
            "00:11:22:33:44:55:66",
            "0g:11:22:33:44:55",
            "001:1:22:33:44:55",
            "00-11-22-33-44-55",
        ] {
            assert!(s.parse::<MacAddr>().is_err(), "accepted {s:?}");
        }
        let e = "zz".parse::<MacAddr>().unwrap_err();
        assert!(e.to_string().contains("invalid MAC address"));
    }

    #[test]
    fn flags() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        let uni = MacAddr::new([0x00, 0x11, 0x22, 0x33, 0x44, 0x55]);
        assert!(!uni.is_broadcast());
        assert!(!uni.is_multicast());
        assert!(!uni.is_locally_administered());
        let local = MacAddr::new([0x02, 0, 0, 0, 0, 1]);
        assert!(local.is_locally_administered());
    }

    #[test]
    fn from_index_is_unique_and_unicast() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            let m = MacAddr::from_index(i);
            assert!(!m.is_multicast());
            assert!(!m.is_locally_administered());
            assert!(seen.insert(m), "duplicate MAC for index {i}");
        }
    }

    #[test]
    fn pseudonyms_differ_per_epoch_and_are_local() {
        let base = MacAddr::from_index(7);
        let p0 = base.pseudonym(0);
        let p1 = base.pseudonym(1);
        assert_ne!(p0, p1);
        assert_ne!(p0, base);
        assert!(p0.is_locally_administered());
        assert!(!p0.is_multicast());
        // Deterministic.
        assert_eq!(base.pseudonym(0), p0);
    }

    #[test]
    fn vendor_lookup() {
        let apple = MacAddr::new([0x00, 0x1B, 0x63, 0xAA, 0xBB, 0xCC]);
        assert_eq!(apple.vendor(), Some("Apple"));
        let intel = MacAddr::new([0x00, 0x13, 0x02, 0x00, 0x00, 0x01]);
        assert_eq!(intel.vendor(), Some("Intel"));
        let unknown = MacAddr::new([0xAC, 0xDE, 0x48, 0x00, 0x00, 0x01]);
        assert_eq!(unknown.vendor(), None);
        // Randomized MACs erase the vendor — the reason fingerprint
        // linking exists.
        assert_eq!(apple.pseudonym(1).vendor(), None);
        assert_eq!(MacAddr::BROADCAST.vendor(), None);
    }

    #[test]
    fn conversions() {
        let octets = [1u8, 2, 3, 4, 5, 6];
        let mac: MacAddr = octets.into();
        let back: [u8; 6] = mac.into();
        assert_eq!(octets, back);
        assert_eq!(mac.octets(), octets);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = MacAddr::new([0, 0, 0, 0, 0, 1]);
        let b = MacAddr::new([0, 0, 0, 0, 1, 0]);
        assert!(a < b);
    }
}
