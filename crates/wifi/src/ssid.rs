//! Service Set Identifiers (network names).
//!
//! Probe requests carry the SSIDs of a mobile's preferred networks —
//! the "implicit identifiers" of Pang et al. that the paper leans on to
//! defeat MAC pseudonyms.

use std::fmt;

/// A validated SSID: 0–32 bytes of UTF-8 (the empty SSID is the
/// wildcard/broadcast SSID used in undirected probe requests).
///
/// # Example
///
/// ```
/// use marauder_wifi::ssid::Ssid;
/// let ssid = Ssid::new("eduroam").unwrap();
/// assert_eq!(ssid.as_str(), "eduroam");
/// assert!(!ssid.is_wildcard());
/// assert!(Ssid::wildcard().is_wildcard());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ssid(String);

/// Error returned when an SSID exceeds the 32-byte 802.11 limit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SsidTooLongError {
    len: usize,
}

impl fmt::Display for SsidTooLongError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ssid is {} bytes, the 802.11 limit is 32", self.len)
    }
}

impl std::error::Error for SsidTooLongError {}

impl Ssid {
    /// Creates an SSID, validating the 32-byte limit.
    ///
    /// # Errors
    ///
    /// Returns [`SsidTooLongError`] when the name exceeds 32 bytes.
    pub fn new(name: impl Into<String>) -> Result<Self, SsidTooLongError> {
        let name = name.into();
        if name.len() > 32 {
            Err(SsidTooLongError { len: name.len() })
        } else {
            Ok(Ssid(name))
        }
    }

    /// The wildcard (zero-length) SSID used in undirected probe requests.
    pub fn wildcard() -> Self {
        Ssid(String::new())
    }

    /// The SSID text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// `true` for the zero-length wildcard SSID.
    pub fn is_wildcard(&self) -> bool {
        self.0.is_empty()
    }

    /// Byte length on the wire.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when zero-length (same as [`is_wildcard`](Self::is_wildcard)).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Ssid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_wildcard() {
            f.write_str("<wildcard>")
        } else {
            f.write_str(&self.0)
        }
    }
}

impl AsRef<str> for Ssid {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl TryFrom<&str> for Ssid {
    type Error = SsidTooLongError;
    fn try_from(s: &str) -> Result<Self, Self::Error> {
        Ssid::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_ssids() {
        assert_eq!(Ssid::new("UML-Guest").unwrap().as_str(), "UML-Guest");
        let max = "x".repeat(32);
        assert!(Ssid::new(max).is_ok());
    }

    #[test]
    fn too_long_rejected() {
        let long = "x".repeat(33);
        let err = Ssid::new(long).unwrap_err();
        assert!(err.to_string().contains("33 bytes"));
    }

    #[test]
    fn wildcard_properties() {
        let w = Ssid::wildcard();
        assert!(w.is_wildcard());
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert_eq!(w.to_string(), "<wildcard>");
        assert_eq!(Ssid::new("").unwrap(), w);
    }

    #[test]
    fn display_and_conversions() {
        let s = Ssid::new("eduroam").unwrap();
        assert_eq!(s.to_string(), "eduroam");
        assert_eq!(s.as_ref(), "eduroam");
        let t: Ssid = "linksys".try_into().unwrap();
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn ordering_and_hashing_usable_in_sets() {
        let mut set = std::collections::BTreeSet::new();
        set.insert(Ssid::new("b").unwrap());
        set.insert(Ssid::new("a").unwrap());
        set.insert(Ssid::new("a").unwrap());
        assert_eq!(set.len(), 2);
        assert_eq!(set.iter().next().unwrap().as_str(), "a");
    }
}
