//! 802.11 substrate for the Marauder's Map reproduction.
//!
//! The attack consumes 802.11 *management* traffic — probe requests
//! broadcast by scanning mobiles and the probe responses they elicit
//! from access points. This crate models exactly the slice of 802.11
//! the paper's sniffing system touches:
//!
//! * [`mac`] / [`ssid`] — identifiers (MAC addresses, network names),
//! * [`channel`] — the 2.4 GHz b/g channel plan with its 22 MHz spectral
//!   overlap, the adjacent-channel decode model verified by the paper's
//!   Fig. 9, and the empirical campus channel mix of Fig. 8,
//! * [`frame`] — management frames with a compact wire codec
//!   (serialization round-trips are property-tested),
//! * [`device`] — access points and mobile stations with per-OS probing
//!   behaviour (active/passive/quiet scanning),
//! * [`sniffer`] — the monitoring rig: one receiver chain split across
//!   several cards, each pinned to a channel or hopping, plus the
//!   capture database the localization algorithms read.
//!
//! # Example
//!
//! ```
//! use marauder_wifi::channel::Channel;
//! use marauder_wifi::frame::{Frame, FrameBody};
//! use marauder_wifi::mac::MacAddr;
//! use marauder_wifi::ssid::Ssid;
//!
//! let probe = Frame::probe_request(
//!     MacAddr::new([0x00, 0x1f, 0x3b, 0x02, 0x44, 0x55]),
//!     Some(Ssid::new("eduroam").unwrap()),
//!     1,
//! );
//! let bytes = probe.encode();
//! let back = Frame::decode(&bytes).unwrap();
//! assert_eq!(probe, back);
//! assert!(matches!(back.body, FrameBody::ProbeRequest { .. }));
//! let _ = Channel::bg(6).unwrap().center_frequency();
//! ```

#![forbid(unsafe_code)]

pub mod active;
pub mod capture_log;
pub mod channel;
pub mod device;
pub mod frame;
pub mod mac;
pub mod sniffer;
pub mod ssid;

pub use active::BaitTransmitter;
pub use channel::{CampusChannelMix, Channel};
pub use device::{AccessPoint, MobileStation, ScanBehavior};
pub use frame::{Frame, FrameBody};
pub use mac::MacAddr;
pub use sniffer::{CaptureDatabase, CapturedFrame, Sniffer, SnifferCard};
pub use ssid::Ssid;
