//! The monitoring rig and its capture database.
//!
//! One receiver chain (antenna → LNA → splitter) feeds several wireless
//! cards; each card either sits on a fixed channel (the paper's final
//! design: three cards on 1/6/11) or hops with a dwell time (the paper's
//! 7-day feasibility capture hopped all channels with a 4 s dwell).
//! Every decoded frame lands in a [`CaptureDatabase`], from which the
//! localization algorithms read each mobile's communicable-AP sets.

use crate::channel::Channel;
use crate::frame::{Frame, FrameBody};
use crate::mac::MacAddr;
use crate::ssid::Ssid;
use marauder_geo::Point;
use marauder_rf::chain::ReceiverChain;
use marauder_rf::link_budget::Transmitter;
use marauder_rf::propagation::PropagationModel;
use marauder_rf::units::Db;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};

/// Channel assignment of one sniffer card.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelPlan {
    /// Pinned to a single channel.
    Fixed(Channel),
    /// Round-robin over `channels`, `dwell_s` seconds each.
    Hopping {
        /// Channels visited in order.
        channels: Vec<Channel>,
        /// Seconds spent on each channel.
        dwell_s: f64,
    },
}

/// One wireless card fed by the shared receiver chain.
#[derive(Debug, Clone, PartialEq)]
pub struct SnifferCard {
    /// Label for logs ("NIC1", …).
    pub name: String,
    /// Channel assignment.
    pub plan: ChannelPlan,
    /// Clock offset versus the rig's NTP-disciplined reference, seconds.
    /// The paper time-synchronizes its three laptops over NTP; the
    /// residual offset skews capture timestamps.
    pub clock_offset_s: f64,
}

impl SnifferCard {
    /// A card pinned to `channel`.
    pub fn fixed(name: impl Into<String>, channel: Channel) -> Self {
        SnifferCard {
            name: name.into(),
            plan: ChannelPlan::Fixed(channel),
            clock_offset_s: 0.0,
        }
    }

    /// A card hopping across `channels` with the given dwell.
    ///
    /// # Panics
    ///
    /// Panics when `channels` is empty or `dwell_s` is not positive.
    pub fn hopping(name: impl Into<String>, channels: Vec<Channel>, dwell_s: f64) -> Self {
        assert!(!channels.is_empty(), "hopping plan needs channels");
        assert!(dwell_s > 0.0, "dwell must be positive, got {dwell_s}");
        SnifferCard {
            name: name.into(),
            plan: ChannelPlan::Hopping { channels, dwell_s },
            clock_offset_s: 0.0,
        }
    }

    /// The channel this card listens on at time `t` (seconds).
    pub fn listening_channel(&self, t: f64) -> Channel {
        match &self.plan {
            ChannelPlan::Fixed(c) => *c,
            ChannelPlan::Hopping { channels, dwell_s } => {
                let slot = ((t / dwell_s).floor() as i64).rem_euclid(channels.len() as i64);
                channels[slot as usize]
            }
        }
    }
}

/// A frame successfully decoded by the rig.
#[derive(Debug, Clone, PartialEq)]
pub struct CapturedFrame {
    /// Capture timestamp (card clock), seconds since scenario start.
    pub time_s: f64,
    /// Index of the capturing card.
    pub card: usize,
    /// The decoded frame.
    pub frame: Frame,
}

/// The monitoring rig: position, shared receiver chain, cards.
#[derive(Debug, Clone)]
pub struct Sniffer {
    position: Point,
    chain: ReceiverChain,
    cards: Vec<SnifferCard>,
    environment_margin: Db,
}

impl Sniffer {
    /// Creates a rig at `position` with the given shared chain.
    ///
    /// `environment_margin` is extra loss applied on top of the
    /// propagation model — set it to zero when the model already includes
    /// environmental attenuation (e.g. log-distance with shadowing).
    pub fn new(position: Point, chain: ReceiverChain, environment_margin: Db) -> Self {
        Sniffer {
            position,
            chain,
            cards: Vec::new(),
            environment_margin,
        }
    }

    /// The paper's final rig: three cards pinned to channels 1/6/11.
    ///
    /// # Panics
    ///
    /// Panics if the chain's splitter provides fewer than 3 threads.
    pub fn three_card_rig(position: Point, chain: ReceiverChain, environment_margin: Db) -> Self {
        let mut s = Sniffer::new(position, chain, environment_margin);
        for (i, ch) in Channel::non_overlapping_bg().into_iter().enumerate() {
            s.add_card(SnifferCard::fixed(format!("NIC{}", ch.number()), ch));
            debug_assert!(i < 3);
        }
        s
    }

    /// Adds a card.
    ///
    /// # Panics
    ///
    /// Panics when the chain has no free signal thread left.
    pub fn add_card(&mut self, card: SnifferCard) {
        assert!(
            self.cards.len() < self.chain.threads() as usize,
            "chain provides {} threads, cannot attach card #{}",
            self.chain.threads(),
            self.cards.len() + 1
        );
        self.cards.push(card);
    }

    /// Rig position.
    pub fn position(&self) -> Point {
        self.position
    }

    /// The shared receiver chain.
    pub fn chain(&self) -> &ReceiverChain {
        &self.chain
    }

    /// The attached cards.
    pub fn cards(&self) -> &[SnifferCard] {
        &self.cards
    }

    /// Attempts to capture a frame transmitted by `tx` from `tx_pos` at
    /// time `t`. Returns the captured record when (a) the link budget
    /// closes and (b) some card is on a channel that decodes the frame's
    /// channel (adjacent-channel decoding is nearly impossible, per
    /// Fig. 9 — the roll of `rng` decides the residual cases).
    pub fn observe<R: Rng + ?Sized>(
        &self,
        tx_pos: Point,
        tx: &Transmitter,
        frame: &Frame,
        t: f64,
        model: &dyn PropagationModel,
        rng: &mut R,
    ) -> Option<CapturedFrame> {
        let loss = model.path_loss(tx_pos, self.position, frame.channel.center_frequency())
            + self.environment_margin;
        if !self.chain.decodes_via(tx, loss) {
            return None;
        }
        for (i, card) in self.cards.iter().enumerate() {
            let listening = card.listening_channel(t + card.clock_offset_s);
            let p = listening.decode_probability(frame.channel);
            if p > 0.0 && rng.gen_range(0.0..1.0) < p {
                return Some(CapturedFrame {
                    time_s: t + card.clock_offset_s,
                    card: i,
                    frame: frame.clone(),
                });
            }
        }
        None
    }
}

/// Maps a capture timestamp to its observation-window index.
///
/// Windows are **half-open**: window `k` covers
/// `[k·window_s, (k+1)·window_s)`, so a frame at exactly
/// `t == (k+1)·window_s` belongs to window `k + 1`, never to window
/// `k`. Negative timestamps (cards with negative clock offsets) fall
/// into negative window indices under the same convention.
///
/// Every consumer of windowed observations — the batch pipeline
/// ([`CaptureDatabase::observation_sets`]) and the streaming engine
/// (`marauder-stream`) — must share this function; the convention is
/// pinned by regression tests on both paths.
///
/// # Panics
///
/// Panics when `window_s` is not positive.
pub fn window_index(time_s: f64, window_s: f64) -> i64 {
    assert!(window_s > 0.0, "window must be positive, got {window_s}");
    (time_s / window_s).floor() as i64
}

/// The start time of window `window` — the inverse of
/// [`window_index`] on window boundaries. Computed exactly as
/// `window as f64 * window_s` so batch and streaming paths produce
/// bit-identical `window_start_s` values.
pub fn window_start(window: i64, window_s: f64) -> f64 {
    window as f64 * window_s
}

/// The capture database the localization component reads (paper Fig. 1's
/// "wireless traffic capture" store).
#[derive(Debug, Clone, Default)]
pub struct CaptureDatabase {
    records: Vec<CapturedFrame>,
}

impl CaptureDatabase {
    /// An empty database.
    pub fn new() -> Self {
        CaptureDatabase::default()
    }

    /// Stores a capture.
    pub fn push(&mut self, rec: CapturedFrame) {
        self.records.push(rec);
    }

    /// Number of captures.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All captures in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &CapturedFrame> {
        self.records.iter()
    }

    /// Every distinct mobile seen: sources of probe requests plus
    /// destinations of probe responses (broadcast excluded).
    pub fn mobiles(&self) -> BTreeSet<MacAddr> {
        let mut out = BTreeSet::new();
        for r in &self.records {
            match r.frame.body {
                FrameBody::ProbeRequest { .. }
                | FrameBody::AssociationRequest { .. }
                | FrameBody::Authentication { .. } => {
                    // Station-originated (auth can be either direction;
                    // stations are the non-BSSID endpoint).
                    if r.frame.src != r.frame.bssid {
                        out.insert(r.frame.src);
                    }
                }
                FrameBody::ProbeResponse { .. } => {
                    if !r.frame.dst.is_broadcast() {
                        out.insert(r.frame.dst);
                    }
                }
                FrameBody::Beacon { .. } => {}
            }
        }
        out
    }

    /// Mobiles that sent at least one probe request (the paper's
    /// "probing mobiles", Figs. 10–11).
    pub fn probing_mobiles(&self) -> BTreeSet<MacAddr> {
        self.records
            .iter()
            .filter(|r| r.frame.is_probe_request())
            .map(|r| r.frame.src)
            .collect()
    }

    /// Every distinct AP seen (sources of beacons and probe responses).
    pub fn access_points(&self) -> BTreeSet<MacAddr> {
        self.records
            .iter()
            .filter(|r| !r.frame.is_probe_request())
            .map(|r| r.frame.bssid)
            .collect()
    }

    /// The set of APs observed communicating with `mobile` over the whole
    /// capture — the `Γ` input to M-Loc.
    pub fn communicable_aps(&self, mobile: MacAddr) -> BTreeSet<MacAddr> {
        self.records
            .iter()
            .filter(|r| r.frame.is_probe_response() && r.frame.dst == mobile)
            .map(|r| r.frame.bssid)
            .collect()
    }

    /// The set of APs observed communicating with `mobile` within
    /// `[t0, t1)` — used when tracking a moving target.
    pub fn communicable_aps_in_window(
        &self,
        mobile: MacAddr,
        t0: f64,
        t1: f64,
    ) -> BTreeSet<MacAddr> {
        self.records
            .iter()
            .filter(|r| {
                r.frame.is_probe_response()
                    && r.frame.dst == mobile
                    && r.time_s >= t0
                    && r.time_s < t1
            })
            .map(|r| r.frame.bssid)
            .collect()
    }

    /// Splits the capture into fixed windows and returns, per mobile and
    /// window, the observed communicable-AP set. These are the `Γ_k`
    /// snapshots AP-Rad builds its LP constraints from.
    ///
    /// Window boundaries follow the half-open convention of
    /// [`window_index`]: a frame at exactly `t == (k+1)·window_s`
    /// lands in window `k + 1`.
    pub fn observation_sets(&self, window_s: f64) -> Vec<ObservationSet> {
        assert!(window_s > 0.0, "window must be positive, got {window_s}");
        let mut grouped: BTreeMap<(MacAddr, i64), BTreeSet<MacAddr>> = BTreeMap::new();
        for r in &self.records {
            if let FrameBody::ProbeResponse { .. } = r.frame.body {
                if r.frame.dst.is_broadcast() {
                    continue;
                }
                let w = window_index(r.time_s, window_s);
                grouped
                    .entry((r.frame.dst, w))
                    .or_default()
                    .insert(r.frame.bssid);
            }
        }
        grouped
            .into_iter()
            .map(|((mobile, w), aps)| ObservationSet {
                mobile,
                window_start_s: window_start(w, window_s),
                aps,
            })
            .collect()
    }

    /// Failure injection: returns a copy where each capture survives
    /// with probability `keep`. Models card resets, bus overruns and
    /// driver drops — the attack must degrade gracefully, not collapse.
    ///
    /// # Panics
    ///
    /// Panics for `keep` outside `[0, 1]`.
    pub fn subsample<R: Rng + ?Sized>(&self, keep: f64, rng: &mut R) -> CaptureDatabase {
        assert!(
            (0.0..=1.0).contains(&keep),
            "keep probability must be in [0, 1], got {keep}"
        );
        self.records
            .iter()
            .filter(|_| rng.gen_range(0.0..1.0) < keep)
            .cloned()
            .collect()
    }

    /// The SSIDs a mobile's directed probes revealed — the implicit
    /// identifiers of Pang et al. used to re-link pseudonym MACs.
    pub fn ssids_probed_by(&self, mobile: MacAddr) -> BTreeSet<Ssid> {
        self.records
            .iter()
            .filter(|r| r.frame.src == mobile)
            .filter_map(|r| match &r.frame.body {
                FrameBody::ProbeRequest { ssid: Some(s) } => Some(s.clone()),
                _ => None,
            })
            .collect()
    }
}

impl Extend<CapturedFrame> for CaptureDatabase {
    fn extend<T: IntoIterator<Item = CapturedFrame>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

impl FromIterator<CapturedFrame> for CaptureDatabase {
    fn from_iter<T: IntoIterator<Item = CapturedFrame>>(iter: T) -> Self {
        CaptureDatabase {
            records: iter.into_iter().collect(),
        }
    }
}

/// One mobile's communicable-AP snapshot in one time window.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservationSet {
    /// The mobile this snapshot belongs to.
    pub mobile: MacAddr,
    /// Window start time, seconds.
    pub window_start_s: f64,
    /// BSSIDs observed responding to the mobile in the window.
    pub aps: BTreeSet<MacAddr>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use marauder_rf::components;
    use marauder_rf::propagation::FreeSpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_chain() -> ReceiverChain {
        ReceiverChain::builder()
            .antenna(components::HYPERLINK_HG2415U)
            .lna(components::RF_LAMBDA_LNA)
            .splitter(components::HYPERLINK_SPLITTER_4WAY)
            .nic(components::UBIQUITI_SRC)
            .build()
    }

    fn mobile_tx() -> Transmitter {
        components::typical_mobile_tx()
    }

    fn ch(n: u8) -> Channel {
        Channel::bg(n).unwrap()
    }

    fn mac(i: u64) -> MacAddr {
        MacAddr::from_index(i)
    }

    #[test]
    fn fixed_card_channel_is_constant() {
        let card = SnifferCard::fixed("NIC6", ch(6));
        assert_eq!(card.listening_channel(0.0), ch(6));
        assert_eq!(card.listening_channel(1e6), ch(6));
    }

    #[test]
    fn hopping_card_cycles_with_dwell() {
        let card = SnifferCard::hopping("hopper", vec![ch(1), ch(6), ch(11)], 4.0);
        assert_eq!(card.listening_channel(0.0), ch(1));
        assert_eq!(card.listening_channel(4.5), ch(6));
        assert_eq!(card.listening_channel(8.1), ch(11));
        assert_eq!(card.listening_channel(12.0), ch(1)); // wraps
        assert_eq!(card.listening_channel(-0.5), ch(11)); // negative times wrap too
    }

    #[test]
    #[should_panic(expected = "needs channels")]
    fn empty_hopping_plan_panics() {
        let _ = SnifferCard::hopping("bad", vec![], 4.0);
    }

    #[test]
    #[should_panic(expected = "threads")]
    fn too_many_cards_panics() {
        // Chain without splitter provides one thread.
        let chain = ReceiverChain::builder()
            .nic(components::UBIQUITI_SRC)
            .build();
        let mut s = Sniffer::new(Point::ORIGIN, chain, Db::new(0.0));
        s.add_card(SnifferCard::fixed("a", ch(1)));
        s.add_card(SnifferCard::fixed("b", ch(6)));
    }

    #[test]
    fn three_card_rig_listens_on_1_6_11() {
        let s = Sniffer::three_card_rig(Point::ORIGIN, test_chain(), Db::new(21.0));
        let chans: Vec<u8> = s
            .cards()
            .iter()
            .map(|c| c.listening_channel(0.0).number())
            .collect();
        assert_eq!(chans, vec![1, 6, 11]);
    }

    #[test]
    fn observe_captures_in_range_on_matching_channel() {
        let s = Sniffer::three_card_rig(Point::ORIGIN, test_chain(), Db::new(21.0));
        let mut rng = StdRng::seed_from_u64(1);
        let f = Frame::probe_request(mac(1), None, 6);
        let got = s.observe(
            Point::new(300.0, 0.0),
            &mobile_tx(),
            &f,
            10.0,
            &FreeSpace,
            &mut rng,
        );
        let rec = got.expect("in range on ch6 should capture");
        assert_eq!(rec.frame, f);
        assert_eq!(rec.card, 1); // NIC6
    }

    #[test]
    fn observe_misses_out_of_range() {
        let s = Sniffer::three_card_rig(Point::ORIGIN, test_chain(), Db::new(21.0));
        let mut rng = StdRng::seed_from_u64(1);
        let f = Frame::probe_request(mac(1), None, 6);
        let got = s.observe(
            Point::new(50_000.0, 0.0),
            &mobile_tx(),
            &f,
            10.0,
            &FreeSpace,
            &mut rng,
        );
        assert!(got.is_none());
    }

    #[test]
    fn observe_rarely_captures_neighbor_channels() {
        // Fig. 9: a frame on channel 4 is almost never decoded by cards
        // on 1/6/11 (distance 2 and 3).
        let s = Sniffer::three_card_rig(Point::ORIGIN, test_chain(), Db::new(21.0));
        let mut rng = StdRng::seed_from_u64(7);
        let f = Frame::probe_request(mac(1), None, 4);
        let mut hits = 0;
        let n = 2000;
        for k in 0..n {
            if s.observe(
                Point::new(200.0, 0.0),
                &mobile_tx(),
                &f,
                k as f64,
                &FreeSpace,
                &mut rng,
            )
            .is_some()
            {
                hits += 1;
            }
        }
        let rate = hits as f64 / n as f64;
        assert!(rate < 0.02, "neighbor-channel capture rate {rate}");
    }

    fn sample_db() -> CaptureDatabase {
        let mut db = CaptureDatabase::new();
        let m1 = mac(1);
        let m2 = mac(2);
        let ap1 = mac(100);
        let ap2 = mac(101);
        let ssid = |s: &str| Ssid::new(s).unwrap();
        db.push(CapturedFrame {
            time_s: 0.0,
            card: 0,
            frame: Frame::probe_request(m1, Some(ssid("home")), 1),
        });
        db.push(CapturedFrame {
            time_s: 0.1,
            card: 0,
            frame: Frame::probe_response(ap1, m1, ssid("net1"), ch(1)),
        });
        db.push(CapturedFrame {
            time_s: 0.2,
            card: 1,
            frame: Frame::probe_response(ap2, m1, ssid("net2"), ch(6)),
        });
        db.push(CapturedFrame {
            time_s: 35.0,
            card: 1,
            frame: Frame::probe_response(ap2, m2, ssid("net2"), ch(6)),
        });
        db.push(CapturedFrame {
            time_s: 40.0,
            card: 2,
            frame: Frame::beacon(ap1, ssid("net1"), ch(11), 100),
        });
        db
    }

    #[test]
    fn database_queries() {
        let db = sample_db();
        assert_eq!(db.len(), 5);
        assert!(!db.is_empty());
        assert_eq!(db.mobiles().len(), 2);
        assert_eq!(db.probing_mobiles().len(), 1);
        assert!(db.probing_mobiles().contains(&mac(1)));
        assert_eq!(db.access_points().len(), 2);
        let aps = db.communicable_aps(mac(1));
        assert_eq!(aps.len(), 2);
        assert!(aps.contains(&mac(100)) && aps.contains(&mac(101)));
        assert_eq!(db.communicable_aps(mac(2)).len(), 1);
        assert_eq!(db.communicable_aps(mac(99)).len(), 0);
    }

    #[test]
    fn windowed_queries() {
        let db = sample_db();
        let w = db.communicable_aps_in_window(mac(1), 0.0, 0.15);
        assert_eq!(w.len(), 1);
        let sets = db.observation_sets(30.0);
        // m1 in window 0 (two APs), m2 in window 1 (one AP).
        assert_eq!(sets.len(), 2);
        let s1 = sets.iter().find(|s| s.mobile == mac(1)).unwrap();
        assert_eq!(s1.aps.len(), 2);
        assert_eq!(s1.window_start_s, 0.0);
        let s2 = sets.iter().find(|s| s.mobile == mac(2)).unwrap();
        assert_eq!(s2.aps.len(), 1);
        assert_eq!(s2.window_start_s, 30.0);
    }

    #[test]
    fn window_index_is_half_open() {
        // Window k covers [k*w, (k+1)*w): the boundary instant belongs
        // to the *next* window.
        assert_eq!(window_index(0.0, 30.0), 0);
        assert_eq!(window_index(29.999_999, 30.0), 0);
        assert_eq!(window_index(30.0, 30.0), 1);
        assert_eq!(window_index(59.999, 30.0), 1);
        assert_eq!(window_index(60.0, 30.0), 2);
        // Negative times: same convention, negative indices.
        assert_eq!(window_index(-0.001, 30.0), -1);
        assert_eq!(window_index(-30.0, 30.0), -1);
        assert_eq!(window_index(-30.001, 30.0), -2);
        // window_start inverts window_index on boundaries.
        assert_eq!(window_start(1, 30.0), 30.0);
        assert_eq!(window_start(-1, 30.0), -30.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn window_index_rejects_zero_window() {
        let _ = window_index(1.0, 0.0);
    }

    #[test]
    fn observation_sets_respect_half_open_boundary() {
        // Regression for the batch path: a probe response at exactly
        // t == window_end must open a new window, not extend the old
        // one. The streaming engine pins the same case on its side.
        let ssid = |s: &str| Ssid::new(s).unwrap();
        let mut db = CaptureDatabase::new();
        db.push(CapturedFrame {
            time_s: 0.0,
            card: 0,
            frame: Frame::probe_response(mac(100), mac(1), ssid("a"), ch(1)),
        });
        db.push(CapturedFrame {
            time_s: 30.0, // exactly the end of window 0
            card: 0,
            frame: Frame::probe_response(mac(101), mac(1), ssid("b"), ch(6)),
        });
        let sets = db.observation_sets(30.0);
        assert_eq!(sets.len(), 2, "boundary frame must open window 1");
        assert_eq!(sets[0].window_start_s, 0.0);
        assert_eq!(sets[0].aps, [mac(100)].into_iter().collect());
        assert_eq!(sets[1].window_start_s, 30.0);
        assert_eq!(sets[1].aps, [mac(101)].into_iter().collect());
    }

    #[test]
    fn ssid_leakage() {
        let db = sample_db();
        let ssids = db.ssids_probed_by(mac(1));
        assert_eq!(ssids.len(), 1);
        assert!(ssids.contains(&Ssid::new("home").unwrap()));
        assert!(db.ssids_probed_by(mac(2)).is_empty());
    }

    #[test]
    fn collect_and_extend() {
        let db = sample_db();
        let mut db2: CaptureDatabase = db.iter().cloned().collect();
        db2.extend(db.iter().cloned());
        assert_eq!(db2.len(), 10);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = sample_db().observation_sets(0.0);
    }

    #[test]
    fn subsample_rates() {
        let mut big = CaptureDatabase::new();
        for k in 0..2000 {
            big.push(CapturedFrame {
                time_s: k as f64,
                card: 0,
                frame: Frame::probe_request(mac(1), None, 6),
            });
        }
        let mut rng = StdRng::seed_from_u64(3);
        let half = big.subsample(0.5, &mut rng);
        assert!(
            (half.len() as f64 - 1000.0).abs() < 100.0,
            "kept {}",
            half.len()
        );
        assert_eq!(big.subsample(1.0, &mut rng).len(), 2000);
        assert_eq!(big.subsample(0.0, &mut rng).len(), 0);
    }

    #[test]
    #[should_panic(expected = "keep probability")]
    fn bad_subsample_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = sample_db().subsample(1.5, &mut rng);
    }
}
