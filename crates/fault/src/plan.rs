//! Composable fault plans.
//!
//! A [`FaultPlan`] is an ordered list of [`Fault`]s; the injector
//! applies them left to right, each with its own deterministic RNG
//! stream. Plans have a canonical text spec (`drop:0.2,reorder:5`)
//! shared by the `marauder chaos` CLI and the degradation report, so a
//! cell in the fault matrix can be reproduced from its label alone.

use std::fmt;

/// One fault to inject into a frame stream.
///
/// Faults model the failure modes of a real sniffing rig: lossy
/// capture paths, rig clock trouble, radio damage, and operational
/// outages (an AP rebooting, a card wedging, a log cut short).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Uniform frame loss: each frame dropped independently with
    /// probability `p`.
    Drop {
        /// Per-frame drop probability in `[0, 1]`.
        p: f64,
    },
    /// Bursty loss (Gilbert–Elliott): a two-state Markov chain enters
    /// the lossy state with `p_enter` per frame and leaves it with
    /// `p_exit`; every frame seen in the lossy state is dropped.
    Burst {
        /// Good → bad transition probability per frame.
        p_enter: f64,
        /// Bad → good transition probability per frame.
        p_exit: f64,
    },
    /// Frame duplication: each frame repeated once with probability
    /// `p` (capture stacks double-deliver under load).
    Duplicate {
        /// Per-frame duplication probability in `[0, 1]`.
        p: f64,
    },
    /// Bounded reordering: each frame is displaced by a uniform random
    /// amount up to `depth` positions (stable, so bounded — no frame
    /// moves further than `depth` slots from its neighbors).
    Reorder {
        /// Maximum displacement in positions.
        depth: usize,
    },
    /// Per-frame timestamp jitter: Gaussian noise with standard
    /// deviation `sigma_s` seconds added to every timestamp.
    Jitter {
        /// Jitter standard deviation, seconds.
        sigma_s: f64,
    },
    /// Clock skew: one randomly chosen capture card's frames are all
    /// shifted by `offset_s` seconds (a rig card with a drifted clock).
    Skew {
        /// Constant timestamp offset, seconds.
        offset_s: f64,
    },
    /// MAC corruption: with probability `p` per frame, one random bit
    /// of one of the frame's three addresses is flipped — the bssid of
    /// a response becomes an AP the attacker has never heard of.
    BitFlip {
        /// Per-frame corruption probability in `[0, 1]`.
        p: f64,
    },
    /// AP flapping: one randomly chosen AP goes silent for a span of
    /// `outage_s` seconds starting at a random time (reboot, power
    /// cycle); its frames in that span vanish.
    ApFlap {
        /// Outage length, seconds.
        outage_s: f64,
    },
    /// Sniffer-card dropout: one randomly chosen capture card goes
    /// dark for `outage_s` seconds — every channel that card watched
    /// is silent for the span.
    CardDropout {
        /// Outage length, seconds.
        outage_s: f64,
    },
    /// Mid-stream log truncation: the final `fraction` of the frames
    /// never make it to disk (sniffer killed mid-campaign).
    Truncate {
        /// Fraction of trailing frames cut, in `[0, 1]`.
        fraction: f64,
    },
    /// Process kill at an exact frame boundary: ingestion stops after
    /// `after_frames` frames. Unlike [`Truncate`](Fault::Truncate)
    /// this is positional, not fractional — the crash-equivalence
    /// sweep drives it across every boundary in a scenario.
    Crash {
        /// Frames ingested before the kill.
        after_frames: usize,
    },
    /// Torn write: the process dies mid-append, leaving a partial
    /// final record — `bytes` bytes of it made it to disk. On a frame
    /// stream this loses the final frame; against a journal it tears
    /// the last record `bytes` into its header/payload.
    TornWrite {
        /// Bytes of the final record that reached disk (≥ 1).
        bytes: usize,
    },
}

impl Fault {
    /// The fault's spec keyword.
    pub fn name(self) -> &'static str {
        match self {
            Fault::Drop { .. } => "drop",
            Fault::Burst { .. } => "burst",
            Fault::Duplicate { .. } => "dup",
            Fault::Reorder { .. } => "reorder",
            Fault::Jitter { .. } => "jitter",
            Fault::Skew { .. } => "skew",
            Fault::BitFlip { .. } => "bitflip",
            Fault::ApFlap { .. } => "apflap",
            Fault::CardDropout { .. } => "carddrop",
            Fault::Truncate { .. } => "truncate",
            Fault::Crash { .. } => "crash",
            Fault::TornWrite { .. } => "tornwrite",
        }
    }

    /// Validates the fault's parameters.
    fn validate(self) -> Result<Self, PlanParseError> {
        let bad = |what: &str| {
            Err(PlanParseError {
                spec: self.to_string(),
                reason: what.to_string(),
            })
        };
        let prob_ok = |p: f64| (0.0..=1.0).contains(&p);
        match self {
            Fault::Drop { p } | Fault::Duplicate { p } | Fault::BitFlip { p } if !prob_ok(p) => {
                bad("probability must be in [0, 1]")
            }
            Fault::Burst { p_enter, p_exit } if !(prob_ok(p_enter) && prob_ok(p_exit)) => {
                bad("transition probabilities must be in [0, 1]")
            }
            Fault::Truncate { fraction } if !prob_ok(fraction) => bad("fraction must be in [0, 1]"),
            Fault::Jitter { sigma_s } if !(sigma_s.is_finite() && sigma_s >= 0.0) => {
                bad("sigma must be finite and non-negative")
            }
            Fault::Skew { offset_s } if !offset_s.is_finite() => bad("offset must be finite"),
            Fault::ApFlap { outage_s } | Fault::CardDropout { outage_s }
                if !(outage_s.is_finite() && outage_s >= 0.0) =>
            {
                bad("outage must be finite and non-negative")
            }
            Fault::TornWrite { bytes: 0 } => bad("a torn write leaves at least 1 byte behind"),
            f => Ok(f),
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Fault::Drop { p } => write!(f, "drop:{p}"),
            Fault::Burst { p_enter, p_exit } => write!(f, "burst:{p_enter}:{p_exit}"),
            Fault::Duplicate { p } => write!(f, "dup:{p}"),
            Fault::Reorder { depth } => write!(f, "reorder:{depth}"),
            Fault::Jitter { sigma_s } => write!(f, "jitter:{sigma_s}"),
            Fault::Skew { offset_s } => write!(f, "skew:{offset_s}"),
            Fault::BitFlip { p } => write!(f, "bitflip:{p}"),
            Fault::ApFlap { outage_s } => write!(f, "apflap:{outage_s}"),
            Fault::CardDropout { outage_s } => write!(f, "carddrop:{outage_s}"),
            Fault::Truncate { fraction } => write!(f, "truncate:{fraction}"),
            Fault::Crash { after_frames } => write!(f, "crash:{after_frames}"),
            Fault::TornWrite { bytes } => write!(f, "tornwrite:{bytes}"),
        }
    }
}

/// Error returned for an unparsable or out-of-range fault spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    /// The offending spec fragment.
    pub spec: String,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault spec {:?}: {}", self.spec, self.reason)
    }
}

impl std::error::Error for PlanParseError {}

/// An ordered list of faults, applied left to right.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// The faults, in application order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan with no faults: the injector passes frames through
    /// unchanged.
    pub fn clean() -> Self {
        FaultPlan::default()
    }

    /// A single-fault plan.
    pub fn single(fault: Fault) -> Self {
        FaultPlan {
            faults: vec![fault],
        }
    }

    /// Parses the comma-separated spec syntax, e.g.
    /// `drop:0.2,reorder:5` or `burst:0.05:0.3,jitter:1.5`.
    ///
    /// # Errors
    ///
    /// [`PlanParseError`] naming the first fragment that is unknown,
    /// malformed, or out of range.
    pub fn parse(spec: &str) -> Result<FaultPlan, PlanParseError> {
        let mut faults = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            // "clean" is the canonical label of the empty plan (it is
            // what `Display` prints), so it round-trips too.
            if part.is_empty() || part == "clean" {
                continue;
            }
            faults.push(parse_fault(part)?);
        }
        Ok(FaultPlan { faults })
    }

    /// The canonical spec string; `parse(plan.spec())` round-trips.
    pub fn spec(&self) -> String {
        let parts: Vec<String> = self.faults.iter().map(Fault::to_string).collect();
        parts.join(",")
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.faults.is_empty() {
            f.write_str("clean")
        } else {
            f.write_str(&self.spec())
        }
    }
}

fn parse_fault(part: &str) -> Result<Fault, PlanParseError> {
    let fail = |reason: &str| PlanParseError {
        spec: part.to_string(),
        reason: reason.to_string(),
    };
    let fields: Vec<&str> = part.split(':').collect();
    let arity = |n: usize| -> Result<(), PlanParseError> {
        if fields.len() == 1 + n {
            Ok(())
        } else {
            Err(fail(&format!("takes {n} parameter(s)")))
        }
    };
    let num = |s: &str| -> Result<f64, PlanParseError> {
        s.parse::<f64>()
            .map_err(|e| fail(&format!("bad number {s:?}: {e}")))
    };
    let fault = match fields[0] {
        "drop" => {
            arity(1)?;
            Fault::Drop { p: num(fields[1])? }
        }
        "burst" => {
            arity(2)?;
            Fault::Burst {
                p_enter: num(fields[1])?,
                p_exit: num(fields[2])?,
            }
        }
        "dup" => {
            arity(1)?;
            Fault::Duplicate { p: num(fields[1])? }
        }
        "reorder" => {
            arity(1)?;
            Fault::Reorder {
                depth: fields[1]
                    .parse::<usize>()
                    .map_err(|e| fail(&format!("bad depth {:?}: {e}", fields[1])))?,
            }
        }
        "jitter" => {
            arity(1)?;
            Fault::Jitter {
                sigma_s: num(fields[1])?,
            }
        }
        "skew" => {
            arity(1)?;
            Fault::Skew {
                offset_s: num(fields[1])?,
            }
        }
        "bitflip" => {
            arity(1)?;
            Fault::BitFlip { p: num(fields[1])? }
        }
        "apflap" => {
            arity(1)?;
            Fault::ApFlap {
                outage_s: num(fields[1])?,
            }
        }
        "carddrop" => {
            arity(1)?;
            Fault::CardDropout {
                outage_s: num(fields[1])?,
            }
        }
        "truncate" => {
            arity(1)?;
            Fault::Truncate {
                fraction: num(fields[1])?,
            }
        }
        "crash" => {
            arity(1)?;
            Fault::Crash {
                after_frames: fields[1]
                    .parse::<usize>()
                    .map_err(|e| fail(&format!("bad frame count {:?}: {e}", fields[1])))?,
            }
        }
        "tornwrite" => {
            arity(1)?;
            Fault::TornWrite {
                bytes: fields[1]
                    .parse::<usize>()
                    .map_err(|e| fail(&format!("bad byte count {:?}: {e}", fields[1])))?,
            }
        }
        other => return Err(fail(&format!("unknown fault {other:?}"))),
    };
    fault.validate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_the_canonical_spec() {
        let plan = FaultPlan::parse("drop:0.2, reorder:5,burst:0.05:0.3,jitter:1.5").unwrap();
        assert_eq!(plan.faults.len(), 4);
        assert_eq!(plan.faults[0], Fault::Drop { p: 0.2 });
        assert_eq!(plan.faults[1], Fault::Reorder { depth: 5 });
        let back = FaultPlan::parse(&plan.spec()).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn every_fault_kind_round_trips() {
        let spec = "drop:0.1,burst:0.05:0.3,dup:0.2,reorder:8,jitter:0.5,\
                    skew:-2.5,bitflip:0.1,apflap:120,carddrop:60,truncate:0.25,\
                    crash:100,tornwrite:3";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.faults.len(), 12);
        assert_eq!(FaultPlan::parse(&plan.spec()).unwrap(), plan);
    }

    #[test]
    fn rejects_unknown_and_out_of_range() {
        assert!(FaultPlan::parse("explode:1").is_err());
        assert!(FaultPlan::parse("drop:1.5").is_err());
        assert!(FaultPlan::parse("drop:-0.1").is_err());
        assert!(FaultPlan::parse("drop:abc").is_err());
        assert!(FaultPlan::parse("drop:0.1:0.2").is_err());
        assert!(FaultPlan::parse("burst:0.1").is_err());
        assert!(FaultPlan::parse("jitter:-1").is_err());
        assert!(FaultPlan::parse("jitter:inf").is_err());
        assert!(FaultPlan::parse("truncate:2").is_err());
        assert!(FaultPlan::parse("crash:1.5").is_err());
        assert!(FaultPlan::parse("crash:-1").is_err());
        assert!(FaultPlan::parse("tornwrite:0").is_err());
        let e = FaultPlan::parse("drop:nope").unwrap_err();
        assert!(e.to_string().contains("drop:nope"), "{e}");
    }

    #[test]
    fn empty_spec_is_clean() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::clean());
        assert_eq!(FaultPlan::clean().to_string(), "clean");
        // The Display label round-trips like any other spec.
        assert_eq!(FaultPlan::parse("clean").unwrap(), FaultPlan::clean());
    }
}
