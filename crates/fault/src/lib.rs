//! Deterministic fault injection and the graceful-degradation harness.
//!
//! A real Marauder's Map rig lives in a hostile world: sniffer cards
//! drop frames in bursts, cheap clocks skew and jitter, RF corruption
//! flips MAC bits, APs reboot mid-capture, and logs get truncated when
//! a disk fills. The paper evaluates the attack on clean captures; this
//! crate measures how it *fails* — and how far the degradation ladder
//! in `marauder-core` bends before it breaks.
//!
//! Three pieces:
//!
//! * [`plan`] — a composable, parseable fault plan
//!   (`"drop:0.2,reorder:5"`) covering twelve fault classes,
//! * [`inject`] — [`FaultInjector`], a pure function of
//!   `(seed, plan, frames)`: identical inputs yield byte-identical
//!   corrupted streams on any machine at any thread count,
//! * [`harness`] — [`ChaosScenario`] runs the full attack pipeline
//!   over a fault matrix and emits a [`DegradationReport`] accounting
//!   for 100% of windows and devices (fixed + degraded + lost = total),
//!   with typed loss reasons and per-rung fix provenance.
//!
//! The chaos invariants (`tests/chaos.rs`): no panic anywhere in the
//! matrix; bit-identical reports for identical seeds at any thread
//! count; and losses only ever for the one unrecoverable reason
//! (no observed AP known to the attacker).
//!
//! A fourth piece, [`crash`], attacks durability instead of the
//! radio path: [`crash_sweep`] kills ingestion at every frame
//! boundary (`crash:N`), tears final journal records mid-append
//! (`tornwrite:K`), and requires recovery + resume to reproduce the
//! clean run's fixes byte for byte.

#![forbid(unsafe_code)]

pub mod client;
pub mod crash;
pub mod harness;
pub mod inject;
pub mod plan;

pub use client::{client_schedule, ClientFaultKind, ClientSchedule, Expectation, BASE_REQUEST};
pub use crash::{
    crash_sweep, render_fixes, tear_last_record, tear_segment_header, CrashCell, CrashReport,
    CrashSweepConfig, SweepError, TornOutcome,
};
pub use harness::{
    default_matrix, reason_key, CellOutcome, ChaosScenario, DegradationReport, ERROR_THRESHOLDS_M,
};
pub use inject::{CorruptedStream, FaultCounts, FaultInjector};
pub use plan::{Fault, FaultPlan, PlanParseError};
