//! Deterministic fault injection over captured-frame streams.
//!
//! [`FaultInjector::corrupt`] is a pure, sequential function of
//! `(seed, plan, frames)`: every fault draws from its own RNG stream
//! (sub-seeded by position in the plan), so identical inputs yield a
//! byte-identical corrupted stream on any machine at any thread count,
//! and removing one fault from a plan does not perturb the streams of
//! the others.

use crate::plan::{Fault, FaultPlan};
use marauder_wifi::mac::MacAddr;
use marauder_wifi::sniffer::CapturedFrame;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// How many frames each fault class touched — the injector's ground
/// truth for the degradation report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Frames removed by uniform loss.
    pub dropped: usize,
    /// Frames removed by bursty (Gilbert–Elliott) loss.
    pub burst_dropped: usize,
    /// Extra copies inserted by duplication.
    pub duplicated: usize,
    /// Frames whose stream position changed under reordering.
    pub reordered: usize,
    /// Frames whose timestamp was jittered.
    pub jittered: usize,
    /// Frames shifted by clock skew.
    pub skewed: usize,
    /// Frames with a flipped MAC bit.
    pub bit_flipped: usize,
    /// Frames removed by an AP outage.
    pub ap_flapped: usize,
    /// Frames removed by a card outage.
    pub card_dark: usize,
    /// Frames cut by log truncation.
    pub truncated: usize,
}

impl FaultCounts {
    /// Total frames removed from the stream.
    pub fn removed(&self) -> usize {
        self.dropped + self.burst_dropped + self.ap_flapped + self.card_dark + self.truncated
    }
}

/// A corrupted frame stream plus the injection bookkeeping.
#[derive(Debug, Clone)]
pub struct CorruptedStream {
    /// The surviving (and possibly duplicated/reordered/mutated)
    /// frames, in corrupted stream order.
    pub frames: Vec<CapturedFrame>,
    /// Per-fault-class touch counts.
    pub counts: FaultCounts,
}

/// Applies a [`FaultPlan`] to frame streams deterministically.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    seed: u64,
    plan: FaultPlan,
}

impl FaultInjector {
    /// An injector for `(seed, plan)`.
    pub fn new(seed: u64, plan: FaultPlan) -> Self {
        FaultInjector { seed, plan }
    }

    /// The plan in use.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Corrupts a frame stream: applies every fault in plan order,
    /// each with its own RNG stream derived from `(seed, index)`.
    pub fn corrupt(&self, frames: &[CapturedFrame]) -> CorruptedStream {
        let mut out: Vec<CapturedFrame> = frames.to_vec();
        let mut counts = FaultCounts::default();
        for (i, fault) in self.plan.faults.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(marauder_par::sub_seed(self.seed, i as u64));
            out = apply(*fault, out, &mut rng, &mut counts);
        }
        CorruptedStream {
            frames: out,
            counts,
        }
    }
}

fn apply(
    fault: Fault,
    frames: Vec<CapturedFrame>,
    rng: &mut StdRng,
    counts: &mut FaultCounts,
) -> Vec<CapturedFrame> {
    match fault {
        Fault::Drop { p } => {
            let before = frames.len();
            let kept: Vec<CapturedFrame> =
                frames.into_iter().filter(|_| !rng.gen_bool(p)).collect();
            counts.dropped += before - kept.len();
            kept
        }
        Fault::Burst { p_enter, p_exit } => {
            let mut bad = false;
            let before = frames.len();
            let kept: Vec<CapturedFrame> = frames
                .into_iter()
                .filter(|_| {
                    if bad {
                        if rng.gen_bool(p_exit) {
                            bad = false;
                        }
                    } else if rng.gen_bool(p_enter) {
                        bad = true;
                    }
                    !bad
                })
                .collect();
            counts.burst_dropped += before - kept.len();
            kept
        }
        Fault::Duplicate { p } => {
            let mut out = Vec::with_capacity(frames.len());
            for frame in frames {
                let dup = rng.gen_bool(p);
                out.push(frame.clone());
                if dup {
                    out.push(frame);
                    counts.duplicated += 1;
                }
            }
            out
        }
        Fault::Reorder { depth } => {
            // Each frame gets a sort key `i + U(0..=depth)`; the stable
            // sort bounds every displacement by `depth` positions.
            let mut keyed: Vec<(usize, usize, CapturedFrame)> = frames
                .into_iter()
                .enumerate()
                .map(|(i, f)| (i + rng.gen_range(0..=depth), i, f))
                .collect();
            keyed.sort_by_key(|(k, _, _)| *k);
            let mut out = Vec::with_capacity(keyed.len());
            for (pos, (_, original, frame)) in keyed.into_iter().enumerate() {
                if pos != original {
                    counts.reordered += 1;
                }
                out.push(frame);
            }
            out
        }
        Fault::Jitter { sigma_s } => frames
            .into_iter()
            .map(|mut f| {
                f.time_s += sigma_s * gaussian(rng);
                counts.jittered += 1;
                f
            })
            .collect(),
        Fault::Skew { offset_s } => {
            let cards: BTreeSet<usize> = frames.iter().map(|f| f.card).collect();
            let Some(victim) = pick(rng, &cards) else {
                return frames;
            };
            frames
                .into_iter()
                .map(|mut f| {
                    if f.card == victim {
                        f.time_s += offset_s;
                        counts.skewed += 1;
                    }
                    f
                })
                .collect()
        }
        Fault::BitFlip { p } => frames
            .into_iter()
            .map(|mut f| {
                if rng.gen_bool(p) {
                    let which = rng.gen_range(0..3u32);
                    let bit = rng.gen_range(0..48u32);
                    let target = match which {
                        0 => &mut f.frame.bssid,
                        1 => &mut f.frame.src,
                        _ => &mut f.frame.dst,
                    };
                    *target = flip_bit(*target, bit);
                    counts.bit_flipped += 1;
                }
                f
            })
            .collect(),
        Fault::ApFlap { outage_s } => {
            let aps: BTreeSet<MacAddr> = frames.iter().map(|f| f.frame.bssid).collect();
            let Some(victim) = pick(rng, &aps) else {
                return frames;
            };
            let Some(window) = outage_window(rng, &frames, outage_s) else {
                return frames;
            };
            let before = frames.len();
            let kept: Vec<CapturedFrame> = frames
                .into_iter()
                .filter(|f| {
                    !(f.frame.bssid == victim && f.time_s >= window.0 && f.time_s < window.1)
                })
                .collect();
            counts.ap_flapped += before - kept.len();
            kept
        }
        Fault::CardDropout { outage_s } => {
            let cards: BTreeSet<usize> = frames.iter().map(|f| f.card).collect();
            let Some(victim) = pick(rng, &cards) else {
                return frames;
            };
            let Some(window) = outage_window(rng, &frames, outage_s) else {
                return frames;
            };
            let before = frames.len();
            let kept: Vec<CapturedFrame> = frames
                .into_iter()
                .filter(|f| !(f.card == victim && f.time_s >= window.0 && f.time_s < window.1))
                .collect();
            counts.card_dark += before - kept.len();
            kept
        }
        Fault::Truncate { fraction } => {
            let keep = ((frames.len() as f64) * (1.0 - fraction)).round() as usize;
            let keep = keep.min(frames.len());
            counts.truncated += frames.len() - keep;
            let mut frames = frames;
            frames.truncate(keep);
            frames
        }
        Fault::Crash { after_frames } => {
            // Positional kill: everything past the boundary vanishes.
            // The crash-*recovery* story (journal replay) lives in the
            // sweep harness; on a bare frame stream a kill is a cut.
            let keep = after_frames.min(frames.len());
            counts.truncated += frames.len() - keep;
            let mut frames = frames;
            frames.truncate(keep);
            frames
        }
        Fault::TornWrite { .. } => {
            // A torn final record never parses, so on a frame stream
            // the fault is the loss of the last frame (recovery-side
            // byte-level tearing is exercised against real journal
            // files in the sweep harness and proptests).
            let mut frames = frames;
            if frames.pop().is_some() {
                counts.truncated += 1;
            }
            frames
        }
    }
}

/// A standard normal draw via Box–Muller (the vendored rand has no
/// distributions module).
fn gaussian(rng: &mut StdRng) -> f64 {
    // u1 in (0, 1] keeps the log finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Picks one element of an ordered set uniformly.
fn pick<T: Copy>(rng: &mut StdRng, set: &BTreeSet<T>) -> Option<T> {
    if set.is_empty() {
        return None;
    }
    set.iter().nth(rng.gen_range(0..set.len())).copied()
}

/// A random `[start, start + outage)` span inside the stream's time
/// range.
fn outage_window(rng: &mut StdRng, frames: &[CapturedFrame], outage_s: f64) -> Option<(f64, f64)> {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for f in frames {
        lo = lo.min(f.time_s);
        hi = hi.max(f.time_s);
    }
    if !(lo.is_finite() && hi.is_finite()) {
        return None;
    }
    let latest_start = (hi - outage_s).max(lo);
    let start = if latest_start > lo {
        rng.gen_range(lo..latest_start)
    } else {
        lo
    };
    Some((start, start + outage_s))
}

fn flip_bit(mac: MacAddr, bit: u32) -> MacAddr {
    let mut octets = mac.octets();
    octets[(bit / 8) as usize] ^= 1 << (bit % 8);
    MacAddr::new(octets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use marauder_wifi::channel::Channel;
    use marauder_wifi::frame::Frame;
    use marauder_wifi::ssid::Ssid;

    fn mac(i: u64) -> MacAddr {
        MacAddr::from_index(i)
    }

    fn stream(n: usize) -> Vec<CapturedFrame> {
        (0..n)
            .map(|k| CapturedFrame {
                time_s: k as f64 * 2.0,
                card: k % 3,
                frame: Frame::probe_response(
                    mac(100 + (k % 5) as u64),
                    mac(1 + (k % 2) as u64),
                    Ssid::new("n").unwrap(),
                    Channel::bg(6).unwrap(),
                ),
            })
            .collect()
    }

    fn encode(frames: &[CapturedFrame]) -> Vec<u8> {
        let mut out = Vec::new();
        for f in frames {
            out.extend_from_slice(&f.time_s.to_bits().to_be_bytes());
            out.extend_from_slice(&f.card.to_be_bytes());
            out.extend_from_slice(&f.frame.encode());
        }
        out
    }

    #[test]
    fn identical_seed_and_plan_are_byte_identical() {
        let frames = stream(300);
        let plan = FaultPlan::parse(
            "drop:0.2,burst:0.05:0.3,dup:0.1,reorder:6,jitter:0.4,\
             skew:3.0,bitflip:0.15,apflap:100,carddrop:50,truncate:0.1",
        )
        .unwrap();
        let a = FaultInjector::new(42, plan.clone()).corrupt(&frames);
        let b = FaultInjector::new(42, plan.clone()).corrupt(&frames);
        assert_eq!(encode(&a.frames), encode(&b.frames));
        assert_eq!(a.counts, b.counts);
        // A different seed perturbs the stream.
        let c = FaultInjector::new(43, plan).corrupt(&frames);
        assert_ne!(encode(&a.frames), encode(&c.frames));
    }

    #[test]
    fn clean_plan_is_identity() {
        let frames = stream(50);
        let out = FaultInjector::new(7, FaultPlan::clean()).corrupt(&frames);
        assert_eq!(encode(&out.frames), encode(&frames));
        assert_eq!(out.counts, FaultCounts::default());
    }

    #[test]
    fn drop_removes_roughly_p_fraction() {
        let frames = stream(2000);
        let out = FaultInjector::new(1, FaultPlan::single(Fault::Drop { p: 0.3 })).corrupt(&frames);
        let rate = out.counts.dropped as f64 / frames.len() as f64;
        assert!((0.25..0.35).contains(&rate), "drop rate {rate}");
        assert_eq!(out.frames.len() + out.counts.dropped, frames.len());
    }

    #[test]
    fn burst_losses_cluster() {
        let frames = stream(4000);
        let out = FaultInjector::new(
            9,
            FaultPlan::single(Fault::Burst {
                p_enter: 0.02,
                p_exit: 0.2,
            }),
        )
        .corrupt(&frames);
        assert!(out.counts.burst_dropped > 0);
        // Mean burst length 1/p_exit = 5 ≫ 1: losses must leave gaps
        // longer than single frames. Check the maximum gap between
        // surviving original timestamps.
        let mut max_gap = 0.0f64;
        for w in out.frames.windows(2) {
            max_gap = max_gap.max(w[1].time_s - w[0].time_s);
        }
        assert!(max_gap >= 6.0, "no burst-length gap found: {max_gap}");
    }

    #[test]
    fn reorder_displacement_is_bounded() {
        let frames = stream(500);
        let depth = 5;
        let out =
            FaultInjector::new(3, FaultPlan::single(Fault::Reorder { depth })).corrupt(&frames);
        assert_eq!(out.frames.len(), frames.len());
        // Every original frame is present, displaced at most `depth`.
        for (i, f) in frames.iter().enumerate() {
            let j = out
                .frames
                .iter()
                .position(|g| g.time_s.to_bits() == f.time_s.to_bits())
                .expect("frame survived");
            assert!(
                i.abs_diff(j) <= depth,
                "frame {i} moved to {j}, beyond depth {depth}"
            );
        }
        assert!(out.counts.reordered > 0);
    }

    #[test]
    fn bitflip_changes_exactly_one_bit() {
        let frames = stream(400);
        let out =
            FaultInjector::new(5, FaultPlan::single(Fault::BitFlip { p: 0.5 })).corrupt(&frames);
        assert!(out.counts.bit_flipped > 0);
        assert_eq!(out.frames.len(), frames.len());
        let mut flipped = 0usize;
        for (a, b) in frames.iter().zip(&out.frames) {
            let diff: u32 = [
                (a.frame.bssid, b.frame.bssid),
                (a.frame.src, b.frame.src),
                (a.frame.dst, b.frame.dst),
            ]
            .iter()
            .map(|(x, y)| {
                x.octets()
                    .iter()
                    .zip(y.octets())
                    .map(|(p, q)| (p ^ q).count_ones())
                    .sum::<u32>()
            })
            .sum();
            assert!(diff <= 1, "more than one bit flipped in one frame");
            flipped += diff as usize;
        }
        assert_eq!(flipped, out.counts.bit_flipped);
    }

    #[test]
    fn apflap_silences_one_ap_for_a_span() {
        let frames = stream(600);
        let out = FaultInjector::new(11, FaultPlan::single(Fault::ApFlap { outage_s: 200.0 }))
            .corrupt(&frames);
        assert!(out.counts.ap_flapped > 0, "outage must remove frames");
        // Only one bssid lost frames.
        let mut lost: BTreeSet<MacAddr> = BTreeSet::new();
        let surviving: Vec<u64> = out.frames.iter().map(|f| f.time_s.to_bits()).collect();
        for f in &frames {
            if !surviving.contains(&f.time_s.to_bits()) {
                lost.insert(f.frame.bssid);
            }
        }
        assert_eq!(lost.len(), 1, "exactly one AP flapped");
    }

    #[test]
    fn truncate_cuts_the_tail() {
        let frames = stream(100);
        let out = FaultInjector::new(2, FaultPlan::single(Fault::Truncate { fraction: 0.25 }))
            .corrupt(&frames);
        assert_eq!(out.frames.len(), 75);
        assert_eq!(out.counts.truncated, 25);
        assert_eq!(encode(&out.frames), encode(&frames[..75]));
    }

    #[test]
    fn skew_shifts_exactly_one_card() {
        let frames = stream(90);
        let out = FaultInjector::new(4, FaultPlan::single(Fault::Skew { offset_s: 10.0 }))
            .corrupt(&frames);
        assert_eq!(out.frames.len(), frames.len());
        let shifted_cards: BTreeSet<usize> = frames
            .iter()
            .zip(&out.frames)
            .filter(|(a, b)| a.time_s.to_bits() != b.time_s.to_bits())
            .map(|(a, _)| a.card)
            .collect();
        assert_eq!(shifted_cards.len(), 1);
        assert_eq!(out.counts.skewed, 30, "a third of the frames shift");
    }

    #[test]
    fn duplication_inserts_adjacent_copies() {
        let frames = stream(300);
        let out =
            FaultInjector::new(8, FaultPlan::single(Fault::Duplicate { p: 0.2 })).corrupt(&frames);
        assert_eq!(out.frames.len(), frames.len() + out.counts.duplicated);
        assert!(out.counts.duplicated > 0);
    }
}
