//! Degradation harness: runs the attack pipeline over a fault matrix
//! and accounts for every window and every device.
//!
//! The harness answers the operational question the paper's clean-world
//! evaluation cannot: *how does the Marauder's Map fail?* Each cell of
//! the matrix corrupts one simulated capture with one [`FaultPlan`],
//! re-runs ingestion + localization under the graceful-degradation
//! ladder, and reports
//!
//! * the fix rate and the typed reason for every lost window,
//! * which ladder rung ([`FixProvenance`]) produced each surviving fix,
//! * device-level accounting (`fixed + degraded + lost == total`),
//! * the victim's error statistics and error CDF against ground truth,
//!   so a cell's CDF shift vs. the clean baseline is one subtraction.
//!
//! Everything is deterministic: the scenario is seeded, the injector is
//! seeded, and the pipeline is thread-count-invariant, so a report is a
//! pure function of `(scenario seed, fault seed, plan list)`.

use crate::inject::{FaultCounts, FaultInjector};
use crate::plan::{Fault, FaultPlan};
use marauder_core::apdb::{ApDatabase, ApRecord};
use marauder_core::eval::{ErrorStats, EvalOutcome, FixRecord};
use marauder_core::pipeline::{
    AttackConfig, DegradationPolicy, FixProvenance, KnowledgeLevel, MaraudersMap,
};
use marauder_core::PipelineError;
use marauder_geo::Point;
use marauder_sim::mobility::CircuitWalk;
use marauder_sim::scenario::{CampusScenario, GroundTruthFix, SimulationResult, WorldModel};
use marauder_wifi::device::{MobileStation, OsProfile, ScanBehavior};
use marauder_wifi::mac::MacAddr;
use marauder_wifi::sniffer::{CaptureDatabase, CapturedFrame};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Error-CDF thresholds reported per cell, meters.
pub const ERROR_THRESHOLDS_M: [f64; 5] = [25.0, 50.0, 100.0, 200.0, 400.0];

/// A stable snake_case key for a loss reason, for report histograms.
pub fn reason_key(e: &PipelineError) -> &'static str {
    match e {
        PipelineError::EmptyObservation => "empty_observation",
        PipelineError::NoKnownAps { .. } => "no_known_aps",
        PipelineError::DegenerateGeometry { .. } => "degenerate_geometry",
        PipelineError::NoUsableRadii { .. } => "no_usable_radii",
        PipelineError::NonFinite { .. } => "non_finite",
        PipelineError::BadHeader => "bad_header",
        PipelineError::BudgetExhausted { .. } => "budget_exhausted",
        PipelineError::DeferredLocalization => "deferred_localization",
    }
}

/// Every [`reason_key`] value, in report order — the key space the
/// registry-backed accounting in [`run_cell`] reads back.
const REASON_KEYS: [&str; 8] = [
    "empty_observation",
    "no_known_aps",
    "degenerate_geometry",
    "no_usable_radii",
    "non_finite",
    "bad_header",
    "budget_exhausted",
    "deferred_localization",
];

/// A fixed attack scenario (simulated capture + attacker knowledge)
/// that fault plans are injected into.
#[derive(Debug)]
pub struct ChaosScenario {
    name: String,
    sim_seed: u64,
    result: SimulationResult,
    victim: MacAddr,
    db: ApDatabase,
    config: AttackConfig,
}

fn victim_station() -> MobileStation {
    MobileStation::new(MacAddr::from_index(0xFACE), OsProfile::MacOs).with_behavior(
        ScanBehavior::Active {
            interval_s: 20.0,
            directed: false,
        },
    )
}

fn measured_db(result: &SimulationResult) -> ApDatabase {
    let link = marauder_sim::link::LinkModel::free_space(result.environment_margin);
    result
        .aps
        .iter()
        .map(|ap| ApRecord {
            bssid: ap.bssid,
            ssid: Some(ap.ssid.as_str().to_string()),
            location: ap.location,
            radius: Some(link.measured_radius(ap)),
        })
        .collect()
}

impl ChaosScenario {
    /// A small campus for fast chaos tests: 24 APs, 4 background
    /// mobiles plus the victim, 4 simulated minutes.
    pub fn quick(sim_seed: u64) -> ChaosScenario {
        let victim = victim_station();
        let victim_mac = victim.mac;
        let scenario = CampusScenario::builder()
            .seed(sim_seed)
            .region_half_width(200.0)
            .num_aps(24)
            .num_mobiles(4)
            .duration_s(240.0)
            .world(WorldModel::FreeSpace)
            .beacon_period_s(None)
            .mobile(
                victim,
                Box::new(CircuitWalk::new(Point::ORIGIN, 100.0, 1.4)),
            )
            .build();
        let result = scenario.run();
        let db = measured_db(&result);
        ChaosScenario {
            name: "quick".to_string(),
            sim_seed,
            result,
            victim: victim_mac,
            db,
            config: AttackConfig {
                window_s: 15.0,
                degradation: DegradationPolicy::Graceful,
                ..AttackConfig::default()
            },
        }
    }

    /// The Fig. 13 accuracy scenario (the same campus the benchmark
    /// harness evaluates): 130 clustered APs over a 700 m × 700 m
    /// region, 8 background mobiles, the victim circling the sniffer
    /// for 15 minutes.
    pub fn fig13(sim_seed: u64) -> ChaosScenario {
        let victim = victim_station();
        let victim_mac = victim.mac;
        let cluster =
            marauder_sim::deploy::Rect::new(Point::new(100.0, 100.0), Point::new(260.0, 260.0));
        let scenario = CampusScenario::builder()
            .seed(sim_seed)
            .region_half_width(350.0)
            .num_aps(130)
            .deployment(marauder_sim::deploy::Deployment::Clustered {
                uniform_fraction: 0.55,
                cluster,
            })
            .num_mobiles(8)
            .duration_s(900.0)
            .world(WorldModel::FreeSpace)
            .beacon_period_s(None)
            .mobile(
                victim,
                Box::new(CircuitWalk::new(Point::ORIGIN, 160.0, 1.4)),
            )
            .build();
        let result = scenario.run();
        let db = measured_db(&result);
        ChaosScenario {
            name: "fig13".to_string(),
            sim_seed,
            result,
            victim: victim_mac,
            db,
            config: AttackConfig {
                window_s: 15.0,
                aprad: marauder_core::algorithms::ApRad {
                    max_radius: 400.0,
                    min_observations_for_negative: 6,
                    ..Default::default()
                },
                degradation: DegradationPolicy::Graceful,
                ..AttackConfig::default()
            },
        }
    }

    /// Scenario name (appears in the report).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Seed of the simulated campus (appears in reports).
    pub fn sim_seed(&self) -> u64 {
        self.sim_seed
    }

    /// The victim's MAC.
    pub fn victim(&self) -> MacAddr {
        self.victim
    }

    /// The clean capture.
    pub fn captures(&self) -> &CaptureDatabase {
        &self.result.captures
    }

    /// The attacker's knowledge database.
    pub fn knowledge(&self) -> &ApDatabase {
        &self.db
    }

    /// The attack configuration (graceful ladder enabled).
    pub fn config(&self) -> &AttackConfig {
        &self.config
    }

    /// A fresh map over this scenario's knowledge, graceful policy.
    pub fn fresh_map(&self) -> MaraudersMap {
        MaraudersMap::new(self.db.clone(), KnowledgeLevel::Full, self.config.clone())
    }

    /// Corrupts the clean capture with `(fault_seed, plan)`.
    pub fn corrupted_captures(
        &self,
        fault_seed: u64,
        plan: &FaultPlan,
    ) -> (CaptureDatabase, FaultCounts) {
        let frames: Vec<CapturedFrame> = self.result.captures.iter().cloned().collect();
        let corrupted = FaultInjector::new(fault_seed, plan.clone()).corrupt(&frames);
        let mut db = CaptureDatabase::new();
        for f in corrupted.frames {
            db.push(f);
        }
        (db, corrupted.counts)
    }

    /// Runs one cell: corrupt, ingest, localize with the graceful
    /// ladder, and account for every window and device.
    pub fn run_cell(&self, fault_seed: u64, plan: &FaultPlan) -> CellOutcome {
        let (capture, counts) = self.corrupted_captures(fault_seed, plan);
        let mut map = self.fresh_map();
        map.ingest(&capture);
        let obs = capture.observation_sets(self.config.window_s);
        let windows_total = obs.len();
        let windows_with_known_ap = obs
            .iter()
            .filter(|o| o.aps.iter().any(|m| self.db.get(*m).is_some()))
            .count();
        let corrupted_devices: BTreeSet<MacAddr> = obs.iter().map(|o| o.mobile).collect();
        let (fixes, losses) = map.localize_windows_accounted(obs);

        // Cell accounting goes through a registry local to the cell
        // (not the process-global one: cells run concurrently across
        // the matrix and each report must only see its own counts).
        let reg = marauder_obs::MetricsRegistry::new();
        for e in &losses {
            reg.counter_add(&format!("loss.{}", reason_key(e)), 1);
        }
        for fix in &fixes {
            reg.counter_add(&format!("fix.{}", fix.provenance.as_str()), 1);
        }
        let mut loss_reasons: BTreeMap<&'static str, usize> = BTreeMap::new();
        for key in REASON_KEYS {
            let n = reg.counter(&format!("loss.{key}"));
            if n > 0 {
                loss_reasons.insert(key, n as usize);
            }
        }
        // Zero-count rungs stay in the report: the ladder is always
        // shown in full.
        let provenance: BTreeMap<FixProvenance, usize> = FixProvenance::ALL
            .iter()
            .map(|&p| {
                let n = reg.counter(&format!("fix.{}", p.as_str()));
                (p, n as usize)
            })
            .collect();

        // Device accounting over the union of devices seen in the clean
        // and corrupted captures: a device silenced entirely by the
        // faults still counts (as lost), and a phantom device invented
        // by a bit flip is accounted too.
        let mut devices: BTreeSet<MacAddr> = self
            .result
            .captures
            .observation_sets(self.config.window_s)
            .iter()
            .map(|o| o.mobile)
            .collect();
        devices.extend(corrupted_devices);
        let mut full_fix: BTreeSet<MacAddr> = BTreeSet::new();
        let mut any_fix: BTreeSet<MacAddr> = BTreeSet::new();
        for fix in &fixes {
            any_fix.insert(fix.mobile);
            if matches!(
                fix.provenance,
                FixProvenance::MLoc | FixProvenance::Inflated
            ) {
                full_fix.insert(fix.mobile);
            }
        }
        let devices_total = devices.len();
        let devices_fixed = devices.iter().filter(|d| full_fix.contains(d)).count();
        let devices_degraded = devices
            .iter()
            .filter(|d| any_fix.contains(*d) && !full_fix.contains(*d))
            .count();
        let devices_lost = devices_total - devices_fixed - devices_degraded;

        // Victim accuracy vs. ground truth (nearest-in-time fix).
        let truth: Vec<&GroundTruthFix> = self
            .result
            .ground_truth
            .iter()
            .filter(|g| g.mobile == self.victim)
            .collect();
        let mut victim_outcome = EvalOutcome::default();
        for fix in fixes.iter().filter(|f| f.mobile == self.victim) {
            let Some(t) = nearest_truth(&truth, fix.time_s + self.config.window_s / 2.0) else {
                continue;
            };
            victim_outcome.records.push(FixRecord {
                k: fix.gamma.len(),
                error_m: fix.estimate.position.distance(t.position),
                area_m2: fix.estimate.area(),
                covered: fix.estimate.covers(t.position),
                provenance: fix.provenance,
            });
        }
        let victim_cdf = victim_outcome.error_cdf(&ERROR_THRESHOLDS_M);

        CellOutcome {
            plan: plan.to_string(),
            counts,
            frames_clean: self.result.captures.len(),
            frames_corrupted: capture.len(),
            windows_total,
            windows_fixed: fixes.len(),
            windows_lost: losses.len(),
            windows_with_known_ap,
            loss_reasons,
            provenance,
            devices_total,
            devices_fixed,
            devices_degraded,
            devices_lost,
            victim_error: victim_outcome.error_stats(),
            victim_cdf,
        }
    }

    /// Runs the clean baseline plus every plan, in order.
    pub fn run_matrix(&self, fault_seed: u64, plans: &[FaultPlan]) -> DegradationReport {
        let clean = self.run_cell(fault_seed, &FaultPlan::clean());
        let cells = plans.iter().map(|p| self.run_cell(fault_seed, p)).collect();
        DegradationReport {
            scenario: self.name.clone(),
            sim_seed: self.sim_seed,
            fault_seed,
            thresholds_m: ERROR_THRESHOLDS_M.to_vec(),
            clean,
            cells,
        }
    }
}

/// The default fault matrix: every fault kind at three intensities.
pub fn default_matrix() -> Vec<FaultPlan> {
    let mut out = Vec::new();
    for p in [0.1, 0.3, 0.6] {
        out.push(FaultPlan::single(Fault::Drop { p }));
    }
    for (p_enter, p_exit) in [(0.02, 0.3), (0.05, 0.2), (0.1, 0.1)] {
        out.push(FaultPlan::single(Fault::Burst { p_enter, p_exit }));
    }
    for p in [0.1, 0.3, 0.6] {
        out.push(FaultPlan::single(Fault::Duplicate { p }));
    }
    for depth in [2, 8, 32] {
        out.push(FaultPlan::single(Fault::Reorder { depth }));
    }
    for sigma_s in [0.5, 2.0, 8.0] {
        out.push(FaultPlan::single(Fault::Jitter { sigma_s }));
    }
    for offset_s in [1.0, 5.0, 20.0] {
        out.push(FaultPlan::single(Fault::Skew { offset_s }));
    }
    for p in [0.05, 0.2, 0.5] {
        out.push(FaultPlan::single(Fault::BitFlip { p }));
    }
    for outage_s in [60.0, 180.0, 420.0] {
        out.push(FaultPlan::single(Fault::ApFlap { outage_s }));
    }
    for outage_s in [60.0, 180.0, 420.0] {
        out.push(FaultPlan::single(Fault::CardDropout { outage_s }));
    }
    for fraction in [0.1, 0.3, 0.6] {
        out.push(FaultPlan::single(Fault::Truncate { fraction }));
    }
    for after_frames in [50, 500, 2000] {
        out.push(FaultPlan::single(Fault::Crash { after_frames }));
    }
    for bytes in [1, 3, 9] {
        out.push(FaultPlan::single(Fault::TornWrite { bytes }));
    }
    out
}

/// One cell of the degradation matrix: a `(plan, corrupted capture)`
/// pair fully accounted.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Canonical plan spec (`"clean"` for the baseline).
    pub plan: String,
    /// Frames touched per fault class.
    pub counts: FaultCounts,
    /// Frames in the clean capture.
    pub frames_clean: usize,
    /// Frames surviving corruption.
    pub frames_corrupted: usize,
    /// Observation windows in the corrupted capture.
    pub windows_total: usize,
    /// Windows that produced a fix (any rung).
    pub windows_fixed: usize,
    /// Windows lost, with typed reasons in [`CellOutcome::loss_reasons`].
    pub windows_lost: usize,
    /// Windows containing at least one AP the attacker knows — the
    /// denominator of the monotone-degradation invariant.
    pub windows_with_known_ap: usize,
    /// Histogram of typed loss reasons.
    pub loss_reasons: BTreeMap<&'static str, usize>,
    /// Fixes per ladder rung (every rung present, zeros included).
    pub provenance: BTreeMap<FixProvenance, usize>,
    /// Devices in the clean ∪ corrupted captures.
    pub devices_total: usize,
    /// Devices with at least one full-strength (M-Loc/inflated) fix.
    pub devices_fixed: usize,
    /// Devices with fixes, all from degraded rungs.
    pub devices_degraded: usize,
    /// Devices with no fix at all.
    pub devices_lost: usize,
    /// Victim error statistics (None when the victim got no fix).
    pub victim_error: Option<ErrorStats>,
    /// Victim error CDF at [`ERROR_THRESHOLDS_M`].
    pub victim_cdf: Vec<(f64, f64)>,
}

impl CellOutcome {
    /// Fraction of windows that produced a fix.
    pub fn fix_rate(&self) -> f64 {
        if self.windows_total == 0 {
            0.0
        } else {
            self.windows_fixed as f64 / self.windows_total as f64
        }
    }
}

/// The full degradation report: clean baseline plus one cell per plan.
#[derive(Debug, Clone)]
pub struct DegradationReport {
    /// Scenario name (`"quick"` or `"fig13"`).
    pub scenario: String,
    /// Seed of the simulated campus.
    pub sim_seed: u64,
    /// Seed of the fault injector.
    pub fault_seed: u64,
    /// CDF thresholds, meters.
    pub thresholds_m: Vec<f64>,
    /// The clean (no-fault) baseline cell.
    pub clean: CellOutcome,
    /// One cell per fault plan, in input order.
    pub cells: Vec<CellOutcome>,
}

impl DegradationReport {
    /// Renders the report as JSON (hand-written, std-only; all numbers
    /// are finite by construction).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"scenario\": {},", json_string(&self.scenario));
        let _ = writeln!(out, "  \"sim_seed\": {},", self.sim_seed);
        let _ = writeln!(out, "  \"fault_seed\": {},", self.fault_seed);
        let _ = writeln!(
            out,
            "  \"thresholds_m\": [{}],",
            self.thresholds_m
                .iter()
                .map(|t| json_f64(*t))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(out, "  \"clean\": {},", cell_json(&self.clean, None, 2));
        out.push_str("  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            let sep = if i + 1 == self.cells.len() { "" } else { "," };
            let _ = writeln!(out, "    {}{}", cell_json(cell, Some(&self.clean), 4), sep);
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn cell_json(cell: &CellOutcome, clean: Option<&CellOutcome>, indent: usize) -> String {
    let pad = " ".repeat(indent);
    let mut out = String::new();
    out.push_str("{\n");
    let field = |out: &mut String, key: &str, value: String, last: bool| {
        let sep = if last { "" } else { "," };
        let _ = writeln!(out, "{pad}  \"{key}\": {value}{sep}");
    };
    field(&mut out, "plan", json_string(&cell.plan), false);
    let c = &cell.counts;
    field(
        &mut out,
        "frames",
        format!(
            "{{\"clean\": {}, \"corrupted\": {}, \"dropped\": {}, \"burst_dropped\": {}, \
             \"duplicated\": {}, \"reordered\": {}, \"jittered\": {}, \"skewed\": {}, \
             \"bit_flipped\": {}, \"ap_flapped\": {}, \"card_dark\": {}, \"truncated\": {}}}",
            cell.frames_clean,
            cell.frames_corrupted,
            c.dropped,
            c.burst_dropped,
            c.duplicated,
            c.reordered,
            c.jittered,
            c.skewed,
            c.bit_flipped,
            c.ap_flapped,
            c.card_dark,
            c.truncated,
        ),
        false,
    );
    field(
        &mut out,
        "windows",
        format!(
            "{{\"total\": {}, \"fixed\": {}, \"lost\": {}, \"with_known_ap\": {}, \
             \"fix_rate\": {}}}",
            cell.windows_total,
            cell.windows_fixed,
            cell.windows_lost,
            cell.windows_with_known_ap,
            json_f64(cell.fix_rate()),
        ),
        false,
    );
    let reasons = cell
        .loss_reasons
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v}"))
        .collect::<Vec<_>>()
        .join(", ");
    field(&mut out, "loss_reasons", format!("{{{reasons}}}"), false);
    let prov = cell
        .provenance
        .iter()
        .map(|(p, v)| format!("\"{}\": {v}", p.as_str()))
        .collect::<Vec<_>>()
        .join(", ");
    field(&mut out, "provenance", format!("{{{prov}}}"), false);
    field(
        &mut out,
        "devices",
        format!(
            "{{\"total\": {}, \"fixed\": {}, \"degraded\": {}, \"lost\": {}}}",
            cell.devices_total, cell.devices_fixed, cell.devices_degraded, cell.devices_lost,
        ),
        false,
    );
    let err = match &cell.victim_error {
        Some(s) => format!(
            "{{\"count\": {}, \"mean_m\": {}, \"median_m\": {}, \"max_m\": {}}}",
            s.count,
            json_f64(s.mean),
            json_f64(s.median),
            json_f64(s.max),
        ),
        None => "null".to_string(),
    };
    field(&mut out, "victim_error", err, false);
    let cdf = cell
        .victim_cdf
        .iter()
        .enumerate()
        .map(|(i, (t, frac))| {
            let shift = clean
                .and_then(|cl| cl.victim_cdf.get(i))
                .map(|(_, base)| json_f64(frac - base))
                .unwrap_or_else(|| "null".to_string());
            format!(
                "{{\"threshold_m\": {}, \"fraction\": {}, \"shift_vs_clean\": {}}}",
                json_f64(*t),
                json_f64(*frac),
                shift,
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    field(&mut out, "victim_cdf", format!("[{cdf}]"), true);
    let _ = write!(out, "{pad}}}");
    out
}

fn nearest_truth<'a>(truth: &[&'a GroundTruthFix], t: f64) -> Option<&'a GroundTruthFix> {
    truth
        .iter()
        .min_by(|a, b| {
            let da = (a.time_s - t).abs();
            let db = (b.time_s - t).abs();
            da.total_cmp(&db)
        })
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_cell_accounts_for_everything() {
        let scenario = ChaosScenario::quick(7);
        let cell = scenario.run_cell(1, &FaultPlan::clean());
        assert_eq!(cell.plan, "clean");
        assert!(cell.windows_total > 0, "scenario produced no windows");
        assert_eq!(
            cell.windows_fixed + cell.windows_lost,
            cell.windows_total,
            "window accounting must sum"
        );
        assert_eq!(
            cell.devices_fixed + cell.devices_degraded + cell.devices_lost,
            cell.devices_total,
            "device accounting must sum"
        );
        assert!(cell.devices_total >= 5, "victim + 4 background mobiles");
        assert!(cell.fix_rate() > 0.9, "clean fix rate {}", cell.fix_rate());
        assert!(cell.victim_error.is_some(), "victim must be tracked");
        // Provenance accounts for every fix.
        assert_eq!(cell.provenance.values().sum::<usize>(), cell.windows_fixed);
        // Loss reasons account for every loss.
        assert_eq!(cell.loss_reasons.values().sum::<usize>(), cell.windows_lost);
    }

    #[test]
    fn default_matrix_covers_every_fault_kind() {
        let plans = default_matrix();
        let kinds: BTreeSet<&'static str> = plans
            .iter()
            .flat_map(|p| p.faults.iter().map(|f| f.name()))
            .collect();
        assert_eq!(kinds.len(), 12, "kinds covered: {kinds:?}");
        assert_eq!(plans.len(), 36);
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let scenario = ChaosScenario::quick(3);
        let plans = [
            FaultPlan::single(Fault::Drop { p: 0.3 }),
            FaultPlan::single(Fault::BitFlip { p: 0.2 }),
        ];
        let report = scenario.run_matrix(11, &plans);
        assert_eq!(report.cells.len(), 2);
        let json = report.to_json();
        for key in [
            "\"scenario\": \"quick\"",
            "\"clean\":",
            "\"cells\":",
            "\"plan\": \"drop:0.3\"",
            "\"plan\": \"bitflip:0.2\"",
            "\"fix_rate\"",
            "\"shift_vs_clean\"",
            "\"no_known_aps\"",
            "\"provenance\"",
        ] {
            // no_known_aps only appears when bitflip lost a window; the
            // other keys are structural.
            if key == "\"no_known_aps\"" {
                continue;
            }
            assert!(json.contains(key), "missing {key} in report:\n{json}");
        }
        // Balanced braces/brackets — a cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "unbalanced brackets"
        );
        // No non-finite numbers may leak into the JSON ("inflated" is a
        // legitimate key, so match the number forms).
        assert!(!json.contains("NaN") && !json.contains(": inf") && !json.contains("-inf"));
    }
}
