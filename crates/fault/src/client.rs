//! Misbehaving-HTTP-client fault classes for the serving layer.
//!
//! The radio-path injector ([`crate::inject`]) attacks the *input* of
//! the pipeline; these attack its *output* surface: clients that stall
//! mid-head (slow-loris), hang up mid-request, speak garbage, or send
//! absurdly oversized heads. Following the crate's discipline, a
//! client's entire misbehaviour is a **pure schedule** — a function of
//! `(kind, seed)` only, computed up front — so a chaos run is
//! byte-reproducible and the executor (in `marauder-serve`) does
//! nothing but play the schedule against a socket.
//!
//! Each schedule carries the *contract* the server must honour for it
//! ([`Expectation`]): either a specific 4xx status or a silent drop.
//! "The server panicked" or "the server answered something else" are
//! the findings the chaos matrix exists to surface.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// The request a well-behaved client would have sent; misbehaving
/// schedules are derived from (or replace) it.
pub const BASE_REQUEST: &[u8] = b"GET /healthz HTTP/1.1\r\nHost: chaos\r\n\r\n";

/// The ways a client can misbehave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClientFaultKind {
    /// Sends the head one morsel at a time, slower than any sane
    /// client, and never sends the terminator — the classic socket
    /// exhaustion attack. Contract: the server's head deadline fires
    /// (`408`) and the worker is reclaimed.
    SlowLoris,
    /// Sends a prefix of a valid request, then disconnects. Contract:
    /// the server drops the connection quietly (nothing is owed to a
    /// peer that left) and the worker is reclaimed.
    MidRequestDisconnect,
    /// Sends bytes that were never HTTP. Contract: rejected `400`
    /// *eagerly* — garbage must not hold a worker until a deadline.
    Garbage,
    /// Sends a head past the server's size cap. Contract: `431`, and
    /// the rejection must arrive without buffering the whole flood.
    Oversized,
}

impl ClientFaultKind {
    /// Every kind, in matrix order.
    pub const ALL: [ClientFaultKind; 4] = [
        ClientFaultKind::SlowLoris,
        ClientFaultKind::MidRequestDisconnect,
        ClientFaultKind::Garbage,
        ClientFaultKind::Oversized,
    ];

    /// Stable key for reports and metrics.
    pub fn key(self) -> &'static str {
        match self {
            ClientFaultKind::SlowLoris => "slow_loris",
            ClientFaultKind::MidRequestDisconnect => "mid_request_disconnect",
            ClientFaultKind::Garbage => "garbage",
            ClientFaultKind::Oversized => "oversized",
        }
    }
}

/// What the server owes a misbehaving client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// A response with exactly this status, then connection close.
    Status(u16),
    /// No response: the connection just ends.
    Dropped,
}

/// A fully precomputed misbehaviour: chunks to write, the pause
/// between them, whether to hang up instead of awaiting a response,
/// and the contract to check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientSchedule {
    /// Which fault this schedule realizes.
    pub kind: ClientFaultKind,
    /// Byte chunks to write, in order.
    pub chunks: Vec<Vec<u8>>,
    /// Pause before every chunk after the first.
    pub pause: Duration,
    /// Hang up right after the last chunk instead of reading.
    pub disconnect_after_send: bool,
    /// The server's side of the contract.
    pub expect: Expectation,
}

impl ClientSchedule {
    /// Total bytes the schedule writes.
    pub fn wire_len(&self) -> usize {
        self.chunks.iter().map(Vec::len).sum()
    }
}

/// Builds the deterministic schedule for one chaos client. Pure in
/// `(kind, seed)`: the same pair yields the identical schedule on any
/// machine, which is what makes a chaos failure replayable.
pub fn client_schedule(kind: ClientFaultKind, seed: u64) -> ClientSchedule {
    let mut rng = StdRng::seed_from_u64(marauder_par::sub_seed(seed, kind.key().len() as u64));
    match kind {
        ClientFaultKind::SlowLoris => {
            // Drip the head in 1..=3-byte morsels and withhold the
            // final terminator forever.
            let head = &BASE_REQUEST[..BASE_REQUEST.len() - 4];
            let mut chunks = Vec::new();
            let mut at = 0;
            while at < head.len() {
                let step = rng.gen_range(1..=3usize).min(head.len() - at);
                chunks.push(head[at..at + step].to_vec());
                at += step;
            }
            ClientSchedule {
                kind,
                chunks,
                pause: Duration::from_millis(5),
                disconnect_after_send: false,
                expect: Expectation::Status(408),
            }
        }
        ClientFaultKind::MidRequestDisconnect => {
            // Cut somewhere strictly inside the request.
            let cut = rng.gen_range(1..BASE_REQUEST.len() - 1);
            ClientSchedule {
                kind,
                chunks: vec![BASE_REQUEST[..cut].to_vec()],
                pause: Duration::ZERO,
                disconnect_after_send: true,
                expect: Expectation::Dropped,
            }
        }
        ClientFaultKind::Garbage => {
            // Random bytes led by one guaranteed non-head byte, so the
            // eager-rejection contract (400 *now*, not 408 later) is
            // what gets tested regardless of what the tail looks like.
            let len = rng.gen_range(8..=256usize);
            let mut bytes = vec![0xFFu8];
            for _ in 1..len {
                bytes.push(rng.gen::<u8>());
            }
            ClientSchedule {
                kind,
                chunks: vec![bytes],
                pause: Duration::ZERO,
                disconnect_after_send: false,
                expect: Expectation::Status(400),
            }
        }
        ClientFaultKind::Oversized => {
            // One header padded past the 16 KiB head cap, sent in
            // 4 KiB bursts, terminator withheld — the server must
            // reject on size alone.
            let mut head = b"GET / HTTP/1.1\r\nx-pad: ".to_vec();
            let target = 17 * 1024 + rng.gen_range(0..1024usize);
            head.resize(target, b'a');
            let chunks = head.chunks(4096).map(<[u8]>::to_vec).collect();
            ClientSchedule {
                kind,
                chunks,
                pause: Duration::ZERO,
                disconnect_after_send: false,
                expect: Expectation::Status(431),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_pure_functions_of_kind_and_seed() {
        for kind in ClientFaultKind::ALL {
            for seed in [0u64, 1, 42, u64::MAX] {
                let a = client_schedule(kind, seed);
                let b = client_schedule(kind, seed);
                assert_eq!(a, b, "{kind:?} seed {seed} not reproducible");
                assert!(!a.chunks.is_empty());
            }
        }
    }

    #[test]
    fn schedules_honour_their_class_invariants() {
        for seed in 0..16u64 {
            let loris = client_schedule(ClientFaultKind::SlowLoris, seed);
            let wire: Vec<u8> = loris.chunks.concat();
            assert!(
                !wire.windows(4).any(|w| w == b"\r\n\r\n"),
                "slow-loris must never complete its head"
            );
            assert_eq!(loris.expect, Expectation::Status(408));

            let cut = client_schedule(ClientFaultKind::MidRequestDisconnect, seed);
            assert!(cut.disconnect_after_send);
            assert!(cut.wire_len() < BASE_REQUEST.len());

            let garbage = client_schedule(ClientFaultKind::Garbage, seed);
            assert_eq!(garbage.chunks[0][0], 0xFF, "first byte must be non-HTTP");

            let oversized = client_schedule(ClientFaultKind::Oversized, seed);
            assert!(oversized.wire_len() > 16 * 1024);
            assert_eq!(oversized.expect, Expectation::Status(431));
        }
    }
}
