//! Kill-at-every-boundary crash sweep.
//!
//! The durability subsystem's headline invariant (DESIGN.md
//! "Durability & crash recovery") is *crash equivalence*: killing
//! ingestion at **any** frame boundary, recovering from the
//! write-ahead journal, and resuming must produce fix output
//! byte-identical to the uninterrupted run. This module proves it by
//! brute force: [`crash_sweep`] simulates the kill at every boundary
//! of a [`ChaosScenario`] capture (optionally every `stride`-th), runs
//! crash → [`FrameJournal::recover`] → resume for each, and compares
//! the final fixes against the clean run byte for byte.
//!
//! Two deterministic fault classes drive the sweep:
//!
//! * `crash:N` — the process dies after exactly `N` frames. Simulated
//!   by journaling and ingesting exactly `N` frames, then dropping
//!   everything that was not on disk.
//! * `tornwrite:K` — the process dies *mid-append*, leaving `K` bytes
//!   of the final record on disk. Simulated by physically truncating
//!   the last journal segment `K` bytes into its final record.
//!
//! A third companion run tears the *segment header* instead: the kill
//! lands inside `rotate()`, after the new segment file is created but
//! before its 16-byte header is durable. Recovery must discard the
//! headerless file, and a second recovery after the resumed run must
//! still see every acknowledged append.
//!
//! Everything is a pure function of `(scenario seed, sweep config)`:
//! no RNG, no clocks, and the per-boundary cells are
//! order-independent, so reports are bit-identical at any thread
//! count.

use crate::harness::ChaosScenario;
use marauder_stream::{
    FlushPolicy, FrameJournal, JournalConfig, JournalError, RecoveryError, StreamConfig,
    StreamEngine, TrackFix,
};
use marauder_wifi::sniffer::CapturedFrame;
use std::fmt;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Sweep knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashSweepConfig {
    /// Test every `stride`-th frame boundary (1 = all of them; the
    /// final boundary is always included).
    pub stride: usize,
    /// Write a journal checkpoint every this many frames (0 = journal
    /// only, every recovery replays from scratch).
    pub checkpoint_every: usize,
    /// Additionally tear the final record at each crash point
    /// (`tornwrite` at this many bytes into the record; 0 = off) and
    /// require clean torn-tail recovery plus equivalence.
    pub torn_write_bytes: usize,
    /// Additionally simulate a kill *inside segment rotation* at each
    /// crash point: a `segment-<n>.wal` file exists holding only this
    /// many bytes of its 16-byte header (0 = off; clamped to 15).
    /// Recovery must discard the headerless file, and — crucially — a
    /// SECOND recovery after the resumed run must still see every
    /// acknowledged append (this is where reopening a headerless
    /// segment for append silently loses fsync'd records).
    pub torn_header_bytes: usize,
}

impl Default for CrashSweepConfig {
    fn default() -> Self {
        CrashSweepConfig {
            stride: 1,
            checkpoint_every: 64,
            torn_write_bytes: 3,
            torn_header_bytes: 5,
        }
    }
}

/// A sweep failure — not an equivalence miss (those land in the
/// report), but a journal or recovery operation that failed outright.
#[derive(Debug)]
pub enum SweepError {
    /// Writing the journal for a crash point failed.
    Journal(JournalError),
    /// Recovering a crash point failed.
    Recovery(RecoveryError),
    /// Filesystem trouble outside the journal itself.
    Io {
        /// What the sweep was doing.
        op: String,
        /// The underlying failure.
        source: std::io::Error,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Journal(e) => write!(f, "crash sweep: {e}"),
            SweepError::Recovery(e) => write!(f, "crash sweep: {e}"),
            SweepError::Io { op, source } => write!(f, "crash sweep {op}: {source}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Journal(e) => Some(e),
            SweepError::Recovery(e) => Some(e),
            SweepError::Io { source, .. } => Some(source),
        }
    }
}

impl From<JournalError> for SweepError {
    fn from(e: JournalError) -> Self {
        SweepError::Journal(e)
    }
}

impl From<RecoveryError> for SweepError {
    fn from(e: RecoveryError) -> Self {
        SweepError::Recovery(e)
    }
}

/// One crash boundary's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashCell {
    /// Frames ingested before the kill.
    pub crash_after: usize,
    /// Whether crash → recover → resume matched the clean run byte
    /// for byte.
    pub matched: bool,
    /// Sequence the recovery's checkpoint covered (`None`: replayed
    /// from scratch).
    pub checkpoint_seq: Option<u64>,
    /// Journal records the recovery replayed.
    pub records_replayed: u64,
    /// The torn-write companion run, when enabled.
    pub torn: Option<TornOutcome>,
    /// The torn-header (kill-inside-rotation) companion run, when
    /// enabled.
    pub torn_header: Option<TornOutcome>,
}

/// Outcome of the torn-write companion run at one boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornOutcome {
    /// Bytes of the final record left on disk.
    pub bytes: usize,
    /// Bytes of torn tail the recovery truncated (0 when the tear
    /// landed on a record boundary).
    pub torn_tail_bytes: u64,
    /// Whether tear → recover → resume matched the clean run.
    pub matched: bool,
}

/// The sweep report: one [`CrashCell`] per tested boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashReport {
    /// Scenario name.
    pub scenario: String,
    /// Seed of the simulated campus.
    pub sim_seed: u64,
    /// Frames in the clean capture (= the number of boundaries + 1).
    pub frames: usize,
    /// The sweep configuration used.
    pub stride: usize,
    /// Checkpoint cadence in frames (0 = none).
    pub checkpoint_every: usize,
    /// Torn-write tear size in bytes (0 = off).
    pub torn_write_bytes: usize,
    /// Torn-header size in bytes (0 = off).
    pub torn_header_bytes: usize,
    /// Per-boundary outcomes, ascending by `crash_after`.
    pub cells: Vec<CrashCell>,
}

impl CrashReport {
    /// Whether every cell (and every torn companion) matched.
    pub fn all_matched(&self) -> bool {
        self.cells.iter().all(|c| {
            c.matched
                && c.torn.as_ref().map(|t| t.matched).unwrap_or(true)
                && c.torn_header.as_ref().map(|t| t.matched).unwrap_or(true)
        })
    }

    /// Boundaries that failed equivalence.
    pub fn mismatches(&self) -> Vec<usize> {
        self.cells
            .iter()
            .filter(|c| {
                !c.matched
                    || c.torn.as_ref().map(|t| !t.matched).unwrap_or(false)
                    || c.torn_header.as_ref().map(|t| !t.matched).unwrap_or(false)
            })
            .map(|c| c.crash_after)
            .collect()
    }

    /// Renders the report as JSON (hand-written, std-only).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"scenario\": \"{}\",", self.scenario);
        let _ = writeln!(out, "  \"sim_seed\": {},", self.sim_seed);
        let _ = writeln!(out, "  \"frames\": {},", self.frames);
        let _ = writeln!(out, "  \"stride\": {},", self.stride);
        let _ = writeln!(out, "  \"checkpoint_every\": {},", self.checkpoint_every);
        let _ = writeln!(out, "  \"torn_write_bytes\": {},", self.torn_write_bytes);
        let _ = writeln!(out, "  \"torn_header_bytes\": {},", self.torn_header_bytes);
        let _ = writeln!(out, "  \"all_matched\": {},", self.all_matched());
        out.push_str("  \"cells\": [\n");
        let torn_json = |t: &Option<TornOutcome>| match t {
            Some(t) => format!(
                "{{\"bytes\": {}, \"torn_tail_bytes\": {}, \"matched\": {}}}",
                t.bytes, t.torn_tail_bytes, t.matched
            ),
            None => "null".to_string(),
        };
        for (i, c) in self.cells.iter().enumerate() {
            let ckpt = match c.checkpoint_seq {
                Some(s) => s.to_string(),
                None => "null".to_string(),
            };
            let sep = if i + 1 == self.cells.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"crash_after\": {}, \"matched\": {}, \"checkpoint_seq\": {}, \
                 \"records_replayed\": {}, \"torn\": {}, \"torn_header\": {}}}{}",
                c.crash_after,
                c.matched,
                ckpt,
                c.records_replayed,
                torn_json(&c.torn),
                torn_json(&c.torn_header),
                sep
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Canonical byte rendering of a fix list: every float as its IEEE-754
/// bits, so "byte-identical" means exactly that.
pub fn render_fixes(fixes: &[TrackFix]) -> String {
    let mut out = String::new();
    for f in fixes {
        let gamma: Vec<String> = f.gamma.iter().map(|m| m.to_string()).collect();
        let _ = writeln!(
            out,
            "{:016x} {} {:016x} {:016x} {}",
            f.time_s.to_bits(),
            f.mobile,
            f.estimate.position.x.to_bits(),
            f.estimate.position.y.to_bits(),
            gamma.join(",")
        );
    }
    out
}

/// The engine configuration every sweep run uses: batch-equivalent
/// output only, so live localization stays off.
fn sweep_config() -> StreamConfig {
    StreamConfig {
        live_localization: false,
        warm_start: false,
        ..StreamConfig::default()
    }
}

/// The journal configuration for sweep cells. Rotation is kept small
/// so multi-segment recovery is exercised constantly; syncing is left
/// to rotation because the sweep kills by *dropping state*, not by
/// killing a process — everything written is on disk either way.
fn sweep_journal_config() -> JournalConfig {
    JournalConfig {
        segment_frames: 256,
        flush: FlushPolicy::OnRotate,
    }
}

/// The uninterrupted run: push everything, close out, batch-localize.
fn clean_reference(scenario: &ChaosScenario, frames: &[CapturedFrame]) -> String {
    let mut engine = StreamEngine::new(scenario.fresh_map(), sweep_config());
    let mut closed = Vec::new();
    for f in frames {
        closed.extend(engine.push(f));
    }
    closed.extend(engine.finish());
    render_fixes(&engine.batch_fixes(closed))
}

/// Journals and ingests exactly `n` frames — the pre-crash run. What
/// this function *returns* is deliberately nothing: the kill loses all
/// in-memory state, and recovery may only use the directory.
fn run_until_crash(
    scenario: &ChaosScenario,
    frames: &[CapturedFrame],
    n: usize,
    dir: &Path,
    checkpoint_every: usize,
) -> Result<(), SweepError> {
    let mut journal = FrameJournal::create(dir, sweep_journal_config())?;
    let mut engine = StreamEngine::new(scenario.fresh_map(), sweep_config());
    let mut closed = Vec::new();
    for (k, f) in frames[..n].iter().enumerate() {
        journal.append(f)?;
        closed.extend(engine.push(f));
        if checkpoint_every > 0 && (k + 1) % checkpoint_every == 0 {
            journal.checkpoint(&engine, &closed)?;
        }
    }
    journal.sync()?;
    Ok(())
}

/// Recovers `dir`, resumes ingestion from the recovered sequence, and
/// renders the final fixes. Returns the rendering plus the recovery
/// accounting.
fn recover_and_resume(
    scenario: &ChaosScenario,
    frames: &[CapturedFrame],
    dir: &Path,
) -> Result<(String, marauder_stream::RecoveryReport), SweepError> {
    let rec = FrameJournal::recover(dir, scenario.fresh_map(), sweep_config())?;
    let mut journal = rec.journal;
    journal.set_config(sweep_journal_config());
    let mut engine = rec.engine;
    let mut closed = rec.closed;
    let resume_from = rec.next_seq as usize;
    for f in &frames[resume_from.min(frames.len())..] {
        journal.append(f)?;
        closed.extend(engine.push(f));
    }
    closed.extend(engine.finish());
    Ok((render_fixes(&engine.batch_fixes(closed)), rec.report))
}

/// Truncates the final journal segment in `dir` to `bytes` bytes into
/// its last record — the on-disk signature of dying mid-append.
/// Returns `false` when there is nothing to tear (no segments, no
/// records, or the record is shorter than `bytes`).
pub fn tear_last_record(dir: &Path, bytes: usize) -> Result<bool, SweepError> {
    let io = |op: &str| {
        let op = op.to_string();
        move |source: std::io::Error| SweepError::Io { op, source }
    };
    // Find the lexicographically (= numerically: names are
    // zero-padded) last segment file.
    let mut segments: Vec<PathBuf> = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(io("scan journal dir"))? {
        let entry = entry.map_err(io("scan journal dir"))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("segment-") && name.ends_with(".wal") {
            segments.push(entry.path());
        }
    }
    segments.sort();
    let Some(path) = segments.last() else {
        return Ok(false);
    };
    let data = std::fs::read(path).map_err(io("read final segment"))?;
    // Walk the records to find where the last one starts: 16-byte
    // segment header, then length-prefixed records.
    let mut pos = 16usize;
    let mut last_start = None;
    while pos + 8 <= data.len() {
        let len = u32::from_be_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]);
        let next = pos + 8 + len as usize;
        if next > data.len() {
            break;
        }
        last_start = Some(pos);
        pos = next;
    }
    let Some(start) = last_start else {
        return Ok(false);
    };
    let keep = start + bytes;
    if keep >= data.len() {
        return Ok(false); // the tear would not actually shorten it
    }
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(io("reopen final segment"))?;
    file.set_len(keep as u64)
        .map_err(io("tear final segment"))?;
    Ok(true)
}

/// Simulates a kill *between segment-file creation and its header
/// write* (inside `rotate()`): creates `segment-<first_seq>.wal`
/// holding only the first `bytes` bytes of the 16-byte header (0 = an
/// empty file; clamped to 15 so the result is never a valid header).
/// `first_seq` must be the number of frames journaled so far — the
/// sequence the torn rotation would have been named after.
pub fn tear_segment_header(dir: &Path, first_seq: u64, bytes: usize) -> Result<(), SweepError> {
    let mut header = Vec::with_capacity(16);
    header.extend_from_slice(&marauder_stream::SEGMENT_MAGIC);
    header.extend_from_slice(&first_seq.to_be_bytes());
    header.truncate(bytes.min(15));
    let path = dir.join(format!("segment-{first_seq:020}.wal"));
    std::fs::write(&path, &header).map_err(|source| SweepError::Io {
        op: format!("tear segment header {}", path.display()),
        source,
    })
}

/// Runs the crash-equivalence sweep for `scenario` under `dir` (one
/// scratch subdirectory per boundary, removed as each cell finishes).
///
/// # Errors
///
/// [`SweepError`] if a journal write or recovery fails outright —
/// equivalence *misses* are not errors; they land in the report's
/// `matched` flags.
pub fn crash_sweep(
    scenario: &ChaosScenario,
    dir: &Path,
    config: &CrashSweepConfig,
) -> Result<CrashReport, SweepError> {
    let frames: Vec<CapturedFrame> = scenario.captures().iter().cloned().collect();
    let reference = clean_reference(scenario, &frames);
    let stride = config.stride.max(1);
    let mut boundaries: Vec<usize> = (0..=frames.len()).step_by(stride).collect();
    if boundaries.last() != Some(&frames.len()) {
        boundaries.push(frames.len());
    }

    let cells: Vec<Result<CrashCell, SweepError>> =
        marauder_par::par_map_range(boundaries.len(), |i| {
            let n = boundaries[i];
            let cell_dir = dir.join(format!("crash-{n:08}"));
            let _ = std::fs::remove_dir_all(&cell_dir);
            run_until_crash(scenario, &frames, n, &cell_dir, config.checkpoint_every)?;
            let (rendered, report) = recover_and_resume(scenario, &frames, &cell_dir)?;
            let matched = rendered == reference;

            let torn = if config.torn_write_bytes > 0 {
                // Fresh pre-crash state, then tear the final record.
                let _ = std::fs::remove_dir_all(&cell_dir);
                run_until_crash(scenario, &frames, n, &cell_dir, config.checkpoint_every)?;
                if tear_last_record(&cell_dir, config.torn_write_bytes)? {
                    let (rendered, report) = recover_and_resume(scenario, &frames, &cell_dir)?;
                    Some(TornOutcome {
                        bytes: config.torn_write_bytes,
                        torn_tail_bytes: report.torn_tail_bytes,
                        matched: rendered == reference,
                    })
                } else {
                    None
                }
            } else {
                None
            };

            let torn_header = if config.torn_header_bytes > 0 {
                // Fresh pre-crash state, then die mid-rotation: the
                // next segment file exists, headerless.
                let _ = std::fs::remove_dir_all(&cell_dir);
                run_until_crash(scenario, &frames, n, &cell_dir, config.checkpoint_every)?;
                tear_segment_header(&cell_dir, n as u64, config.torn_header_bytes)?;
                let (rendered, report) = recover_and_resume(scenario, &frames, &cell_dir)?;
                // The resumed run journaled the remaining frames; a
                // second recovery must see every one of them. This is
                // the check that catches resumed appends landing in a
                // reopened headerless segment and being discarded as
                // a torn tail on the next recovery.
                let rec2 = FrameJournal::recover(&cell_dir, scenario.fresh_map(), sweep_config())?;
                Some(TornOutcome {
                    bytes: config.torn_header_bytes,
                    torn_tail_bytes: report.torn_tail_bytes,
                    matched: rendered == reference && rec2.next_seq as usize == frames.len(),
                })
            } else {
                None
            };

            let _ = std::fs::remove_dir_all(&cell_dir);
            marauder_obs::global().counter_add("crash_sweep.cells", 1);
            Ok(CrashCell {
                crash_after: n,
                matched,
                checkpoint_seq: report.checkpoint_seq,
                records_replayed: report.records_replayed,
                torn,
                torn_header,
            })
        });

    let mut out = Vec::with_capacity(cells.len());
    for cell in cells {
        out.push(cell?);
    }
    Ok(CrashReport {
        scenario: scenario.name().to_string(),
        sim_seed: scenario.sim_seed(),
        frames: frames.len(),
        stride,
        checkpoint_every: config.checkpoint_every,
        torn_write_bytes: config.torn_write_bytes,
        torn_header_bytes: config.torn_header_bytes,
        cells: out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "marauder-crash-sweep-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn coarse_sweep_is_crash_equivalent() {
        let scenario = ChaosScenario::quick(7);
        let frames = scenario.captures().len();
        assert!(frames > 0);
        let dir = scratch("coarse");
        let config = CrashSweepConfig {
            stride: (frames / 7).max(1),
            checkpoint_every: 50,
            torn_write_bytes: 3,
            torn_header_bytes: 5,
        };
        let report = crash_sweep(&scenario, &dir, &config).unwrap();
        assert!(
            report.all_matched(),
            "mismatched boundaries: {:?}",
            report.mismatches()
        );
        assert_eq!(report.cells.first().map(|c| c.crash_after), Some(0));
        assert_eq!(report.cells.last().map(|c| c.crash_after), Some(frames));
        // Some mid-sweep cells must have restored a checkpoint and
        // some must have torn-tail outcomes, or the sweep is not
        // exercising what it claims to.
        assert!(report.cells.iter().any(|c| c.checkpoint_seq.is_some()));
        // Every cell ran the torn-header companion and the headerless
        // segment was detected as a (partial-header-sized) torn tail.
        assert!(report.cells.iter().all(|c| c
            .torn_header
            .as_ref()
            .map(|t| t.matched)
            .unwrap_or(false)));
        assert!(report.cells.iter().any(|c| c
            .torn_header
            .as_ref()
            .map(|t| t.torn_tail_bytes == 5)
            == Some(true)));
        assert!(report.cells.iter().any(|c| c
            .torn
            .as_ref()
            .map(|t| t.torn_tail_bytes > 0)
            .unwrap_or(false)));
        let json = report.to_json();
        assert!(json.contains("\"all_matched\": true"), "{json}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_report_is_thread_invariant() {
        let scenario = ChaosScenario::quick(3);
        let frames = scenario.captures().len();
        let config = CrashSweepConfig {
            stride: (frames / 3).max(1),
            checkpoint_every: 64,
            torn_write_bytes: 2,
            torn_header_bytes: 3,
        };
        let dir1 = scratch("threads-1");
        marauder_par::set_threads(1);
        let a = crash_sweep(&scenario, &dir1, &config).unwrap();
        let dir7 = scratch("threads-7");
        marauder_par::set_threads(7);
        let b = crash_sweep(&scenario, &dir7, &config).unwrap();
        marauder_par::set_threads(0);
        assert_eq!(a, b, "sweep must be thread-count-invariant");
        assert_eq!(a.to_json(), b.to_json());
        let _ = std::fs::remove_dir_all(&dir1);
        let _ = std::fs::remove_dir_all(&dir7);
    }
}
