//! Property test: `FaultPlan::parse` inverts `Display` on *arbitrary*
//! valid plans, not just the canonical specs pinned in the unit tests.
//!
//! f64's `Display` is shortest-round-trip, so `parse(plan.to_string())`
//! must reproduce every parameter bit-exactly — any drift here would
//! silently change which fault cell a report label reproduces.

use marauder_fault::{Fault, FaultPlan};
use proptest::prelude::*;

/// One arbitrary valid fault: every kind, with parameters drawn across
/// each kind's full validated range (including the 0/1 probability
/// endpoints and negative skew).
fn arb_fault() -> impl Strategy<Value = Fault> {
    prop_oneof![
        (0.0..=1.0f64).prop_map(|p| Fault::Drop { p }),
        ((0.0..=1.0f64), (0.0..=1.0f64))
            .prop_map(|(p_enter, p_exit)| Fault::Burst { p_enter, p_exit }),
        (0.0..=1.0f64).prop_map(|p| Fault::Duplicate { p }),
        (0usize..=64).prop_map(|depth| Fault::Reorder { depth }),
        (0.0..=100.0f64).prop_map(|sigma_s| Fault::Jitter { sigma_s }),
        (-1e3..=1e3f64).prop_map(|offset_s| Fault::Skew { offset_s }),
        (0.0..=1.0f64).prop_map(|p| Fault::BitFlip { p }),
        (0.0..=1e4f64).prop_map(|outage_s| Fault::ApFlap { outage_s }),
        (0.0..=1e4f64).prop_map(|outage_s| Fault::CardDropout { outage_s }),
        (0.0..=1.0f64).prop_map(|fraction| Fault::Truncate { fraction }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn display_then_parse_is_identity(
        faults in prop::collection::vec(arb_fault(), 0..6)
    ) {
        let plan = FaultPlan { faults };
        let label = plan.to_string();
        let parsed = FaultPlan::parse(&label);
        prop_assert!(parsed.is_ok(), "own label failed to parse: {label:?}");
        // Bit-exact equality: Fault derives PartialEq over its f64
        // parameters, so this catches any shortest-round-trip drift.
        prop_assert_eq!(parsed.unwrap(), plan, "label {:?}", label);
    }

    #[test]
    fn spec_and_display_agree_for_nonempty_plans(
        faults in prop::collection::vec(arb_fault(), 1..6)
    ) {
        let plan = FaultPlan { faults };
        prop_assert_eq!(plan.spec(), plan.to_string());
    }
}
