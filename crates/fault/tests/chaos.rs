//! The chaos invariants.
//!
//! 1. **No panic**: the full fault matrix (every fault kind at every
//!    intensity) runs to completion, and every cell's accounting sums —
//!    windows fixed + lost = total, devices fixed + degraded + lost =
//!    total, frames corrupted = clean − removed + duplicated.
//! 2. **Determinism**: identical `(seed, plan)` yields a byte-identical
//!    corrupted stream *and* byte-identical tracking output at any
//!    thread count.
//! 3. **Monotone-bounded degradation**: under the graceful ladder the
//!    only possible loss is "no observed AP known to the attacker" —
//!    the fix rate never drops to zero while any known AP remains
//!    observable.

use marauder_fault::{default_matrix, ChaosScenario, FaultPlan};
use marauder_stream::{replay_log, StreamConfig};
use marauder_wifi::capture_log::{parse_capture_log, write_capture_log};

#[test]
fn full_fault_matrix_completes_with_exact_accounting() {
    let scenario = ChaosScenario::quick(7);
    let report = scenario.run_matrix(9, &default_matrix());
    assert_eq!(report.cells.len(), 36, "12 fault kinds × 3 intensities");
    for cell in std::iter::once(&report.clean).chain(&report.cells) {
        assert_eq!(
            cell.windows_fixed + cell.windows_lost,
            cell.windows_total,
            "{}: window accounting",
            cell.plan
        );
        assert_eq!(
            cell.devices_fixed + cell.devices_degraded + cell.devices_lost,
            cell.devices_total,
            "{}: device accounting",
            cell.plan
        );
        assert_eq!(
            cell.provenance.values().sum::<usize>(),
            cell.windows_fixed,
            "{}: every fix carries a provenance",
            cell.plan
        );
        assert_eq!(
            cell.loss_reasons.values().sum::<usize>(),
            cell.windows_lost,
            "{}: every loss carries a typed reason",
            cell.plan
        );
        assert_eq!(
            cell.frames_corrupted,
            cell.frames_clean - cell.counts.removed() + cell.counts.duplicated,
            "{}: frame accounting",
            cell.plan
        );
    }
    // The report renders (and the renderer is exercised on real data).
    let json = report.to_json();
    assert!(json.contains("\"cells\""));
}

#[test]
fn identical_seed_and_plan_are_thread_invariant() {
    let scenario = ChaosScenario::quick(5);
    let plan =
        FaultPlan::parse("drop:0.2,burst:0.05:0.25,dup:0.1,reorder:4,jitter:0.3,bitflip:0.1")
            .expect("valid plan");
    let mut logs: Vec<String> = Vec::new();
    let mut reports: Vec<String> = Vec::new();
    for threads in [1usize, 2, 7] {
        marauder_par::set_threads(threads);
        let (corrupted, _) = scenario.corrupted_captures(33, &plan);
        logs.push(write_capture_log(&corrupted));
        reports.push(
            scenario
                .run_matrix(33, std::slice::from_ref(&plan))
                .to_json(),
        );
    }
    marauder_par::set_threads(0);
    assert_eq!(logs[0], logs[1], "corrupted stream differs at 2 threads");
    assert_eq!(logs[0], logs[2], "corrupted stream differs at 7 threads");
    assert_eq!(reports[0], reports[1], "report differs at 2 threads");
    assert_eq!(reports[0], reports[2], "report differs at 7 threads");
}

#[test]
fn degradation_is_monotone_bounded() {
    let scenario = ChaosScenario::quick(11);
    let mut plans = default_matrix();
    // A brutal composite on top of the per-kind grid.
    plans.push(FaultPlan::parse("bitflip:0.9,drop:0.5").expect("valid plan"));
    for plan in &plans {
        let cell = scenario.run_cell(3, plan);
        // The ladder guarantees a fix whenever any observed AP is
        // known, so the only loss reason left is NoKnownAps.
        for reason in cell.loss_reasons.keys() {
            assert_eq!(
                *reason, "no_known_aps",
                "{}: unexpected loss reason {reason}",
                cell.plan
            );
        }
        assert_eq!(
            cell.windows_fixed, cell.windows_with_known_ap,
            "{}: a window with a known AP went unfixed",
            cell.plan
        );
        if cell.windows_with_known_ap > 0 {
            assert!(
                cell.fix_rate() > 0.0,
                "{}: fix rate hit zero with known APs observable",
                cell.plan
            );
        }
    }
}

#[test]
fn corrupted_log_stream_replay_matches_batch() {
    let scenario = ChaosScenario::quick(13);
    let plan = FaultPlan::parse("drop:0.2,reorder:5").expect("valid plan");
    let (corrupted, _) = scenario.corrupted_captures(21, &plan);
    let text = write_capture_log(&corrupted);

    // Corrupt the serialized log too: one garbage body line, absorbed
    // by a nonzero error budget.
    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    let victim_line = lines.len() / 2;
    lines[victim_line] = "garbage that is not a record".to_string();
    let damaged = lines.join("\n");

    // Batch ground truth over the *surviving* frames: parse the log
    // minus the damaged line, so both sides see the identical stream.
    let survivors: String = lines
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != victim_line)
        .map(|(_, l)| format!("{l}\n"))
        .collect();
    let parsed = parse_capture_log(&survivors).expect("survivor log parses");
    let mut batch_map = scenario.fresh_map();
    batch_map.ingest(&parsed);
    let batch = batch_map.track_all(&parsed);
    assert!(!batch.is_empty(), "corrupted capture still yields fixes");

    // Stream replay of the damaged log with a one-line budget. The lag
    // covers the injected reordering; eviction off.
    let config = StreamConfig {
        allowed_lag_s: 120.0,
        max_open_windows: 0,
        ..StreamConfig::default()
    };
    let (fixes, stats, skipped) =
        replay_log(scenario.fresh_map(), config, &damaged, 1).expect("budget covers the damage");
    assert_eq!(skipped.len(), 1);
    assert_eq!(skipped[0].line(), victim_line + 1, "skip is 1-based");
    assert_eq!(stats.frames_late, 0, "lag must cover injected reordering");
    assert_eq!(stats.windows_evicted, 0);

    assert_eq!(fixes.len(), batch.len(), "fix count differs from batch");
    for (s, b) in fixes.iter().zip(&batch) {
        assert_eq!(s.time_s.to_bits(), b.time_s.to_bits());
        assert_eq!(s.mobile, b.mobile);
        assert_eq!(s.gamma, b.gamma);
        assert_eq!(s.provenance, b.provenance);
        assert_eq!(
            s.estimate.position.x.to_bits(),
            b.estimate.position.x.to_bits()
        );
        assert_eq!(
            s.estimate.position.y.to_bits(),
            b.estimate.position.y.to_bits()
        );
        assert_eq!(s.estimate.k, b.estimate.k);
        assert_eq!(s.estimate.area().to_bits(), b.estimate.area().to_bits());
    }
}
