//! Std-only data parallelism for the attack pipeline.
//!
//! Everything here is built on `std::thread::scope` — no external
//! runtime, no locks on the hot path. Inputs are split into small
//! contiguous blocks that idle workers claim from a shared atomic
//! counter (campaign workloads are skewed: one chatty mobile's windows
//! sit next to each other, so static per-worker chunks would leave all
//! the work on one thread). Each block's results are placed back at the
//! block's input position. Because output position depends only on
//! input position — never on which worker ran the block — **results
//! are bit-identical for every thread count**, including the
//! sequential fast path, provided the mapped closure is a pure
//! function of `(index, item)`.
//!
//! Closures that need randomness must derive it from the item index,
//! not from a shared stream: seed a fresh RNG per item (or per fixed
//! block of items) with [`sub_seed`]. A shared RNG stream would make
//! draw order depend on scheduling and break the guarantee above.
//!
//! Worker count resolution, in precedence order:
//! 1. [`set_threads`] (the CLI `--threads` flag lands here),
//! 2. the `MARAUDER_THREADS` environment variable,
//! 3. `std::thread::available_parallelism()`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Process-wide worker-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count for all subsequent parallel calls.
///
/// `1` forces the sequential path; `0` clears the override, restoring
/// `MARAUDER_THREADS` / `available_parallelism()` resolution.
pub fn set_threads(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::SeqCst);
}

fn env_threads() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("MARAUDER_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// The worker count parallel calls will use right now.
pub fn current_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over `items` in parallel, preserving order.
///
/// Output is identical to `items.iter().map(f).collect()` for any
/// thread count. A panic in any worker propagates to the caller.
pub fn par_map<T, O, F>(items: &[T], f: F) -> Vec<O>
where
    T: Sync,
    O: Send,
    F: Fn(&T) -> O + Sync,
{
    par_map_indexed(items, |_, item| f(item))
}

/// Maps `f(index, item)` over `items` in parallel, preserving order.
///
/// The index is the item's position in `items`, independent of how
/// the slice is chunked across workers — use it (with [`sub_seed`])
/// to derive per-item randomness deterministically.
pub fn par_map_indexed<T, O, F>(items: &[T], f: F) -> Vec<O>
where
    T: Sync,
    O: Send,
    F: Fn(usize, &T) -> O + Sync,
{
    par_map_range(items.len(), |i| f(i, &items[i]))
}

/// Maps `f` over the index range `0..n` in parallel, preserving order.
///
/// Equivalent to `(0..n).map(f).collect()` without materializing an
/// input slice — the natural shape for block-indexed work such as
/// Monte-Carlo sample blocks.
pub fn par_map_range<O, F>(n: usize, f: F) -> Vec<O>
where
    O: Send,
    F: Fn(usize) -> O + Sync,
{
    // Call/item counts are recorded before the sequential/parallel
    // split so the deterministic counters match across thread counts;
    // anything below the split is scheduling-shaped and goes to the
    // nondeterministic section.
    let reg = marauder_obs::global();
    reg.counter_add("par.calls", 1);
    reg.counter_add("par.items", n as u64);
    let threads = current_threads().min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    // Small blocks claimed dynamically: several blocks per worker keeps
    // skewed workloads balanced without a per-item atomic.
    let block = (n / (threads * 8)).max(1);
    reg.nondet_add("par.parallel_calls", 1);
    reg.nondet_add("par.block_items", block as u64);
    let nblocks = n.div_ceil(block);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let f = &f;
        let next = &next;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut done: Vec<(usize, Vec<O>)> = Vec::new();
                    loop {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= nblocks {
                            break;
                        }
                        let start = b * block;
                        let end = (start + block).min(n);
                        done.push((start, (start..end).map(f).collect()));
                    }
                    done
                })
            })
            .collect();
        // Place every block at its input position; the final order is a
        // pure function of the indices, independent of scheduling.
        let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
        for (widx, handle) in handles.into_iter().enumerate() {
            let claimed = match handle.join() {
                Ok(claimed) => claimed,
                // Re-raise the worker's panic payload in the caller,
                // preserving the original message.
                Err(payload) => std::panic::resume_unwind(payload),
            };
            reg.nondet_add(
                &format!("par.worker.{widx:02}.blocks"),
                claimed.len() as u64,
            );
            for (start, vals) in claimed {
                for (j, v) in vals.into_iter().enumerate() {
                    slots[start + j] = Some(v);
                }
            }
        }
        slots
            .into_iter()
            // lint:allow(no-panic-in-lib) -- block scheduler claims every index exactly once
            .map(|v| v.expect("every block was claimed exactly once"))
            .collect()
    })
}

/// Derives a decorrelated RNG seed for sub-task `index` of a campaign
/// seeded with `base`.
///
/// SplitMix64-style finalizer over the combined words: nearby indices
/// (and nearby base seeds) produce statistically independent streams,
/// and the result depends only on `(base, index)` — never on thread
/// count or scheduling.
pub fn sub_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xA24B_AED4_963E_E407));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that touch the global thread override.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn par_map_matches_sequential_for_every_thread_count() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let items: Vec<u64> = (0..1017).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 4, 7, 8, 64] {
            set_threads(threads);
            assert_eq!(
                par_map(&items, |x| x * x + 1),
                expected,
                "threads={threads}"
            );
        }
        set_threads(0);
    }

    #[test]
    fn par_map_indexed_sees_global_positions() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let items = vec![10u64; 500];
        for threads in [1, 3, 8] {
            set_threads(threads);
            let out = par_map_indexed(&items, |i, x| i as u64 * x);
            let expected: Vec<u64> = (0..500).map(|i| i * 10).collect();
            assert_eq!(out, expected, "threads={threads}");
        }
        set_threads(0);
    }

    #[test]
    fn par_map_range_matches_direct_iteration() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        for threads in [1, 2, 5] {
            set_threads(threads);
            let out = par_map_range(123, |i| i * 3);
            assert_eq!(out, (0..123).map(|i| i * 3).collect::<Vec<_>>());
        }
        set_threads(0);
    }

    #[test]
    fn empty_and_tiny_inputs_are_fine() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |x| *x).is_empty());
        assert_eq!(par_map(&[42u32], |x| *x + 1), vec![43]);
        assert!(par_map_range(0, |i| i).is_empty());
    }

    #[test]
    fn sub_seed_decorrelates_indices_and_bases() {
        let s: Vec<u64> = (0..64).map(|i| sub_seed(7, i)).collect();
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "collisions across indices");
        assert_ne!(sub_seed(7, 0), sub_seed(8, 0));
        // Stable across calls (pure function).
        assert_eq!(sub_seed(7, 3), sub_seed(7, 3));
    }

    #[test]
    fn worker_panics_propagate() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_threads(4);
        let items: Vec<u32> = (0..100).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(&items, |x| {
                assert!(*x != 57, "boom");
                *x
            })
        });
        set_threads(0);
        assert!(result.is_err());
    }
}
