//! Property tests for fleet checkpoint damage tolerance: any
//! truncation or single-byte corruption of a checkpoint file never
//! panics [`restore_latest`] — and as long as one intact checkpoint
//! remains in the directory, restore always finds it.

use marauder_core::apdb::{ApDatabase, ApRecord};
use marauder_core::pipeline::{AttackConfig, KnowledgeLevel, MaraudersMap};
use marauder_geo::Point;
use marauder_net::codec::{Message, PROTOCOL_VERSION};
use marauder_net::{restore_latest, Aggregator, Checkpointer, FleetConfig};
use marauder_stream::StreamConfig;
use marauder_wifi::channel::Channel;
use marauder_wifi::frame::Frame;
use marauder_wifi::mac::MacAddr;
use marauder_wifi::sniffer::CapturedFrame;
use marauder_wifi::ssid::Ssid;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

fn map() -> MaraudersMap {
    let db: ApDatabase = [
        (100u64, Point::new(0.0, 0.0)),
        (101, Point::new(100.0, 0.0)),
        (102, Point::new(50.0, 80.0)),
    ]
    .into_iter()
    .map(|(i, p)| ApRecord {
        bssid: MacAddr::from_index(i),
        ssid: None,
        location: p,
        radius: Some(120.0),
    })
    .collect();
    MaraudersMap::new(db, KnowledgeLevel::Full, AttackConfig::default())
}

fn config() -> FleetConfig {
    FleetConfig {
        stream: StreamConfig {
            live_localization: false,
            ..StreamConfig::default()
        },
        expected_nodes: 1,
        ..FleetConfig::default()
    }
}

/// One checkpoint file's bytes, produced by a real aggregator run and
/// cached for every case.
fn template_checkpoint() -> &'static Vec<u8> {
    static T: OnceLock<Vec<u8>> = OnceLock::new();
    T.get_or_init(|| {
        let mut agg = Aggregator::new(map(), config());
        let mut closed = Vec::new();
        closed.extend(
            agg.on_message(&Message::Hello {
                node_id: 1,
                clock_offset_s: 0.0,
                version: PROTOCOL_VERSION,
                wants_snapshot: false,
            })
            .expect("hello")
            .closed,
        );
        let frames: Vec<CapturedFrame> = (0..40)
            .map(|k| CapturedFrame {
                time_s: k as f64 * 7.0,
                card: 0,
                frame: Frame::probe_response(
                    MacAddr::from_index(100 + (k % 3)),
                    MacAddr::from_index(0x50 + (k % 2)),
                    Ssid::new("x").expect("short ssid"),
                    Channel::bg(6).expect("bg channel"),
                ),
            })
            .collect();
        closed.extend(
            agg.on_message(&Message::FrameBatch {
                node_id: 1,
                seq: 0,
                frames,
            })
            .expect("batch")
            .closed,
        );
        closed.extend(
            agg.on_message(&Message::Heartbeat {
                node_id: 1,
                watermark_s: 39.0 * 7.0,
            })
            .expect("heartbeat")
            .closed,
        );
        assert!(!closed.is_empty(), "template run must close windows");

        let dir = std::env::temp_dir().join(format!(
            "marauder-ckpt-props-template-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cp = Checkpointer::new(&dir, 1.0).expect("checkpointer");
        cp.checkpoint_now(&agg, &closed).expect("checkpoint");
        let file = std::fs::read_dir(&dir)
            .expect("list")
            .next()
            .expect("one file")
            .expect("entry")
            .path();
        let bytes = std::fs::read(file).expect("read checkpoint");
        let _ = std::fs::remove_dir_all(&dir);
        bytes
    })
}

/// A scratch checkpoint directory holding an intact oldest checkpoint
/// and one damaged newer copy.
fn materialize(damaged: &[u8]) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "marauder-ckpt-props-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    std::fs::write(
        dir.join(format!("fleet-{:020}.ckpt", 0)),
        template_checkpoint(),
    )
    .expect("write intact");
    std::fs::write(dir.join(format!("fleet-{:020}.ckpt", 1)), damaged).expect("write damaged");
    dir
}

/// Damage must never panic restore, and the intact older checkpoint
/// guarantees a successful restore no matter what the damage did.
fn check_restore(damaged: &[u8]) -> Result<(), TestCaseError> {
    let dir = materialize(damaged);
    let result = restore_latest(&dir, &map(), &config());
    let verdict = match result {
        Ok(Some(restore)) => {
            prop_assert!(restore.skipped <= 1, "only the damaged file may be skipped");
            Ok(())
        }
        Ok(None) => Err(TestCaseError::fail(
            "restore missed the intact checkpoint".to_string(),
        )),
        Err(e) => Err(TestCaseError::fail(format!(
            "directory-level error from file damage: {e}"
        ))),
    };
    let _ = std::fs::remove_dir_all(&dir);
    verdict
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn any_truncation_is_skipped_never_fatal(cut in any::<usize>()) {
        let template = template_checkpoint();
        let cut = cut % (template.len() + 1);
        check_restore(&template[..cut])?;
    }

    #[test]
    fn any_single_byte_corruption_is_skipped_never_fatal(
        pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut bytes = template_checkpoint().clone();
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        check_restore(&bytes)?;
    }
}
