//! Property tests for the wire codec: `decode ∘ encode` is the
//! identity over arbitrary valid messages (timestamps bit-exact, NaN
//! payloads included), and no byte sequence — truncated, bit-flipped,
//! oversized, or random — ever panics the decoder: every rejection is
//! a typed [`WireError`].

use marauder_net::codec::{decode, encode, Message, SNAPSHOT_CHUNK_LEN};
use marauder_net::{WireError, MAX_BODY_LEN};
use marauder_wifi::channel::Channel;
use marauder_wifi::frame::Frame;
use marauder_wifi::mac::MacAddr;
use marauder_wifi::sniffer::CapturedFrame;
use marauder_wifi::ssid::Ssid;
use proptest::prelude::*;

/// An arbitrary f64 drawn from the full bit space: normals, subnormals,
/// infinities, and NaNs with arbitrary payloads all occur.
fn arb_f64_bits() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

/// An arbitrary captured frame over a few frame shapes, with a
/// timestamp from the full f64 bit space.
fn arb_frame() -> impl Strategy<Value = CapturedFrame> {
    (
        arb_f64_bits(),
        0usize..=3,
        any::<u64>(),
        any::<u64>(),
        1u8..=11,
        0usize..=2,
    )
        .prop_map(|(time_s, card, a, b, chan, kind)| {
            let ssid = Ssid::new("prop").expect("short ssid");
            let channel = Channel::bg(chan).expect("bg channel");
            let frame = match kind {
                0 => Frame::probe_request(MacAddr::from_index(a), Some(ssid), chan),
                1 => Frame::probe_response(
                    MacAddr::from_index(a),
                    MacAddr::from_index(b),
                    ssid,
                    channel,
                ),
                _ => Frame::beacon(MacAddr::from_index(a), ssid, channel, (b % 1024) as u16),
            };
            CapturedFrame {
                time_s,
                card,
                frame,
            }
        })
}

/// One arbitrary valid message of every kind.
fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u32>(), arb_f64_bits(), any::<u16>(), any::<bool>()).prop_map(
            |(node_id, clock_offset_s, version, wants_snapshot)| Message::Hello {
                node_id,
                clock_offset_s,
                version,
                wants_snapshot,
            }
        ),
        (any::<u32>(), any::<u16>(), any::<u64>()).prop_map(|(node_id, version, resume_seq)| {
            Message::HelloAck {
                node_id,
                version,
                resume_seq,
            }
        }),
        (
            any::<u32>(),
            any::<u64>(),
            prop::collection::vec(arb_frame(), 0..4)
        )
            .prop_map(|(node_id, seq, frames)| Message::FrameBatch {
                node_id,
                seq,
                frames,
            }),
        (any::<u32>(), arb_f64_bits()).prop_map(|(node_id, watermark_s)| Message::Heartbeat {
            node_id,
            watermark_s,
        }),
        (any::<u32>(), any::<u64>(), any::<u32>()).prop_map(|(node_id, total_len, chunks)| {
            Message::SnapshotOffer {
                node_id,
                total_len,
                chunks,
            }
        }),
        (
            any::<u32>(),
            any::<u32>(),
            prop::collection::vec(0u8..=255, 0..SNAPSHOT_CHUNK_LEN.min(256))
        )
            .prop_map(|(node_id, index, data)| Message::SnapshotChunk {
                node_id,
                index,
                data,
            }),
    ]
}

/// Bit-exact equality: re-encoding the decoded message must reproduce
/// the original bytes, so every f64 (NaN payloads included) survived.
fn assert_bit_exact(msg: &Message) -> Result<(), TestCaseError> {
    let bytes = encode(msg);
    let (back, consumed) = match decode(&bytes) {
        Ok(x) => x,
        Err(e) => return Err(TestCaseError::fail(format!("own encoding rejected: {e}"))),
    };
    prop_assert_eq!(consumed, bytes.len(), "decode must consume the whole frame");
    prop_assert_eq!(encode(&back), bytes, "re-encode drifted for {:?}", msg);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn encode_then_decode_is_identity(msg in arb_message()) {
        assert_bit_exact(&msg)?;
    }

    #[test]
    fn every_truncation_is_a_typed_error(msg in arb_message()) {
        let bytes = encode(&msg);
        for cut in 0..bytes.len() {
            match decode(&bytes[..cut]) {
                Err(WireError::Truncated { needed, have }) => {
                    prop_assert!(have < needed, "cut {cut}: have {have} >= needed {needed}");
                    prop_assert_eq!(have, cut);
                }
                Err(other) => {
                    return Err(TestCaseError::fail(format!(
                        "cut {cut}: expected Truncated, got {other}"
                    )));
                }
                Ok(_) => {
                    return Err(TestCaseError::fail(format!(
                        "cut {cut} of {} decoded successfully",
                        bytes.len()
                    )));
                }
            }
        }
    }

    #[test]
    fn bit_flips_never_panic(msg in arb_message(), pos in any::<usize>(), bit in 0u8..8) {
        let mut bytes = encode(&msg);
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        // A flipped frame may still parse (flips in payload bytes are
        // data, not structure); what it must never do is panic or
        // over-consume.
        if let Ok((_, consumed)) = decode(&bytes) {
            prop_assert!(consumed <= bytes.len());
        }
    }

    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(0u8..=255, 0..64)) {
        if let Ok((_, consumed)) = decode(&bytes) {
            prop_assert!(consumed <= bytes.len());
        }
    }

    #[test]
    fn oversized_length_prefixes_are_rejected(
        excess in 1u32..=1024,
        tail in prop::collection::vec(0u8..=255, 0..16),
    ) {
        let len = MAX_BODY_LEN + excess;
        let mut bytes = len.to_be_bytes().to_vec();
        bytes.extend(tail);
        prop_assert_eq!(
            decode(&bytes),
            Err(WireError::Oversized { len, max: MAX_BODY_LEN })
        );
    }
}
