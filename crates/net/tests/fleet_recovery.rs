//! The fleet durability invariant: kill the aggregator mid-campaign,
//! restore its newest checkpoint, resume the nodes — and lose zero
//! closed windows. The resumed run's batch fixes must be byte-identical
//! to an uninterrupted run over the same captures.

use marauder_fault::{render_fixes, ChaosScenario};
use marauder_net::loopback::{required_slack_s, split_round_robin, LoopbackFleet};
use marauder_net::node::NodeConfig;
use marauder_net::{restore_latest, Aggregator, Checkpointer, FleetConfig};
use marauder_stream::StreamConfig;
use marauder_wifi::sniffer::CapturedFrame;
use std::path::PathBuf;

fn fleet_config(nodes: usize) -> FleetConfig {
    FleetConfig {
        stream: StreamConfig {
            live_localization: false,
            ..StreamConfig::default()
        },
        expected_nodes: nodes,
        ..FleetConfig::default()
    }
}

fn seats(slices: &[Vec<CapturedFrame>]) -> Vec<(NodeConfig, Vec<CapturedFrame>)> {
    slices
        .iter()
        .map(|slice| {
            (
                NodeConfig {
                    // Small batches so the kill lands mid-stream for
                    // every node.
                    batch_frames: 16,
                    reorder_slack_s: required_slack_s(slice),
                    ..NodeConfig::default()
                },
                slice.clone(),
            )
        })
        .collect()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "marauder-fleet-recovery-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn mid_campaign_kill_and_restore_loses_zero_closed_windows() {
    let scenario = ChaosScenario::quick(7);
    let frames: Vec<CapturedFrame> = scenario.captures().iter().cloned().collect();
    let nodes = 3;
    let slices = split_round_robin(&frames, nodes);

    // Uninterrupted reference run.
    let mut fleet = LoopbackFleet::new(
        Aggregator::new(scenario.fresh_map(), fleet_config(nodes)),
        seats(&slices),
    );
    let closed_clean = fleet.run().expect("clean run");
    assert!(!closed_clean.is_empty(), "scenario closes windows");
    let mut agg = fleet.into_aggregator();
    let reference = render_fixes(&agg.batch_fixes(closed_clean.clone()));

    // Checkpointed run, killed mid-campaign: drop the fleet — and with
    // it every byte of in-memory merge state — once half the windows
    // have closed.
    let dir = temp_dir("kill");
    let mut cp = Checkpointer::new(&dir, 20.0).expect("checkpointer");
    let mut fleet = LoopbackFleet::new(
        Aggregator::new(scenario.fresh_map(), fleet_config(nodes)),
        seats(&slices),
    );
    let mut closed = Vec::new();
    let target = (closed_clean.len() / 2).max(1);
    loop {
        let (c, moved) = fleet.step().expect("step");
        closed.extend(c);
        cp.maybe_checkpoint(fleet.aggregator(), &closed)
            .expect("checkpoint");
        if closed.len() >= target {
            break;
        }
        assert!(moved, "stream drained before reaching the kill point");
    }
    drop(fleet);

    // Supervised restart: newest valid checkpoint, fresh node
    // processes. Each node re-handshakes and the aggregator's
    // `resume_seq` fast-forwards it past everything the checkpoint
    // already absorbed.
    let restored = restore_latest(&dir, &scenario.fresh_map(), &fleet_config(nodes))
        .expect("restore scans the directory")
        .expect("a checkpoint is on disk");
    assert_eq!(restored.skipped, 0, "every checkpoint written was valid");
    assert!(
        restored.closed.len() <= closed.len(),
        "the checkpoint cannot know windows closed after it"
    );
    let mut fleet = LoopbackFleet::new(restored.aggregator, seats(&slices));
    let resumed = fleet.run().expect("resumed run");

    // Windows closed between checkpoint and kill were lost from
    // memory, but their frames sit above the checkpoint's per-node
    // cursors, so the resumed run closes them again: the union is
    // exactly the clean run's window set, with no duplicates.
    let mut total = restored.closed;
    total.extend(resumed);
    assert_eq!(
        total.len(),
        closed_clean.len(),
        "a closed window was lost or duplicated across the crash"
    );
    let mut agg = fleet.into_aggregator();
    assert_eq!(
        render_fixes(&agg.batch_fixes(total)),
        reference,
        "recovered fixes differ from the uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
