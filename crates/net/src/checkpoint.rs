//! Periodic fleet checkpoints and supervised restart.
//!
//! A long campaign must survive an aggregator crash without losing a
//! single closed window. This module writes the aggregator's full
//! merge state — engine, per-node sequence cursors, release gate, and
//! every window closed so far — to an atomically-renamed checkpoint
//! file on a *stream-time* cadence, and restores the newest valid one
//! on restart. Rejoining nodes fast-forward through the aggregator's
//! `resume_seq`, replaying exactly the frames the checkpoint had not
//! yet absorbed, so the resumed run closes every window the interrupted
//! run would have.
//!
//! Cadence is keyed on [`Aggregator::fleet_watermark`] rather than the
//! wall clock: identical message sequences checkpoint at identical
//! points, which keeps crash-recovery tests bit-exact.

use crate::aggregator::{hex, unhex, Aggregator, FleetConfig};
use marauder_core::{MaraudersMap, PipelineError};
use marauder_stream::{write_atomic, ClosedWindow, RETAINED_CHECKPOINTS};
use marauder_wifi::MacAddr;
use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};
use std::str::FromStr;

/// Magic first line of a fleet checkpoint file.
pub const FLEET_CHECKPOINT_HEADER: &str = "# marauder fleet checkpoint v1";

/// Filename extension of checkpoint files in a checkpoint directory.
const CHECKPOINT_SUFFIX: &str = ".ckpt";

/// Errors from writing or restoring fleet checkpoints.
///
/// Corruption inside an individual checkpoint file is deliberately
/// *not* an error at this level: [`restore_latest`] skips damaged
/// files newest-first and only reports I/O failures on the directory
/// itself.
#[derive(Debug)]
pub enum CheckpointError {
    /// An underlying filesystem operation failed.
    Io {
        /// What the checkpointer was doing.
        op: &'static str,
        /// The OS error.
        source: std::io::Error,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { op, source } => {
                write!(f, "fleet checkpoint {op}: {source}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io { source, .. } => Some(source),
        }
    }
}

fn io_err(op: &'static str) -> impl FnOnce(std::io::Error) -> CheckpointError {
    move |source| CheckpointError::Io { op, source }
}

/// Writes periodic checkpoints of an [`Aggregator`] plus the closed
/// windows accumulated so far.
///
/// Files are named `fleet-<n>.ckpt` with a zero-padded monotone
/// counter, so lexicographic order is write order; each is produced
/// with [`write_atomic`], so a crash mid-write leaves either the old
/// file set or the new one, never a torn checkpoint.
///
/// Every checkpoint is a *full-state* document — engine snapshot plus
/// the complete closed-window list — so its size grows with campaign
/// length. To keep a long campaign's directory (and summed write cost)
/// bounded, only the newest [`RETAINED_CHECKPOINTS`] files are kept;
/// older ones are pruned after each successful write.
#[derive(Debug)]
pub struct Checkpointer {
    dir: PathBuf,
    every_s: f64,
    /// Fleet watermark at the last checkpoint; `-inf` before the first.
    last_mark: f64,
    next_index: u64,
}

impl Checkpointer {
    /// Opens (creating if needed) a checkpoint directory, continuing
    /// the file counter past any checkpoints already present.
    ///
    /// `every_s` is the minimum *stream-time* advance of the fleet
    /// watermark between checkpoints.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the directory cannot be created or
    /// listed.
    pub fn new(dir: &Path, every_s: f64) -> Result<Self, CheckpointError> {
        std::fs::create_dir_all(dir).map_err(io_err("create checkpoint dir"))?;
        let next_index = match list_checkpoints(dir)?.last() {
            Some((n, _)) => n + 1,
            None => 0,
        };
        Ok(Checkpointer {
            dir: dir.to_path_buf(),
            every_s,
            last_mark: f64::NEG_INFINITY,
            next_index,
        })
    }

    /// The directory checkpoints are written to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Checkpoints if the fleet watermark has advanced by at least the
    /// configured cadence since the last checkpoint (the first finite
    /// watermark always triggers one). Returns whether a checkpoint was
    /// written.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the checkpoint cannot be written.
    pub fn maybe_checkpoint(
        &mut self,
        aggregator: &Aggregator,
        closed: &[ClosedWindow],
    ) -> Result<bool, CheckpointError> {
        let wm = aggregator.fleet_watermark();
        if !checkpoint_due(self.last_mark, wm, self.every_s) {
            return Ok(false);
        }
        self.checkpoint_now(aggregator, closed)?;
        Ok(true)
    }

    /// Unconditionally writes a checkpoint capturing `aggregator` and
    /// the complete list of windows closed so far.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the checkpoint cannot be written.
    pub fn checkpoint_now(
        &mut self,
        aggregator: &Aggregator,
        closed: &[ClosedWindow],
    ) -> Result<(), CheckpointError> {
        let doc = checkpoint_document(aggregator, closed);
        let name = checkpoint_name(self.next_index);
        write_atomic(&self.dir.join(name), doc.as_bytes()).map_err(io_err("write checkpoint"))?;
        self.next_index += 1;
        // A NaN watermark must never be stored: with `last_mark = NaN`
        // both the `is_finite` and `< 0.0` cadence arms go false, which
        // would silently disable checkpointing for the rest of the
        // campaign. Keep the previous mark instead.
        let wm = aggregator.fleet_watermark();
        if !wm.is_nan() {
            self.last_mark = wm;
        }
        let reg = marauder_obs::global();
        reg.counter_add("fleet.checkpoints", 1);
        reg.counter_add("fleet.checkpoint_bytes", doc.len() as u64);
        self.prune();
        Ok(())
    }

    /// Removes checkpoint files older than the newest
    /// [`RETAINED_CHECKPOINTS`]. Best-effort: a failed unlink never
    /// fails the checkpoint that just succeeded.
    fn prune(&self) {
        let Ok(files) = list_checkpoints(&self.dir) else {
            return;
        };
        let excess = files.len().saturating_sub(RETAINED_CHECKPOINTS);
        for (_, path) in &files[..excess] {
            if std::fs::remove_file(path).is_ok() {
                marauder_obs::global().counter_add("fleet.checkpoints_pruned", 1);
            }
        }
    }
}

/// Whether the checkpoint cadence is due at fleet watermark `wm`.
///
/// `last_mark` is `-inf` before the first checkpoint, `+inf` once the
/// completion checkpoint is on disk, and finite otherwise. A
/// non-finite `wm` triggers nothing except the `+inf` completion case;
/// NaN in particular must neither trigger nor (see
/// [`Checkpointer::checkpoint_now`]) ever be stored as `last_mark`.
fn checkpoint_due(last_mark: f64, wm: f64, every_s: f64) -> bool {
    if wm.is_nan() || (wm.is_infinite() && wm.is_sign_negative()) {
        return false; // NaN or -inf: nothing meaningful to record
    }
    if last_mark.is_finite() {
        wm >= last_mark + every_s
    } else {
        // `-inf` (or a poisoned NaN, which cannot arise but must not
        // wedge the cadence) means never checkpointed: take the first
        // usable watermark. `+inf` means the completion checkpoint is
        // already on disk: nothing further to record.
        !(last_mark.is_infinite() && last_mark.is_sign_positive())
    }
}

/// What [`restore_latest`] recovered.
pub struct FleetRestore {
    /// The aggregator, rebuilt at checkpoint state; rejoining nodes
    /// fast-forward through its `resume_seq` handshake.
    pub aggregator: Aggregator,
    /// Every window the interrupted run had closed by checkpoint time.
    /// Feed these plus the resumed run's windows to
    /// [`Aggregator::batch_fixes`].
    pub closed: Vec<ClosedWindow>,
    /// The checkpoint file that was restored.
    pub file: PathBuf,
    /// Newer checkpoint files that were skipped as damaged.
    pub skipped: usize,
}

/// Restores the newest valid checkpoint in `dir`, skipping damaged
/// files (truncated, corrupted, or from a different format version)
/// newest-first. Returns `None` when the directory holds no usable
/// checkpoint — the caller starts a fresh campaign.
///
/// # Errors
///
/// [`CheckpointError::Io`] when the directory itself cannot be listed.
/// Damage inside individual files is never an error.
pub fn restore_latest(
    dir: &Path,
    map: &MaraudersMap,
    config: &FleetConfig,
) -> Result<Option<FleetRestore>, CheckpointError> {
    let reg = marauder_obs::global();
    let mut skipped = 0usize;
    let files = list_checkpoints(dir)?;
    for (_, path) in files.iter().rev() {
        let Ok(text) = std::fs::read_to_string(path) else {
            skipped += 1;
            continue;
        };
        match parse_checkpoint(&text, map.clone(), config.clone()) {
            Ok((aggregator, closed)) => {
                reg.counter_add("fleet.restores", 1);
                reg.counter_add("fleet.checkpoints_skipped", skipped as u64);
                return Ok(Some(FleetRestore {
                    aggregator,
                    closed,
                    file: path.clone(),
                    skipped,
                }));
            }
            Err(_) => skipped += 1,
        }
    }
    reg.counter_add("fleet.checkpoints_skipped", skipped as u64);
    Ok(None)
}

fn checkpoint_name(index: u64) -> String {
    format!("fleet-{index:020}{CHECKPOINT_SUFFIX}")
}

/// Numbered checkpoint files in `dir`, sorted ascending by index.
fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>, CheckpointError> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(io_err("list checkpoint dir"))?;
    for entry in entries {
        let entry = entry.map_err(io_err("list checkpoint dir"))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix("fleet-")
            .and_then(|s| s.strip_suffix(CHECKPOINT_SUFFIX))
        else {
            continue;
        };
        if let Ok(n) = stem.parse::<u64>() {
            out.push((n, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// Renders the checkpoint document: header, one `closed` record per
/// closed window, the embedded aggregator snapshot, and an `end`
/// sentinel carrying the record count (so truncation is detectable).
fn checkpoint_document(aggregator: &Aggregator, closed: &[ClosedWindow]) -> String {
    let mut out = String::new();
    out.push_str(FLEET_CHECKPOINT_HEADER);
    out.push('\n');
    for c in closed {
        let gamma = if c.gamma.is_empty() {
            "-".to_string()
        } else {
            c.gamma
                .iter()
                .map(|m| m.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        out.push_str(&format!(
            "closed {} {} {} {gamma}\n",
            c.window,
            hex(c.window_start_s),
            c.mobile
        ));
    }
    let fleet = aggregator.snapshot();
    let nlines = fleet.lines().count();
    out.push_str(&format!("fleet {nlines}\n"));
    out.push_str(&fleet);
    if !fleet.ends_with('\n') {
        out.push('\n');
    }
    out.push_str(&format!("end {}\n", closed.len()));
    out
}

/// Parses a checkpoint document back into an aggregator and its closed
/// windows. Errors are strings because the only caller skips the file
/// and tries an older one.
fn parse_checkpoint(
    text: &str,
    map: MaraudersMap,
    config: FleetConfig,
) -> Result<(Aggregator, Vec<ClosedWindow>), String> {
    let lines: Vec<&str> = text.lines().collect();
    if lines.first().copied() != Some(FLEET_CHECKPOINT_HEADER) {
        return Err("bad checkpoint header".to_string());
    }
    let mut closed = Vec::new();
    let mut i = 1usize;
    while i < lines.len() {
        let line = lines[i];
        if let Some(rest) = line.strip_prefix("closed ") {
            closed.push(parse_closed(rest).map_err(|e| format!("line {}: {e}", i + 1))?);
            i += 1;
        } else {
            break;
        }
    }
    let Some(fleet_decl) = lines.get(i) else {
        return Err("missing fleet block".to_string());
    };
    let nlines: usize = fleet_decl
        .strip_prefix("fleet ")
        .ok_or_else(|| format!("line {}: expected fleet block", i + 1))?
        .parse()
        .map_err(|e| format!("line {}: bad fleet line count: {e}", i + 1))?;
    i += 1;
    if i + nlines > lines.len() {
        return Err("truncated fleet block".to_string());
    }
    let fleet_text: String = lines[i..i + nlines]
        .iter()
        .map(|l| format!("{l}\n"))
        .collect();
    i += nlines;
    match lines.get(i) {
        Some(end) if *end == format!("end {}", closed.len()) => {}
        Some(end) => return Err(format!("bad end sentinel {end:?}")),
        None => return Err("missing end sentinel".to_string()),
    }
    let aggregator =
        Aggregator::restore(map, config, &fleet_text).map_err(|e| format!("fleet block: {e}"))?;
    Ok((aggregator, closed))
}

/// Parses one `closed` record body:
/// `<window> <start_bits_hex> <mobile> <gamma_csv|->`.
///
/// The localization outcome is not persisted — checkpointed campaigns
/// run with live localization off and refix everything in one batch
/// pass — so restored windows carry the deferred marker.
fn parse_closed(rest: &str) -> Result<ClosedWindow, String> {
    let fields: Vec<&str> = rest.split(' ').collect();
    if fields.len() != 4 {
        return Err(format!("expected 4 fields, got {}", fields.len()));
    }
    let window: i64 = fields[0]
        .parse()
        .map_err(|e| format!("bad window index: {e}"))?;
    let window_start_s = unhex(fields[1])?;
    let mobile = MacAddr::from_str(fields[2]).map_err(|e| e.to_string())?;
    let mut gamma = BTreeSet::new();
    if fields[3] != "-" {
        for part in fields[3].split(',') {
            gamma.insert(MacAddr::from_str(part).map_err(|e| e.to_string())?);
        }
    }
    Ok(ClosedWindow {
        window,
        window_start_s,
        mobile,
        gamma,
        outcome: Err(PipelineError::DeferredLocalization),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{Message, PROTOCOL_VERSION};
    use marauder_core::apdb::{ApDatabase, ApRecord};
    use marauder_core::pipeline::{AttackConfig, KnowledgeLevel};
    use marauder_geo::Point;
    use marauder_stream::StreamConfig;
    use marauder_wifi::channel::Channel;
    use marauder_wifi::sniffer::CapturedFrame;
    use marauder_wifi::ssid::Ssid;
    use marauder_wifi::Frame;

    fn map() -> MaraudersMap {
        let db: ApDatabase = [
            (100u64, Point::new(0.0, 0.0)),
            (101, Point::new(100.0, 0.0)),
            (102, Point::new(50.0, 80.0)),
        ]
        .into_iter()
        .map(|(i, p)| ApRecord {
            bssid: MacAddr::from_index(i),
            ssid: None,
            location: p,
            radius: Some(120.0),
        })
        .collect();
        MaraudersMap::new(db, KnowledgeLevel::Full, AttackConfig::default())
    }

    fn config() -> FleetConfig {
        FleetConfig {
            stream: StreamConfig {
                live_localization: false,
                ..StreamConfig::default()
            },
            expected_nodes: 1,
            ..FleetConfig::default()
        }
    }

    fn hello(id: u32) -> Message {
        Message::Hello {
            node_id: id,
            clock_offset_s: 0.0,
            version: PROTOCOL_VERSION,
            wants_snapshot: false,
        }
    }

    fn response(t: f64, ap: u64, mobile: u64) -> CapturedFrame {
        CapturedFrame {
            time_s: t,
            card: 0,
            frame: Frame::probe_response(
                MacAddr::from_index(ap),
                MacAddr::from_index(mobile),
                Ssid::new("x").expect("valid ssid"),
                Channel::bg(6).expect("valid channel"),
            ),
        }
    }

    fn driven_aggregator(n_frames: usize) -> (Aggregator, Vec<ClosedWindow>) {
        let mut agg = Aggregator::new(map(), config());
        let mut closed = Vec::new();
        closed.extend(agg.on_message(&hello(1)).expect("hello").closed);
        let frames: Vec<CapturedFrame> = (0..n_frames)
            .map(|k| response(k as f64 * 7.0, 100 + (k as u64 % 3), 0x50 + (k as u64 % 2)))
            .collect();
        let last_t = (n_frames as f64 - 1.0) * 7.0;
        closed.extend(
            agg.on_message(&Message::FrameBatch {
                node_id: 1,
                seq: 0,
                frames,
            })
            .expect("batch")
            .closed,
        );
        closed.extend(
            agg.on_message(&Message::Heartbeat {
                node_id: 1,
                watermark_s: last_t,
            })
            .expect("heartbeat")
            .closed,
        );
        (agg, closed)
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("marauder-fleet-ckpt-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn checkpoint_round_trips_closed_windows_and_state() {
        let dir = temp_dir("roundtrip");
        let (agg, closed) = driven_aggregator(40);
        assert!(!closed.is_empty(), "scenario closes windows");
        let mut cp = Checkpointer::new(&dir, 30.0).expect("checkpointer");
        cp.checkpoint_now(&agg, &closed).expect("checkpoint");

        let restored = restore_latest(&dir, &map(), &config())
            .expect("restore")
            .expect("a checkpoint exists");
        assert_eq!(restored.skipped, 0);
        assert_eq!(restored.closed.len(), closed.len());
        for (a, b) in restored.closed.iter().zip(&closed) {
            assert_eq!(a.window, b.window);
            assert_eq!(a.window_start_s.to_bits(), b.window_start_s.to_bits());
            assert_eq!(a.mobile, b.mobile);
            assert_eq!(a.gamma, b.gamma);
        }
        assert_eq!(restored.aggregator.snapshot(), agg.snapshot());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn damaged_newest_checkpoint_is_skipped() {
        let dir = temp_dir("skip");
        let (agg, closed) = driven_aggregator(40);
        let mut cp = Checkpointer::new(&dir, 30.0).expect("checkpointer");
        cp.checkpoint_now(&agg, &closed).expect("first checkpoint");
        cp.checkpoint_now(&agg, &closed).expect("second checkpoint");
        // Truncate the newest file mid-document.
        let newest = dir.join(checkpoint_name(1));
        let text = std::fs::read_to_string(&newest).expect("read newest");
        std::fs::write(&newest, &text[..text.len() / 2]).expect("truncate");

        let restored = restore_latest(&dir, &map(), &config())
            .expect("restore")
            .expect("older checkpoint survives");
        assert_eq!(restored.skipped, 1);
        assert_eq!(restored.file, dir.join(checkpoint_name(0)));
        assert_eq!(restored.aggregator.snapshot(), agg.snapshot());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn empty_directory_restores_nothing() {
        let dir = temp_dir("empty");
        assert!(restore_latest(&dir, &map(), &config())
            .expect("restore")
            .is_none());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn cadence_ignores_nan_and_negative_infinity_watermarks() {
        // NaN must neither trigger a checkpoint (it would then be
        // stored as last_mark, wedging the cadence forever) nor arm it.
        assert!(!checkpoint_due(f64::NEG_INFINITY, f64::NAN, 30.0));
        assert!(!checkpoint_due(10.0, f64::NAN, 30.0));
        assert!(!checkpoint_due(f64::NEG_INFINITY, f64::NEG_INFINITY, 30.0));
        // First finite watermark always triggers.
        assert!(checkpoint_due(f64::NEG_INFINITY, 0.0, 30.0));
        // Finite cadence.
        assert!(!checkpoint_due(10.0, 39.0, 30.0));
        assert!(checkpoint_due(10.0, 40.0, 30.0));
        // +inf = stream complete: one final checkpoint, then quiet.
        assert!(checkpoint_due(10.0, f64::INFINITY, 30.0));
        assert!(!checkpoint_due(f64::INFINITY, f64::INFINITY, 30.0));
        // A poisoned NaN last_mark heals instead of wedging.
        assert!(checkpoint_due(f64::NAN, 10.0, 30.0));
    }

    #[test]
    fn nan_watermark_is_never_stored_as_last_mark() {
        let dir = temp_dir("nanmark");
        let (agg, closed) = driven_aggregator(40);
        let mut cp = Checkpointer::new(&dir, 30.0).expect("checkpointer");
        cp.last_mark = f64::NAN;
        // A finite watermark still checkpoints and repairs the mark.
        assert!(cp.maybe_checkpoint(&agg, &closed).expect("checkpoint"));
        assert!(cp.last_mark.is_finite());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn old_checkpoints_are_pruned_to_retention() {
        let dir = temp_dir("prune");
        let (agg, closed) = driven_aggregator(40);
        let mut cp = Checkpointer::new(&dir, 30.0).expect("checkpointer");
        for _ in 0..RETAINED_CHECKPOINTS + 3 {
            cp.checkpoint_now(&agg, &closed).expect("checkpoint");
        }
        let files = list_checkpoints(&dir).expect("list");
        assert_eq!(files.len(), RETAINED_CHECKPOINTS);
        // The newest survive, and restore still works.
        assert_eq!(files.last().unwrap().0, RETAINED_CHECKPOINTS as u64 + 2);
        let restored = restore_latest(&dir, &map(), &config())
            .expect("restore")
            .expect("a checkpoint exists");
        assert_eq!(restored.aggregator.snapshot(), agg.snapshot());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn checkpointer_continues_numbering_and_respects_cadence() {
        let dir = temp_dir("cadence");
        let (agg, closed) = driven_aggregator(40);
        let mut cp = Checkpointer::new(&dir, 1e9).expect("checkpointer");
        // First finite watermark always checkpoints; the huge cadence
        // then suppresses the second attempt.
        assert!(cp.maybe_checkpoint(&agg, &closed).expect("first"));
        assert!(!cp.maybe_checkpoint(&agg, &closed).expect("second"));

        // A new checkpointer over the same directory keeps counting.
        let mut cp2 = Checkpointer::new(&dir, 1e9).expect("reopen");
        cp2.checkpoint_now(&agg, &closed).expect("checkpoint");
        assert!(dir.join(checkpoint_name(1)).exists());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
