//! The fleet aggregator: merges N sniffer-node streams into one
//! time-ordered frame sequence feeding a [`StreamEngine`].
//!
//! # Watermark merge
//!
//! Each node periodically promises, via [`Message::Heartbeat`], that no
//! future frame of its own will carry a timestamp below the announced
//! watermark (`+∞` = stream complete). The aggregator corrects each
//! announcement by the node's handshake clock offset and computes the
//! *fleet watermark*: the minimum over all expected, non-evicted
//! nodes' corrected watermarks. Buffered frames at or below the fleet
//! watermark can never be preceded by anything still in flight, so
//! they are released to the engine sorted by `(timestamp, node id,
//! arrival order)` — a total, deterministic order. Releases are
//! monotone (`released_up_to` never regresses), so the engine sees a
//! globally nondecreasing stream and counts zero late frames whenever
//! every node keeps its promise.
//!
//! # Failure semantics
//!
//! A node that stops heartbeating stalls the fleet watermark. Progress
//! is restored two ways: the node rejoins (a fresh `Hello` with its
//! old id resumes from `resume_seq`, losing nothing), or — after its
//! corrected watermark falls more than [`FleetConfig::dead_after_s`]
//! of *stream time* behind the fleet's front — it is evicted and the
//! merge continues without it. Eviction is measured against stream
//! progress, never the wall clock, so every merge decision is a pure
//! function of the message sequence.

use crate::codec::{snapshot_messages, Message, PROTOCOL_VERSION};
use crate::transport::NetError;
use marauder_core::pipeline::{MaraudersMap, TrackFix};
use marauder_stream::{ClosedWindow, StreamEngine};
use marauder_wifi::frame::Frame;
use marauder_wifi::sniffer::CapturedFrame;
use std::collections::BTreeMap;
use std::fmt;

pub use marauder_stream::StreamConfig;

/// Bucket bounds (inclusive upper edges, seconds of stream time) for
/// the per-node watermark-lag histogram `net.node_lag_s`: how far each
/// node trails the fleet's front when it heartbeats. Buckets above a
/// deployment's `dead_after_s` show nodes at risk of eviction.
pub const NODE_LAG_BOUNDS_S: [f64; 6] = [0.1, 0.5, 1.0, 5.0, 15.0, 60.0];

/// Aggregator behaviour knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Engine configuration for the merged stream.
    pub stream: StreamConfig,
    /// Nodes that must complete a handshake before any frame is
    /// released — prevents an early-starting node from racing the
    /// merge gate while a sibling with older frames is still joining.
    pub expected_nodes: usize,
    /// Evict a node once its corrected watermark falls this many
    /// seconds of stream time behind the most advanced node. `0`
    /// disables eviction (a silent node stalls the fleet forever).
    pub dead_after_s: f64,
    /// Bounded-memory guarantee: when more than this many frames are
    /// buffered, the oldest overflow is force-released (the engine's
    /// own lateness accounting then judges any consequences). `0`
    /// disables the bound.
    pub max_buffered_frames: usize,
    /// Also subtract each node's clock offset from its *frame
    /// timestamps*, for fleets whose capture logs are stamped by the
    /// skewed node clocks themselves. Off by default: the correction
    /// is one f64 subtraction per frame and is bit-exact only when
    /// offset and timestamp are exactly representable together (e.g.
    /// dyadic values) — watermark correction alone never perturbs
    /// frame data.
    pub correct_frame_times: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            stream: StreamConfig::default(),
            expected_nodes: 1,
            dead_after_s: 0.0,
            max_buffered_frames: 0,
            correct_frame_times: false,
        }
    }
}

/// Merge-layer counters — the aggregator's observability surface.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Frame batches accepted.
    pub batches: u64,
    /// Frames pushed into the engine.
    pub frames_relayed: u64,
    /// Heartbeats processed.
    pub heartbeats: u64,
    /// Batches ignored because their sequence number had already been
    /// accepted (re-sends after a rejoin).
    pub duplicate_batches: u64,
    /// Handshakes from an already-known node id.
    pub reconnects: u64,
    /// Nodes evicted for falling `dead_after_s` behind.
    pub nodes_evicted: u64,
    /// Checkpoints streamed to nodes that asked for one.
    pub snapshots_served: u64,
    /// Frames released by the `max_buffered_frames` bound rather than
    /// the watermark.
    pub frames_forced: u64,
    /// High-water mark of simultaneously buffered frames.
    pub buffered_peak: usize,
}

/// What one incoming message produced: protocol replies to send back
/// to the originating node, and any windows the merge released.
#[derive(Debug, Default)]
pub struct Turn {
    /// Replies for the node the message came from.
    pub replies: Vec<Message>,
    /// Windows closed by frames this message allowed to release.
    pub closed: Vec<ClosedWindow>,
}

/// Per-node merge state.
#[derive(Debug, Clone)]
struct NodeState {
    /// Clock offset announced in the handshake.
    clock_offset_s: f64,
    /// Next batch sequence number expected.
    next_seq: u64,
    /// Corrected watermark (fleet time); `-∞` before the first
    /// heartbeat, `+∞` once the node's stream completed.
    watermark_s: f64,
    /// Dropped from the merge gate for falling too far behind.
    evicted: bool,
    /// Transport currently attached (TCP bookkeeping only — the merge
    /// gate cares about watermarks, not sockets).
    connected: bool,
}

/// A frame parked until the fleet watermark passes it.
#[derive(Debug, Clone)]
struct Buffered {
    /// Merge timestamp (corrected when `correct_frame_times`).
    time_s: f64,
    node_id: u32,
    /// Global arrival index — the deterministic tiebreaker that keeps
    /// equal-timestamp frames in a stable, reproducible order.
    arrival: u64,
    frame: CapturedFrame,
}

/// A parse failure restoring a fleet checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetSnapshotError {
    /// The checkpoint was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the header.
        found: u32,
        /// Version this build reads.
        supported: u32,
    },
    /// A structurally invalid document.
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The embedded engine snapshot failed to restore.
    Engine(marauder_stream::SnapshotError),
}

impl fmt::Display for FleetSnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetSnapshotError::VersionMismatch { found, supported } => write!(
                f,
                "fleet snapshot version v{found} is not supported (this build reads v{supported})"
            ),
            FleetSnapshotError::Malformed { line, reason } => {
                write!(f, "fleet snapshot parse error on line {line}: {reason}")
            }
            FleetSnapshotError::Engine(e) => write!(f, "embedded engine snapshot: {e}"),
        }
    }
}

impl std::error::Error for FleetSnapshotError {}

/// Magic first line of the fleet checkpoint format.
pub const FLEET_SNAPSHOT_HEADER: &str = "# marauder fleet snapshot v1";

/// Version this build writes and reads.
const FLEET_SNAPSHOT_VERSION: u32 = 1;

pub(crate) fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

pub(crate) fn unhex(s: &str) -> Result<f64, String> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad f64 bits {s:?}: {e}"))
}

fn hex_bytes(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn unhex_bytes(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err(format!("odd-length hex string ({} chars)", s.len()));
    }
    (0..s.len() / 2)
        .map(|i| {
            u8::from_str_radix(&s[2 * i..2 * i + 2], 16)
                .map_err(|e| format!("bad hex byte at {}: {e}", 2 * i))
        })
        .collect()
}

/// The multi-node merge layer in front of a [`StreamEngine`].
pub struct Aggregator {
    engine: StreamEngine,
    config: FleetConfig,
    nodes: BTreeMap<u32, NodeState>,
    buffer: Vec<Buffered>,
    /// Timestamps at or below this have been released; the gate never
    /// regresses.
    released_up_to: f64,
    /// Next arrival index.
    arrival: u64,
    stats: FleetStats,
    /// Local lag buckets ([`NODE_LAG_BOUNDS_S`] + overflow), merged
    /// into the global registry once in [`finish`](Self::finish).
    lag_counts: [u64; NODE_LAG_BOUNDS_S.len() + 1],
    metrics_flushed: bool,
}

impl Aggregator {
    /// Wraps AP knowledge and a fleet configuration into an empty
    /// merge layer.
    pub fn new(map: MaraudersMap, config: FleetConfig) -> Self {
        let engine = StreamEngine::new(map, config.stream.clone());
        Aggregator {
            engine,
            config,
            nodes: BTreeMap::new(),
            buffer: Vec::new(),
            released_up_to: f64::NEG_INFINITY,
            arrival: 0,
            stats: FleetStats::default(),
            lag_counts: [0; NODE_LAG_BOUNDS_S.len() + 1],
            metrics_flushed: false,
        }
    }

    /// Merge counters so far.
    pub fn stats(&self) -> &FleetStats {
        &self.stats
    }

    /// The wrapped engine (counters, watermark, map access).
    pub fn engine(&self) -> &StreamEngine {
        &self.engine
    }

    /// Nodes that have completed a handshake.
    pub fn joined_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The current fleet watermark: `-∞` until every expected node has
    /// joined and heartbeat, `+∞` once every non-evicted node's stream
    /// completed.
    pub fn fleet_watermark(&self) -> f64 {
        if self.nodes.len() < self.config.expected_nodes {
            return f64::NEG_INFINITY;
        }
        let mut wm = f64::INFINITY;
        let mut any = false;
        for st in self.nodes.values() {
            if st.evicted {
                continue;
            }
            any = true;
            if st.watermark_s < wm {
                wm = st.watermark_s;
            }
        }
        if any {
            wm
        } else {
            f64::NEG_INFINITY
        }
    }

    /// Whether every expected node joined, every non-evicted node
    /// completed its stream, and nothing remains buffered.
    pub fn finished(&self) -> bool {
        self.nodes.len() >= self.config.expected_nodes
            && self.buffer.is_empty()
            && self
                .nodes
                .values()
                .all(|st| st.evicted || (st.watermark_s.is_infinite() && st.watermark_s > 0.0))
    }

    /// Processes one message from a node, returning protocol replies
    /// and any windows the merge released.
    ///
    /// # Errors
    ///
    /// [`NetError::Handshake`] on a version mismatch,
    /// [`NetError::UnknownNode`] for traffic before a handshake,
    /// [`NetError::SequenceGap`] when a node skipped batches, and
    /// [`NetError::Protocol`] for messages only an aggregator sends.
    pub fn on_message(&mut self, msg: &Message) -> Result<Turn, NetError> {
        match msg {
            Message::Hello {
                node_id,
                clock_offset_s,
                version,
                wants_snapshot,
            } => {
                if *version != PROTOCOL_VERSION {
                    return Err(NetError::Handshake {
                        found: *version,
                        supported: PROTOCOL_VERSION,
                    });
                }
                let resume_seq = match self.nodes.get_mut(node_id) {
                    Some(st) => {
                        // Rejoin: same identity, resumed stream. An
                        // evicted node re-enters the merge gate.
                        st.connected = true;
                        st.evicted = false;
                        st.clock_offset_s = *clock_offset_s;
                        self.stats.reconnects += 1;
                        st.next_seq
                    }
                    None => {
                        self.nodes.insert(
                            *node_id,
                            NodeState {
                                clock_offset_s: *clock_offset_s,
                                next_seq: 0,
                                watermark_s: f64::NEG_INFINITY,
                                evicted: false,
                                connected: true,
                            },
                        );
                        0
                    }
                };
                let mut replies = vec![Message::HelloAck {
                    node_id: *node_id,
                    version: PROTOCOL_VERSION,
                    resume_seq,
                }];
                if *wants_snapshot {
                    replies.extend(snapshot_messages(*node_id, &self.snapshot()));
                    self.stats.snapshots_served += 1;
                }
                Ok(Turn {
                    replies,
                    closed: Vec::new(),
                })
            }
            Message::FrameBatch {
                node_id,
                seq,
                frames,
            } => {
                let st = self
                    .nodes
                    .get(node_id)
                    .ok_or(NetError::UnknownNode(*node_id))?;
                if *seq < st.next_seq {
                    self.stats.duplicate_batches += 1;
                    return Ok(Turn::default());
                }
                if *seq > st.next_seq {
                    return Err(NetError::SequenceGap {
                        node: *node_id,
                        expected: st.next_seq,
                        got: *seq,
                    });
                }
                let offset = st.clock_offset_s;
                if let Some(st) = self.nodes.get_mut(node_id) {
                    st.next_seq += 1;
                }
                self.stats.batches += 1;
                for frame in frames {
                    let time_s = if self.config.correct_frame_times {
                        frame.time_s - offset
                    } else {
                        frame.time_s
                    };
                    self.buffer.push(Buffered {
                        time_s,
                        node_id: *node_id,
                        arrival: self.arrival,
                        frame: CapturedFrame {
                            time_s,
                            card: frame.card,
                            frame: frame.frame.clone(),
                        },
                    });
                    self.arrival += 1;
                }
                if self.buffer.len() > self.stats.buffered_peak {
                    self.stats.buffered_peak = self.buffer.len();
                }
                let mut closed = self.enforce_buffer_bound();
                closed.extend(self.release());
                Ok(Turn {
                    replies: Vec::new(),
                    closed,
                })
            }
            Message::Heartbeat {
                node_id,
                watermark_s,
            } => {
                let st = self
                    .nodes
                    .get_mut(node_id)
                    .ok_or(NetError::UnknownNode(*node_id))?;
                self.stats.heartbeats += 1;
                // A done marker passes through uncorrected; finite
                // announcements are node-clock readings.
                let corrected = if watermark_s.is_infinite() {
                    *watermark_s
                } else {
                    *watermark_s - st.clock_offset_s
                };
                if corrected > st.watermark_s {
                    st.watermark_s = corrected;
                }
                self.observe_lags();
                self.evict_stalled();
                Ok(Turn {
                    replies: Vec::new(),
                    closed: self.release(),
                })
            }
            Message::HelloAck { .. }
            | Message::SnapshotOffer { .. }
            | Message::SnapshotChunk { .. } => {
                Err(NetError::Protocol("aggregator-only message from a node"))
            }
        }
    }

    /// Marks a node's transport as gone (TCP reader hangup). The merge
    /// gate is unaffected — the node either rejoins and resumes, or
    /// stalls until stream-time eviction removes it.
    pub fn node_disconnected(&mut self, node_id: u32) {
        if let Some(st) = self.nodes.get_mut(&node_id) {
            st.connected = false;
        }
    }

    /// Drains every buffered frame in merge order, closes every open
    /// window, and flushes metrics. Call once, after the last message.
    pub fn finish(&mut self) -> Vec<ClosedWindow> {
        let mut due = std::mem::take(&mut self.buffer);
        Self::sort_due(&mut due);
        let mut closed = Vec::new();
        for b in &due {
            closed.extend(self.engine.push(&b.frame));
        }
        self.stats.frames_relayed += due.len() as u64;
        closed.extend(self.engine.finish());
        self.flush_metrics();
        closed
    }

    /// Batch-equivalent localization of closed windows — delegates to
    /// [`StreamEngine::batch_fixes`].
    pub fn batch_fixes(&mut self, closed: Vec<ClosedWindow>) -> Vec<TrackFix> {
        self.engine.batch_fixes(closed)
    }

    /// Releases every buffered frame at or below the fleet watermark,
    /// in merge order, and feeds it to the engine.
    fn release(&mut self) -> Vec<ClosedWindow> {
        let wm = self.fleet_watermark();
        let gate = if wm > self.released_up_to {
            wm
        } else {
            self.released_up_to
        };
        if gate.is_infinite() && gate < 0.0 {
            return Vec::new();
        }
        let mut due = Vec::new();
        let mut kept = Vec::with_capacity(self.buffer.len());
        for b in self.buffer.drain(..) {
            if b.time_s <= gate {
                due.push(b);
            } else {
                kept.push(b);
            }
        }
        self.buffer = kept;
        self.released_up_to = gate;
        if due.is_empty() {
            return Vec::new();
        }
        Self::sort_due(&mut due);
        let mut closed = Vec::new();
        for b in &due {
            closed.extend(self.engine.push(&b.frame));
        }
        self.stats.frames_relayed += due.len() as u64;
        closed
    }

    /// Force-releases the oldest overflow when the buffer bound is
    /// exceeded. Advances the gate to the last forced timestamp so
    /// later releases stay nondecreasing.
    fn enforce_buffer_bound(&mut self) -> Vec<ClosedWindow> {
        let max = self.config.max_buffered_frames;
        if max == 0 || self.buffer.len() <= max {
            return Vec::new();
        }
        let overflow = self.buffer.len() - max;
        Self::sort_due(&mut self.buffer);
        let mut closed = Vec::new();
        for b in self.buffer.drain(..overflow).collect::<Vec<_>>() {
            if b.time_s > self.released_up_to {
                self.released_up_to = b.time_s;
            }
            closed.extend(self.engine.push(&b.frame));
            self.stats.frames_relayed += 1;
            self.stats.frames_forced += 1;
        }
        closed
    }

    /// The deterministic merge order: timestamp, then node id, then
    /// global arrival index.
    fn sort_due(due: &mut [Buffered]) {
        due.sort_by(|a, b| {
            a.time_s
                .total_cmp(&b.time_s)
                .then(a.node_id.cmp(&b.node_id))
                .then(a.arrival.cmp(&b.arrival))
        });
    }

    /// Buckets each live node's lag behind the fleet front.
    fn observe_lags(&mut self) {
        let mut front = f64::NEG_INFINITY;
        for st in self.nodes.values() {
            if !st.evicted && st.watermark_s.is_finite() && st.watermark_s > front {
                front = st.watermark_s;
            }
        }
        if !front.is_finite() {
            return;
        }
        let mut observed = Vec::new();
        for st in self.nodes.values() {
            if st.evicted || !st.watermark_s.is_finite() {
                continue;
            }
            let lag = front - st.watermark_s;
            observed.push(if lag > 0.0 { lag } else { 0.0 });
        }
        for lag in observed {
            let mut slot = NODE_LAG_BOUNDS_S.len();
            for (i, b) in NODE_LAG_BOUNDS_S.iter().enumerate() {
                if lag <= *b {
                    slot = i;
                    break;
                }
            }
            self.lag_counts[slot] += 1;
        }
    }

    /// Evicts nodes whose corrected watermark trails the fleet front
    /// by more than `dead_after_s` of stream time.
    fn evict_stalled(&mut self) {
        if self.config.dead_after_s <= 0.0 {
            return;
        }
        let mut front = f64::NEG_INFINITY;
        for st in self.nodes.values() {
            if !st.evicted && st.watermark_s.is_finite() && st.watermark_s > front {
                front = st.watermark_s;
            }
        }
        if !front.is_finite() {
            return;
        }
        let dead_after = self.config.dead_after_s;
        let mut evicted = 0u64;
        for st in self.nodes.values_mut() {
            // A node that has not reported yet (-∞) or has finished
            // (+∞) is not stalled; only a finite, lagging watermark is.
            if st.evicted || !st.watermark_s.is_finite() {
                continue;
            }
            if front - st.watermark_s > dead_after {
                st.evicted = true;
                evicted += 1;
            }
        }
        self.stats.nodes_evicted += evicted;
    }

    /// One-shot merge of local counters into the global registry.
    fn flush_metrics(&mut self) {
        if self.metrics_flushed {
            return;
        }
        self.metrics_flushed = true;
        let reg = marauder_obs::global();
        reg.counter_add("net.batches", self.stats.batches);
        reg.counter_add("net.frames_relayed", self.stats.frames_relayed);
        reg.counter_add("net.heartbeats", self.stats.heartbeats);
        reg.counter_add("net.duplicate_batches", self.stats.duplicate_batches);
        reg.counter_add("net.reconnects", self.stats.reconnects);
        reg.counter_add("net.nodes_evicted", self.stats.nodes_evicted);
        reg.counter_add("net.snapshots_served", self.stats.snapshots_served);
        reg.counter_add("net.frames_forced", self.stats.frames_forced);
        reg.gauge_max("net.buffered_peak", self.stats.buffered_peak as i64);
        reg.histogram_merge("net.node_lag_s", &NODE_LAG_BOUNDS_S, &self.lag_counts);
    }

    /// Serializes the full merge state — node table, parked frames,
    /// counters, and the embedded engine snapshot — to a line-oriented
    /// checkpoint. Restoring and resuming the message stream yields
    /// output byte-identical to an uninterrupted run.
    pub fn snapshot(&self) -> String {
        let mut out = String::new();
        out.push_str(FLEET_SNAPSHOT_HEADER);
        out.push('\n');
        out.push_str(&format!("expected {}\n", self.config.expected_nodes));
        out.push_str(&format!("dead_after_s {}\n", hex(self.config.dead_after_s)));
        out.push_str(&format!(
            "max_buffered {}\n",
            self.config.max_buffered_frames
        ));
        out.push_str(&format!(
            "correct_times {}\n",
            u8::from(self.config.correct_frame_times)
        ));
        out.push_str(&format!("released {}\n", hex(self.released_up_to)));
        out.push_str(&format!("arrival {}\n", self.arrival));
        let s = &self.stats;
        out.push_str(&format!(
            "fstats {} {} {} {} {} {} {} {} {}\n",
            s.batches,
            s.frames_relayed,
            s.heartbeats,
            s.duplicate_batches,
            s.reconnects,
            s.nodes_evicted,
            s.snapshots_served,
            s.frames_forced,
            s.buffered_peak
        ));
        for (id, st) in &self.nodes {
            out.push_str(&format!(
                "node {id} {} {} {} {}\n",
                hex(st.clock_offset_s),
                st.next_seq,
                hex(st.watermark_s),
                u8::from(st.evicted)
            ));
        }
        for b in &self.buffer {
            out.push_str(&format!(
                "buf {} {} {} {} {}\n",
                b.node_id,
                b.arrival,
                hex(b.frame.time_s),
                b.frame.card,
                hex_bytes(&b.frame.frame.encode())
            ));
        }
        let engine_text = self.engine.snapshot();
        out.push_str(&format!("engine {}\n", engine_text.lines().count()));
        out.push_str(&engine_text);
        if !engine_text.ends_with('\n') {
            out.push('\n');
        }
        let records = out.lines().count() - 1;
        out.push_str(&format!("end {records}\n"));
        out
    }

    /// Rebuilds an aggregator from the same AP knowledge and a
    /// checkpoint produced by [`snapshot`](Self::snapshot).
    ///
    /// The engine's live/warm mode flags are process configuration and
    /// not serialized (see [`StreamEngine::restore`]); pass the
    /// desired [`StreamConfig`] via `config.stream` — its
    /// `live_localization`/`warm_start` are applied, while the
    /// windowing knobs come from the checkpoint itself.
    ///
    /// # Errors
    ///
    /// [`FleetSnapshotError`] on a malformed or version-mismatched
    /// document, or when the embedded engine snapshot fails.
    pub fn restore(
        map: MaraudersMap,
        config: FleetConfig,
        text: &str,
    ) -> Result<Aggregator, FleetSnapshotError> {
        let malformed =
            |line: usize, reason: String| FleetSnapshotError::Malformed { line, reason };
        let lines: Vec<&str> = text.lines().collect();
        match lines.first() {
            Some(h) if h.trim() == FLEET_SNAPSHOT_HEADER => {}
            Some(h) if h.trim_start().starts_with("# marauder fleet snapshot v") => {
                let found = h
                    .trim_start()
                    .trim_start_matches("# marauder fleet snapshot v")
                    .trim()
                    .parse::<u32>()
                    .map_err(|e| malformed(1, format!("bad version number: {e}")))?;
                return Err(FleetSnapshotError::VersionMismatch {
                    found,
                    supported: FLEET_SNAPSHOT_VERSION,
                });
            }
            _ => {
                return Err(malformed(
                    1,
                    format!("missing header {FLEET_SNAPSHOT_HEADER:?}"),
                ))
            }
        }

        let mut agg = Aggregator::new(map.clone(), config);
        let mut engine: Option<StreamEngine> = None;
        let mut records = 0usize;
        let mut end_seen = false;
        let mut i = 1usize;
        while i < lines.len() {
            let no = i + 1;
            let line = lines[i];
            i += 1;
            if line.trim().is_empty() {
                continue;
            }
            if end_seen {
                return Err(malformed(no, "record after the end sentinel".into()));
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let args = &fields[1..];
            let expect = |n: usize| -> Result<(), FleetSnapshotError> {
                if args.len() == n {
                    Ok(())
                } else {
                    Err(malformed(
                        no,
                        format!("{} takes {n} fields, got {}", fields[0], args.len()),
                    ))
                }
            };
            match fields[0] {
                "expected" => {
                    expect(1)?;
                    agg.config.expected_nodes = args[0]
                        .parse()
                        .map_err(|e: std::num::ParseIntError| malformed(no, e.to_string()))?;
                }
                "dead_after_s" => {
                    expect(1)?;
                    agg.config.dead_after_s = unhex(args[0]).map_err(|e| malformed(no, e))?;
                }
                "max_buffered" => {
                    expect(1)?;
                    agg.config.max_buffered_frames = args[0]
                        .parse()
                        .map_err(|e: std::num::ParseIntError| malformed(no, e.to_string()))?;
                }
                "correct_times" => {
                    expect(1)?;
                    agg.config.correct_frame_times = args[0] == "1";
                }
                "released" => {
                    expect(1)?;
                    agg.released_up_to = unhex(args[0]).map_err(|e| malformed(no, e))?;
                }
                "arrival" => {
                    expect(1)?;
                    agg.arrival = args[0]
                        .parse()
                        .map_err(|e: std::num::ParseIntError| malformed(no, e.to_string()))?;
                }
                "fstats" => {
                    expect(9)?;
                    let mut vals = [0u64; 9];
                    for (slot, a) in vals.iter_mut().zip(args) {
                        *slot = a
                            .parse()
                            .map_err(|e: std::num::ParseIntError| malformed(no, e.to_string()))?;
                    }
                    agg.stats = FleetStats {
                        batches: vals[0],
                        frames_relayed: vals[1],
                        heartbeats: vals[2],
                        duplicate_batches: vals[3],
                        reconnects: vals[4],
                        nodes_evicted: vals[5],
                        snapshots_served: vals[6],
                        frames_forced: vals[7],
                        buffered_peak: vals[8] as usize,
                    };
                }
                "node" => {
                    expect(5)?;
                    let id = args[0]
                        .parse::<u32>()
                        .map_err(|e| malformed(no, e.to_string()))?;
                    agg.nodes.insert(
                        id,
                        NodeState {
                            clock_offset_s: unhex(args[1]).map_err(|e| malformed(no, e))?,
                            next_seq: args[2].parse().map_err(|e: std::num::ParseIntError| {
                                malformed(no, e.to_string())
                            })?,
                            watermark_s: unhex(args[3]).map_err(|e| malformed(no, e))?,
                            evicted: args[4] == "1",
                            connected: false,
                        },
                    );
                }
                "buf" => {
                    expect(5)?;
                    let node_id = args[0]
                        .parse::<u32>()
                        .map_err(|e| malformed(no, e.to_string()))?;
                    let arrival = args[1]
                        .parse::<u64>()
                        .map_err(|e| malformed(no, e.to_string()))?;
                    let time_s = unhex(args[2]).map_err(|e| malformed(no, e))?;
                    let card = args[3]
                        .parse::<usize>()
                        .map_err(|e| malformed(no, e.to_string()))?;
                    let bytes = unhex_bytes(args[4]).map_err(|e| malformed(no, e))?;
                    let frame = Frame::decode(&bytes)
                        .map_err(|e| malformed(no, format!("bad frame bytes: {e:?}")))?;
                    agg.buffer.push(Buffered {
                        time_s,
                        node_id,
                        arrival,
                        frame: CapturedFrame {
                            time_s,
                            card,
                            frame,
                        },
                    });
                }
                "engine" => {
                    expect(1)?;
                    let count = args[0]
                        .parse::<usize>()
                        .map_err(|e| malformed(no, e.to_string()))?;
                    if i + count > lines.len() {
                        return Err(malformed(
                            no,
                            format!(
                                "engine block declares {count} lines but only {} remain",
                                lines.len() - i
                            ),
                        ));
                    }
                    let block = lines[i..i + count].join("\n");
                    let restored = StreamEngine::restore(map.clone(), &block)
                        .map_err(FleetSnapshotError::Engine)?;
                    engine = Some(restored);
                    records += count;
                    i += count;
                }
                "end" => {
                    expect(1)?;
                    let declared = args[0]
                        .parse::<usize>()
                        .map_err(|e| malformed(no, e.to_string()))?;
                    if declared != records {
                        return Err(malformed(
                            no,
                            format!(
                                "snapshot truncated: end sentinel declares {declared} \
                                 records but {records} were read"
                            ),
                        ));
                    }
                    end_seen = true;
                    continue;
                }
                other => return Err(malformed(no, format!("unknown record {other:?}"))),
            }
            records += 1;
        }
        if !end_seen {
            return Err(malformed(
                lines.len() + 1,
                "snapshot truncated: missing end sentinel".into(),
            ));
        }
        let mut engine =
            engine.ok_or_else(|| malformed(lines.len(), "missing embedded engine block".into()))?;
        engine.set_mode(
            agg.config.stream.live_localization,
            agg.config.stream.warm_start,
        );
        agg.engine = engine;
        Ok(agg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marauder_core::apdb::{ApDatabase, ApRecord};
    use marauder_core::pipeline::{AttackConfig, KnowledgeLevel};
    use marauder_geo::Point;
    use marauder_wifi::channel::Channel;
    use marauder_wifi::mac::MacAddr;
    use marauder_wifi::ssid::Ssid;

    fn map() -> MaraudersMap {
        let db: ApDatabase = [
            (100u64, Point::new(0.0, 0.0)),
            (101, Point::new(100.0, 0.0)),
            (102, Point::new(50.0, 80.0)),
        ]
        .into_iter()
        .map(|(i, p)| ApRecord {
            bssid: MacAddr::from_index(i),
            ssid: None,
            location: p,
            radius: Some(120.0),
        })
        .collect();
        MaraudersMap::new(db, KnowledgeLevel::Full, AttackConfig::default())
    }

    fn response(t: f64, ap: u64, mobile: u64) -> CapturedFrame {
        CapturedFrame {
            time_s: t,
            card: 0,
            frame: Frame::probe_response(
                MacAddr::from_index(ap),
                MacAddr::from_index(mobile),
                Ssid::new("x").unwrap(),
                Channel::bg(6).unwrap(),
            ),
        }
    }

    fn hello(id: u32) -> Message {
        Message::Hello {
            node_id: id,
            clock_offset_s: 0.0,
            version: PROTOCOL_VERSION,
            wants_snapshot: false,
        }
    }

    #[test]
    fn holds_frames_until_every_expected_node_reports() {
        let mut agg = Aggregator::new(
            map(),
            FleetConfig {
                expected_nodes: 2,
                ..FleetConfig::default()
            },
        );
        agg.on_message(&hello(0)).unwrap();
        agg.on_message(&Message::FrameBatch {
            node_id: 0,
            seq: 0,
            frames: vec![response(1.0, 100, 1)],
        })
        .unwrap();
        agg.on_message(&Message::Heartbeat {
            node_id: 0,
            watermark_s: 50.0,
        })
        .unwrap();
        // Node 1 hasn't joined: nothing released.
        assert_eq!(agg.stats().frames_relayed, 0);
        agg.on_message(&hello(1)).unwrap();
        agg.on_message(&Message::Heartbeat {
            node_id: 1,
            watermark_s: 10.0,
        })
        .unwrap();
        // Fleet watermark = min(50, 10) = 10 ≥ 1.0: released.
        assert_eq!(agg.stats().frames_relayed, 1);
        assert!((agg.fleet_watermark() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_batches_are_ignored_and_gaps_are_typed() {
        let mut agg = Aggregator::new(map(), FleetConfig::default());
        agg.on_message(&hello(0)).unwrap();
        let batch = |seq| Message::FrameBatch {
            node_id: 0,
            seq,
            frames: vec![response(1.0, 100, 1)],
        };
        agg.on_message(&batch(0)).unwrap();
        agg.on_message(&batch(0)).unwrap(); // re-send after rejoin
        assert_eq!(agg.stats().duplicate_batches, 1);
        let err = agg.on_message(&batch(5)).unwrap_err();
        assert!(
            matches!(
                err,
                NetError::SequenceGap {
                    node: 0,
                    expected: 1,
                    got: 5
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn rejoin_reports_resume_seq() {
        let mut agg = Aggregator::new(map(), FleetConfig::default());
        agg.on_message(&hello(7)).unwrap();
        for seq in 0..3 {
            agg.on_message(&Message::FrameBatch {
                node_id: 7,
                seq,
                frames: vec![response(seq as f64, 100, 1)],
            })
            .unwrap();
        }
        let turn = agg.on_message(&hello(7)).unwrap();
        assert_eq!(
            turn.replies[0],
            Message::HelloAck {
                node_id: 7,
                version: PROTOCOL_VERSION,
                resume_seq: 3
            }
        );
        assert_eq!(agg.stats().reconnects, 1);
    }

    #[test]
    fn stalled_node_is_evicted_in_stream_time() {
        let mut agg = Aggregator::new(
            map(),
            FleetConfig {
                expected_nodes: 2,
                dead_after_s: 30.0,
                ..FleetConfig::default()
            },
        );
        agg.on_message(&hello(0)).unwrap();
        agg.on_message(&hello(1)).unwrap();
        agg.on_message(&Message::Heartbeat {
            node_id: 1,
            watermark_s: 5.0,
        })
        .unwrap();
        agg.on_message(&Message::Heartbeat {
            node_id: 0,
            watermark_s: 20.0,
        })
        .unwrap();
        assert_eq!(agg.stats().nodes_evicted, 0);
        // Node 0 runs 40 s ahead of node 1's stalled watermark.
        agg.on_message(&Message::Heartbeat {
            node_id: 0,
            watermark_s: 45.0,
        })
        .unwrap();
        assert_eq!(agg.stats().nodes_evicted, 1);
        // The gate now follows node 0 alone.
        assert!((agg.fleet_watermark() - 45.0).abs() < 1e-12);
    }

    #[test]
    fn watermark_skew_is_corrected_from_handshake_offset() {
        let mut agg = Aggregator::new(map(), FleetConfig::default());
        agg.on_message(&Message::Hello {
            node_id: 0,
            clock_offset_s: 100.0,
            version: PROTOCOL_VERSION,
            wants_snapshot: false,
        })
        .unwrap();
        agg.on_message(&Message::Heartbeat {
            node_id: 0,
            watermark_s: 130.0, // node-local clock reading
        })
        .unwrap();
        assert!((agg.fleet_watermark() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn buffer_bound_force_releases_oldest() {
        let mut agg = Aggregator::new(
            map(),
            FleetConfig {
                max_buffered_frames: 2,
                ..FleetConfig::default()
            },
        );
        agg.on_message(&hello(0)).unwrap();
        let frames: Vec<CapturedFrame> = (0..5).map(|k| response(k as f64, 100, 1)).collect();
        agg.on_message(&Message::FrameBatch {
            node_id: 0,
            seq: 0,
            frames,
        })
        .unwrap();
        // No heartbeat yet, but only 2 frames may stay buffered.
        assert_eq!(agg.stats().frames_forced, 3);
        assert_eq!(agg.stats().frames_relayed, 3);
    }

    #[test]
    fn snapshot_restore_resumes_byte_identical() {
        let frames: Vec<CapturedFrame> = (0..30)
            .map(|k| response(k as f64 * 5.0, 100 + (k % 3) as u64, 1))
            .collect();
        let run = |interrupt: Option<usize>| -> (Vec<TrackFix>, FleetStats) {
            let mut agg = Aggregator::new(map(), FleetConfig::default());
            agg.on_message(&hello(0)).unwrap();
            let mut closed = Vec::new();
            for (k, f) in frames.iter().enumerate() {
                if interrupt == Some(k) {
                    let snap = agg.snapshot();
                    let stats_before = agg.stats().clone();
                    agg = Aggregator::restore(map(), FleetConfig::default(), &snap)
                        .expect("own snapshot restores");
                    assert_eq!(agg.stats(), &stats_before);
                }
                closed.extend(
                    agg.on_message(&Message::FrameBatch {
                        node_id: 0,
                        seq: k as u64,
                        frames: vec![f.clone()],
                    })
                    .unwrap()
                    .closed,
                );
                closed.extend(
                    agg.on_message(&Message::Heartbeat {
                        node_id: 0,
                        watermark_s: f.time_s,
                    })
                    .unwrap()
                    .closed,
                );
            }
            closed.extend(agg.finish());
            let stats = agg.stats().clone();
            (agg.batch_fixes(closed), stats)
        };
        let (base, base_stats) = run(None);
        let (resumed, resumed_stats) = run(Some(17));
        assert_eq!(base.len(), resumed.len());
        for (a, b) in base.iter().zip(&resumed) {
            assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
            assert_eq!(a.mobile, b.mobile);
            assert_eq!(
                a.estimate.position.x.to_bits(),
                b.estimate.position.x.to_bits()
            );
            assert_eq!(
                a.estimate.position.y.to_bits(),
                b.estimate.position.y.to_bits()
            );
        }
        assert_eq!(base_stats, resumed_stats);
    }

    #[test]
    fn restore_rejects_future_version_and_garbage() {
        let snap = Aggregator::new(map(), FleetConfig::default()).snapshot();
        let future = snap.replacen("v1", "v9", 1);
        assert!(matches!(
            Aggregator::restore(map(), FleetConfig::default(), &future),
            Err(FleetSnapshotError::VersionMismatch {
                found: 9,
                supported: 1
            })
        ));
        assert!(matches!(
            Aggregator::restore(map(), FleetConfig::default(), "nope"),
            Err(FleetSnapshotError::Malformed { line: 1, .. })
        ));
        // Truncation (lost end sentinel) is refused.
        let lines: Vec<&str> = snap.lines().collect();
        let cut = lines[..lines.len() - 1].join("\n");
        assert!(matches!(
            Aggregator::restore(map(), FleetConfig::default(), &cut),
            Err(FleetSnapshotError::Malformed { .. })
        ));
    }
}
