//! A sniffer node: reads a capture log slice and streams it to the
//! aggregator as sequenced frame batches with watermark heartbeats.

use crate::codec::{Message, PROTOCOL_VERSION};
use crate::transport::{recv_message, send_message, NetError, Transport};
use marauder_wifi::sniffer::CapturedFrame;

/// Node behaviour knobs.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Frames per [`Message::FrameBatch`].
    pub batch_frames: usize,
    /// Slack subtracted from the max sent timestamp when announcing a
    /// watermark: the node promises no future frame below
    /// `max_sent - reorder_slack_s`. Covers capture-log jitter whose
    /// magnitude the operator knows (e.g. a fault plan's reorder span).
    pub reorder_slack_s: f64,
    /// This node's clock offset from fleet time, announced in `Hello`
    /// (node-local time = fleet time + offset).
    pub clock_offset_s: f64,
    /// Ask the aggregator to stream its current checkpoint back after
    /// the handshake.
    pub wants_snapshot: bool,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            batch_frames: 64,
            reorder_slack_s: 0.0,
            clock_offset_s: 0.0,
            wants_snapshot: false,
        }
    }
}

/// Handshake progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// `Hello` not yet sent.
    Idle,
    /// `Hello` sent, waiting for `HelloAck`.
    AwaitAck,
    /// Streaming batches.
    Streaming,
    /// Final `+∞` heartbeat sent; nothing left to do.
    Done,
}

/// Counters a node accumulates over its lifetime (all reconnects).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Batches put on the wire (including any later re-sends).
    pub batches_sent: u64,
    /// Frames put on the wire.
    pub frames_sent: u64,
    /// Batches skipped on rejoin because the aggregator already had
    /// them (`resume_seq` fast-forward).
    pub batches_skipped: u64,
    /// Completed handshakes beyond the first.
    pub reconnects: u64,
}

/// A sniffer node streaming a pre-loaded capture slice.
///
/// The node is a hand-crankable state machine: [`SnifferNode::step`]
/// makes bounded progress and returns whether anything happened, so
/// the deterministic loopback driver can interleave many nodes on one
/// thread, while the TCP runner just loops `step` + park.
///
/// Frames must be fed in log order; batches are regenerated
/// deterministically from the slice, which is what makes resume after
/// a death trivial: the rejoining node replays its own slice and
/// fast-forwards past `resume_seq`.
pub struct SnifferNode {
    id: u32,
    config: NodeConfig,
    frames: Vec<CapturedFrame>,
    /// Next frame index to batch.
    cursor: usize,
    /// Sequence number of the next batch to produce.
    seq: u64,
    phase: Phase,
    /// Highest timestamp put on the wire so far.
    max_sent_s: f64,
    /// Last watermark announced, to avoid redundant heartbeats.
    last_watermark_s: f64,
    stats: NodeStats,
}

impl SnifferNode {
    /// Creates a node that will stream `frames` (already in log order).
    pub fn new(id: u32, config: NodeConfig, frames: Vec<CapturedFrame>) -> Self {
        SnifferNode {
            id,
            config,
            frames,
            cursor: 0,
            seq: 0,
            phase: Phase::Idle,
            max_sent_s: f64::NEG_INFINITY,
            last_watermark_s: f64::NEG_INFINITY,
            stats: NodeStats::default(),
        }
    }

    /// The node's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Lifetime counters.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    /// Whether the final heartbeat has been sent.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Resets the connection state for a fresh transport (after a
    /// death or TCP reconnect). Stream progress (`cursor`, `seq`) is
    /// kept — the handshake's `resume_seq` decides what to re-send.
    pub fn begin_reconnect(&mut self) {
        if self.phase != Phase::Idle {
            self.stats.reconnects += 1;
        }
        self.phase = Phase::Idle;
        self.last_watermark_s = f64::NEG_INFINITY;
    }

    /// Makes one unit of progress: sends the `Hello`, consumes the
    /// `HelloAck`, or ships the next batch + heartbeat. Returns `true`
    /// when something was sent or received (the driver uses this to
    /// detect quiescence).
    ///
    /// # Errors
    ///
    /// Transport failures, [`NetError::Handshake`] on a version
    /// mismatch, and [`NetError::Protocol`] when the aggregator sends
    /// a message the node state machine does not expect.
    pub fn step(&mut self, transport: &mut dyn Transport) -> Result<bool, NetError> {
        match self.phase {
            Phase::Idle => {
                send_message(
                    transport,
                    &Message::Hello {
                        node_id: self.id,
                        clock_offset_s: self.config.clock_offset_s,
                        version: PROTOCOL_VERSION,
                        wants_snapshot: self.config.wants_snapshot,
                    },
                )?;
                self.phase = Phase::AwaitAck;
                Ok(true)
            }
            Phase::AwaitAck => match recv_message(transport)? {
                None => Ok(false),
                Some(Message::HelloAck {
                    node_id,
                    version,
                    resume_seq,
                }) => {
                    if node_id != self.id {
                        return Err(NetError::Protocol("hello_ack for a different node"));
                    }
                    if version != PROTOCOL_VERSION {
                        return Err(NetError::Handshake {
                            found: version,
                            supported: PROTOCOL_VERSION,
                        });
                    }
                    self.fast_forward(resume_seq);
                    self.phase = Phase::Streaming;
                    Ok(true)
                }
                // Snapshot replication riding on the ack exchange is
                // informational for a capture node; it is consumed and
                // ignored here (an aggregator-side node would restore).
                Some(Message::SnapshotOffer { .. }) | Some(Message::SnapshotChunk { .. }) => {
                    Ok(true)
                }
                Some(_) => Err(NetError::Protocol("unexpected message before hello_ack")),
            },
            Phase::Streaming => {
                // Drain (and ignore) any snapshot chunks the aggregator
                // is still streaming.
                while let Some(msg) = recv_message(transport)? {
                    match msg {
                        Message::SnapshotOffer { .. } | Message::SnapshotChunk { .. } => {}
                        _ => return Err(NetError::Protocol("unexpected message while streaming")),
                    }
                }
                if self.cursor >= self.frames.len() {
                    send_message(
                        transport,
                        &Message::Heartbeat {
                            node_id: self.id,
                            watermark_s: f64::INFINITY,
                        },
                    )?;
                    self.phase = Phase::Done;
                    return Ok(true);
                }
                let end = (self.cursor + self.config.batch_frames).min(self.frames.len());
                let batch = self.frames[self.cursor..end].to_vec();
                for f in &batch {
                    if f.time_s > self.max_sent_s {
                        self.max_sent_s = f.time_s;
                    }
                }
                self.stats.batches_sent += 1;
                self.stats.frames_sent += batch.len() as u64;
                send_message(
                    transport,
                    &Message::FrameBatch {
                        node_id: self.id,
                        seq: self.seq,
                        frames: batch,
                    },
                )?;
                self.seq += 1;
                self.cursor = end;
                let watermark = self.max_sent_s - self.config.reorder_slack_s;
                if watermark > self.last_watermark_s {
                    send_message(
                        transport,
                        &Message::Heartbeat {
                            node_id: self.id,
                            watermark_s: watermark,
                        },
                    )?;
                    self.last_watermark_s = watermark;
                }
                Ok(true)
            }
            Phase::Done => Ok(false),
        }
    }

    /// Runs the node to completion over a transport that may block
    /// between frames (the TCP path). Spins on `step` until done,
    /// parking briefly when no progress is possible.
    ///
    /// # Errors
    ///
    /// First unrecoverable transport or protocol error.
    pub fn run_to_completion(&mut self, transport: &mut dyn Transport) -> Result<(), NetError> {
        while !self.is_done() {
            if !self.step(transport)? {
                std::thread::yield_now();
            }
        }
        Ok(())
    }

    /// Skips batches the aggregator already holds. Batch boundaries
    /// are a pure function of (`frames`, `batch_frames`), so replaying
    /// the slice and discarding is exact.
    fn fast_forward(&mut self, resume_seq: u64) {
        while self.seq < resume_seq && self.cursor < self.frames.len() {
            let end = (self.cursor + self.config.batch_frames).min(self.frames.len());
            for f in &self.frames[self.cursor..end] {
                if f.time_s > self.max_sent_s {
                    self.max_sent_s = f.time_s;
                }
            }
            self.cursor = end;
            self.seq += 1;
            self.stats.batches_skipped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LoopbackTransport;
    use marauder_wifi::channel::Channel;
    use marauder_wifi::frame::Frame;
    use marauder_wifi::mac::MacAddr;
    use marauder_wifi::sniffer::CapturedFrame;
    use marauder_wifi::ssid::Ssid;

    fn frames(n: usize) -> Vec<CapturedFrame> {
        (0..n)
            .map(|i| CapturedFrame {
                time_s: i as f64 * 0.5,
                card: 0,
                frame: Frame::probe_response(
                    MacAddr::from_index(10 + i as u64),
                    MacAddr::from_index(1),
                    Ssid::new("n").unwrap(),
                    Channel::bg(1).unwrap(),
                ),
            })
            .collect()
    }

    fn ack(agg_t: &mut LoopbackTransport, resume_seq: u64) {
        let hello = recv_message(agg_t).unwrap().unwrap();
        let Message::Hello { node_id, .. } = hello else {
            panic!("expected hello, got {hello:?}");
        };
        send_message(
            agg_t,
            &Message::HelloAck {
                node_id,
                version: PROTOCOL_VERSION,
                resume_seq,
            },
        )
        .unwrap();
    }

    #[test]
    fn streams_all_frames_in_sequenced_batches() {
        let mut node = SnifferNode::new(
            3,
            NodeConfig {
                batch_frames: 4,
                ..NodeConfig::default()
            },
            frames(10),
        );
        let (mut node_t, mut agg_t) = LoopbackTransport::pair();
        node.step(&mut node_t).unwrap(); // hello
        ack(&mut agg_t, 0);
        while !node.is_done() {
            node.step(&mut node_t).unwrap();
        }
        let mut seqs = Vec::new();
        let mut total = 0;
        let mut final_wm = f64::NEG_INFINITY;
        while let Ok(Some(msg)) = recv_message(&mut agg_t) {
            match msg {
                Message::FrameBatch { seq, frames, .. } => {
                    seqs.push(seq);
                    total += frames.len();
                }
                Message::Heartbeat { watermark_s, .. } => final_wm = watermark_s,
                _ => {}
            }
        }
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(total, 10);
        assert!(final_wm.is_infinite());
        assert_eq!(node.stats().batches_sent, 3);
        assert_eq!(node.stats().frames_sent, 10);
    }

    #[test]
    fn resume_seq_skips_delivered_batches() {
        let mut node = SnifferNode::new(
            1,
            NodeConfig {
                batch_frames: 3,
                ..NodeConfig::default()
            },
            frames(9),
        );
        let (mut node_t, mut agg_t) = LoopbackTransport::pair();
        node.step(&mut node_t).unwrap();
        ack(&mut agg_t, 2);
        node.step(&mut node_t).unwrap(); // consume ack, fast-forward
        while !node.is_done() {
            node.step(&mut node_t).unwrap();
        }
        let mut seqs = Vec::new();
        while let Ok(Some(msg)) = recv_message(&mut agg_t) {
            if let Message::FrameBatch { seq, .. } = msg {
                seqs.push(seq);
            }
        }
        assert_eq!(seqs, vec![2]);
        assert_eq!(node.stats().batches_skipped, 2);
    }

    #[test]
    fn version_mismatch_is_a_typed_handshake_error() {
        let mut node = SnifferNode::new(5, NodeConfig::default(), frames(1));
        let (mut node_t, mut agg_t) = LoopbackTransport::pair();
        node.step(&mut node_t).unwrap();
        let _hello = recv_message(&mut agg_t).unwrap();
        send_message(
            &mut agg_t,
            &Message::HelloAck {
                node_id: 5,
                version: PROTOCOL_VERSION + 7,
                resume_seq: 0,
            },
        )
        .unwrap();
        assert_eq!(
            node.step(&mut node_t),
            Err(NetError::Handshake {
                found: PROTOCOL_VERSION + 7,
                supported: PROTOCOL_VERSION,
            })
        );
    }

    #[test]
    fn watermark_respects_reorder_slack() {
        let mut node = SnifferNode::new(
            2,
            NodeConfig {
                batch_frames: 100,
                reorder_slack_s: 1.5,
                ..NodeConfig::default()
            },
            frames(10), // times 0.0 .. 4.5
        );
        let (mut node_t, mut agg_t) = LoopbackTransport::pair();
        node.step(&mut node_t).unwrap();
        ack(&mut agg_t, 0);
        node.step(&mut node_t).unwrap(); // ack
        node.step(&mut node_t).unwrap(); // batch + heartbeat
        let mut wm = None;
        while let Ok(Some(msg)) = recv_message(&mut agg_t) {
            if let Message::Heartbeat { watermark_s, .. } = msg {
                wm = Some(watermark_s);
            }
        }
        assert_eq!(wm, Some(4.5 - 1.5));
    }
}
