//! Distributed sniffer fleet: the wire protocol and multi-node merge
//! layer that turn one [`StreamEngine`](marauder_stream::StreamEngine)
//! into the sink for N geographically scattered capture nodes.
//!
//! The paper evaluates the Marauder's Map attack with a single
//! sniffing rig; the threat becomes city-scale only when many vantage
//! points feed one aggregator. This crate supplies that plumbing with
//! the workspace's usual contract — std-only, no panics in library
//! code, and a merge whose output is *byte-identical* to replaying the
//! union of the nodes' logs through a single engine:
//!
//! - [`codec`]: a length-prefixed, explicitly versioned binary message
//!   format ([`Message`]) with total decoding — every malformed input
//!   maps to a typed [`WireError`].
//! - [`transport`]: the [`Transport`] trait plus the deterministic
//!   in-process [`LoopbackTransport`]; [`tcp`] adds the real
//!   `std::net` client/server with heartbeat timeouts and bounded
//!   exponential-backoff reconnect.
//! - [`node`]: [`SnifferNode`] streams a capture slice as sequenced
//!   frame batches with watermark heartbeats, and resumes after a
//!   death from the aggregator's `resume_seq` with nothing lost.
//! - [`aggregator`]: [`Aggregator`] corrects per-node clock skew,
//!   buffers bounded out-of-order arrival against the fleet watermark
//!   (min over live nodes, stream-time eviction of the dead), and
//!   feeds the engine a globally nondecreasing frame sequence.
//! - [`checkpoint`]: [`Checkpointer`] writes atomic, stream-time-paced
//!   fleet checkpoints (aggregator snapshot + every closed window), and
//!   [`restore_latest`] rebuilds the newest valid one after a crash so
//!   a restarted aggregator resumes mid-campaign with zero windows
//!   lost.
//! - [`loopback`]: [`LoopbackFleet`] drives everything round-robin on
//!   one thread for hermetic, bit-exact tests; [`chaos`] runs the
//!   per-node fault matrix from `crates/fault` over it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregator;
pub mod chaos;
pub mod checkpoint;
pub mod codec;
pub mod loopback;
pub mod node;
pub mod tcp;
pub mod transport;

pub use aggregator::{
    Aggregator, FleetConfig, FleetSnapshotError, FleetStats, Turn, NODE_LAG_BOUNDS_S,
};
pub use checkpoint::{
    restore_latest, CheckpointError, Checkpointer, FleetRestore, FLEET_CHECKPOINT_HEADER,
};
pub use codec::{Message, WireError, MAX_BODY_LEN, PROTOCOL_VERSION};
pub use loopback::{
    corrupt_slice, required_slack_s, split_by_time, split_round_robin, LoopbackFleet,
};
pub use node::{NodeConfig, NodeStats, SnifferNode};
pub use transport::{LoopbackTransport, NetError, Transport};
