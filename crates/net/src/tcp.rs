//! Real-network transport: a blocking `std::net` client/server pair.
//!
//! This is the only module in the crate that touches sockets or the
//! wall clock; the merge logic it feeds ([`Aggregator`]) stays a pure
//! function of the message sequence. Server-side liveness uses two
//! independent mechanisms: the aggregator's *stream-time* eviction
//! (`dead_after_s`) guarantees merge progress past a silent node, and
//! the server loop's wall-clock idle timeout bounds how long the whole
//! process waits when every node goes quiet.

use crate::aggregator::{Aggregator, Turn};
use crate::checkpoint::Checkpointer;
use crate::codec::{WireError, MAX_BODY_LEN};
use crate::node::SnifferNode;
use crate::transport::{recv_message, NetError, Transport};
use marauder_stream::ClosedWindow;
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

/// Poll granularity for socket reads and the server's event loop.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// [`Transport`] over one TCP stream, preserving message boundaries
/// by re-framing on the length prefix. Reads are bounded by a short
/// timeout so `recv` approximates the non-blocking contract.
pub struct TcpTransport {
    stream: TcpStream,
    inbuf: Vec<u8>,
}

impl TcpTransport {
    /// Wraps a connected stream.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when socket options cannot be applied.
    pub fn new(stream: TcpStream) -> Result<Self, NetError> {
        stream
            .set_nodelay(true)
            .and_then(|()| stream.set_read_timeout(Some(POLL_INTERVAL)))
            .map_err(|e| NetError::Io(e.to_string()))?;
        Ok(TcpTransport {
            stream,
            inbuf: Vec::new(),
        })
    }

    /// Pops one complete wire frame (prefix + body) off the input
    /// buffer, if present.
    fn take_frame(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        if self.inbuf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.inbuf[0], self.inbuf[1], self.inbuf[2], self.inbuf[3]]);
        if len > MAX_BODY_LEN {
            return Err(NetError::Wire(WireError::Oversized {
                len,
                max: MAX_BODY_LEN,
            }));
        }
        let total = 4 + len as usize;
        if self.inbuf.len() < total {
            return Ok(None);
        }
        let rest = self.inbuf.split_off(total);
        let frame = std::mem::replace(&mut self.inbuf, rest);
        Ok(Some(frame))
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError> {
        self.stream.write_all(frame).map_err(|e| match e.kind() {
            ErrorKind::BrokenPipe | ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted => {
                NetError::Disconnected
            }
            _ => NetError::Io(e.to_string()),
        })
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        loop {
            if let Some(frame) = self.take_frame()? {
                return Ok(Some(frame));
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(NetError::Disconnected),
                Ok(n) => self.inbuf.extend_from_slice(&chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Ok(None)
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted
                    ) =>
                {
                    return Err(NetError::Disconnected)
                }
                Err(e) => return Err(NetError::Io(e.to_string())),
            }
        }
    }
}

/// Reconnect policy for [`run_node`].
#[derive(Debug, Clone)]
pub struct RetryConfig {
    /// Consecutive failed connection attempts tolerated before giving
    /// up.
    pub max_retries: u32,
    /// First backoff delay; doubles per failed attempt.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_retries: 8,
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
        }
    }
}

/// Deterministic jitter for one reconnect delay: the doubled base
/// backoff scaled into `[base/2, base)` by a fraction derived from the
/// node's identity and the attempt number.
///
/// Jitter decorrelates a fleet's reconnect stampede after an
/// aggregator restart, but entropy-based jitter would make network
/// runs unreproducible — so the fraction is a pure function of
/// `(node_seed, attempt)` via [`marauder_par::sub_seed`], bit-identical
/// on every machine.
pub fn backoff_with_jitter(base: Duration, node_seed: u64, attempt: u32) -> Duration {
    // 53 high-quality bits → a fraction in [0, 1).
    let bits = marauder_par::sub_seed(node_seed, u64::from(attempt));
    let frac = (bits >> 11) as f64 / (1u64 << 53) as f64;
    let nanos = base.as_nanos() as f64 * (0.5 + 0.5 * frac);
    Duration::from_nanos(nanos as u64)
}

/// Runs a node against a TCP aggregator until its stream completes,
/// reconnecting with bounded exponential backoff (plus deterministic
/// per-node jitter) across connection failures and mid-stream
/// disconnects. Each successful handshake resumes from the
/// aggregator's `resume_seq`, so a flapping link never loses or
/// duplicates a batch.
///
/// # Errors
///
/// [`NetError::Io`] once `max_retries` consecutive attempts fail, or
/// the first fatal protocol error.
pub fn run_node(addr: &str, node: &mut SnifferNode, retry: &RetryConfig) -> Result<(), NetError> {
    let mut failures = 0u32;
    let mut backoff = retry.initial_backoff;
    while !node.is_done() {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                let mut transport = TcpTransport::new(stream)?;
                match drive_node(node, &mut transport) {
                    Ok(()) => return Ok(()),
                    Err(NetError::Disconnected) => {
                        // Mid-stream hangup: rejoin and resume.
                        node.begin_reconnect();
                    }
                    Err(e) => return Err(e),
                }
                failures = 0;
                backoff = retry.initial_backoff;
            }
            Err(e) => {
                failures += 1;
                if failures > retry.max_retries {
                    return Err(NetError::Io(format!(
                        "gave up after {failures} connection attempts: {e}"
                    )));
                }
                marauder_obs::global().counter_add("net.tcp_connect_retries", 1);
            }
        }
        if !node.is_done() {
            std::thread::sleep(backoff_with_jitter(backoff, u64::from(node.id()), failures));
            backoff = (backoff * 2).min(retry.max_backoff);
        }
    }
    Ok(())
}

/// Steps a node over one live connection until done or disconnected.
fn drive_node(node: &mut SnifferNode, transport: &mut TcpTransport) -> Result<(), NetError> {
    while !node.is_done() {
        if !node.step(transport)? {
            // Waiting on the ack: the read timeout inside `recv`
            // already paced us; just try again.
            std::thread::yield_now();
        }
    }
    Ok(())
}

/// Reader-thread events feeding the server loop.
enum Event {
    /// A complete wire frame from connection `conn`.
    Frame(u64, Vec<u8>),
    /// Connection `conn` hung up or failed.
    Gone(u64),
}

/// Pumps one connection's reads into the event channel until hangup.
fn pump_connection(conn: u64, stream: TcpStream, tx: Sender<Event>) {
    let mut transport = match TcpTransport::new(stream) {
        Ok(t) => t,
        Err(_) => {
            let _ = tx.send(Event::Gone(conn));
            return;
        }
    };
    loop {
        match transport.recv() {
            Ok(Some(frame)) => {
                if tx.send(Event::Frame(conn, frame)).is_err() {
                    return;
                }
            }
            Ok(None) => {}
            Err(_) => {
                let _ = tx.send(Event::Gone(conn));
                return;
            }
        }
    }
}

/// What a [`serve`] run produced.
pub struct ServeOutcome {
    /// The aggregator, finished and ready for
    /// [`batch_fixes`](Aggregator::batch_fixes).
    pub aggregator: Aggregator,
    /// Every window the run closed, in close order.
    pub closed: Vec<ClosedWindow>,
    /// Whether the loop ended because the fleet completed (vs. the
    /// idle timeout expiring).
    pub completed: bool,
}

/// Serves a fleet over TCP: accepts connections on `listener`, routes
/// each node's messages into `aggregator`, and writes protocol replies
/// back. Returns once every expected node's stream completes, or after
/// `idle_timeout` passes with no traffic.
///
/// Per-connection protocol errors (bad version, sequence gap, corrupt
/// frame) drop that connection — the node may reconnect and resume —
/// and never take the server down.
///
/// # Errors
///
/// [`NetError::Io`] when the listener cannot be polled.
pub fn serve(
    listener: TcpListener,
    aggregator: Aggregator,
    idle_timeout: Duration,
) -> Result<ServeOutcome, NetError> {
    serve_with(listener, aggregator, idle_timeout, None, Vec::new())
}

/// [`serve`] with crash durability: closed windows accumulate on top
/// of `initial_closed` (the restored pre-crash list, so a later
/// checkpoint never forgets them), and `checkpointer` — when present —
/// writes periodic fleet checkpoints plus a final one after the run
/// completes. Checkpoint write failures are counted
/// (`fleet.checkpoint_errors`) but never take the server down; the
/// merge keeps running on the last durable state.
///
/// # Errors
///
/// [`NetError::Io`] when the listener cannot be polled.
pub fn serve_with(
    listener: TcpListener,
    mut aggregator: Aggregator,
    idle_timeout: Duration,
    mut checkpointer: Option<&mut Checkpointer>,
    initial_closed: Vec<ClosedWindow>,
) -> Result<ServeOutcome, NetError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| NetError::Io(e.to_string()))?;
    let (tx, rx) = channel();
    let mut writers: BTreeMap<u64, TcpStream> = BTreeMap::new();
    let mut node_of: BTreeMap<u64, u32> = BTreeMap::new();
    let mut next_conn = 0u64;
    let mut closed = initial_closed;
    let mut last_activity = Instant::now();
    let reg = marauder_obs::global();

    let completed = loop {
        // Admit any pending connections.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let conn = next_conn;
                    next_conn += 1;
                    reg.counter_add("net.tcp_accepts", 1);
                    match stream.try_clone() {
                        Ok(reader) => {
                            writers.insert(conn, stream);
                            let tx = tx.clone();
                            std::thread::spawn(move || pump_connection(conn, reader, tx));
                        }
                        Err(_) => {
                            // The socket died between accept and clone.
                        }
                    }
                    last_activity = Instant::now();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => return Err(NetError::Io(e.to_string())),
            }
        }
        match rx.recv_timeout(POLL_INTERVAL) {
            Ok(Event::Frame(conn, bytes)) => {
                last_activity = Instant::now();
                match handle_frame(&mut aggregator, &bytes) {
                    Ok((maybe_node, turn)) => {
                        if let Some(id) = maybe_node {
                            node_of.insert(conn, id);
                        }
                        closed.extend(turn.closed);
                        if let Some(cp) = checkpointer.as_deref_mut() {
                            if cp.maybe_checkpoint(&aggregator, &closed).is_err() {
                                reg.counter_add("fleet.checkpoint_errors", 1);
                            }
                        }
                        if let Some(writer) = writers.get_mut(&conn) {
                            for reply in &turn.replies {
                                if writer.write_all(&crate::codec::encode(reply)).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                    Err(_) => {
                        // Poison one connection, not the fleet.
                        reg.counter_add("net.tcp_conn_errors", 1);
                        writers.remove(&conn);
                        if let Some(id) = node_of.remove(&conn) {
                            aggregator.node_disconnected(id);
                        }
                    }
                }
            }
            Ok(Event::Gone(conn)) => {
                writers.remove(&conn);
                if let Some(id) = node_of.remove(&conn) {
                    aggregator.node_disconnected(id);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break false,
        }
        if aggregator.finished() {
            break true;
        }
        if last_activity.elapsed() > idle_timeout {
            break false;
        }
    };
    closed.extend(aggregator.finish());
    if let Some(cp) = checkpointer {
        if cp.checkpoint_now(&aggregator, &closed).is_err() {
            reg.counter_add("fleet.checkpoint_errors", 1);
        }
    }
    Ok(ServeOutcome {
        aggregator,
        closed,
        completed,
    })
}

/// Decodes and dispatches one wire frame; returns the node id when the
/// frame was a handshake (so the server can bind connection → node).
fn handle_frame(
    aggregator: &mut Aggregator,
    bytes: &[u8],
) -> Result<(Option<u32>, Turn), NetError> {
    struct Raw(Vec<u8>, bool);
    impl Transport for Raw {
        fn send(&mut self, _frame: &[u8]) -> Result<(), NetError> {
            Ok(())
        }
        fn recv(&mut self) -> Result<Option<Vec<u8>>, NetError> {
            if self.1 {
                Ok(None)
            } else {
                self.1 = true;
                Ok(Some(std::mem::take(&mut self.0)))
            }
        }
    }
    let mut raw = Raw(bytes.to_vec(), false);
    let Some(msg) = recv_message(&mut raw)? else {
        return Ok((None, Turn::default()));
    };
    let joined = match &msg {
        crate::codec::Message::Hello { node_id, .. } => Some(*node_id),
        _ => None,
    };
    let turn = aggregator.on_message(&msg)?;
    Ok((joined, turn))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconnect_jitter_is_reproducible_and_bounded() {
        let base = Duration::from_millis(200);
        for node in 0..8u64 {
            for attempt in 0..8u32 {
                let a = backoff_with_jitter(base, node, attempt);
                let b = backoff_with_jitter(base, node, attempt);
                assert_eq!(a, b, "jitter must be a pure function of (node, attempt)");
                assert!(
                    a >= base / 2 && a < base,
                    "delay {a:?} outside [base/2, base)"
                );
            }
        }
    }

    #[test]
    fn reconnect_jitter_decorrelates_nodes() {
        let base = Duration::from_secs(2);
        let delays: Vec<Duration> = (0..16u64)
            .map(|node| backoff_with_jitter(base, node, 0))
            .collect();
        let distinct: std::collections::BTreeSet<Duration> = delays.iter().copied().collect();
        assert!(
            distinct.len() > 8,
            "a fleet's first retries must spread out, got {distinct:?}"
        );
    }
}
