//! Byte transport abstraction between a sniffer node and the
//! aggregator, plus the in-process deterministic loopback pair.

use crate::codec::WireError;
use std::collections::VecDeque;
use std::fmt;
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};

/// Errors surfaced by transports and the protocol layers above them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A codec failure while framing or parsing wire bytes.
    Wire(WireError),
    /// The peer is gone; reconnecting may help.
    Disconnected,
    /// An OS-level socket failure, stringified (`io::Error` is neither
    /// `Clone` nor `PartialEq`, and callers only branch on the kind).
    Io(String),
    /// Handshake version mismatch.
    Handshake {
        /// Version the peer announced.
        found: u16,
        /// Version this build speaks.
        supported: u16,
    },
    /// A batch arrived from the future: the node skipped sequence
    /// numbers the aggregator never saw.
    SequenceGap {
        /// Offending node.
        node: u32,
        /// Sequence the aggregator expected next.
        expected: u64,
        /// Sequence that actually arrived.
        got: u64,
    },
    /// A message referenced a node id with no completed handshake.
    UnknownNode(u32),
    /// The peer sent a message the protocol state machine does not
    /// allow here (e.g. a node sending `HelloAck`).
    Protocol(&'static str),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Handshake { found, supported } => {
                write!(
                    f,
                    "protocol version mismatch: peer speaks v{found}, this build v{supported}"
                )
            }
            NetError::SequenceGap {
                node,
                expected,
                got,
            } => {
                write!(
                    f,
                    "node {node} batch sequence gap: expected {expected}, got {got}"
                )
            }
            NetError::UnknownNode(id) => write!(f, "message from unknown node {id}"),
            NetError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

/// A bidirectional, message-boundary-preserving byte channel.
///
/// `send` delivers one encoded wire frame; `recv` yields the next
/// frame's bytes if one is ready, `None` otherwise. Implementations
/// must preserve ordering per direction and must never deliver a
/// partial frame.
pub trait Transport {
    /// Queues one wire frame for the peer.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] when the peer is gone;
    /// [`NetError::Io`] for socket-level failures.
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError>;

    /// Takes the next wire frame from the peer, without blocking.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] once the peer is gone *and* every
    /// already-delivered frame has been drained.
    fn recv(&mut self) -> Result<Option<Vec<u8>>, NetError>;
}

/// In-process transport endpoint: an mpsc pair with hangup detection.
///
/// Deterministic by construction — frames arrive in send order, and
/// the single-threaded loopback fleet driver steps endpoints in a
/// fixed round-robin, so a run is a pure function of its inputs.
pub struct LoopbackTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    /// Set when either side is explicitly severed (simulated node
    /// death); hangup also surfaces naturally when a peer is dropped.
    severed: Arc<Mutex<bool>>,
    /// Frames already pulled off the channel but not yet consumed
    /// (used by the fault layer to reorder in place).
    staged: VecDeque<Vec<u8>>,
}

impl LoopbackTransport {
    /// Creates a connected endpoint pair: (node side, aggregator side).
    pub fn pair() -> (LoopbackTransport, LoopbackTransport) {
        let (a_tx, b_rx) = std::sync::mpsc::channel();
        let (b_tx, a_rx) = std::sync::mpsc::channel();
        let severed = Arc::new(Mutex::new(false));
        (
            LoopbackTransport {
                tx: a_tx,
                rx: a_rx,
                severed: Arc::clone(&severed),
                staged: VecDeque::new(),
            },
            LoopbackTransport {
                tx: b_tx,
                rx: b_rx,
                severed,
                staged: VecDeque::new(),
            },
        )
    }

    /// Severs both directions, simulating an abrupt node death. Frames
    /// already in flight remain readable; new sends fail.
    pub fn sever(&mut self) {
        if let Ok(mut s) = self.severed.lock() {
            *s = true;
        }
    }

    /// Whether the link has been severed.
    pub fn is_severed(&self) -> bool {
        self.severed.lock().map(|s| *s).unwrap_or(true)
    }

    /// Pushes a frame to the *front* of the local receive stage —
    /// used by the per-node fault layer to reorder deliveries.
    pub fn stage_front(&mut self, frame: Vec<u8>) {
        self.staged.push_front(frame);
    }
}

impl Transport for LoopbackTransport {
    fn send(&mut self, frame: &[u8]) -> Result<(), NetError> {
        if self.is_severed() {
            return Err(NetError::Disconnected);
        }
        self.tx
            .send(frame.to_vec())
            .map_err(|_| NetError::Disconnected)
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        if let Some(staged) = self.staged.pop_front() {
            return Ok(Some(staged));
        }
        match self.rx.try_recv() {
            Ok(frame) => Ok(Some(frame)),
            Err(TryRecvError::Empty) => {
                if self.is_severed() {
                    Err(NetError::Disconnected)
                } else {
                    Ok(None)
                }
            }
            Err(TryRecvError::Disconnected) => Err(NetError::Disconnected),
        }
    }
}

/// Sends one [`crate::codec::Message`] over a transport.
///
/// # Errors
///
/// Propagates the transport's send failure.
pub fn send_message(t: &mut dyn Transport, msg: &crate::codec::Message) -> Result<(), NetError> {
    t.send(&crate::codec::encode(msg))
}

/// Receives and decodes the next message, if one is ready.
///
/// # Errors
///
/// Transport failures, or [`NetError::Wire`] when the peer delivered
/// an undecodable frame.
pub fn recv_message(t: &mut dyn Transport) -> Result<Option<crate::codec::Message>, NetError> {
    match t.recv()? {
        None => Ok(None),
        Some(bytes) => {
            let (msg, used) = crate::codec::decode(&bytes)?;
            if used != bytes.len() {
                return Err(NetError::Wire(WireError::TrailingBytes {
                    extra: bytes.len() - used,
                }));
            }
            Ok(Some(msg))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Message;

    #[test]
    fn loopback_preserves_order_and_boundaries() {
        let (mut node, mut agg) = LoopbackTransport::pair();
        for i in 0..5u32 {
            send_message(
                &mut node,
                &Message::Heartbeat {
                    node_id: i,
                    watermark_s: f64::from(i),
                },
            )
            .unwrap();
        }
        for i in 0..5u32 {
            let msg = recv_message(&mut agg).unwrap().unwrap();
            assert_eq!(
                msg,
                Message::Heartbeat {
                    node_id: i,
                    watermark_s: f64::from(i),
                }
            );
        }
        assert!(recv_message(&mut agg).unwrap().is_none());
    }

    #[test]
    fn sever_fails_sends_but_drains_in_flight() {
        let (mut node, mut agg) = LoopbackTransport::pair();
        send_message(
            &mut node,
            &Message::Heartbeat {
                node_id: 0,
                watermark_s: 1.0,
            },
        )
        .unwrap();
        node.sever();
        assert_eq!(
            send_message(
                &mut node,
                &Message::Heartbeat {
                    node_id: 0,
                    watermark_s: 2.0
                }
            ),
            Err(NetError::Disconnected)
        );
        // The in-flight frame is still readable...
        assert!(recv_message(&mut agg).unwrap().is_some());
        // ...then the hangup surfaces.
        assert_eq!(recv_message(&mut agg), Err(NetError::Disconnected));
    }

    #[test]
    fn drop_of_peer_surfaces_disconnect() {
        let (node, mut agg) = LoopbackTransport::pair();
        drop(node);
        assert_eq!(agg.recv(), Err(NetError::Disconnected));
    }

    #[test]
    fn staged_frames_jump_the_queue() {
        let (mut node, mut agg) = LoopbackTransport::pair();
        send_message(
            &mut node,
            &Message::Heartbeat {
                node_id: 1,
                watermark_s: 1.0,
            },
        )
        .unwrap();
        agg.stage_front(crate::codec::encode(&Message::Heartbeat {
            node_id: 9,
            watermark_s: 9.0,
        }));
        let first = recv_message(&mut agg).unwrap().unwrap();
        assert!(matches!(first, Message::Heartbeat { node_id: 9, .. }));
        let second = recv_message(&mut agg).unwrap().unwrap();
        assert!(matches!(second, Message::Heartbeat { node_id: 1, .. }));
    }
}
