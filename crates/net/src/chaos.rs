//! Fleet chaos matrix: per-node fault injection through the loopback
//! transport, with full frame accounting and a bit-exact check that
//! the merge layer adds *zero* distortion beyond the faults
//! themselves.
//!
//! Each cell corrupts every node's capture slice with its own
//! sub-seeded [`FaultPlan`], runs the fleet merge, and then replays
//! the identical corrupted union through a single
//! [`StreamEngine`](marauder_stream::StreamEngine) —
//! `matches_single_stream` asserts the two fix lists are
//! byte-identical. A deterministic report in the
//! `DegradationReport` JSON style comes out the other end for the CI
//! artifact.

use crate::aggregator::{Aggregator, FleetConfig};
use crate::loopback::{corrupt_slice, required_slack_s, split_round_robin, LoopbackFleet};
use crate::node::NodeConfig;
use crate::transport::NetError;
use marauder_fault::{ChaosScenario, Fault, FaultPlan};
use marauder_par::sub_seed;
use marauder_stream::{replay_frames, StreamConfig};
use marauder_wifi::sniffer::CapturedFrame;
use std::fmt::Write as _;

/// One fleet chaos cell, fully accounted.
#[derive(Debug, Clone)]
pub struct FleetChaosCell {
    /// Cell name (`"clean"`, `"drop"`, ...).
    pub name: String,
    /// Canonical per-node plan spec (`"clean"` when no faults).
    pub plan: String,
    /// Nodes in the fleet.
    pub nodes: usize,
    /// Frames across all corrupted slices (what entered the wire).
    pub frames_in: usize,
    /// Frames the aggregator fed to the engine.
    pub frames_relayed: u64,
    /// Frames the engine judged late — zero whenever every node's
    /// watermark promise held.
    pub frames_late: usize,
    /// Frames released by the buffer bound instead of the watermark.
    pub frames_forced: u64,
    /// Re-sent batches the aggregator ignored.
    pub duplicate_batches: u64,
    /// Windows the merged stream closed.
    pub windows_closed: usize,
    /// Batch-equivalent fixes recovered.
    pub fixes: usize,
    /// Whether the fleet's fixes are byte-identical to a single-stream
    /// replay of the same corrupted union — the merge-adds-nothing
    /// invariant.
    pub matches_single_stream: bool,
}

/// The full fleet chaos report: one cell per fault class.
#[derive(Debug, Clone)]
pub struct FleetChaosReport {
    /// Scenario name.
    pub scenario: String,
    /// Campus simulation seed.
    pub sim_seed: u64,
    /// Fault-injector base seed (per-node streams are sub-seeded).
    pub fault_seed: u64,
    /// Fleet size every cell ran with.
    pub nodes: usize,
    /// The cells, in matrix order.
    pub cells: Vec<FleetChaosCell>,
}

impl FleetChaosReport {
    /// Whether every cell kept the merge-adds-nothing invariant.
    pub fn all_match(&self) -> bool {
        self.cells.iter().all(|c| c.matches_single_stream)
    }

    /// Renders the report as JSON (hand-written, std-only).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"scenario\": \"{}\",", self.scenario);
        let _ = writeln!(out, "  \"sim_seed\": {},", self.sim_seed);
        let _ = writeln!(out, "  \"fault_seed\": {},", self.fault_seed);
        let _ = writeln!(out, "  \"nodes\": {},", self.nodes);
        let _ = writeln!(out, "  \"all_match\": {},", self.all_match());
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let sep = if i + 1 == self.cells.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"plan\": \"{}\", \"nodes\": {}, \
                 \"frames_in\": {}, \"frames_relayed\": {}, \"frames_late\": {}, \
                 \"frames_forced\": {}, \"duplicate_batches\": {}, \
                 \"windows_closed\": {}, \"fixes\": {}, \
                 \"matches_single_stream\": {}}}{}",
                c.name,
                c.plan,
                c.nodes,
                c.frames_in,
                c.frames_relayed,
                c.frames_late,
                c.frames_forced,
                c.duplicate_batches,
                c.windows_closed,
                c.fixes,
                c.matches_single_stream,
                sep
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The per-node fault classes the fleet is chaos-tested against. The
/// clock-skew cell perturbs node clocks (positive offsets, corrected
/// conservatively from the handshake) rather than frame payloads.
fn matrix() -> Vec<(String, Option<FaultPlan>, Vec<f64>)> {
    let no_offsets = Vec::new();
    vec![
        ("clean".into(), None, no_offsets.clone()),
        (
            "drop".into(),
            Some(FaultPlan::single(Fault::Drop { p: 0.2 })),
            no_offsets.clone(),
        ),
        (
            "reorder".into(),
            Some(FaultPlan::single(Fault::Reorder { depth: 16 })),
            no_offsets.clone(),
        ),
        ("skew".into(), None, vec![0.0, 3.0, 7.5, 11.25]),
        (
            "truncate".into(),
            Some(FaultPlan::single(Fault::Truncate { fraction: 0.2 })),
            no_offsets.clone(),
        ),
        (
            "combo".into(),
            FaultPlan::parse("drop:0.1,reorder:8").ok(),
            no_offsets,
        ),
    ]
}

/// Runs one chaos cell: corrupt each node's slice, merge through the
/// loopback fleet, and verify against a single-stream replay of the
/// identical corrupted union.
///
/// # Errors
///
/// The first fatal fleet error (none are expected — the matrix stays
/// inside every promise bound by construction).
pub fn run_cell(
    scenario: &ChaosScenario,
    fault_seed: u64,
    name: &str,
    plan: Option<&FaultPlan>,
    clock_offsets: &[f64],
    nodes: usize,
) -> Result<FleetChaosCell, NetError> {
    let frames: Vec<CapturedFrame> = scenario.captures().iter().cloned().collect();
    let slices = split_round_robin(&frames, nodes);
    let corrupted: Vec<Vec<CapturedFrame>> = slices
        .iter()
        .enumerate()
        .map(|(k, slice)| match plan {
            Some(p) => corrupt_slice(slice, sub_seed(fault_seed, k as u64), p),
            None => slice.clone(),
        })
        .collect();
    let frames_in: usize = corrupted.iter().map(Vec::len).sum();

    let stream = StreamConfig {
        live_localization: false,
        ..StreamConfig::default()
    };
    let aggregator = Aggregator::new(
        scenario.fresh_map(),
        FleetConfig {
            stream: stream.clone(),
            expected_nodes: nodes,
            ..FleetConfig::default()
        },
    );
    let seats: Vec<(NodeConfig, Vec<CapturedFrame>)> = corrupted
        .iter()
        .enumerate()
        .map(|(k, slice)| {
            (
                NodeConfig {
                    batch_frames: 32,
                    reorder_slack_s: required_slack_s(slice),
                    clock_offset_s: clock_offsets.get(k).copied().unwrap_or(0.0),
                    wants_snapshot: false,
                },
                slice.clone(),
            )
        })
        .collect();
    let mut fleet = LoopbackFleet::new(aggregator, seats);
    let closed = fleet.run()?;
    let mut agg = fleet.into_aggregator();
    let windows_closed = agg.engine().stats().windows_closed;
    let frames_late = agg.engine().stats().frames_late;
    let stats = agg.stats().clone();
    let fixes = agg.batch_fixes(closed);

    // Single-stream baseline over the same corrupted union, in the
    // merge order (timestamp, node id, within-node position).
    let mut union: Vec<(f64, usize, usize, &CapturedFrame)> = Vec::with_capacity(frames_in);
    for (node_id, slice) in corrupted.iter().enumerate() {
        for (i, f) in slice.iter().enumerate() {
            union.push((f.time_s, node_id, i, f));
        }
    }
    union.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let (baseline, _) = replay_frames(
        scenario.fresh_map(),
        stream,
        union.iter().map(|(_, _, _, f)| *f),
    );
    let matches_single_stream = baseline.len() == fixes.len()
        && baseline.iter().zip(&fixes).all(|(a, b)| {
            a.mobile == b.mobile
                && a.time_s.to_bits() == b.time_s.to_bits()
                && a.estimate.position.x.to_bits() == b.estimate.position.x.to_bits()
                && a.estimate.position.y.to_bits() == b.estimate.position.y.to_bits()
        });

    Ok(FleetChaosCell {
        name: name.to_string(),
        plan: plan
            .map(|p| p.to_string())
            .unwrap_or_else(|| "clean".into()),
        nodes,
        frames_in,
        frames_relayed: stats.frames_relayed,
        frames_late,
        frames_forced: stats.frames_forced,
        duplicate_batches: stats.duplicate_batches,
        windows_closed,
        fixes: fixes.len(),
        matches_single_stream,
    })
}

/// Runs the default fleet chaos matrix (clean / drop / reorder / skew
/// / truncate / combo) over `nodes` loopback nodes.
///
/// # Errors
///
/// The first fatal fleet error from any cell.
pub fn run_default_matrix(
    scenario: &ChaosScenario,
    fault_seed: u64,
    nodes: usize,
) -> Result<FleetChaosReport, NetError> {
    let mut cells = Vec::new();
    for (name, plan, offsets) in matrix() {
        cells.push(run_cell(
            scenario,
            fault_seed,
            &name,
            plan.as_ref(),
            &offsets,
            nodes,
        )?);
    }
    Ok(FleetChaosReport {
        scenario: scenario.name().to_string(),
        sim_seed: scenario.sim_seed(),
        fault_seed,
        nodes,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_matrix_merges_without_distortion() {
        let scenario = ChaosScenario::quick(7);
        let report = run_default_matrix(&scenario, 11, 4).expect("matrix runs");
        assert_eq!(report.cells.len(), 6);
        for cell in &report.cells {
            assert_eq!(
                cell.frames_relayed as usize, cell.frames_in,
                "{}: every frame entering the wire must reach the engine",
                cell.name
            );
            assert_eq!(cell.frames_late, 0, "{}: no late frames", cell.name);
            assert!(
                cell.matches_single_stream,
                "{}: fleet diverged from single-stream replay",
                cell.name
            );
        }
        assert!(report.cells[0].fixes > 0, "clean cell must produce fixes");
        let json = report.to_json();
        assert!(json.contains("\"all_match\": true"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
