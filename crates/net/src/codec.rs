//! The fleet wire protocol: length-prefixed binary message frames.
//!
//! Every message travels as a `u32` big-endian body length followed by
//! the body (`u8` tag + fields). All integers are big-endian; every
//! `f64` is carried as the raw bits of its IEEE-754 representation, so
//! timestamps survive the wire bit-exactly. The protocol is explicitly
//! versioned: [`Hello`](Message::Hello) carries
//! [`PROTOCOL_VERSION`] and the aggregator refuses a mismatch with a
//! typed error instead of misparsing newer frames.
//!
//! Decoding is total: malformed input of any shape — truncated frames,
//! oversized length prefixes, unknown tags, corrupt payloads, trailing
//! bytes — returns a typed [`WireError`], never a panic.

use marauder_wifi::frame::Frame;
use marauder_wifi::sniffer::CapturedFrame;
use std::fmt;

/// Version spoken by this build. A [`Message::Hello`] carrying any
/// other value is refused during the handshake.
pub const PROTOCOL_VERSION: u16 = 1;

/// Upper bound on a message body, bytes. A length prefix beyond this is
/// rejected before any allocation happens — a corrupt or hostile peer
/// must not be able to request a multi-gigabyte buffer.
pub const MAX_BODY_LEN: u32 = 1 << 24; // 16 MiB

/// Bytes of snapshot text carried per [`Message::SnapshotChunk`].
pub const SNAPSHOT_CHUNK_LEN: usize = 4096;

const TAG_HELLO: u8 = 1;
const TAG_HELLO_ACK: u8 = 2;
const TAG_FRAME_BATCH: u8 = 3;
const TAG_HEARTBEAT: u8 = 4;
const TAG_SNAPSHOT_OFFER: u8 = 5;
const TAG_SNAPSHOT_CHUNK: u8 = 6;

/// Fixed per-frame overhead inside a batch: time bits (8) + card (4) +
/// frame byte length (2). Used to sanity-check declared frame counts
/// against the bytes actually present.
const FRAME_RECORD_MIN: usize = 8 + 4 + 2;

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Node → aggregator, first message of every connection. Declares
    /// the node id, the node's known clock offset from fleet time
    /// (node-local time = fleet time + `clock_offset_s`), and whether
    /// the node wants the aggregator's current engine snapshot streamed
    /// back (fleet checkpoint replication).
    Hello {
        /// Stable node identity; survives reconnects.
        node_id: u32,
        /// Node clock offset from fleet time, seconds.
        clock_offset_s: f64,
        /// The protocol version the node speaks.
        version: u16,
        /// Request a [`Message::SnapshotOffer`] in the ack exchange.
        wants_snapshot: bool,
    },
    /// Aggregator → node, answer to [`Message::Hello`]. `resume_seq` is
    /// the next batch sequence number the aggregator expects from this
    /// node — a rejoining node skips everything below it, so no frame
    /// is lost or double-ingested across a node death.
    HelloAck {
        /// Echoed node id.
        node_id: u32,
        /// The version the aggregator speaks.
        version: u16,
        /// Next expected batch sequence number for this node.
        resume_seq: u64,
    },
    /// Node → aggregator: a contiguous run of captured frames, in the
    /// node's log order, numbered by a per-node sequence counter.
    FrameBatch {
        /// Sending node.
        node_id: u32,
        /// Per-node batch sequence number, starting at 0.
        seq: u64,
        /// The frames, timestamps bit-exact.
        frames: Vec<CapturedFrame>,
    },
    /// Node → aggregator: "no future frame of mine will carry a
    /// node-local timestamp below `watermark_s`". `+∞` means the node's
    /// stream is complete. The aggregator merges fleet progress as the
    /// minimum over live nodes' corrected watermarks.
    Heartbeat {
        /// Sending node.
        node_id: u32,
        /// Node-local watermark promise, seconds (`+∞` = done).
        watermark_s: f64,
    },
    /// Aggregator → node: a fleet checkpoint (stream-engine snapshot
    /// text) follows, in `chunks` chunks totalling `total_len` bytes.
    SnapshotOffer {
        /// Receiving node.
        node_id: u32,
        /// Total snapshot byte length.
        total_len: u64,
        /// Number of [`Message::SnapshotChunk`]s that follow.
        chunks: u32,
    },
    /// Aggregator → node: one chunk of the offered snapshot.
    SnapshotChunk {
        /// Receiving node.
        node_id: u32,
        /// Chunk index, `0..chunks`.
        index: u32,
        /// Chunk bytes (UTF-8 snapshot text).
        data: Vec<u8>,
    },
}

impl Message {
    /// A short stable name for metrics and error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "hello",
            Message::HelloAck { .. } => "hello_ack",
            Message::FrameBatch { .. } => "frame_batch",
            Message::Heartbeat { .. } => "heartbeat",
            Message::SnapshotOffer { .. } => "snapshot_offer",
            Message::SnapshotChunk { .. } => "snapshot_chunk",
        }
    }
}

/// Typed decode failure. Every malformed input maps to exactly one of
/// these; decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the decoder had `needed` bytes.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes available.
        have: usize,
    },
    /// The length prefix exceeds [`MAX_BODY_LEN`].
    Oversized {
        /// Declared body length.
        len: u32,
        /// The enforced maximum.
        max: u32,
    },
    /// The body's leading tag byte names no known message.
    UnknownTag(u8),
    /// A structurally valid envelope with a corrupt payload.
    BadPayload {
        /// What was being decoded when the corruption surfaced.
        what: &'static str,
    },
    /// The body was longer than its message content.
    TrailingBytes {
        /// Unconsumed byte count.
        extra: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated message: needed {needed} bytes, have {have}")
            }
            WireError::Oversized { len, max } => {
                write!(f, "oversized message: body of {len} bytes exceeds {max}")
            }
            WireError::UnknownTag(tag) => write!(f, "unknown message tag {tag:#04x}"),
            WireError::BadPayload { what } => write!(f, "corrupt payload while decoding {what}"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after message body")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Bounded reader over a message body.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }

    fn f64_bits(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Encodes `msg` as a body (tag + fields), without the length prefix.
pub fn encode_body(msg: &Message) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match msg {
        Message::Hello {
            node_id,
            clock_offset_s,
            version,
            wants_snapshot,
        } => {
            out.push(TAG_HELLO);
            out.extend_from_slice(&version.to_be_bytes());
            out.extend_from_slice(&node_id.to_be_bytes());
            out.extend_from_slice(&clock_offset_s.to_bits().to_be_bytes());
            out.push(u8::from(*wants_snapshot));
        }
        Message::HelloAck {
            node_id,
            version,
            resume_seq,
        } => {
            out.push(TAG_HELLO_ACK);
            out.extend_from_slice(&version.to_be_bytes());
            out.extend_from_slice(&node_id.to_be_bytes());
            out.extend_from_slice(&resume_seq.to_be_bytes());
        }
        Message::FrameBatch {
            node_id,
            seq,
            frames,
        } => {
            out.push(TAG_FRAME_BATCH);
            out.extend_from_slice(&node_id.to_be_bytes());
            out.extend_from_slice(&seq.to_be_bytes());
            out.extend_from_slice(&(frames.len() as u32).to_be_bytes());
            for f in frames {
                out.extend_from_slice(&f.time_s.to_bits().to_be_bytes());
                out.extend_from_slice(&(f.card as u32).to_be_bytes());
                let bytes = f.frame.encode();
                out.extend_from_slice(&(bytes.len() as u16).to_be_bytes());
                out.extend_from_slice(&bytes);
            }
        }
        Message::Heartbeat {
            node_id,
            watermark_s,
        } => {
            out.push(TAG_HEARTBEAT);
            out.extend_from_slice(&node_id.to_be_bytes());
            out.extend_from_slice(&watermark_s.to_bits().to_be_bytes());
        }
        Message::SnapshotOffer {
            node_id,
            total_len,
            chunks,
        } => {
            out.push(TAG_SNAPSHOT_OFFER);
            out.extend_from_slice(&node_id.to_be_bytes());
            out.extend_from_slice(&total_len.to_be_bytes());
            out.extend_from_slice(&chunks.to_be_bytes());
        }
        Message::SnapshotChunk {
            node_id,
            index,
            data,
        } => {
            out.push(TAG_SNAPSHOT_CHUNK);
            out.extend_from_slice(&node_id.to_be_bytes());
            out.extend_from_slice(&index.to_be_bytes());
            out.extend_from_slice(&(data.len() as u32).to_be_bytes());
            out.extend_from_slice(data);
        }
    }
    out
}

/// Encodes `msg` as a full wire frame: `u32` body length + body.
pub fn encode(msg: &Message) -> Vec<u8> {
    let body = encode_body(msg);
    let mut out = Vec::with_capacity(body.len() + 4);
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decodes one message body (tag + fields, no length prefix).
///
/// # Errors
///
/// A typed [`WireError`] for any malformation; never panics.
pub fn decode_body(body: &[u8]) -> Result<Message, WireError> {
    let mut r = Reader::new(body);
    let tag = r.u8()?;
    let msg = match tag {
        TAG_HELLO => {
            let version = r.u16()?;
            let node_id = r.u32()?;
            let clock_offset_s = r.f64_bits()?;
            let wants_snapshot = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(WireError::BadPayload { what: "hello flag" }),
            };
            Message::Hello {
                node_id,
                clock_offset_s,
                version,
                wants_snapshot,
            }
        }
        TAG_HELLO_ACK => {
            let version = r.u16()?;
            let node_id = r.u32()?;
            let resume_seq = r.u64()?;
            Message::HelloAck {
                node_id,
                version,
                resume_seq,
            }
        }
        TAG_FRAME_BATCH => {
            let node_id = r.u32()?;
            let seq = r.u64()?;
            let count = r.u32()? as usize;
            // A declared count the remaining bytes cannot possibly hold
            // is corruption — reject before reserving anything.
            if count.saturating_mul(FRAME_RECORD_MIN) > r.remaining() {
                return Err(WireError::BadPayload {
                    what: "frame batch count",
                });
            }
            let mut frames = Vec::with_capacity(count);
            for _ in 0..count {
                let time_s = r.f64_bits()?;
                let card = r.u32()? as usize;
                let len = r.u16()? as usize;
                let bytes = r.take(len)?;
                let frame = Frame::decode(bytes).map_err(|_| WireError::BadPayload {
                    what: "802.11 frame bytes",
                })?;
                frames.push(CapturedFrame {
                    time_s,
                    card,
                    frame,
                });
            }
            Message::FrameBatch {
                node_id,
                seq,
                frames,
            }
        }
        TAG_HEARTBEAT => {
            let node_id = r.u32()?;
            let watermark_s = r.f64_bits()?;
            Message::Heartbeat {
                node_id,
                watermark_s,
            }
        }
        TAG_SNAPSHOT_OFFER => {
            let node_id = r.u32()?;
            let total_len = r.u64()?;
            let chunks = r.u32()?;
            Message::SnapshotOffer {
                node_id,
                total_len,
                chunks,
            }
        }
        TAG_SNAPSHOT_CHUNK => {
            let node_id = r.u32()?;
            let index = r.u32()?;
            let len = r.u32()? as usize;
            if len > r.remaining() {
                return Err(WireError::Truncated {
                    needed: len,
                    have: r.remaining(),
                });
            }
            let data = r.take(len)?.to_vec();
            Message::SnapshotChunk {
                node_id,
                index,
                data,
            }
        }
        other => return Err(WireError::UnknownTag(other)),
    };
    r.finish()?;
    Ok(msg)
}

/// Decodes one length-prefixed frame from the start of `bytes`,
/// returning the message and the total bytes consumed (prefix + body).
///
/// # Errors
///
/// A typed [`WireError`]; [`WireError::Truncated`] means more bytes are
/// needed before a frame can be decoded.
pub fn decode(bytes: &[u8]) -> Result<(Message, usize), WireError> {
    if bytes.len() < 4 {
        return Err(WireError::Truncated {
            needed: 4,
            have: bytes.len(),
        });
    }
    let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    if len > MAX_BODY_LEN {
        return Err(WireError::Oversized {
            len,
            max: MAX_BODY_LEN,
        });
    }
    let total = 4 + len as usize;
    if bytes.len() < total {
        return Err(WireError::Truncated {
            needed: total,
            have: bytes.len(),
        });
    }
    let msg = decode_body(&bytes[4..total])?;
    Ok((msg, total))
}

/// Splits a snapshot document into [`Message::SnapshotOffer`] +
/// [`Message::SnapshotChunk`]s for `node_id`.
pub fn snapshot_messages(node_id: u32, snapshot: &str) -> Vec<Message> {
    let bytes = snapshot.as_bytes();
    let chunks = bytes.chunks(SNAPSHOT_CHUNK_LEN).count() as u32;
    let mut out = Vec::with_capacity(chunks as usize + 1);
    out.push(Message::SnapshotOffer {
        node_id,
        total_len: bytes.len() as u64,
        chunks,
    });
    for (index, chunk) in bytes.chunks(SNAPSHOT_CHUNK_LEN).enumerate() {
        out.push(Message::SnapshotChunk {
            node_id,
            index: index as u32,
            data: chunk.to_vec(),
        });
    }
    out
}

/// Reassembles the text offered by [`snapshot_messages`] from the
/// offer + chunk sequence.
///
/// # Errors
///
/// [`WireError::BadPayload`] when chunks are missing, out of order, or
/// the total length disagrees with the offer; `BadPayload` with a
/// UTF-8 context when the bytes are not valid text.
pub fn reassemble_snapshot(offer: &Message, chunks: &[Message]) -> Result<String, WireError> {
    let Message::SnapshotOffer {
        total_len,
        chunks: declared,
        ..
    } = offer
    else {
        return Err(WireError::BadPayload {
            what: "snapshot offer",
        });
    };
    if chunks.len() != *declared as usize {
        return Err(WireError::BadPayload {
            what: "snapshot chunk count",
        });
    }
    let mut bytes = Vec::with_capacity(*total_len as usize);
    for (i, chunk) in chunks.iter().enumerate() {
        let Message::SnapshotChunk { index, data, .. } = chunk else {
            return Err(WireError::BadPayload {
                what: "snapshot chunk",
            });
        };
        if *index as usize != i {
            return Err(WireError::BadPayload {
                what: "snapshot chunk order",
            });
        }
        bytes.extend_from_slice(data);
    }
    if bytes.len() as u64 != *total_len {
        return Err(WireError::BadPayload {
            what: "snapshot length",
        });
    }
    String::from_utf8(bytes).map_err(|_| WireError::BadPayload {
        what: "snapshot utf-8",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use marauder_wifi::channel::Channel;
    use marauder_wifi::mac::MacAddr;
    use marauder_wifi::ssid::Ssid;

    fn frame(t: f64, ap: u64, mobile: u64) -> CapturedFrame {
        CapturedFrame {
            time_s: t,
            card: 2,
            frame: Frame::probe_response(
                MacAddr::from_index(ap),
                MacAddr::from_index(mobile),
                Ssid::new("net").unwrap(),
                Channel::bg(6).unwrap(),
            ),
        }
    }

    fn samples() -> Vec<Message> {
        vec![
            Message::Hello {
                node_id: 7,
                clock_offset_s: -2.5,
                version: PROTOCOL_VERSION,
                wants_snapshot: true,
            },
            Message::HelloAck {
                node_id: 7,
                version: PROTOCOL_VERSION,
                resume_seq: 42,
            },
            Message::FrameBatch {
                node_id: 7,
                seq: 3,
                frames: vec![
                    frame(1.25, 100, 1),
                    frame(f64::NEG_INFINITY.min(2.0), 101, 2),
                ],
            },
            Message::Heartbeat {
                node_id: 7,
                watermark_s: f64::INFINITY,
            },
            Message::SnapshotOffer {
                node_id: 7,
                total_len: 10,
                chunks: 2,
            },
            Message::SnapshotChunk {
                node_id: 7,
                index: 1,
                data: b"hello".to_vec(),
            },
        ]
    }

    #[test]
    fn round_trips_every_kind() {
        for msg in samples() {
            let wire = encode(&msg);
            let (back, used) = decode(&wire).expect("decodes");
            assert_eq!(used, wire.len());
            assert_eq!(back, msg, "{} diverged", msg.kind());
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        for msg in samples() {
            let wire = encode(&msg);
            for cut in 0..wire.len() {
                let err = decode(&wire[..cut]).expect_err("truncation must fail");
                assert!(
                    matches!(err, WireError::Truncated { .. }),
                    "{} cut at {cut}: {err:?}",
                    msg.kind()
                );
            }
        }
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let mut wire = (MAX_BODY_LEN + 1).to_be_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            decode(&wire),
            Err(WireError::Oversized { len, .. }) if len == MAX_BODY_LEN + 1
        ));
    }

    #[test]
    fn unknown_tag_and_trailing_bytes_are_rejected() {
        assert_eq!(decode_body(&[0xEE]), Err(WireError::UnknownTag(0xEE)));
        let mut body = encode_body(&Message::Heartbeat {
            node_id: 1,
            watermark_s: 0.5,
        });
        body.push(0);
        assert_eq!(
            decode_body(&body),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn absurd_batch_count_is_rejected() {
        // A batch declaring u32::MAX frames in a 20-byte body.
        let mut body = vec![TAG_FRAME_BATCH];
        body.extend_from_slice(&1u32.to_be_bytes());
        body.extend_from_slice(&0u64.to_be_bytes());
        body.extend_from_slice(&u32::MAX.to_be_bytes());
        body.extend_from_slice(&[0u8; 20]);
        assert!(matches!(
            decode_body(&body),
            Err(WireError::BadPayload { .. })
        ));
    }

    #[test]
    fn snapshot_chunking_round_trips() {
        let text: String = (0..3000).map(|i| (b'a' + (i % 26) as u8) as char).collect();
        let msgs = snapshot_messages(9, &text);
        assert!(msgs.len() >= 2);
        let back = reassemble_snapshot(&msgs[0], &msgs[1..]).unwrap();
        assert_eq!(back, text);
        // A missing chunk is a typed error.
        assert!(reassemble_snapshot(&msgs[0], &msgs[1..msgs.len() - 1]).is_err());
    }

    #[test]
    fn timestamps_survive_bit_exactly() {
        for bits in [
            0u64,
            1,
            f64::INFINITY.to_bits(),
            (-0.0f64).to_bits(),
            0x7ff8_dead_beef_0001,
        ] {
            let msg = Message::Heartbeat {
                node_id: 0,
                watermark_s: f64::from_bits(bits),
            };
            let (back, _) = decode(&encode(&msg)).unwrap();
            let Message::Heartbeat { watermark_s, .. } = back else {
                unreachable!()
            };
            assert_eq!(watermark_s.to_bits(), bits);
        }
    }
}
