//! A deterministic in-process fleet: N sniffer nodes wired to one
//! aggregator over [`LoopbackTransport`] pairs, driven round-robin on
//! a single thread. A run is a pure function of (slices, configs,
//! fault plans, seed) — no sockets, no clocks, no thread scheduling.

use crate::aggregator::{Aggregator, Turn};
use crate::node::{NodeConfig, SnifferNode};
use crate::transport::{recv_message, send_message, LoopbackTransport, NetError};
use marauder_fault::{FaultInjector, FaultPlan};
use marauder_stream::ClosedWindow;
use marauder_wifi::sniffer::CapturedFrame;

/// One node's seat in the fleet.
struct Seat {
    node: SnifferNode,
    /// Node-side endpoint.
    node_t: LoopbackTransport,
    /// Aggregator-side endpoint.
    agg_t: LoopbackTransport,
    /// Seat taken out of the round-robin (killed, or tripped a fatal
    /// error that the scenario chose to tolerate).
    parked: bool,
}

/// The single-threaded fleet driver.
pub struct LoopbackFleet {
    aggregator: Aggregator,
    seats: Vec<Seat>,
}

impl LoopbackFleet {
    /// Builds a fleet: one [`SnifferNode`] per `(config, slice)` pair,
    /// all feeding `aggregator`. Node ids are the seat indices.
    pub fn new(aggregator: Aggregator, slices: Vec<(NodeConfig, Vec<CapturedFrame>)>) -> Self {
        let seats = slices
            .into_iter()
            .enumerate()
            .map(|(id, (config, frames))| {
                let (node_t, agg_t) = LoopbackTransport::pair();
                Seat {
                    node: SnifferNode::new(id as u32, config, frames),
                    node_t,
                    agg_t,
                    parked: false,
                }
            })
            .collect();
        LoopbackFleet { aggregator, seats }
    }

    /// The wrapped aggregator.
    pub fn aggregator(&self) -> &Aggregator {
        &self.aggregator
    }

    /// Severs a node's link mid-stream, simulating an abrupt death.
    /// Frames already in flight still deliver; the seat leaves the
    /// round-robin until [`rejoin`](Self::rejoin).
    pub fn kill(&mut self, node: usize) {
        if let Some(seat) = self.seats.get_mut(node) {
            seat.node_t.sever();
            seat.parked = true;
        }
    }

    /// Rewires a killed node over a fresh transport pair. The node
    /// re-handshakes; the aggregator's `resume_seq` skips everything
    /// it already accepted, so nothing is lost or duplicated.
    pub fn rejoin(&mut self, node: usize) {
        if let Some(seat) = self.seats.get_mut(node) {
            let (node_t, agg_t) = LoopbackTransport::pair();
            seat.node_t = node_t;
            seat.agg_t = agg_t;
            seat.node.begin_reconnect();
            seat.parked = false;
        }
    }

    /// Steps every live seat once — each node makes one unit of
    /// progress, then the aggregator drains that node's messages.
    /// Returns the windows released, and whether anything moved.
    ///
    /// # Errors
    ///
    /// The first fatal node or merge error.
    pub fn step(&mut self) -> Result<(Vec<ClosedWindow>, bool), NetError> {
        let mut closed = Vec::new();
        let mut moved = false;
        for seat in &mut self.seats {
            if seat.parked {
                continue;
            }
            match seat.node.step(&mut seat.node_t) {
                Ok(progress) => moved |= progress,
                // A severed link parks the seat; everything else is
                // fatal for the run.
                Err(NetError::Disconnected) => {
                    seat.parked = true;
                    continue;
                }
                Err(e) => return Err(e),
            }
            loop {
                match recv_message(&mut seat.agg_t) {
                    Ok(Some(msg)) => {
                        moved = true;
                        let Turn { replies, closed: c } = self.aggregator.on_message(&msg)?;
                        closed.extend(c);
                        for reply in replies {
                            // A reply that cannot be delivered (node
                            // died between send and receipt) is dropped;
                            // the rejoin handshake re-derives it.
                            let _ = send_message(&mut seat.agg_t, &reply);
                        }
                    }
                    Ok(None) | Err(NetError::Disconnected) => break,
                    Err(e) => return Err(e),
                }
            }
        }
        Ok((closed, moved))
    }

    /// Drives the fleet until every live node has completed its stream
    /// and the merge is quiescent, then finishes the engine. Returns
    /// every window the run closed, in close order.
    ///
    /// # Errors
    ///
    /// The first fatal node or merge error.
    pub fn run(&mut self) -> Result<Vec<ClosedWindow>, NetError> {
        let mut closed = Vec::new();
        loop {
            let (c, moved) = self.step()?;
            closed.extend(c);
            if !moved {
                break;
            }
        }
        closed.extend(self.aggregator.finish());
        Ok(closed)
    }

    /// Finishes the run and hands the aggregator back for batch
    /// localization and stats inspection.
    pub fn into_aggregator(self) -> Aggregator {
        self.aggregator
    }
}

/// Splits a capture log round-robin: frame `i` goes to node
/// `i mod n`. Each slice keeps the log's relative order, modelling
/// interleaved coverage of one airspace by `n` co-located sniffers.
pub fn split_round_robin(frames: &[CapturedFrame], n: usize) -> Vec<Vec<CapturedFrame>> {
    let n = n.max(1);
    let mut out: Vec<Vec<CapturedFrame>> = (0..n).map(|_| Vec::new()).collect();
    for (i, f) in frames.iter().enumerate() {
        out[i % n].push(f.clone());
    }
    out
}

/// Splits a capture log into `n` contiguous time spans, modelling
/// sniffers that each own a patrol shift. Frames landing exactly on a
/// boundary go to the later span.
pub fn split_by_time(frames: &[CapturedFrame], n: usize) -> Vec<Vec<CapturedFrame>> {
    let n = n.max(1);
    let mut out: Vec<Vec<CapturedFrame>> = (0..n).map(|_| Vec::new()).collect();
    if frames.is_empty() {
        return out;
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for f in frames {
        if f.time_s < lo {
            lo = f.time_s;
        }
        if f.time_s > hi {
            hi = f.time_s;
        }
    }
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    for f in frames {
        let mut k = (((f.time_s - lo) / span) * n as f64) as usize;
        if k >= n {
            k = n - 1;
        }
        out[k].push(f.clone());
    }
    out
}

/// Applies a deterministic fault plan to one node's slice — the
/// chaos-test entry point: per-node corruption happens *before* the
/// wire, exactly as a damaged rig would emit it.
pub fn corrupt_slice(frames: &[CapturedFrame], seed: u64, plan: &FaultPlan) -> Vec<CapturedFrame> {
    FaultInjector::new(seed, plan.clone())
        .corrupt(frames)
        .frames
}

/// The watermark slack a slice actually needs: the largest distance
/// any frame sits behind the running maximum timestamp. A node
/// announcing `max_sent - required_slack_s(slice)` never breaks its
/// promise, so the merge stays lossless under bounded reordering.
pub fn required_slack_s(frames: &[CapturedFrame]) -> f64 {
    let mut max_seen = f64::NEG_INFINITY;
    let mut worst = 0.0f64;
    for f in frames {
        if f.time_s > max_seen {
            max_seen = f.time_s;
        } else if max_seen - f.time_s > worst {
            worst = max_seen - f.time_s;
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use marauder_wifi::channel::Channel;
    use marauder_wifi::frame::Frame;
    use marauder_wifi::mac::MacAddr;
    use marauder_wifi::ssid::Ssid;

    fn response(t: f64) -> CapturedFrame {
        CapturedFrame {
            time_s: t,
            card: 0,
            frame: Frame::probe_response(
                MacAddr::from_index(100),
                MacAddr::from_index(1),
                Ssid::new("x").unwrap(),
                Channel::bg(6).unwrap(),
            ),
        }
    }

    #[test]
    fn round_robin_split_partitions_losslessly() {
        let frames: Vec<CapturedFrame> = (0..10).map(|k| response(k as f64)).collect();
        let slices = split_round_robin(&frames, 3);
        assert_eq!(slices.len(), 3);
        let total: usize = slices.iter().map(Vec::len).sum();
        assert_eq!(total, 10);
        assert_eq!(slices[0].len(), 4);
        assert_eq!(slices[1][0].time_s, 1.0);
    }

    #[test]
    fn by_time_split_is_contiguous_and_lossless() {
        let frames: Vec<CapturedFrame> = (0..100).map(|k| response(k as f64 * 0.25)).collect();
        let slices = split_by_time(&frames, 4);
        let total: usize = slices.iter().map(Vec::len).sum();
        assert_eq!(total, 100);
        // Spans do not overlap in time.
        for w in slices.windows(2) {
            let left_max = w[0]
                .iter()
                .map(|f| f.time_s)
                .fold(f64::NEG_INFINITY, f64::max);
            let right_min = w[1].iter().map(|f| f.time_s).fold(f64::INFINITY, f64::min);
            assert!(left_max <= right_min);
        }
    }

    #[test]
    fn required_slack_measures_out_of_orderness() {
        let in_order: Vec<CapturedFrame> = (0..5).map(|k| response(k as f64)).collect();
        assert_eq!(required_slack_s(&in_order), 0.0);
        let shuffled = vec![response(0.0), response(3.0), response(1.0), response(4.0)];
        assert_eq!(required_slack_s(&shuffled), 2.0);
    }
}
