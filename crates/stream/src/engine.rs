//! The online tracking engine.

use marauder_core::pipeline::{FixProvenance, KnowledgeLevel, MaraudersMap, TrackFix};
use marauder_core::{ApRadSolver, Estimate, PipelineError};
use marauder_wifi::frame::FrameBody;
use marauder_wifi::mac::MacAddr;
use marauder_wifi::sniffer::{window_index, window_start, CapturedFrame, ObservationSet};
use std::collections::{BTreeMap, BTreeSet};

/// Streaming-specific knobs (the windowing itself comes from the map's
/// [`AttackConfig`](marauder_core::pipeline::AttackConfig)).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// How far behind the watermark (the largest timestamp seen) a
    /// frame may arrive and still be windowed, seconds. Window `k`
    /// closes once the watermark passes `(k+1)·window_s + allowed_lag_s`;
    /// frames older than that are counted late and dropped. Capture
    /// rigs reorder within tens of milliseconds (card clock offsets,
    /// response turnaround), so the 1 s default is generous.
    pub allowed_lag_s: f64,
    /// Bounded-memory guarantee: at most this many *distinct window
    /// indices* stay open; beyond it the oldest windows are
    /// force-closed (evicted) even though stragglers could still
    /// arrive. `0` disables eviction.
    pub max_open_windows: usize,
    /// Whether each closed window is localized *live* at close time
    /// (the default). Replay paths that only consume
    /// [`batch_fixes`](StreamEngine::batch_fixes) disable this: every
    /// per-window estimate would be discarded anyway, and skipping the
    /// per-window solve-and-locate is the bulk of replay's cost. With
    /// it off, [`ClosedWindow::outcome`] is
    /// `Err(PipelineError::DeferredLocalization)`.
    pub live_localization: bool,
    /// Whether live re-solves warm-start from the previous window's
    /// optimal basis (see
    /// [`ApRadSolver::set_warm_start`]). Affects only the live
    /// estimates — [`batch_fixes`](StreamEngine::batch_fixes) always
    /// re-solves cold, so batch output is byte-identical either way.
    ///
    /// Off by default: a warm solve is a genuine optimum but may sit on
    /// a different vertex of the optimal face than the cold solve, and
    /// the warm basis memory is deliberately not serialized into
    /// snapshots — so with warm starts on, live estimates are
    /// optimum-equivalent (not bit-pinned) across a snapshot/restore.
    /// Opt in where live latency matters more than that pin.
    pub warm_start: bool,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            allowed_lag_s: 1.0,
            max_open_windows: 64,
            live_localization: true,
            warm_start: false,
        }
    }
}

/// Ingestion counters — the engine's observability surface.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Frames pushed, of any kind.
    pub frames_total: usize,
    /// Probe-response frames that landed in a window.
    pub frames_relevant: usize,
    /// Probe-response frames dropped because their window had already
    /// closed (arrived more than `allowed_lag_s` behind the watermark,
    /// or after an eviction).
    pub frames_late: usize,
    /// Frames rejected before windowing because their timestamp was
    /// NaN or infinite — a malformed timestamp must never poison the
    /// watermark (a single `+∞` would instantly close every future
    /// window).
    pub frames_malformed: usize,
    /// Windows closed (emitted), including evicted ones.
    pub windows_closed: usize,
    /// Windows force-closed by the `max_open_windows` bound.
    pub windows_evicted: usize,
    /// AP-Rad LP solves actually performed. The incremental solver
    /// skips the re-solve for every closed window that provably left
    /// the constraint set unchanged, so this is typically much smaller
    /// than `windows_closed`.
    pub lp_solves: usize,
}

/// One observation window the engine has finished assembling.
///
/// `estimate` is the *live* localization at close time — computed with
/// whatever radii the solver had converged to by then (`None` when the
/// discs don't intersect usefully yet). Batch-equivalent output
/// re-localizes all windows with the final radii via
/// [`StreamEngine::batch_fixes`]; at the Full knowledge level radii
/// never change, so live estimates already equal the batch ones. With
/// [`StreamConfig::live_localization`] off the outcome is always
/// `Err(DeferredLocalization)` — replay consumers drop it unread.
#[derive(Debug, Clone)]
pub struct ClosedWindow {
    /// The window index (`time_s / window_s`, floored — half-open).
    pub window: i64,
    /// Window start time, seconds: `window · window_s`.
    pub window_start_s: f64,
    /// The mobile the window belongs to.
    pub mobile: MacAddr,
    /// BSSIDs observed responding to the mobile within the window.
    pub gamma: BTreeSet<MacAddr>,
    /// Live localization at close time, with the ladder rung that
    /// produced it ([`Err`] holds the typed reason the window was not
    /// locatable live).
    pub outcome: Result<(Estimate, FixProvenance), PipelineError>,
}

impl ClosedWindow {
    /// Live localization at close time (`None` when the window was not
    /// locatable live).
    pub fn estimate(&self) -> Option<&Estimate> {
        self.outcome.as_ref().ok().map(|(est, _)| est)
    }

    /// Converts the event into a [`TrackFix`], or `None` when the
    /// window was not locatable live.
    pub fn into_fix(self) -> Option<TrackFix> {
        let (estimate, provenance) = self.outcome.ok()?;
        Some(TrackFix {
            time_s: self.window_start_s,
            mobile: self.mobile,
            gamma: self.gamma,
            estimate,
            provenance,
        })
    }
}

/// The live tracking engine: push frames in, get [`ClosedWindow`]
/// events out. See the [crate docs](crate) for the architecture.
#[derive(Debug, Clone)]
pub struct StreamEngine {
    pub(crate) map: MaraudersMap,
    pub(crate) solver: Option<ApRadSolver>,
    pub(crate) config: StreamConfig,
    pub(crate) window_s: f64,
    /// Open windows, keyed window-first so the oldest drain first.
    pub(crate) open: BTreeMap<(i64, MacAddr), BTreeSet<MacAddr>>,
    /// All windows `< closed_before` are closed and will never reopen;
    /// `None` until the first close.
    pub(crate) closed_before: Option<i64>,
    /// Largest timestamp seen; `None` before the first frame.
    pub(crate) watermark: Option<f64>,
    pub(crate) stats: StreamStats,
    /// Local watermark-lag histogram buckets (bounds
    /// [`WATERMARK_LAG_BOUNDS_S`] plus overflow): the per-frame path
    /// accumulates here and [`finish`](Self::finish) merges into the
    /// global registry once, so ingest never takes the registry lock
    /// per frame. Process-local — deliberately not serialized into
    /// snapshots.
    lag_counts: [u64; WATERMARK_LAG_BOUNDS_S.len() + 1],
    /// High-water mark of simultaneously open `(window, mobile)`
    /// entries.
    open_peak: usize,
    /// Guards the one-shot metrics flush in `finish`.
    metrics_flushed: bool,
}

/// Bucket bounds (inclusive upper edges, seconds) for the
/// `stream.watermark_lag_s` histogram: how far behind the watermark
/// each relevant frame arrived. The spread is tuned around the default
/// [`StreamConfig::allowed_lag_s`] of 1 s — buckets below it show
/// benign jitter, buckets above it show frames at risk of being late.
pub const WATERMARK_LAG_BOUNDS_S: [f64; 7] = [0.05, 0.1, 0.25, 0.5, 1.0, 5.0, 30.0];

impl StreamEngine {
    /// Wraps a [`MaraudersMap`] into a streaming engine.
    ///
    /// The engine owns the map's knowledge updates from here on: at the
    /// non-Full levels it creates a fresh incremental
    /// [`ApRadSolver`] and re-estimates radii as windows close,
    /// overwriting whatever a previous batch `ingest` installed.
    ///
    /// # Panics
    ///
    /// Panics on a negative `allowed_lag_s` (the map's positive
    /// `window_s` is enforced by the map itself).
    pub fn new(map: MaraudersMap, config: StreamConfig) -> Self {
        assert!(
            config.allowed_lag_s >= 0.0,
            "allowed lag must be non-negative, got {}",
            config.allowed_lag_s
        );
        let window_s = map.config().window_s;
        assert!(window_s > 0.0, "window must be positive, got {window_s}");
        let mut solver = map.radius_solver();
        if let Some(s) = solver.as_mut() {
            s.set_warm_start(config.warm_start);
        }
        StreamEngine {
            map,
            solver,
            config,
            window_s,
            open: BTreeMap::new(),
            closed_before: None,
            watermark: None,
            stats: StreamStats::default(),
            lag_counts: [0; WATERMARK_LAG_BOUNDS_S.len() + 1],
            open_peak: 0,
            metrics_flushed: false,
        }
    }

    /// Overrides the process-configuration mode flags —
    /// [`StreamConfig::live_localization`] and
    /// [`StreamConfig::warm_start`] — on an existing engine. These are
    /// deliberately not serialized into snapshots (see
    /// [`restore`](Self::restore)), so callers resuming from a
    /// checkpoint use this to reapply their own mode.
    pub fn set_mode(&mut self, live_localization: bool, warm_start: bool) {
        self.config.live_localization = live_localization;
        self.config.warm_start = warm_start;
        if let Some(s) = self.solver.as_mut() {
            s.set_warm_start(warm_start);
        }
    }

    /// Feeds one captured frame; returns the windows (possibly none)
    /// this frame's timestamp allowed to close, oldest first.
    pub fn push(&mut self, frame: &CapturedFrame) -> Vec<ClosedWindow> {
        self.stats.frames_total += 1;
        if !frame.time_s.is_finite() {
            self.stats.frames_malformed += 1;
            return Vec::new();
        }
        let mark = match self.watermark {
            Some(mark) => mark.max(frame.time_s),
            None => frame.time_s,
        };
        self.watermark = Some(mark);
        // Exactly the frames `CaptureDatabase::observation_sets` groups:
        // probe responses to a unicast destination.
        if matches!(frame.frame.body, FrameBody::ProbeResponse { .. })
            && !frame.frame.dst.is_broadcast()
        {
            self.observe_lag(mark - frame.time_s);
            let w = window_index(frame.time_s, self.window_s);
            if self.closed_before.is_some_and(|cb| w < cb) {
                self.stats.frames_late += 1;
            } else {
                self.stats.frames_relevant += 1;
                self.open
                    .entry((w, frame.frame.dst))
                    .or_default()
                    .insert(frame.frame.bssid);
                self.open_peak = self.open_peak.max(self.open.len());
            }
        }
        self.drain_closable()
    }

    /// Declares the stream over: closes and emits every still-open
    /// window, oldest first, then flushes the engine's accumulated
    /// metrics to the global registry. Further pushes count as late.
    pub fn finish(&mut self) -> Vec<ClosedWindow> {
        let out = self.close_below(i64::MAX);
        self.flush_metrics();
        out
    }

    /// Buckets one watermark lag (seconds behind the newest timestamp
    /// seen) into the local histogram.
    fn observe_lag(&mut self, lag_s: f64) {
        let mut slot = WATERMARK_LAG_BOUNDS_S.len();
        for (i, b) in WATERMARK_LAG_BOUNDS_S.iter().enumerate() {
            if lag_s <= *b {
                slot = i;
                break;
            }
        }
        self.lag_counts[slot] += 1;
    }

    /// One-shot merge of everything accumulated locally into the
    /// global registry. All of it is deterministic: the counters and
    /// lag buckets are pure functions of the frame sequence, and the
    /// engine itself is single-threaded.
    fn flush_metrics(&mut self) {
        if self.metrics_flushed {
            return;
        }
        self.metrics_flushed = true;
        let reg = marauder_obs::global();
        reg.counter_add("stream.frames_total", self.stats.frames_total as u64);
        reg.counter_add("stream.frames_relevant", self.stats.frames_relevant as u64);
        reg.counter_add("stream.frames_late", self.stats.frames_late as u64);
        reg.counter_add(
            "stream.frames_malformed",
            self.stats.frames_malformed as u64,
        );
        reg.counter_add("stream.windows_closed", self.stats.windows_closed as u64);
        reg.counter_add("stream.windows_evicted", self.stats.windows_evicted as u64);
        reg.counter_add("stream.lp_solves", self.stats.lp_solves as u64);
        reg.gauge_max("stream.open_windows_peak", self.open_peak as i64);
        reg.histogram_merge(
            "stream.watermark_lag_s",
            &WATERMARK_LAG_BOUNDS_S,
            &self.lag_counts,
        );
    }

    /// Re-localizes a set of closed windows with the engine's *final*
    /// knowledge and returns them in batch order — sorted by
    /// `(mobile, window)`, unlocatable windows dropped.
    ///
    /// Called after [`finish`](Self::finish) with every event the
    /// stream emitted, the result is byte-identical to
    /// [`MaraudersMap::track_all`] over the equivalent capture
    /// database (provided nothing was dropped late or evicted — check
    /// [`stats`](Self::stats)): the window sets match by construction,
    /// the final radii match because the AP-Rad program only reads
    /// order-independent statistics, and both sides localize through
    /// `MaraudersMap::localize_windows`.
    pub fn batch_fixes(&mut self, mut closed: Vec<ClosedWindow>) -> Vec<TrackFix> {
        // One canonical cold solve with the final statistics before
        // localizing. This is what makes the batch output independent
        // of the live path: lazy replay never applied radii per window,
        // and warm live solves may have installed a different (equally
        // optimal) vertex — either way the canonical solution goes in
        // here, so batch fixes are byte-identical for every combination
        // of `live_localization` and `warm_start`.
        if let Some(solver) = self.solver.as_mut() {
            if solver.is_dirty() {
                self.stats.lp_solves += 1;
                if self.metrics_flushed {
                    // `finish` already flushed the one-shot counters;
                    // keep the global registry consistent with stats.
                    marauder_obs::global().counter_add("stream.lp_solves", 1);
                }
                let radii = solver.radii().clone();
                self.map.apply_radii(radii);
            }
        }
        closed.sort_by_key(|c| (c.mobile, c.window));
        let sets: Vec<ObservationSet> = closed
            .into_iter()
            .map(|c| ObservationSet {
                mobile: c.mobile,
                window_start_s: c.window_start_s,
                aps: c.gamma,
            })
            .collect();
        self.map.localize_windows(sets)
    }

    /// Ingestion counters.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// The wrapped map, with whatever radii the solver has converged
    /// to so far.
    pub fn map(&self) -> &MaraudersMap {
        &self.map
    }

    /// The knowledge level the engine operates at.
    pub fn knowledge(&self) -> KnowledgeLevel {
        self.map.knowledge()
    }

    /// Number of currently open `(window, mobile)` entries.
    pub fn open_windows(&self) -> usize {
        self.open.len()
    }

    /// Largest timestamp ingested so far.
    pub fn watermark(&self) -> Option<f64> {
        self.watermark
    }

    /// Closes every window the current watermark has left behind, then
    /// enforces the open-window bound.
    fn drain_closable(&mut self) -> Vec<ClosedWindow> {
        let Some(mark) = self.watermark else {
            return Vec::new();
        };
        // Window k may close once mark ≥ (k+1)·w + lag; equivalently
        // every window below the one containing (mark − lag) is safe.
        let boundary = window_index(mark - self.config.allowed_lag_s, self.window_s);
        let mut out = self.close_below(boundary);
        if self.config.max_open_windows > 0 {
            while self.distinct_open_indices() > self.config.max_open_windows {
                let Some(&(oldest, _)) = self.open.keys().next() else {
                    break;
                };
                let evicted = self.close_below(oldest + 1);
                self.stats.windows_evicted += evicted.len();
                out.extend(evicted);
            }
        }
        out
    }

    /// Closes every open window with index `< boundary` (oldest first)
    /// and advances the no-reopen cursor.
    fn close_below(&mut self, boundary: i64) -> Vec<ClosedWindow> {
        let mut out = Vec::new();
        while self
            .open
            .first_key_value()
            .is_some_and(|(&(w, _), _)| w < boundary)
        {
            let Some(((w, mobile), gamma)) = self.open.pop_first() else {
                break;
            };
            out.push(self.close_window(w, mobile, gamma));
        }
        self.closed_before = Some(match self.closed_before {
            Some(cb) => cb.max(boundary),
            None => boundary,
        });
        out
    }

    /// Emits one closed window: folds its Γ into the solver,
    /// re-solves the AP-Rad LP only if the fold dirtied it, and
    /// localizes live with the current knowledge.
    fn close_window(&mut self, w: i64, mobile: MacAddr, gamma: BTreeSet<MacAddr>) -> ClosedWindow {
        self.stats.windows_closed += 1;
        if let Some(solver) = self.solver.as_mut() {
            solver.observe(&gamma);
            // Lazy mode only folds the statistics: the solve (and the
            // localization below) are deferred to `batch_fixes`, which
            // is the only consumer in that mode.
            if self.config.live_localization && solver.is_live_dirty() {
                self.stats.lp_solves += 1;
                let radii = solver.live_radii().clone();
                self.map.apply_radii(radii);
            }
        }
        let outcome = if self.config.live_localization {
            self.map.try_locate(&gamma)
        } else {
            Err(PipelineError::DeferredLocalization)
        };
        ClosedWindow {
            window: w,
            window_start_s: window_start(w, self.window_s),
            mobile,
            gamma,
            outcome,
        }
    }

    /// Number of distinct window indices among the open entries.
    fn distinct_open_indices(&self) -> usize {
        let mut n = 0;
        let mut last = None;
        for &(w, _) in self.open.keys() {
            if last != Some(w) {
                n += 1;
                last = Some(w);
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marauder_core::apdb::{ApDatabase, ApRecord};
    use marauder_core::pipeline::AttackConfig;
    use marauder_geo::Point;
    use marauder_wifi::channel::Channel;
    use marauder_wifi::frame::Frame;
    use marauder_wifi::ssid::Ssid;

    fn mac(i: u64) -> MacAddr {
        MacAddr::from_index(i)
    }

    /// Full-knowledge map over three APs around the origin.
    fn tiny_map() -> MaraudersMap {
        let db: ApDatabase = [
            (100u64, Point::new(0.0, 0.0)),
            (101, Point::new(100.0, 0.0)),
            (102, Point::new(50.0, 80.0)),
        ]
        .into_iter()
        .map(|(i, p)| ApRecord {
            bssid: mac(i),
            ssid: None,
            location: p,
            radius: Some(120.0),
        })
        .collect();
        MaraudersMap::new(db, KnowledgeLevel::Full, AttackConfig::default())
    }

    fn response(t: f64, ap: u64, mobile: u64) -> CapturedFrame {
        CapturedFrame {
            time_s: t,
            card: 0,
            frame: Frame::probe_response(
                mac(ap),
                mac(mobile),
                Ssid::new("x").unwrap(),
                Channel::bg(6).unwrap(),
            ),
        }
    }

    #[test]
    fn windows_close_when_watermark_passes_lag() {
        let mut engine = StreamEngine::new(tiny_map(), StreamConfig::default());
        // Window 0 (30 s default) for mobile 1.
        assert!(engine.push(&response(1.0, 100, 1)).is_empty());
        assert!(engine.push(&response(2.0, 101, 1)).is_empty());
        // Watermark 30.5 < 31.0 = window end + lag: still open.
        assert!(engine.push(&response(30.5, 102, 1)).is_empty());
        assert_eq!(engine.open_windows(), 2);
        // Watermark 31.0 closes window 0.
        let events = engine.push(&response(31.0, 100, 1));
        assert_eq!(events.len(), 1);
        let ev = &events[0];
        assert_eq!(ev.window, 0);
        assert_eq!(ev.window_start_s, 0.0);
        assert_eq!(ev.mobile, mac(1));
        assert_eq!(ev.gamma, [mac(100), mac(101)].into_iter().collect());
        assert!(
            ev.estimate().is_some(),
            "two Full-knowledge discs intersect"
        );
        // Window 1 is still assembling.
        assert_eq!(engine.open_windows(), 1);
        let rest = engine.finish();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].window, 1);
        assert_eq!(engine.stats().windows_closed, 2);
    }

    #[test]
    fn boundary_frame_opens_the_next_window() {
        // The half-open regression on the streaming side: a response at
        // exactly t == window_end belongs to the next window. Mirrors
        // `observation_sets_respect_half_open_boundary` on the batch
        // side.
        let mut engine = StreamEngine::new(tiny_map(), StreamConfig::default());
        engine.push(&response(0.0, 100, 1));
        engine.push(&response(30.0, 101, 1));
        let mut events = engine.finish();
        events.sort_by_key(|e| e.window);
        assert_eq!(events.len(), 2, "boundary frame must open window 1");
        assert_eq!(events[0].window, 0);
        assert_eq!(events[0].gamma, [mac(100)].into_iter().collect());
        assert_eq!(events[1].window, 1);
        assert_eq!(events[1].window_start_s, 30.0);
        assert_eq!(events[1].gamma, [mac(101)].into_iter().collect());
    }

    #[test]
    fn late_frames_are_counted_and_dropped() {
        let mut engine = StreamEngine::new(tiny_map(), StreamConfig::default());
        engine.push(&response(1.0, 100, 1));
        let closed = engine.push(&response(40.0, 101, 1)); // closes window 0
        assert_eq!(closed.len(), 1);
        // A straggler for window 0, far beyond the allowed lag.
        let events = engine.push(&response(2.0, 102, 1));
        assert!(events.is_empty());
        assert_eq!(engine.stats().frames_late, 1);
        // The closed window did not reopen.
        assert_eq!(engine.open_windows(), 1);
    }

    #[test]
    fn within_lag_inversions_are_absorbed() {
        let mut engine = StreamEngine::new(tiny_map(), StreamConfig::default());
        engine.push(&response(30.4, 101, 1)); // window 1 first
        let events = engine.push(&response(29.9, 100, 1)); // then window 0
        assert!(events.is_empty(), "watermark 30.4 < 30 + lag keeps w0 open");
        let all = engine.finish();
        assert_eq!(all.len(), 2);
        assert_eq!(engine.stats().frames_late, 0);
    }

    #[test]
    fn eviction_bounds_open_windows() {
        let config = StreamConfig {
            allowed_lag_s: 1e6, // the close rule never fires on its own
            max_open_windows: 3,
            ..StreamConfig::default()
        };
        let mut engine = StreamEngine::new(tiny_map(), config);
        let mut evicted = Vec::new();
        for k in 0..10 {
            evicted.extend(engine.push(&response(k as f64 * 30.0 + 1.0, 100, 1)));
        }
        // 10 window indices entered; at most 3 may remain open.
        assert_eq!(engine.stats().windows_evicted, 7);
        assert_eq!(evicted.len(), 7);
        assert_eq!(engine.open_windows(), 3);
        // Evicted windows never reopen: a frame for window 0 is late.
        engine.push(&response(2.0, 101, 1));
        assert_eq!(engine.stats().frames_late, 1);
    }

    #[test]
    fn non_response_frames_only_move_the_watermark() {
        let mut engine = StreamEngine::new(tiny_map(), StreamConfig::default());
        engine.push(&response(1.0, 100, 1));
        let probe = CapturedFrame {
            time_s: 45.0,
            card: 0,
            frame: Frame::probe_request(mac(1), None, 6),
        };
        let events = engine.push(&probe);
        assert_eq!(events.len(), 1, "watermark from any frame closes windows");
        assert_eq!(engine.stats().frames_relevant, 1);
        assert_eq!(engine.stats().frames_total, 2);
    }

    /// Locations-only map (no radii): the AP-Rad solver is active.
    fn locations_only_map() -> MaraudersMap {
        let db: ApDatabase = [
            (100u64, Point::new(0.0, 0.0)),
            (101, Point::new(100.0, 0.0)),
            (102, Point::new(50.0, 80.0)),
            (103, Point::new(150.0, 80.0)),
        ]
        .into_iter()
        .map(|(i, p)| ApRecord {
            bssid: mac(i),
            ssid: None,
            location: p,
            radius: None,
        })
        .collect();
        MaraudersMap::new(db, KnowledgeLevel::LocationsOnly, AttackConfig::default())
    }

    #[test]
    fn batch_fixes_are_identical_across_live_warm_and_lazy_modes() {
        // The live path's mode (cold live, warm live, or fully lazy)
        // must never leak into the batch output: `batch_fixes` does one
        // canonical cold solve with the final statistics either way.
        let run = |live: bool, warm: bool| {
            let config = StreamConfig {
                live_localization: live,
                warm_start: warm,
                ..StreamConfig::default()
            };
            let mut engine = StreamEngine::new(locations_only_map(), config);
            let mut events = Vec::new();
            for k in 0u64..24 {
                let t = k as f64 * 15.0 + 1.0;
                events.extend(engine.push(&response(t, 100 + k % 4, 1)));
                events.extend(engine.push(&response(t + 0.5, 100 + (k + 1) % 4, 1)));
            }
            events.extend(engine.finish());
            engine.batch_fixes(events)
        };
        let reference = run(true, false);
        assert!(!reference.is_empty(), "scenario must produce fixes");
        for (live, warm) in [(true, true), (false, false), (false, true)] {
            let other = run(live, warm);
            assert_eq!(reference.len(), other.len(), "live={live} warm={warm}");
            for (a, b) in reference.iter().zip(&other) {
                assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
                assert_eq!(a.mobile, b.mobile);
                assert_eq!(a.gamma, b.gamma);
                assert_eq!(
                    a.estimate.position.x.to_bits(),
                    b.estimate.position.x.to_bits(),
                    "live={live} warm={warm}: x diverged"
                );
                assert_eq!(
                    a.estimate.position.y.to_bits(),
                    b.estimate.position.y.to_bits(),
                    "live={live} warm={warm}: y diverged"
                );
                assert_eq!(a.estimate.area().to_bits(), b.estimate.area().to_bits());
            }
        }
    }

    #[test]
    fn lazy_mode_defers_every_outcome() {
        let config = StreamConfig {
            live_localization: false,
            ..StreamConfig::default()
        };
        let mut engine = StreamEngine::new(locations_only_map(), config);
        let mut events = Vec::new();
        for k in 0u64..6 {
            events.extend(engine.push(&response(k as f64 * 30.0 + 1.0, 100 + k % 3, 1)));
        }
        events.extend(engine.finish());
        assert!(!events.is_empty());
        assert!(events
            .iter()
            .all(|e| matches!(e.outcome, Err(PipelineError::DeferredLocalization))));
        // No per-window solves happened; the batch pass does exactly one.
        assert_eq!(engine.stats().lp_solves, 0);
        let fixes = engine.batch_fixes(events);
        assert!(!fixes.is_empty());
        assert_eq!(engine.stats().lp_solves, 1);
    }

    #[test]
    fn full_knowledge_never_solves() {
        let mut engine = StreamEngine::new(tiny_map(), StreamConfig::default());
        for k in 0u64..5 {
            engine.push(&response(k as f64 * 30.0 + 1.0, 100 + k % 3, 1));
        }
        engine.finish();
        assert_eq!(engine.stats().lp_solves, 0);
    }
}
