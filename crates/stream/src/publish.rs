//! Snapshot publication: the bridge between the ingest hot path and
//! live readers.
//!
//! The serving layer (`marauder-serve`) wants to expose tracker state
//! to thousands of concurrent readers without ever stalling ingestion.
//! The engine's side of that contract is deliberately tiny: a
//! [`SnapshotSink`] observes every batch of closed windows the moment
//! the watermark releases it, *synchronously on the ingest thread*,
//! with full read access to the engine. Whatever the sink builds from
//! those events (immutable `Arc` snapshots, in the serving layer's
//! case) is its own business — the engine never blocks on readers
//! because it never sees them.
//!
//! The hook is pull-free by design: no channels, no background thread,
//! no queue that can fall behind. A sink that does unbounded work per
//! publish would slow ingestion, so implementations are expected to do
//! O(changed state) work and defer anything heavier (the serving
//! layer, for instance, regenerates its full text snapshot only on a
//! stream-time cadence).

use crate::engine::{ClosedWindow, StreamEngine};
use marauder_wifi::sniffer::CapturedFrame;

/// Observer of closed-window batches, called synchronously on the
/// ingest thread by [`StreamEngine::push_published`] and
/// [`StreamEngine::finish_published`].
pub trait SnapshotSink {
    /// Called after every push that closed at least one window, and
    /// once more from `finish_published` (possibly with an empty
    /// batch) so the final watermark and counters are observable.
    fn publish(&mut self, closed: &[ClosedWindow], engine: &StreamEngine);
}

impl StreamEngine {
    /// [`push`](StreamEngine::push) plus publication: when the frame
    /// closed any windows, the sink observes them (and the engine's
    /// post-push state) before the events are returned.
    pub fn push_published(
        &mut self,
        frame: &CapturedFrame,
        sink: &mut dyn SnapshotSink,
    ) -> Vec<ClosedWindow> {
        let closed = self.push(frame);
        if !closed.is_empty() {
            sink.publish(&closed, self);
        }
        closed
    }

    /// [`finish`](StreamEngine::finish) plus a final, unconditional
    /// publication — even when no windows were left open, the sink
    /// sees the engine's final state exactly once.
    pub fn finish_published(&mut self, sink: &mut dyn SnapshotSink) -> Vec<ClosedWindow> {
        let closed = self.finish();
        sink.publish(&closed, self);
        closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StreamConfig;
    use marauder_core::apdb::{ApDatabase, ApRecord};
    use marauder_core::pipeline::{AttackConfig, KnowledgeLevel, MaraudersMap};
    use marauder_geo::Point;
    use marauder_wifi::channel::Channel;
    use marauder_wifi::frame::Frame;
    use marauder_wifi::mac::MacAddr;
    use marauder_wifi::ssid::Ssid;

    struct Recorder {
        batches: Vec<usize>,
        watermarks: Vec<Option<f64>>,
    }

    impl SnapshotSink for Recorder {
        fn publish(&mut self, closed: &[ClosedWindow], engine: &StreamEngine) {
            self.batches.push(closed.len());
            self.watermarks.push(engine.watermark());
        }
    }

    fn test_map() -> MaraudersMap {
        let db: ApDatabase = (0..4)
            .map(|i| ApRecord {
                bssid: MacAddr::from_index(100 + i),
                ssid: None,
                location: Point::new((i % 2) as f64 * 80.0, (i / 2) as f64 * 80.0),
                radius: Some(130.0),
            })
            .collect();
        MaraudersMap::new(db, KnowledgeLevel::Full, AttackConfig::default())
    }

    fn frame(t: f64, ap: u64, mobile: u64) -> CapturedFrame {
        CapturedFrame {
            time_s: t,
            card: 0,
            frame: Frame::probe_response(
                MacAddr::from_index(ap),
                MacAddr::from_index(mobile),
                Ssid::new("n").unwrap(),
                Channel::bg(6).unwrap(),
            ),
        }
    }

    #[test]
    fn sink_observes_every_closed_batch_and_the_finish() {
        let mut engine = StreamEngine::new(test_map(), StreamConfig::default());
        let mut sink = Recorder {
            batches: Vec::new(),
            watermarks: Vec::new(),
        };
        let mut closed_total = 0usize;
        for k in 0..20 {
            let t = k as f64 * 5.0;
            closed_total += engine
                .push_published(&frame(t, 100 + k % 4, 1), &mut sink)
                .len();
        }
        closed_total += engine.finish_published(&mut sink).len();

        // Every batch the engine emitted reached the sink, and the
        // finish publication is unconditional (the last entry exists
        // even when finish closed nothing).
        let published: usize = sink.batches.iter().sum();
        assert_eq!(published, closed_total);
        assert!(closed_total > 0, "scenario must close windows");
        assert!(!sink.batches.is_empty());
        // Pushes that closed nothing did not publish: every non-final
        // batch is non-empty.
        assert!(sink.batches[..sink.batches.len() - 1]
            .iter()
            .all(|&n| n > 0));
        // The sink saw the engine's state, not a stale copy: the final
        // watermark matches the engine's.
        assert_eq!(sink.watermarks.last().copied(), Some(engine.watermark()));
    }
}
