//! Live tracking engine: streaming frame ingestion with incremental
//! map updates and batch-equivalent output.
//!
//! The paper presents the Marauder's Map as a *live* system — the
//! sniffer watches probe traffic continuously and the map tracks any
//! mobile it saw — but the batch pipeline in `marauder-core` needs the
//! whole capture database up front. This crate closes that gap: a
//! [`StreamEngine`] consumes [`CapturedFrame`]s one at a time (from a
//! capture-log replay or straight out of the simulation engine),
//! assembles per-mobile observation windows in bounded memory, and
//! emits a [`ClosedWindow`] event the moment each window can no longer
//! grow.
//!
//! # Architecture
//!
//! ```text
//! frames ──▶ window table ──▶ close rule ──▶ ApRadSolver ──▶ locate ──▶ events
//!            (w, mobile)      watermark        (scoped          │
//!             → Γ set          − lag          re-solve)     MaraudersMap
//! ```
//!
//! * **Windowing** shares [`marauder_wifi::sniffer::window_index`]
//!   with the batch path — the half-open `[k·w, (k+1)·w)` convention
//!   is pinned in one place.
//! * **Closing** is watermark-driven: window `k` closes once the
//!   largest timestamp seen passes `(k+1)·w + allowed_lag_s`. The lag
//!   absorbs the bounded timestamp inversions real capture rigs (and
//!   the simulator) produce; frames arriving for already-closed
//!   windows are counted as late and dropped.
//! * **Knowledge updates** are incremental: each closed window's Γ set
//!   folds into an [`ApRadSolver`](marauder_core::ApRadSolver), which
//!   re-solves the AP-Rad linear program only when the fold actually
//!   changed the constraint set (new AP, new co-observation pair, or a
//!   negative-evidence threshold crossing) — not on every window.
//! * **Bounded memory**: at most `max_open_windows` distinct window
//!   indices stay open; beyond that the oldest are force-closed
//!   (eviction), preserving the no-reopen invariant.
//!
//! # Batch equivalence
//!
//! Replaying a capture through [`replay_database`] yields fixes
//! **byte-identical** to [`MaraudersMap::track_all`] over the same
//! database (given a lag large enough that nothing is dropped). The
//! argument: window grouping is the same pure function on both paths;
//! the AP-Rad program reads the window history only through
//! order-independent statistics, so the final radii match the batch
//! solve bit for bit; and the final localization funnels through the
//! same `MaraudersMap::localize_windows` on both sides.
//!
//! Engine state can be snapshotted mid-stream ([`StreamEngine::snapshot`]),
//! carried across a process restart, restored
//! ([`StreamEngine::restore`]) and resumed — with output identical to
//! the uninterrupted run.
//!
//! # Durability
//!
//! Snapshots are cooperative — someone has to ask for one. The
//! [`FrameJournal`] makes ingestion durable against *kills*: every
//! frame is appended to a checksummed write-ahead log before it is
//! pushed, so [`FrameJournal::recover`] can rebuild the engine (newest
//! checkpoint + journal-tail replay, torn tails truncated) with state
//! byte-identical to the uninterrupted run. See
//! DESIGN.md "Durability & crash recovery".

#![forbid(unsafe_code)]

mod engine;
mod journal;
mod publish;
mod replay;
mod snapshot;

pub use engine::{ClosedWindow, StreamConfig, StreamEngine, StreamStats};
pub use journal::{
    record_crc, FlushPolicy, FrameJournal, JournalConfig, JournalError, Recovery, RecoveryError,
    RecoveryReport, CHECKPOINT_HEADER, MAX_RECORD_LEN, RETAINED_CHECKPOINTS, SEGMENT_MAGIC,
};
pub use publish::SnapshotSink;
pub use replay::{
    pacing_gap, replay_database, replay_frames, replay_log, Pacer, PollBackoff, MAX_PACING_GAP_S,
};
pub use snapshot::{write_atomic, SnapshotError};

// Re-exported for downstream convenience (CLI, benches).
pub use marauder_core::pipeline::{MaraudersMap, TrackFix};
pub use marauder_wifi::sniffer::CapturedFrame;
