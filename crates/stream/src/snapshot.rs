//! Engine state snapshot/restore.
//!
//! A snapshot is a line-oriented text document capturing everything the
//! engine accumulated from the stream: the open window table, the
//! watermark and no-reopen cursor, the ingestion counters, and the
//! incremental solver's observation statistics plus its cached radii.
//! It does **not** carry the AP knowledge itself — that is the
//! attacker's static asset; [`StreamEngine::restore`] takes the same
//! [`MaraudersMap`] the original engine was built from.
//!
//! Every `f64` is serialized as the 16-hex-digit big-endian form of its
//! IEEE-754 bits, so a snapshot → restore round trip is bit-exact and
//! the resumed engine's output is byte-identical to an uninterrupted
//! run.
//!
//! The document ends with an `end <record-count>` line; restore refuses
//! a snapshot without it (or whose record count disagrees), so a file
//! truncated mid-write — the classic crash-during-checkpoint hazard —
//! is rejected with a typed error instead of silently resuming from
//! partial state.

use crate::engine::{StreamConfig, StreamEngine, StreamStats};
use marauder_core::pipeline::MaraudersMap;
use marauder_core::ObservationStats;
use marauder_wifi::mac::MacAddr;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Version of the snapshot text format this build writes and reads.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Common prefix of every snapshot header; the format version follows.
const HEADER_PREFIX: &str = "# marauder stream snapshot v";

/// Magic first line of the snapshot format (current version).
pub const HEADER: &str = "# marauder stream snapshot v1";

/// Error returned when restoring from a malformed snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The header names a format version this build does not speak.
    /// Distinct from [`Malformed`](Self::Malformed) so callers can
    /// offer "upgrade to read this snapshot" instead of "file corrupt".
    VersionMismatch {
        /// Version the snapshot declares.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The document is syntactically or semantically broken.
    Malformed {
        /// 1-based number of the first bad line.
        line: usize,
        /// Human-readable description of what was wrong.
        reason: String,
    },
}

impl SnapshotError {
    fn new(line: usize, reason: impl Into<String>) -> Self {
        SnapshotError::Malformed {
            line,
            reason: reason.into(),
        }
    }

    /// The 1-based line number of the first malformed line. Version
    /// mismatches are always a line-1 condition.
    pub fn line(&self) -> usize {
        match self {
            SnapshotError::VersionMismatch { .. } => 1,
            SnapshotError::Malformed { line, .. } => *line,
        }
    }

    /// Human-readable description of what was wrong.
    pub fn reason(&self) -> String {
        match self {
            SnapshotError::VersionMismatch { found, supported } => {
                format!("snapshot format v{found} is not supported (this build reads v{supported})")
            }
            SnapshotError::Malformed { reason, .. } => reason.clone(),
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stream snapshot parse error on line {}: {}",
            self.line(),
            self.reason()
        )
    }
}

impl std::error::Error for SnapshotError {}

pub(crate) fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

pub(crate) fn unhex(s: &str) -> Result<f64, String> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad f64 bits {s:?}: {e}"))
}

pub(crate) fn parse_mac(s: &str) -> Result<MacAddr, String> {
    s.parse().map_err(|_| format!("bad MAC {s:?}"))
}

/// Writes `contents` to `path` atomically: the bytes go to a temporary
/// file in the same directory, which is then renamed over the target.
/// A crash mid-write leaves either the old file or the new one — never
/// a torn hybrid — because the rename is the only mutation of `path`
/// and renames within one directory are atomic on every platform the
/// workspace targets.
///
/// The temporary name is derived from the target name (`.{name}.tmp`),
/// so concurrent writers of *different* files never collide; the
/// workspace's checkpoint writers are single-threaded per target.
///
/// # Errors
///
/// Any I/O failure creating, writing, syncing, or renaming the
/// temporary file. On failure the target is untouched.
pub fn write_atomic(path: &std::path::Path, contents: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    let dir = path.parent().unwrap_or_else(|| std::path::Path::new("."));
    let name = path
        .file_name()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no name"))?;
    let mut tmp_name = std::ffi::OsString::from(".");
    tmp_name.push(name);
    tmp_name.push(".tmp");
    let tmp = dir.join(tmp_name);
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(contents)?;
    // The data must be durable before the rename publishes it: a
    // rename that survives a crash while the bytes behind it did not
    // would be exactly the torn checkpoint this helper exists to
    // prevent.
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    Ok(())
}

impl StreamEngine {
    /// Serializes the engine's mutable state to the snapshot format.
    pub fn snapshot(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("window_s {}\n", hex(self.window_s)));
        out.push_str(&format!(
            "allowed_lag_s {}\n",
            hex(self.config.allowed_lag_s)
        ));
        out.push_str(&format!(
            "max_open_windows {}\n",
            self.config.max_open_windows
        ));
        match self.watermark {
            Some(mark) => out.push_str(&format!("watermark {}\n", hex(mark))),
            None => out.push_str("watermark none\n"),
        }
        match self.closed_before {
            Some(cb) => out.push_str(&format!("closed_before {cb}\n")),
            None => out.push_str("closed_before none\n"),
        }
        let s = &self.stats;
        out.push_str(&format!(
            "frames {} {} {} {}\n",
            s.frames_total, s.frames_relevant, s.frames_late, s.frames_malformed
        ));
        out.push_str(&format!(
            "windows {} {}\n",
            s.windows_closed, s.windows_evicted
        ));
        out.push_str(&format!("lp_solves {}\n", s.lp_solves));
        for ((w, mobile), gamma) in &self.open {
            let macs: Vec<String> = gamma.iter().map(|m| m.to_string()).collect();
            out.push_str(&format!("open {w} {mobile} {}\n", macs.join(",")));
        }
        if let Some(solver) = &self.solver {
            let stats = solver.stats();
            for m in stats.observed() {
                out.push_str(&format!("obs {m}\n"));
            }
            for (a, b) in stats.co_pairs() {
                out.push_str(&format!("co {a} {b}\n"));
            }
            for (m, n) in stats.seen_counts() {
                out.push_str(&format!("seen {m} {n}\n"));
            }
            out.push_str(&format!("stat_windows {}\n", stats.windows()));
            if let Some(radii) = solver.cached_radii() {
                for (m, r) in radii {
                    out.push_str(&format!("radius {m} {}\n", hex(*r)));
                }
                out.push_str("cached 1\n");
            } else {
                out.push_str("cached 0\n");
            }
        }
        // Truncation sentinel: every line between the header and here
        // is one record.
        let records = out.lines().count() - 1;
        out.push_str(&format!("end {records}\n"));
        let reg = marauder_obs::global();
        reg.counter_add("stream.snapshots", 1);
        reg.counter_add("stream.snapshot_bytes", out.len() as u64);
        out
    }

    /// Serializes the engine's state and writes it to `path` via
    /// [`write_atomic`], so a crash mid-write can never leave a
    /// half-written snapshot behind (the reader sees the previous
    /// snapshot or the new one, nothing in between).
    ///
    /// # Errors
    ///
    /// Any I/O failure from [`write_atomic`].
    pub fn snapshot_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        write_atomic(path, self.snapshot().as_bytes())
    }

    /// Rebuilds an engine from `map` (the same AP knowledge the
    /// snapshotted engine was built from) and a snapshot produced by
    /// [`snapshot`](Self::snapshot). Resuming ingestion from the
    /// snapshotted position yields output byte-identical to the
    /// uninterrupted run.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on a malformed document, or when the
    /// snapshot's `window_s` does not match `map`'s (the windowing of
    /// the two engines would disagree).
    pub fn restore(map: MaraudersMap, text: &str) -> Result<StreamEngine, SnapshotError> {
        let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
        match lines.next() {
            Some((_, h)) if h.trim().starts_with(HEADER_PREFIX) => {
                let found = h.trim()[HEADER_PREFIX.len()..]
                    .parse::<u32>()
                    .map_err(|e| SnapshotError::new(1, format!("bad header version: {e}")))?;
                if found != SNAPSHOT_VERSION {
                    return Err(SnapshotError::VersionMismatch {
                        found,
                        supported: SNAPSHOT_VERSION,
                    });
                }
            }
            _ => return Err(SnapshotError::new(1, format!("missing header {HEADER:?}"))),
        }

        let mut window_s = None;
        let mut allowed_lag_s = None;
        let mut max_open_windows = None;
        let mut watermark = None;
        let mut closed_before = None;
        let mut stats = StreamStats::default();
        let mut open: BTreeMap<(i64, MacAddr), BTreeSet<MacAddr>> = BTreeMap::new();
        let mut observed: BTreeSet<MacAddr> = BTreeSet::new();
        let mut co: BTreeSet<(MacAddr, MacAddr)> = BTreeSet::new();
        let mut seen: BTreeMap<MacAddr, usize> = BTreeMap::new();
        let mut stat_windows = 0usize;
        let mut radii: BTreeMap<MacAddr, f64> = BTreeMap::new();
        let mut cached = false;
        let mut has_solver_lines = false;
        let mut records = 0usize;
        let mut end_seen = false;

        for (no, line) in lines {
            let fail = |reason: String| SnapshotError::new(no, reason);
            if line.trim().is_empty() || line.starts_with('#') {
                continue;
            }
            if end_seen {
                return Err(fail("record after the end sentinel".into()));
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let args = &fields[1..];
            let expect = |n: usize| -> Result<(), SnapshotError> {
                if args.len() == n {
                    Ok(())
                } else {
                    Err(SnapshotError::new(
                        no,
                        format!("{} takes {n} fields, got {}", fields[0], args.len()),
                    ))
                }
            };
            match fields[0] {
                "window_s" => {
                    expect(1)?;
                    window_s = Some(unhex(args[0]).map_err(fail)?);
                }
                "allowed_lag_s" => {
                    expect(1)?;
                    allowed_lag_s = Some(unhex(args[0]).map_err(fail)?);
                }
                "max_open_windows" => {
                    expect(1)?;
                    max_open_windows =
                        Some(args[0].parse::<usize>().map_err(|e| fail(e.to_string()))?);
                }
                "watermark" => {
                    expect(1)?;
                    if args[0] != "none" {
                        watermark = Some(unhex(args[0]).map_err(fail)?);
                    }
                }
                "closed_before" => {
                    expect(1)?;
                    if args[0] != "none" {
                        closed_before =
                            Some(args[0].parse::<i64>().map_err(|e| fail(e.to_string()))?);
                    }
                }
                "frames" => {
                    expect(4)?;
                    stats.frames_total = args[0]
                        .parse()
                        .map_err(|e: std::num::ParseIntError| fail(e.to_string()))?;
                    stats.frames_relevant = args[1]
                        .parse()
                        .map_err(|e: std::num::ParseIntError| fail(e.to_string()))?;
                    stats.frames_late = args[2]
                        .parse()
                        .map_err(|e: std::num::ParseIntError| fail(e.to_string()))?;
                    stats.frames_malformed = args[3]
                        .parse()
                        .map_err(|e: std::num::ParseIntError| fail(e.to_string()))?;
                }
                "windows" => {
                    expect(2)?;
                    stats.windows_closed = args[0]
                        .parse()
                        .map_err(|e: std::num::ParseIntError| fail(e.to_string()))?;
                    stats.windows_evicted = args[1]
                        .parse()
                        .map_err(|e: std::num::ParseIntError| fail(e.to_string()))?;
                }
                "lp_solves" => {
                    expect(1)?;
                    stats.lp_solves = args[0]
                        .parse()
                        .map_err(|e: std::num::ParseIntError| fail(e.to_string()))?;
                }
                "open" => {
                    expect(3)?;
                    let w = args[0].parse::<i64>().map_err(|e| fail(e.to_string()))?;
                    let mobile = parse_mac(args[1]).map_err(fail)?;
                    let gamma: BTreeSet<MacAddr> = args[2]
                        .split(',')
                        .map(|m| parse_mac(m).map_err(&fail))
                        .collect::<Result<_, _>>()?;
                    if gamma.is_empty() {
                        return Err(fail("open window with empty gamma".into()));
                    }
                    open.insert((w, mobile), gamma);
                }
                "obs" => {
                    expect(1)?;
                    has_solver_lines = true;
                    observed.insert(parse_mac(args[0]).map_err(fail)?);
                }
                "co" => {
                    expect(2)?;
                    has_solver_lines = true;
                    let a = parse_mac(args[0]).map_err(&fail)?;
                    let b = parse_mac(args[1]).map_err(&fail)?;
                    co.insert((a, b));
                }
                "seen" => {
                    expect(2)?;
                    has_solver_lines = true;
                    let m = parse_mac(args[0]).map_err(&fail)?;
                    let n = args[1].parse::<usize>().map_err(|e| fail(e.to_string()))?;
                    seen.insert(m, n);
                }
                "stat_windows" => {
                    expect(1)?;
                    has_solver_lines = true;
                    stat_windows = args[0]
                        .parse()
                        .map_err(|e: std::num::ParseIntError| fail(e.to_string()))?;
                }
                "radius" => {
                    expect(2)?;
                    has_solver_lines = true;
                    let m = parse_mac(args[0]).map_err(&fail)?;
                    radii.insert(m, unhex(args[1]).map_err(fail)?);
                }
                "cached" => {
                    expect(1)?;
                    has_solver_lines = true;
                    cached = args[0] == "1";
                }
                "end" => {
                    expect(1)?;
                    let declared = args[0].parse::<usize>().map_err(|e| fail(e.to_string()))?;
                    if declared != records {
                        return Err(fail(format!(
                            "snapshot truncated: end sentinel declares {declared} \
                             records but {records} were read"
                        )));
                    }
                    end_seen = true;
                    continue;
                }
                other => return Err(fail(format!("unknown record {other:?}"))),
            }
            records += 1;
        }
        if !end_seen {
            return Err(SnapshotError::new(
                records + 1,
                "snapshot truncated: missing end sentinel",
            ));
        }

        let window_s = window_s.ok_or_else(|| SnapshotError::new(1, "missing window_s"))?;
        let allowed_lag_s =
            allowed_lag_s.ok_or_else(|| SnapshotError::new(1, "missing allowed_lag_s"))?;
        let max_open_windows =
            max_open_windows.ok_or_else(|| SnapshotError::new(1, "missing max_open_windows"))?;
        if window_s.to_bits() != map.config().window_s.to_bits() {
            return Err(SnapshotError::new(
                1,
                format!(
                    "snapshot window_s {} does not match the map's {}",
                    window_s,
                    map.config().window_s
                ),
            ));
        }

        // Live/warm mode flags are process configuration, not stream
        // state: they are not serialized, so the restored engine runs
        // with the defaults (callers can rebuild with their own config;
        // the warm basis memory legitimately restarts cold either way).
        let mut engine = StreamEngine::new(
            map,
            StreamConfig {
                allowed_lag_s,
                max_open_windows,
                ..StreamConfig::default()
            },
        );
        if let Some(solver) = engine.solver.as_mut() {
            let stats = ObservationStats::from_parts(observed, co, seen, stat_windows);
            let cache = cached.then(|| radii.clone());
            solver.restore(stats, cache);
            if cached {
                // Bring the map's interned discs in line with the
                // cached solution, exactly as the live path does.
                engine.map.apply_radii(radii);
            }
        } else if has_solver_lines {
            return Err(SnapshotError::new(
                1,
                "snapshot carries solver state but the map's knowledge level has no solver",
            ));
        }
        engine.open = open;
        engine.closed_before = closed_before;
        engine.watermark = watermark;
        engine.stats = stats;
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StreamConfig;
    use marauder_core::apdb::{ApDatabase, ApRecord};
    use marauder_core::pipeline::{AttackConfig, KnowledgeLevel};
    use marauder_geo::Point;
    use marauder_wifi::channel::Channel;
    use marauder_wifi::frame::Frame;
    use marauder_wifi::sniffer::CapturedFrame;
    use marauder_wifi::ssid::Ssid;

    fn mac(i: u64) -> MacAddr {
        MacAddr::from_index(i)
    }

    fn map(level: KnowledgeLevel) -> MaraudersMap {
        let db: ApDatabase = [
            (100u64, Point::new(0.0, 0.0)),
            (101, Point::new(100.0, 0.0)),
            (102, Point::new(50.0, 80.0)),
        ]
        .into_iter()
        .map(|(i, p)| ApRecord {
            bssid: mac(i),
            ssid: None,
            location: p,
            radius: (level == KnowledgeLevel::Full).then_some(120.0),
        })
        .collect();
        MaraudersMap::new(db, level, AttackConfig::default())
    }

    fn response(t: f64, ap: u64, mobile: u64) -> CapturedFrame {
        CapturedFrame {
            time_s: t,
            card: 0,
            frame: Frame::probe_response(
                mac(ap),
                mac(mobile),
                Ssid::new("x").unwrap(),
                Channel::bg(6).unwrap(),
            ),
        }
    }

    #[test]
    fn snapshot_restore_round_trips_mid_stream() {
        for level in [KnowledgeLevel::Full, KnowledgeLevel::LocationsOnly] {
            let frames: Vec<CapturedFrame> = (0..40)
                .map(|k| response(k as f64 * 7.0, 100 + (k % 3) as u64, 1 + (k % 2) as u64))
                .collect();
            // Uninterrupted run.
            let mut a = StreamEngine::new(map(level), StreamConfig::default());
            let mut a_events = Vec::new();
            for f in &frames {
                a_events.extend(a.push(f));
            }
            a_events.extend(a.finish());

            // Interrupted at frame 17: snapshot, drop, restore, resume.
            let mut b = StreamEngine::new(map(level), StreamConfig::default());
            let mut b_events = Vec::new();
            for f in &frames[..17] {
                b_events.extend(b.push(f));
            }
            let snap = b.snapshot();
            drop(b);
            let mut b = StreamEngine::restore(map(level), &snap).expect("own snapshot restores");
            for f in &frames[17..] {
                b_events.extend(b.push(f));
            }
            b_events.extend(b.finish());

            assert_eq!(a.stats(), b.stats(), "{level:?}: counters diverged");
            assert_eq!(a_events.len(), b_events.len());
            for (x, y) in a_events.iter().zip(&b_events) {
                assert_eq!(x.window, y.window);
                assert_eq!(x.mobile, y.mobile);
                assert_eq!(x.gamma, y.gamma);
                assert_eq!(x.estimate().is_some(), y.estimate().is_some());
                if let (Some(ex), Some(ey)) = (x.estimate(), y.estimate()) {
                    assert_eq!(ex.position.x.to_bits(), ey.position.x.to_bits());
                    assert_eq!(ex.position.y.to_bits(), ey.position.y.to_bits());
                }
            }
            // The final batch-equivalent fixes agree too.
            let fa = a.batch_fixes(a_events);
            let fb = b.batch_fixes(b_events);
            assert_eq!(fa.len(), fb.len());
            for (x, y) in fa.iter().zip(&fb) {
                assert_eq!(x.time_s.to_bits(), y.time_s.to_bits());
                assert_eq!(x.mobile, y.mobile);
                assert_eq!(
                    x.estimate.position.x.to_bits(),
                    y.estimate.position.x.to_bits()
                );
            }
        }
    }

    #[test]
    fn snapshot_of_fresh_engine_restores_fresh() {
        let engine = StreamEngine::new(map(KnowledgeLevel::LocationsOnly), StreamConfig::default());
        let snap = engine.snapshot();
        let restored = StreamEngine::restore(map(KnowledgeLevel::LocationsOnly), &snap).unwrap();
        assert_eq!(restored.stats(), engine.stats());
        assert_eq!(restored.open_windows(), 0);
        assert_eq!(restored.watermark(), None);
    }

    #[test]
    fn restore_rejects_garbage() {
        let m = || map(KnowledgeLevel::Full);
        assert_eq!(
            StreamEngine::restore(m(), "not a snapshot")
                .unwrap_err()
                .line(),
            1
        );
        let engine = StreamEngine::new(m(), StreamConfig::default());
        let snap = engine.snapshot();
        // Corrupt one line; the error names it (1-based).
        let bad: String = snap
            .lines()
            .map(|l| {
                if l.starts_with("watermark") {
                    "watermark zz".to_string()
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let err = StreamEngine::restore(m(), &bad).unwrap_err();
        assert!(err.reason().contains("bad f64 bits"), "{}", err.reason());
        assert_eq!(err.line(), 5);
    }

    #[test]
    fn restore_rejects_truncated_snapshot() {
        let m = || map(KnowledgeLevel::LocationsOnly);
        let mut engine = StreamEngine::new(m(), StreamConfig::default());
        for k in 0u64..5 {
            engine.push(&response(k as f64 * 7.0, 100 + k % 3, 1));
        }
        let snap = engine.snapshot();

        // Crash mid-write: the end sentinel never made it to disk.
        let lines: Vec<&str> = snap.lines().collect();
        let cut = lines[..lines.len() - 1].join("\n");
        let err = StreamEngine::restore(m(), &cut).unwrap_err();
        assert!(
            err.reason().contains("missing end sentinel"),
            "{}",
            err.reason()
        );

        // An interior record went missing: the count disagrees.
        let holed: Vec<&str> = lines
            .iter()
            .copied()
            .filter(|l| !l.starts_with("open"))
            .collect();
        assert!(holed.len() < lines.len(), "an open record must exist");
        let err = StreamEngine::restore(m(), &holed.join("\n")).unwrap_err();
        assert!(err.reason().contains("truncated"), "{}", err.reason());

        // Trailing garbage after the sentinel is rejected too.
        let extra = format!("{snap}lp_solves 0\n");
        let err = StreamEngine::restore(m(), &extra).unwrap_err();
        assert!(
            err.reason().contains("after the end sentinel"),
            "{}",
            err.reason()
        );
    }

    #[test]
    fn restore_rejects_future_version_with_typed_error() {
        let m = || map(KnowledgeLevel::Full);
        let engine = StreamEngine::new(m(), StreamConfig::default());
        let snap = engine.snapshot();

        // A snapshot from a future build: same grammar, bumped version.
        let future = snap.replacen("snapshot v1", "snapshot v2", 1);
        assert_eq!(
            StreamEngine::restore(m(), &future).unwrap_err(),
            SnapshotError::VersionMismatch {
                found: 2,
                supported: SNAPSHOT_VERSION
            }
        );

        // A mangled version suffix is malformed, not a mismatch.
        let garbled = snap.replacen("snapshot v1", "snapshot vX", 1);
        let err = StreamEngine::restore(m(), &garbled).unwrap_err();
        assert!(
            matches!(err, SnapshotError::Malformed { line: 1, .. }),
            "{err:?}"
        );
        assert!(
            err.reason().contains("bad header version"),
            "{}",
            err.reason()
        );
    }

    #[test]
    fn current_version_snapshot_round_trips_byte_exactly() {
        let m = || map(KnowledgeLevel::Full);
        let mut engine = StreamEngine::new(m(), StreamConfig::default());
        for k in 0u64..25 {
            engine.push(&response(k as f64 * 7.0, 100 + k % 3, 1 + k % 2));
        }
        let snap = engine.snapshot();
        assert!(snap.starts_with(HEADER), "header must lead the document");
        let restored = StreamEngine::restore(m(), &snap).expect("current version restores");
        assert_eq!(
            restored.snapshot(),
            snap,
            "re-snapshot must be byte-identical"
        );
    }

    #[test]
    fn restore_rejects_window_mismatch() {
        let engine = StreamEngine::new(map(KnowledgeLevel::Full), StreamConfig::default());
        let snap = engine.snapshot();
        // A map with a different window length must be rejected.
        let db: ApDatabase = [(100u64, Point::new(0.0, 0.0))]
            .into_iter()
            .map(|(i, p)| ApRecord {
                bssid: mac(i),
                ssid: None,
                location: p,
                radius: Some(120.0),
            })
            .collect();
        let other = MaraudersMap::new(
            db,
            KnowledgeLevel::Full,
            AttackConfig {
                window_s: 15.0,
                ..AttackConfig::default()
            },
        );
        let err = StreamEngine::restore(other, &snap).unwrap_err();
        assert!(err.reason().contains("window_s"), "{}", err.reason());
    }
}
