//! Write-ahead frame journal: crash-safe durability for the stream
//! engine.
//!
//! A long surveillance campaign must survive the sniffer process
//! dying. The journal makes ingestion durable with the classic WAL
//! discipline: every frame is appended to an on-disk log *before* it
//! is pushed into the [`StreamEngine`], so after a kill the engine can
//! be rebuilt exactly — restore the newest checkpoint, then replay the
//! journal tail.
//!
//! # On-disk layout
//!
//! A journal is a directory holding two kinds of files:
//!
//! * **Segments** (`segment-<first_seq>.wal`): append-only binary
//!   record logs, rotated every [`JournalConfig::segment_frames`]
//!   records. Each segment opens with a 16-byte header — an 8-byte
//!   magic (`MRDRWAL` + format version byte) and the big-endian `u64`
//!   sequence number of its first record. Records are length-prefixed
//!   and checksummed:
//!
//!   ```text
//!   record  := len:u32be  crc:u32be  payload[len]
//!   payload := seq:u64be  time_bits:u64be  card:u32be  frame-bytes
//!   ```
//!
//!   `crc` is CRC-32 (IEEE) over the payload; `time_bits` is the
//!   frame timestamp's IEEE-754 bits, so replay is bit-exact.
//!
//! * **Checkpoints** (`checkpoint-<seq>.ckpt`): line-oriented text
//!   documents written atomically ([`write_atomic`]) that embed an
//!   engine snapshot plus every window closed so far. `<seq>` is the
//!   number of frames the checkpoint covers — recovery replays journal
//!   records with `seq >= <seq>`.
//!
//! # Recovery
//!
//! [`FrameJournal::recover`] scans checkpoints newest-first and takes
//! the first one that parses (corrupt or torn candidates are skipped
//! and counted, never fatal — the journal itself is the source of
//! truth, so with zero valid checkpoints recovery simply replays the
//! whole journal from a fresh engine). It then walks the segments,
//! verifying each record's length and CRC, pushing the tail through
//! the engine.
//!
//! **Torn tails are not errors.** A crash mid-append leaves a partial
//! final record; recovery detects it (short header, short payload, or
//! CRC mismatch in the *final* segment), truncates the file back to
//! the last intact record, and resumes from there. The frame inside
//! the torn record was never acknowledged as ingested, so the producer
//! re-feeds it and the resumed run stays byte-identical to an
//! uninterrupted one. The same damage in a *non-final* segment cannot
//! be a crash artifact and is reported as [`RecoveryError::Corrupt`].
//!
//! # Crash equivalence
//!
//! The invariant pinned by `crates/fault`'s kill-at-every-boundary
//! sweep: for any crash point, crash → recover → resume produces fixes
//! byte-identical to the clean run (with [`FlushPolicy::EveryRecord`],
//! which is the default).

use crate::engine::{ClosedWindow, StreamConfig, StreamEngine};
use crate::snapshot::{parse_mac, write_atomic};
use marauder_core::pipeline::MaraudersMap;
use marauder_core::PipelineError;
use marauder_wifi::frame::Frame;
use marauder_wifi::mac::MacAddr;
use marauder_wifi::sniffer::{window_start, CapturedFrame};
use std::collections::BTreeSet;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every segment file; the trailing byte is the
/// binary format version.
pub const SEGMENT_MAGIC: [u8; 8] = *b"MRDRWAL\x01";

/// Bytes of segment header preceding the first record.
const SEGMENT_HEADER_LEN: u64 = 16;

/// Bytes of record header (length prefix + CRC) preceding the payload.
const RECORD_HEADER_LEN: u64 = 8;

/// Fixed payload bytes before the encoded frame (seq + time + card).
const PAYLOAD_PREFIX_LEN: usize = 20;

/// Upper bound on a record payload. Real records are tens of bytes; a
/// length prefix beyond this is corruption, and capping it keeps a
/// flipped length byte from asking the reader to allocate gigabytes.
pub const MAX_RECORD_LEN: u32 = 1 << 20;

/// Magic first line of the checkpoint text format.
pub const CHECKPOINT_HEADER: &str = "# marauder journal checkpoint v1";

/// Checkpoint files retained after each new one is written; older ones
/// are pruned. Each checkpoint is a full-state document whose size
/// grows with the campaign's closed-window count, so keeping every one
/// would grow the directory (and the summed write cost) quadratically
/// over a long run. Recovery only ever needs the newest valid
/// checkpoint; the older survivors are fallback against a torn newest.
pub const RETAINED_CHECKPOINTS: usize = 4;

/// When appended records are pushed to the OS.
///
/// Durability is what the crash-equivalence invariant rides on: with
/// [`EveryRecord`](FlushPolicy::EveryRecord) every acknowledged append
/// survives a process kill, so recovery loses nothing. The batched
/// policies trade that completeness for fewer `write(2)` calls — after
/// a kill, at most the unflushed suffix is gone, which recovery
/// reports as a (clean) torn tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Flush after every record (default; required for exact crash
    /// equivalence at arbitrary kill points).
    EveryRecord,
    /// Flush after every `n` records and on rotation.
    EveryN(usize),
    /// Flush only when a segment rotates (and on checkpoint).
    OnRotate,
}

/// Journal behaviour knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalConfig {
    /// Records per segment before rotating to a fresh file.
    pub segment_frames: usize,
    /// When appended records become durable.
    pub flush: FlushPolicy,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            segment_frames: 4096,
            flush: FlushPolicy::EveryRecord,
        }
    }
}

/// Error writing to (or creating) a journal.
#[derive(Debug)]
pub enum JournalError {
    /// An I/O failure, with the operation that failed.
    Io {
        /// What the journal was doing.
        op: String,
        /// The underlying failure.
        source: std::io::Error,
    },
    /// [`FrameJournal::create`] found existing journal files: a
    /// non-empty journal must be opened through
    /// [`FrameJournal::recover`], never blindly overwritten.
    NotEmpty {
        /// The offending directory.
        dir: PathBuf,
    },
}

impl JournalError {
    fn io(op: impl Into<String>) -> impl FnOnce(std::io::Error) -> JournalError {
        let op = op.into();
        move |source| JournalError::Io { op, source }
    }
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { op, source } => write!(f, "journal {op}: {source}"),
            JournalError::NotEmpty { dir } => write!(
                f,
                "journal directory {} already holds journal files; recover it instead of \
                 creating over it",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
            JournalError::NotEmpty { .. } => None,
        }
    }
}

/// Error recovering a journal directory.
#[derive(Debug)]
pub enum RecoveryError {
    /// An I/O failure, with the operation that failed.
    Io {
        /// What recovery was doing.
        op: String,
        /// The underlying failure.
        source: std::io::Error,
    },
    /// A segment that is not the journal's final one holds a damaged
    /// record. A torn tail can only live at the physical end of the
    /// log, so this is real corruption, not a crash artifact.
    Corrupt {
        /// The offending segment file name.
        segment: String,
        /// Byte offset of the first bad record.
        offset: u64,
        /// What was wrong with it.
        reason: String,
    },
}

impl RecoveryError {
    fn io(op: impl Into<String>) -> impl FnOnce(std::io::Error) -> RecoveryError {
        let op = op.into();
        move |source| RecoveryError::Io { op, source }
    }
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Io { op, source } => write!(f, "journal recovery {op}: {source}"),
            RecoveryError::Corrupt {
                segment,
                offset,
                reason,
            } => write!(
                f,
                "journal segment {segment} corrupt at byte {offset}: {reason}"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Io { source, .. } => Some(source),
            RecoveryError::Corrupt { .. } => None,
        }
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `bytes`. Bitwise —
/// no table — because journal records are tens of bytes and the whole
/// workspace is std-only.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Encodes one record payload: sequence, timestamp bits, card index,
/// then the frame's wire bytes.
fn encode_payload(seq: u64, frame: &CapturedFrame) -> Vec<u8> {
    let frame_bytes = frame.frame.encode();
    let mut payload = Vec::with_capacity(PAYLOAD_PREFIX_LEN + frame_bytes.len());
    payload.extend_from_slice(&seq.to_be_bytes());
    payload.extend_from_slice(&frame.time_s.to_bits().to_be_bytes());
    payload.extend_from_slice(&(frame.card as u32).to_be_bytes());
    payload.extend_from_slice(&frame_bytes);
    payload
}

/// CRC-32 of the record payload `(seq, frame)` journals as — the same
/// value stored in the record header by [`FrameJournal::append`]. A
/// resuming replay uses this with [`Recovery::tail_crcs`] to detect a
/// capture log that diverges from what the interrupted run journaled.
pub fn record_crc(seq: u64, frame: &CapturedFrame) -> u32 {
    crc32(&encode_payload(seq, frame))
}

fn segment_name(first_seq: u64) -> String {
    format!("segment-{first_seq:020}.wal")
}

fn checkpoint_name(seq: u64) -> String {
    format!("checkpoint-{seq:020}.ckpt")
}

/// Parses `prefix-<u64>.suffix` file names back to their number.
fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

/// What [`FrameJournal::recover`] found and rebuilt.
#[derive(Debug)]
pub struct Recovery {
    /// The journal, positioned to append record `next_seq` (a torn
    /// tail, if any, has been physically truncated away).
    pub journal: FrameJournal,
    /// The rebuilt engine, byte-identical to the pre-crash engine
    /// state after `next_seq` frames.
    pub engine: StreamEngine,
    /// Every window the pre-crash run had closed, in emission order —
    /// checkpoint-carried windows first, then the tail replay's.
    pub closed: Vec<ClosedWindow>,
    /// Sequence number of the next frame to ingest (= frames durably
    /// journaled).
    pub next_seq: u64,
    /// Payload CRC-32 of every replayed record, in sequence order:
    /// `tail_crcs[i]` covers sequence `checkpoint_seq + i` (0 when no
    /// checkpoint was restored). A resuming replay compares these
    /// against [`record_crc`] of the frames it skips, proving the
    /// capture log it resumes from is the one the interrupted run
    /// journaled.
    pub tail_crcs: Vec<u32>,
    /// How the recovery went, for operators and the sweep harness.
    pub report: RecoveryReport,
}

/// Accounting for one recovery pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence the restored checkpoint covered (`None`: recovered
    /// from scratch).
    pub checkpoint_seq: Option<u64>,
    /// Checkpoint files that failed to parse and were skipped.
    pub checkpoints_skipped: usize,
    /// Segment files scanned.
    pub segments_scanned: usize,
    /// Journal records replayed through the engine.
    pub records_replayed: u64,
    /// Bytes of torn tail truncated from the final segment (0: clean
    /// shutdown).
    pub torn_tail_bytes: u64,
}

/// An append-only write-ahead log of captured frames.
///
/// See the [module docs](self) for the format and recovery contract.
#[derive(Debug)]
pub struct FrameJournal {
    dir: PathBuf,
    config: JournalConfig,
    /// The open segment, if any (`None` until the first append after
    /// creation or a rotation boundary).
    segment: Option<File>,
    /// Records already in the open segment.
    segment_records: usize,
    /// Sequence number the next append receives.
    next_seq: u64,
    /// Appends since the last flush, for [`FlushPolicy::EveryN`].
    unflushed: usize,
    /// Frames covered by the newest checkpoint written through this
    /// handle (or carried in at recovery).
    checkpointed_seq: u64,
}

impl FrameJournal {
    /// Creates a fresh journal in `dir` (created if missing).
    ///
    /// # Errors
    ///
    /// [`JournalError::NotEmpty`] when `dir` already holds segments or
    /// checkpoints (recover those instead), or [`JournalError::Io`].
    pub fn create(dir: &Path, config: JournalConfig) -> Result<FrameJournal, JournalError> {
        std::fs::create_dir_all(dir)
            .map_err(JournalError::io(format!("create dir {}", dir.display())))?;
        let (segments, checkpoints) =
            list_journal_files(dir).map_err(JournalError::io(format!("scan {}", dir.display())))?;
        if !segments.is_empty() || !checkpoints.is_empty() {
            return Err(JournalError::NotEmpty {
                dir: dir.to_path_buf(),
            });
        }
        Ok(FrameJournal {
            dir: dir.to_path_buf(),
            config,
            segment: None,
            segment_records: 0,
            next_seq: 0,
            unflushed: 0,
            checkpointed_seq: 0,
        })
    }

    /// The directory this journal lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence number the next append will receive (= frames durably
    /// journaled so far).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends one frame, returning its sequence number. Call this
    /// *before* pushing the frame into the engine — write-ahead is the
    /// whole durability argument.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on any filesystem failure; the journal's
    /// logical position is unchanged on error.
    pub fn append(&mut self, frame: &CapturedFrame) -> Result<u64, JournalError> {
        if self.segment.is_none() || self.segment_records >= self.config.segment_frames {
            self.rotate()?;
        }
        let seq = self.next_seq;
        let payload = encode_payload(seq, frame);
        let mut record = Vec::with_capacity(RECORD_HEADER_LEN as usize + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        record.extend_from_slice(&crc32(&payload).to_be_bytes());
        record.extend_from_slice(&payload);
        let file = self.segment.as_mut().ok_or_else(|| JournalError::Io {
            op: "open segment".into(),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "no open segment"),
        })?;
        file.write_all(&record)
            .map_err(JournalError::io("append record"))?;
        self.next_seq += 1;
        self.segment_records += 1;
        self.unflushed += 1;
        let flush_now = match self.config.flush {
            FlushPolicy::EveryRecord => true,
            FlushPolicy::EveryN(n) => self.unflushed >= n.max(1),
            FlushPolicy::OnRotate => false,
        };
        if flush_now {
            self.sync()?;
        }
        let reg = marauder_obs::global();
        reg.counter_add("journal.appends", 1);
        reg.counter_add("journal.bytes", record.len() as u64);
        Ok(seq)
    }

    /// Pushes buffered appends to durable storage.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`].
    pub fn sync(&mut self) -> Result<(), JournalError> {
        if let Some(file) = self.segment.as_mut() {
            file.sync_data().map_err(JournalError::io("sync segment"))?;
        }
        if self.unflushed > 0 {
            marauder_obs::global().counter_add("journal.flushes", 1);
        }
        self.unflushed = 0;
        Ok(())
    }

    /// Closes the open segment (after a final sync) and starts the
    /// next one, named after the first sequence it will hold.
    fn rotate(&mut self) -> Result<(), JournalError> {
        self.sync()?;
        self.segment = None;
        self.segment_records = 0;
        let path = self.dir.join(segment_name(self.next_seq));
        let mut file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&path)
            .map_err(JournalError::io(format!("create {}", path.display())))?;
        let mut header = Vec::with_capacity(SEGMENT_HEADER_LEN as usize);
        header.extend_from_slice(&SEGMENT_MAGIC);
        header.extend_from_slice(&self.next_seq.to_be_bytes());
        file.write_all(&header)
            .map_err(JournalError::io("write segment header"))?;
        self.segment = Some(file);
        marauder_obs::global().counter_add("journal.segments", 1);
        Ok(())
    }

    /// Writes a checkpoint covering everything ingested so far: the
    /// engine snapshot plus every closed window, to
    /// `checkpoint-<next_seq>.ckpt` via the atomic temp-file + rename
    /// helper. The segment is synced first, so a checkpoint never
    /// claims to cover frames that are not yet durable. After a
    /// successful write, checkpoints older than the newest
    /// [`RETAINED_CHECKPOINTS`] are pruned (best-effort: a failed
    /// unlink never fails the checkpoint that just succeeded).
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`].
    pub fn checkpoint(
        &mut self,
        engine: &StreamEngine,
        closed: &[ClosedWindow],
    ) -> Result<(), JournalError> {
        self.sync()?;
        let doc = checkpoint_document(engine, closed, self.next_seq);
        let path = self.dir.join(checkpoint_name(self.next_seq));
        write_atomic(&path, doc.as_bytes())
            .map_err(JournalError::io(format!("write {}", path.display())))?;
        self.checkpointed_seq = self.next_seq;
        let reg = marauder_obs::global();
        reg.counter_add("journal.checkpoints", 1);
        reg.counter_add("journal.checkpoint_bytes", doc.len() as u64);
        if let Ok((_, checkpoints)) = list_journal_files(&self.dir) {
            let excess = checkpoints.len().saturating_sub(RETAINED_CHECKPOINTS);
            for (_, name) in &checkpoints[..excess] {
                if std::fs::remove_file(self.dir.join(name)).is_ok() {
                    reg.counter_add("journal.checkpoints_pruned", 1);
                }
            }
        }
        Ok(())
    }

    /// Frames covered by the newest checkpoint this handle wrote.
    pub fn checkpointed_seq(&self) -> u64 {
        self.checkpointed_seq
    }

    /// Rebuilds engine state from the journal in `dir`: restores the
    /// newest checkpoint that parses (skipping, not failing on,
    /// corrupt ones — the journal itself is authoritative) and replays
    /// the journal tail through the engine. A partial final record —
    /// the signature of a crash mid-append — is truncated away and
    /// reported, not an error.
    ///
    /// `config`'s `live_localization`/`warm_start` are applied to the
    /// rebuilt engine (they are process configuration, never
    /// serialized); its windowing knobs are used only when recovering
    /// from scratch — a restored checkpoint carries its own.
    ///
    /// # Errors
    ///
    /// [`RecoveryError::Io`] on filesystem failures and
    /// [`RecoveryError::Corrupt`] for a damaged record anywhere but
    /// the journal's physical tail.
    pub fn recover(
        dir: &Path,
        map: MaraudersMap,
        config: StreamConfig,
    ) -> Result<Recovery, RecoveryError> {
        let (segments, mut checkpoints) = list_journal_files(dir)
            .map_err(RecoveryError::io(format!("scan {}", dir.display())))?;
        let mut report = RecoveryReport::default();

        // Newest checkpoint that parses wins; the rest are skipped.
        let mut engine: Option<StreamEngine> = None;
        let mut closed: Vec<ClosedWindow> = Vec::new();
        let mut start_seq = 0u64;
        checkpoints.reverse();
        for (seq, name) in &checkpoints {
            let path = dir.join(name);
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(_) => {
                    report.checkpoints_skipped += 1;
                    continue;
                }
            };
            match parse_checkpoint(&text, map.clone()) {
                Ok((restored, windows, covers)) if covers == *seq => {
                    engine = Some(restored);
                    closed = windows;
                    start_seq = covers;
                    report.checkpoint_seq = Some(covers);
                    break;
                }
                // A checkpoint whose file name disagrees with its
                // `covers` record is as untrustworthy as one that
                // fails to parse.
                Ok(_) | Err(_) => report.checkpoints_skipped += 1,
            }
        }
        let mut engine = match engine {
            Some(e) => e,
            None => StreamEngine::new(map, config.clone()),
        };
        engine.set_mode(config.live_localization, config.warm_start);

        // Replay the tail: walk segments in order, skipping any whose
        // entire range the checkpoint already covers.
        let mut next_seq = start_seq;
        let mut tail_torn = 0u64;
        let mut tail_crcs: Vec<u32> = Vec::new();
        let mut final_removed = false;
        for (idx, (first_seq, name)) in segments.iter().enumerate() {
            let covered_by_next = segments
                .get(idx + 1)
                .map(|(next_first, _)| *next_first <= start_seq)
                .unwrap_or(false);
            if covered_by_next {
                continue;
            }
            let is_final = idx + 1 == segments.len();
            let path = dir.join(name);
            let scan = scan_segment(&path, name, *first_seq, is_final)?;
            report.segments_scanned += 1;
            for (seq, crc, frame) in scan.frames {
                if seq != next_seq && seq >= start_seq {
                    return Err(RecoveryError::Corrupt {
                        segment: name.clone(),
                        offset: 0,
                        reason: format!("record sequence {seq} where {next_seq} was expected"),
                    });
                }
                if seq < start_seq {
                    continue;
                }
                closed.extend(engine.push(&frame));
                tail_crcs.push(crc);
                next_seq += 1;
                report.records_replayed += 1;
            }
            if is_final {
                tail_torn = scan.torn_bytes;
                if scan.valid_len < SEGMENT_HEADER_LEN {
                    // The crash hit rotation itself: the segment file
                    // was created but its header never became durable.
                    // Reopening it for append would bury every
                    // subsequent acknowledged record in a headerless
                    // file, which the *next* recovery would discard
                    // wholesale as a torn tail — silent loss of
                    // fsync'd appends. Delete the file instead; the
                    // first post-recovery append rotates into a
                    // fresh, properly headered segment.
                    std::fs::remove_file(&path)
                        .map_err(RecoveryError::io(format!("remove {}", path.display())))?;
                    final_removed = true;
                } else if scan.torn_bytes > 0 {
                    // Physically truncate the torn tail so the journal
                    // can be appended to from a clean record boundary.
                    let file = OpenOptions::new()
                        .write(true)
                        .open(&path)
                        .map_err(RecoveryError::io(format!("reopen {}", path.display())))?;
                    file.set_len(scan.valid_len)
                        .map_err(RecoveryError::io(format!("truncate {}", path.display())))?;
                }
            }
        }
        report.torn_tail_bytes = tail_torn;

        // Reopen the final segment for append (if any). A final
        // segment whose header was torn no longer exists — leave the
        // journal with no open segment so the next append rotates.
        let (segment, segment_records) = match segments.last() {
            Some(_) if final_removed => (None, 0),
            Some((first_seq, name)) => {
                let path = dir.join(name);
                let mut file = OpenOptions::new()
                    .append(true)
                    .open(&path)
                    .map_err(RecoveryError::io(format!("reopen {}", path.display())))?;
                file.seek(SeekFrom::End(0))
                    .map_err(RecoveryError::io("seek to end"))?;
                (Some(file), (next_seq - first_seq) as usize)
            }
            None => (None, 0),
        };

        let reg = marauder_obs::global();
        reg.counter_add("recovery.runs", 1);
        reg.counter_add("recovery.records_replayed", report.records_replayed);
        reg.counter_add("recovery.segments_scanned", report.segments_scanned as u64);
        reg.counter_add(
            "recovery.checkpoints_skipped",
            report.checkpoints_skipped as u64,
        );
        reg.counter_add("recovery.torn_tail_bytes", report.torn_tail_bytes);
        if report.torn_tail_bytes > 0 {
            reg.counter_add("recovery.torn_tails", 1);
        }

        Ok(Recovery {
            journal: FrameJournal {
                dir: dir.to_path_buf(),
                config: JournalConfig::default(),
                segment,
                segment_records,
                next_seq,
                unflushed: 0,
                checkpointed_seq: start_seq,
            },
            engine,
            closed,
            next_seq,
            tail_crcs,
            report,
        })
    }
}

impl FrameJournal {
    /// Replaces the journal's rotation/flush configuration (used after
    /// [`recover`](Self::recover), which resumes with the defaults).
    pub fn set_config(&mut self, config: JournalConfig) {
        self.config = config;
    }
}

/// `(number, file_name)` pairs, ascending by number: segments first,
/// checkpoints second.
type JournalFiles = (Vec<(u64, String)>, Vec<(u64, String)>);

/// Lists `(number, file_name)` for segments and checkpoints in `dir`,
/// each sorted ascending by number. Foreign files are ignored.
fn list_journal_files(dir: &Path) -> std::io::Result<JournalFiles> {
    let mut segments = Vec::new();
    let mut checkpoints = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = match entry.file_name().into_string() {
            Ok(n) => n,
            Err(_) => continue,
        };
        if let Some(seq) = parse_numbered(&name, "segment-", ".wal") {
            segments.push((seq, name));
        } else if let Some(seq) = parse_numbered(&name, "checkpoint-", ".ckpt") {
            checkpoints.push((seq, name));
        }
    }
    segments.sort();
    checkpoints.sort();
    Ok((segments, checkpoints))
}

/// One scanned segment: the intact records (sequence, payload CRC,
/// frame) and where validity ended.
struct SegmentScan {
    frames: Vec<(u64, u32, CapturedFrame)>,
    /// Bytes of the file that held intact records (incl. header).
    valid_len: u64,
    /// Bytes past `valid_len` (0 when the file ends exactly on a
    /// record boundary).
    torn_bytes: u64,
}

/// Reads every record of one segment. In the final segment damage is a
/// torn tail (scan stops, remainder reported); anywhere else it is
/// [`RecoveryError::Corrupt`].
fn scan_segment(
    path: &Path,
    name: &str,
    expect_first_seq: u64,
    is_final: bool,
) -> Result<SegmentScan, RecoveryError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(RecoveryError::io(format!("read {}", path.display())))?;
    let corrupt = |offset: u64, reason: String| RecoveryError::Corrupt {
        segment: name.to_string(),
        offset,
        reason,
    };
    // The header: even this can be torn if the crash hit during
    // rotation — a short or mismatched header on the *final* segment
    // is an empty torn tail, not corruption.
    let header_ok = bytes.len() as u64 >= SEGMENT_HEADER_LEN
        && bytes[..8] == SEGMENT_MAGIC
        && u64::from_be_bytes([
            bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15],
        ]) == expect_first_seq;
    if !header_ok {
        if is_final {
            return Ok(SegmentScan {
                frames: Vec::new(),
                valid_len: 0,
                torn_bytes: bytes.len() as u64,
            });
        }
        return Err(corrupt(0, "bad segment header".into()));
    }

    let mut frames = Vec::new();
    let mut pos = SEGMENT_HEADER_LEN as usize;
    loop {
        if pos == bytes.len() {
            break; // clean end on a record boundary
        }
        let fail_or_tear = |reason: String| -> Result<usize, RecoveryError> {
            if is_final {
                Ok(pos) // tear here
            } else {
                Err(corrupt(pos as u64, reason))
            }
        };
        if bytes.len() - pos < RECORD_HEADER_LEN as usize {
            let tear = fail_or_tear("short record header".into())?;
            return Ok(finish_scan(frames, tear, bytes.len()));
        }
        let len = u32::from_be_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        let crc = u32::from_be_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        if len > MAX_RECORD_LEN || (len as usize) < PAYLOAD_PREFIX_LEN {
            let tear = fail_or_tear(format!("implausible record length {len}"))?;
            return Ok(finish_scan(frames, tear, bytes.len()));
        }
        let body_start = pos + RECORD_HEADER_LEN as usize;
        let body_end = body_start + len as usize;
        if body_end > bytes.len() {
            let tear = fail_or_tear("record extends past end of file".into())?;
            return Ok(finish_scan(frames, tear, bytes.len()));
        }
        let payload = &bytes[body_start..body_end];
        if crc32(payload) != crc {
            let tear = fail_or_tear("checksum mismatch".into())?;
            return Ok(finish_scan(frames, tear, bytes.len()));
        }
        let seq = u64::from_be_bytes([
            payload[0], payload[1], payload[2], payload[3], payload[4], payload[5], payload[6],
            payload[7],
        ]);
        let time_s = f64::from_bits(u64::from_be_bytes([
            payload[8],
            payload[9],
            payload[10],
            payload[11],
            payload[12],
            payload[13],
            payload[14],
            payload[15],
        ]));
        let card =
            u32::from_be_bytes([payload[16], payload[17], payload[18], payload[19]]) as usize;
        let frame = match Frame::decode(&payload[PAYLOAD_PREFIX_LEN..]) {
            Ok(f) => f,
            Err(e) => {
                // The CRC passed but the frame codec rejects the bytes:
                // that is structural corruption, not a torn write.
                return Err(corrupt(pos as u64, format!("undecodable frame: {e:?}")));
            }
        };
        frames.push((
            seq,
            crc,
            CapturedFrame {
                time_s,
                card,
                frame,
            },
        ));
        pos = body_end;
    }
    Ok(SegmentScan {
        frames,
        valid_len: pos as u64,
        torn_bytes: 0,
    })
}

fn finish_scan(frames: Vec<(u64, u32, CapturedFrame)>, valid: usize, total: usize) -> SegmentScan {
    SegmentScan {
        frames,
        valid_len: valid as u64,
        torn_bytes: (total - valid) as u64,
    }
}

/// Renders the checkpoint document: `covers`, one `closed` record per
/// window, the embedded engine snapshot, and the truncation sentinel.
fn checkpoint_document(engine: &StreamEngine, closed: &[ClosedWindow], covers: u64) -> String {
    let mut out = String::new();
    out.push_str(CHECKPOINT_HEADER);
    out.push('\n');
    out.push_str(&format!("covers {covers}\n"));
    for c in closed {
        let macs: Vec<String> = c.gamma.iter().map(|m| m.to_string()).collect();
        out.push_str(&format!(
            "closed {} {} {}\n",
            c.window,
            c.mobile,
            macs.join(",")
        ));
    }
    let engine_text = engine.snapshot();
    out.push_str(&format!("engine {}\n", engine_text.lines().count()));
    out.push_str(&engine_text);
    if !engine_text.ends_with('\n') {
        out.push('\n');
    }
    let records = out.lines().count() - 1;
    out.push_str(&format!("end {records}\n"));
    out
}

/// Parses a checkpoint document back to `(engine, closed, covers)`.
/// All errors are stringly typed: the caller (recovery) treats any
/// failure as "skip this checkpoint", and the string only feeds logs.
fn parse_checkpoint(
    text: &str,
    map: MaraudersMap,
) -> Result<(StreamEngine, Vec<ClosedWindow>, u64), String> {
    let lines: Vec<&str> = text.lines().collect();
    match lines.first() {
        Some(h) if h.trim() == CHECKPOINT_HEADER => {}
        _ => return Err(format!("missing header {CHECKPOINT_HEADER:?}")),
    }
    let mut covers: Option<u64> = None;
    let mut raw_closed: Vec<(i64, MacAddr, BTreeSet<MacAddr>)> = Vec::new();
    let mut engine: Option<StreamEngine> = None;
    let mut records = 0usize;
    let mut end_seen = false;
    let mut i = 1usize;
    while i < lines.len() {
        let line = lines[i];
        i += 1;
        if line.trim().is_empty() {
            continue;
        }
        if end_seen {
            return Err("record after the end sentinel".into());
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let args = &fields[1..];
        match fields[0] {
            "covers" => {
                if args.len() != 1 {
                    return Err("covers takes 1 field".into());
                }
                covers = Some(args[0].parse().map_err(|e| format!("bad covers: {e}"))?);
            }
            "closed" => {
                if args.len() != 3 {
                    return Err("closed takes 3 fields".into());
                }
                let w = args[0]
                    .parse::<i64>()
                    .map_err(|e| format!("bad window: {e}"))?;
                let mobile = parse_mac(args[1])?;
                let gamma: BTreeSet<MacAddr> = args[2]
                    .split(',')
                    .map(parse_mac)
                    .collect::<Result<_, _>>()?;
                if gamma.is_empty() {
                    return Err("closed window with empty gamma".into());
                }
                raw_closed.push((w, mobile, gamma));
            }
            "engine" => {
                if args.len() != 1 {
                    return Err("engine takes 1 field".into());
                }
                let count = args[0]
                    .parse::<usize>()
                    .map_err(|e| format!("bad engine line count: {e}"))?;
                if i + count > lines.len() {
                    return Err(format!(
                        "engine block declares {count} lines but only {} remain",
                        lines.len() - i
                    ));
                }
                let block = lines[i..i + count].join("\n");
                let restored = StreamEngine::restore(map.clone(), &block)
                    .map_err(|e| format!("embedded engine snapshot: {e}"))?;
                engine = Some(restored);
                records += count;
                i += count;
            }
            "end" => {
                if args.len() != 1 {
                    return Err("end takes 1 field".into());
                }
                let declared = args[0]
                    .parse::<usize>()
                    .map_err(|e| format!("bad end count: {e}"))?;
                if declared != records {
                    return Err(format!(
                        "checkpoint truncated: end sentinel declares {declared} records \
                         but {records} were read"
                    ));
                }
                end_seen = true;
                continue;
            }
            other => return Err(format!("unknown record {other:?}")),
        }
        records += 1;
    }
    if !end_seen {
        return Err("checkpoint truncated: missing end sentinel".into());
    }
    let covers = covers.ok_or("missing covers record")?;
    let engine = engine.ok_or("missing engine block")?;
    let window_s = engine.window_s;
    let closed = raw_closed
        .into_iter()
        .map(|(w, mobile, gamma)| ClosedWindow {
            window: w,
            window_start_s: window_start(w, window_s),
            mobile,
            gamma,
            // Checkpoints serve batch-fix pipelines, whose engines run
            // with live localization off: the live outcome is always
            // deferred, and `batch_fixes` never reads it.
            outcome: Err(PipelineError::DeferredLocalization),
        })
        .collect();
    Ok((engine, closed, covers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StreamConfig;
    use marauder_core::apdb::{ApDatabase, ApRecord};
    use marauder_core::pipeline::{AttackConfig, KnowledgeLevel};
    use marauder_geo::Point;
    use marauder_wifi::channel::Channel;
    use marauder_wifi::frame::Frame;
    use marauder_wifi::ssid::Ssid;

    fn mac(i: u64) -> MacAddr {
        MacAddr::from_index(i)
    }

    fn map() -> MaraudersMap {
        let db: ApDatabase = [
            (100u64, Point::new(0.0, 0.0)),
            (101, Point::new(100.0, 0.0)),
            (102, Point::new(50.0, 80.0)),
        ]
        .into_iter()
        .map(|(i, p)| ApRecord {
            bssid: mac(i),
            ssid: None,
            location: p,
            radius: Some(120.0),
        })
        .collect();
        MaraudersMap::new(db, KnowledgeLevel::Full, AttackConfig::default())
    }

    fn response(t: f64, ap: u64, mobile: u64) -> CapturedFrame {
        CapturedFrame {
            time_s: t,
            card: 0,
            frame: Frame::probe_response(
                mac(ap),
                mac(mobile),
                Ssid::new("x").unwrap(),
                Channel::bg(6).unwrap(),
            ),
        }
    }

    fn frames(n: usize) -> Vec<CapturedFrame> {
        (0..n)
            .map(|k| response(k as f64 * 7.0, 100 + (k % 3) as u64, 1 + (k % 2) as u64))
            .collect()
    }

    fn lazy() -> StreamConfig {
        StreamConfig {
            live_localization: false,
            warm_start: false,
            ..StreamConfig::default()
        }
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "marauder-journal-test-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Canonical byte rendering of a fix list, for equality asserts.
    fn render(fixes: &[crate::TrackFix]) -> String {
        fixes
            .iter()
            .map(|f| {
                format!(
                    "{:016x} {} {:016x} {:016x} {}\n",
                    f.time_s.to_bits(),
                    f.mobile,
                    f.estimate.position.x.to_bits(),
                    f.estimate.position.y.to_bits(),
                    f.gamma.len()
                )
            })
            .collect()
    }

    fn clean_fixes(n: usize) -> String {
        let mut engine = StreamEngine::new(map(), lazy());
        let mut closed = Vec::new();
        for f in frames(n) {
            closed.extend(engine.push(&f));
        }
        closed.extend(engine.finish());
        render(&engine.batch_fixes(closed))
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn journal_rotates_and_recovers_everything() {
        let dir = scratch("rotate");
        let all = frames(50);
        let mut journal = FrameJournal::create(
            &dir,
            JournalConfig {
                segment_frames: 8,
                flush: FlushPolicy::EveryRecord,
            },
        )
        .unwrap();
        let mut engine = StreamEngine::new(map(), lazy());
        let mut closed = Vec::new();
        for (k, f) in all.iter().enumerate() {
            assert_eq!(journal.append(f).unwrap(), k as u64);
            closed.extend(engine.push(f));
            if k == 20 {
                journal.checkpoint(&engine, &closed).unwrap();
            }
        }
        drop(journal); // crash after frame 50

        let rec = FrameJournal::recover(&dir, map(), lazy()).unwrap();
        assert_eq!(rec.next_seq, 50);
        assert_eq!(rec.report.checkpoint_seq, Some(21));
        assert_eq!(rec.report.records_replayed, 50 - 21);
        assert_eq!(rec.report.torn_tail_bytes, 0);
        assert!(rec.report.segments_scanned >= 4);

        let mut recovered = rec.engine;
        let mut closed2 = rec.closed;
        closed2.extend(recovered.finish());
        closed.extend(engine.finish());
        assert_eq!(engine.stats(), recovered.stats());
        assert_eq!(
            render(&engine.batch_fixes(closed)),
            render(&recovered.batch_fixes(closed2))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_resumable() {
        let dir = scratch("torn");
        let all = frames(12);
        let mut journal = FrameJournal::create(&dir, JournalConfig::default()).unwrap();
        let mut engine = StreamEngine::new(map(), lazy());
        for f in &all {
            journal.append(f).unwrap();
            engine.push(f);
        }
        drop(journal);

        // Tear 3 bytes into the final record.
        let (segments, _) = list_journal_files(&dir).unwrap();
        let (_, name) = segments.last().unwrap();
        let path = dir.join(name);
        let len = std::fs::metadata(&path).unwrap().len();
        // All frames encode identically here; records are equal
        // sized, so the last record's start is easy to find.
        let record_len = (len - SEGMENT_HEADER_LEN) / 12;
        let last_start = len - record_len;
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(last_start + 3)
            .unwrap();

        let rec = FrameJournal::recover(&dir, map(), lazy()).unwrap();
        assert_eq!(rec.next_seq, 11, "the torn record is gone");
        assert_eq!(rec.report.torn_tail_bytes, 3);
        // The torn frame was never acknowledged; re-append and resume.
        let mut journal = rec.journal;
        let mut recovered = rec.engine;
        let mut closed = rec.closed;
        assert_eq!(journal.append(&all[11]).unwrap(), 11);
        closed.extend(recovered.push(&all[11]));
        closed.extend(recovered.finish());
        assert_eq!(render(&recovered.batch_fixes(closed)), clean_fixes(12));

        // The repaired journal recovers cleanly a second time.
        drop(journal);
        let rec2 = FrameJournal::recover(&dir, map(), lazy()).unwrap();
        assert_eq!(rec2.next_seq, 12);
        assert_eq!(rec2.report.torn_tail_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn headerless_final_segment_is_removed_and_resumed_appends_survive() {
        // A crash between segment-file creation and the header write
        // (inside rotate()) leaves a headerless final segment. Recovery
        // must delete it — reopening it for append would make every
        // subsequent acknowledged append invisible to the NEXT
        // recovery, silently dropping fsync'd records.
        let dir = scratch("headerless");
        let all = frames(12);
        let mut journal = FrameJournal::create(
            &dir,
            JournalConfig {
                segment_frames: 4,
                flush: FlushPolicy::EveryRecord,
            },
        )
        .unwrap();
        for f in &all[..8] {
            journal.append(f).unwrap();
        }
        drop(journal); // die...
                       // ...mid-rotation: the next segment file exists but holds only
                       // 5 bytes of its 16-byte header.
        std::fs::write(dir.join(segment_name(8)), &SEGMENT_MAGIC[..5]).unwrap();

        let rec = FrameJournal::recover(&dir, map(), lazy()).unwrap();
        assert_eq!(rec.next_seq, 8);
        assert_eq!(rec.report.torn_tail_bytes, 5);
        assert!(
            !dir.join(segment_name(8)).exists(),
            "the headerless segment must be deleted, not reopened"
        );

        // Resume: two more acknowledged (EveryRecord-flushed) appends.
        let mut journal = rec.journal;
        journal.set_config(JournalConfig {
            segment_frames: 4,
            flush: FlushPolicy::EveryRecord,
        });
        assert_eq!(journal.append(&all[8]).unwrap(), 8);
        assert_eq!(journal.append(&all[9]).unwrap(), 9);
        drop(journal); // crash again

        // The next recovery must see BOTH resumed appends (the bug:
        // they landed in a headerless file and were discarded as a
        // torn tail, next_seq = 8 instead of 10).
        let rec2 = FrameJournal::recover(&dir, map(), lazy()).unwrap();
        assert_eq!(rec2.next_seq, 10, "acknowledged appends were lost");
        assert_eq!(rec2.report.torn_tail_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn old_checkpoints_are_pruned_to_retention() {
        let dir = scratch("prune");
        let all = frames(40);
        let mut journal = FrameJournal::create(&dir, JournalConfig::default()).unwrap();
        let mut engine = StreamEngine::new(map(), lazy());
        let mut closed = Vec::new();
        for (k, f) in all.iter().enumerate() {
            journal.append(f).unwrap();
            closed.extend(engine.push(f));
            if (k + 1) % 4 == 0 {
                journal.checkpoint(&engine, &closed).unwrap();
            }
        }
        let (_, checkpoints) = list_journal_files(&dir).unwrap();
        assert_eq!(checkpoints.len(), RETAINED_CHECKPOINTS);
        // The survivors are the NEWEST ones, and recovery still works.
        assert_eq!(checkpoints.last().unwrap().0, 40);
        drop(journal);
        let rec = FrameJournal::recover(&dir, map(), lazy()).unwrap();
        assert_eq!(rec.next_seq, 40);
        assert_eq!(rec.report.checkpoint_seq, Some(40));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tail_crcs_match_record_crc_of_the_source_frames() {
        let dir = scratch("tailcrc");
        let all = frames(20);
        let mut journal = FrameJournal::create(&dir, JournalConfig::default()).unwrap();
        let mut engine = StreamEngine::new(map(), lazy());
        let mut closed = Vec::new();
        for (k, f) in all.iter().enumerate() {
            journal.append(f).unwrap();
            closed.extend(engine.push(f));
            if k == 7 {
                journal.checkpoint(&engine, &closed).unwrap();
            }
        }
        drop(journal);
        let rec = FrameJournal::recover(&dir, map(), lazy()).unwrap();
        assert_eq!(rec.report.checkpoint_seq, Some(8));
        assert_eq!(rec.tail_crcs.len(), 12);
        for (i, crc) in rec.tail_crcs.iter().enumerate() {
            let seq = 8 + i as u64;
            assert_eq!(*crc, record_crc(seq, &all[seq as usize]), "seq {seq}");
        }
        // A different frame (wrong capture log) does not match.
        assert_ne!(rec.tail_crcs[0], record_crc(8, &all[9]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_is_skipped_not_fatal() {
        let dir = scratch("badckpt");
        let all = frames(30);
        let mut journal = FrameJournal::create(&dir, JournalConfig::default()).unwrap();
        let mut engine = StreamEngine::new(map(), lazy());
        let mut closed = Vec::new();
        for (k, f) in all.iter().enumerate() {
            journal.append(f).unwrap();
            closed.extend(engine.push(f));
            if k == 10 || k == 20 {
                journal.checkpoint(&engine, &closed).unwrap();
            }
        }
        drop(journal);

        // Flip a byte in the newest checkpoint.
        let (_, checkpoints) = list_journal_files(&dir).unwrap();
        let newest = dir.join(&checkpoints.last().unwrap().1);
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&newest, &bytes).unwrap();

        let rec = FrameJournal::recover(&dir, map(), lazy()).unwrap();
        assert!(rec.report.checkpoints_skipped >= 1);
        assert_eq!(rec.report.checkpoint_seq, Some(11));
        assert_eq!(rec.next_seq, 30);
        let mut recovered = rec.engine;
        let mut closed = rec.closed;
        closed.extend(recovered.finish());
        assert_eq!(render(&recovered.batch_fixes(closed)), clean_fixes(30));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_in_a_non_final_segment_is_a_typed_error() {
        let dir = scratch("midcorrupt");
        let mut journal = FrameJournal::create(
            &dir,
            JournalConfig {
                segment_frames: 4,
                flush: FlushPolicy::EveryRecord,
            },
        )
        .unwrap();
        for f in frames(12) {
            journal.append(&f).unwrap();
        }
        drop(journal);
        let (segments, _) = list_journal_files(&dir).unwrap();
        assert!(segments.len() >= 3);
        let first = dir.join(&segments[0].1);
        let mut bytes = std::fs::read(&first).unwrap();
        let n = bytes.len();
        bytes[n - 5] ^= 0xFF;
        std::fs::write(&first, &bytes).unwrap();
        let err = FrameJournal::recover(&dir, map(), lazy()).unwrap_err();
        assert!(
            matches!(err, RecoveryError::Corrupt { .. }),
            "want Corrupt, got {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_refuses_a_non_empty_journal() {
        let dir = scratch("nonempty");
        let mut journal = FrameJournal::create(&dir, JournalConfig::default()).unwrap();
        journal.append(&response(0.0, 100, 1)).unwrap();
        drop(journal);
        let err = FrameJournal::create(&dir, JournalConfig::default()).unwrap_err();
        assert!(matches!(err, JournalError::NotEmpty { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovering_an_empty_directory_yields_a_fresh_journal() {
        let dir = scratch("empty");
        std::fs::create_dir_all(&dir).unwrap();
        let rec = FrameJournal::recover(&dir, map(), lazy()).unwrap();
        assert_eq!(rec.next_seq, 0);
        assert_eq!(rec.report, RecoveryReport::default());
        let mut journal = rec.journal;
        assert_eq!(journal.append(&response(0.0, 100, 1)).unwrap(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_policies_accept_appends() {
        for flush in [FlushPolicy::EveryN(4), FlushPolicy::OnRotate] {
            let dir = scratch(&format!("flush-{flush:?}"));
            let mut journal = FrameJournal::create(
                &dir,
                JournalConfig {
                    segment_frames: 6,
                    flush,
                },
            )
            .unwrap();
            for f in frames(20) {
                journal.append(&f).unwrap();
            }
            journal.sync().unwrap();
            drop(journal);
            let rec = FrameJournal::recover(&dir, map(), lazy()).unwrap();
            assert_eq!(rec.next_seq, 20);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
