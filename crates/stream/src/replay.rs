//! Capture replay: drive the engine from stored frames and recover the
//! batch-equivalent fix list.

use crate::engine::{ClosedWindow, StreamConfig, StreamEngine, StreamStats};
use marauder_core::pipeline::{MaraudersMap, TrackFix};
use marauder_wifi::sniffer::{CaptureDatabase, CapturedFrame};

/// Streams `frames` through a fresh engine and returns the
/// batch-equivalent fixes plus the ingestion counters.
///
/// The fixes are byte-identical to [`MaraudersMap::track_all`] over
/// the same frames, provided the stream lost nothing (check
/// `stats.frames_late` and `stats.windows_evicted` — both stay zero
/// for any capture whose timestamp inversions fit inside
/// [`StreamConfig::allowed_lag_s`]).
pub fn replay_frames<'a>(
    map: MaraudersMap,
    config: StreamConfig,
    frames: impl IntoIterator<Item = &'a CapturedFrame>,
) -> (Vec<TrackFix>, StreamStats) {
    let mut engine = StreamEngine::new(map, config);
    let mut closed: Vec<ClosedWindow> = Vec::new();
    for frame in frames {
        closed.extend(engine.push(frame));
    }
    closed.extend(engine.finish());
    let fixes = engine.batch_fixes(closed);
    (fixes, engine.stats().clone())
}

/// [`replay_frames`] over a whole capture database, in stored order.
pub fn replay_database(
    map: MaraudersMap,
    config: StreamConfig,
    captures: &CaptureDatabase,
) -> (Vec<TrackFix>, StreamStats) {
    replay_frames(map, config, captures.iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use marauder_core::apdb::{ApDatabase, ApRecord};
    use marauder_core::pipeline::{AttackConfig, KnowledgeLevel};
    use marauder_geo::Point;
    use marauder_wifi::channel::Channel;
    use marauder_wifi::frame::Frame;
    use marauder_wifi::mac::MacAddr;
    use marauder_wifi::ssid::Ssid;

    fn mac(i: u64) -> MacAddr {
        MacAddr::from_index(i)
    }

    fn map(level: KnowledgeLevel) -> MaraudersMap {
        let db: ApDatabase = (0..6)
            .map(|i| ApRecord {
                bssid: mac(100 + i),
                ssid: None,
                location: Point::new((i % 3) as f64 * 90.0, (i / 3) as f64 * 90.0),
                radius: (level == KnowledgeLevel::Full).then_some(130.0),
            })
            .collect();
        MaraudersMap::new(db, level, AttackConfig::default())
    }

    fn synthetic_capture() -> CaptureDatabase {
        // Two mobiles wander for ten windows; responses arrive with
        // small timestamp inversions like a real rig produces.
        let mut db = CaptureDatabase::new();
        for k in 0..60u64 {
            let t = k as f64 * 5.0;
            let mobile = 1 + k % 2;
            for ap in [100 + k % 6, 100 + (k + 1) % 6] {
                db.push(CapturedFrame {
                    time_s: t + 0.01 * (ap - 99) as f64,
                    card: 0,
                    frame: Frame::probe_response(
                        mac(ap),
                        mac(mobile),
                        Ssid::new("n").unwrap(),
                        Channel::bg(6).unwrap(),
                    ),
                });
            }
        }
        db
    }

    #[test]
    fn replay_is_byte_identical_to_track_all() {
        for level in [KnowledgeLevel::Full, KnowledgeLevel::LocationsOnly] {
            let captures = synthetic_capture();
            let mut batch_map = map(level);
            batch_map.ingest(&captures);
            let batch = batch_map.track_all(&captures);
            assert!(!batch.is_empty(), "{level:?}: scenario must produce fixes");

            let (streamed, stats) = replay_database(map(level), StreamConfig::default(), &captures);
            assert_eq!(stats.frames_late, 0);
            assert_eq!(stats.windows_evicted, 0);
            assert_eq!(streamed.len(), batch.len(), "{level:?}: fix count");
            for (s, b) in streamed.iter().zip(&batch) {
                assert_eq!(s.time_s.to_bits(), b.time_s.to_bits());
                assert_eq!(s.mobile, b.mobile);
                assert_eq!(s.gamma, b.gamma);
                assert_eq!(
                    s.estimate.position.x.to_bits(),
                    b.estimate.position.x.to_bits()
                );
                assert_eq!(
                    s.estimate.position.y.to_bits(),
                    b.estimate.position.y.to_bits()
                );
                assert_eq!(s.estimate.k, b.estimate.k);
                assert_eq!(s.estimate.area().to_bits(), b.estimate.area().to_bits());
            }
        }
    }

    #[test]
    fn incremental_solver_skips_most_windows() {
        let captures = synthetic_capture();
        let (_, stats) = replay_database(
            map(KnowledgeLevel::LocationsOnly),
            StreamConfig::default(),
            &captures,
        );
        assert!(stats.windows_closed > 10);
        assert!(
            stats.lp_solves < stats.windows_closed,
            "dirty tracking never skipped a solve: {} solves for {} windows",
            stats.lp_solves,
            stats.windows_closed
        );
    }
}
