//! Capture replay: drive the engine from stored frames and recover the
//! batch-equivalent fix list — plus the wall-clock helpers a *live*
//! replay needs (pacing, follow-mode polling).

use crate::engine::{ClosedWindow, StreamConfig, StreamEngine, StreamStats};
use marauder_core::pipeline::{MaraudersMap, TrackFix};
use marauder_core::PipelineError;
use marauder_wifi::capture_log::{capture_log_frames, ParseLogError};
use marauder_wifi::sniffer::{CaptureDatabase, CapturedFrame};
use std::time::{Duration, Instant};

/// Ceiling on a single replay's pacing span, seconds (~31 years).
///
/// Any legitimate capture fits with orders of magnitude to spare; a
/// frame that claims to be further than this into the replay carries a
/// corrupt timestamp (`1e300`, `+inf` survivors of an error budget),
/// not a schedule. [`pacing_gap`] treats such jumps as discontinuities
/// instead of feeding them to `Duration::from_secs_f64` — which panics
/// outside Duration's representable range.
pub const MAX_PACING_GAP_S: f64 = 1e9;

/// How long after the replay epoch the frame at `t` is due, given the
/// epoch frame time `t0` and a `speed`× real-time factor.
///
/// Returns `None` for a malformed schedule — a non-finite timestamp,
/// or a jump beyond [`MAX_PACING_GAP_S`] — which callers treat as a
/// log discontinuity: don't sleep, don't panic, keep replaying.
/// Frames earlier than the epoch are due immediately (`ZERO`), which
/// also covers the bounded timestamp inversions real rigs produce.
pub fn pacing_gap(t0: f64, t: f64, speed: f64) -> Option<Duration> {
    let gap = (t - t0) / speed;
    if !gap.is_finite() || gap > MAX_PACING_GAP_S {
        return None;
    }
    Some(Duration::from_secs_f64(gap.max(0.0)))
}

/// Paces a replay at `speed`× real time, keyed off frame timestamps.
/// Speed 0 disables pacing entirely. The clock starts at the first
/// frame, so leading silence in the log is skipped.
///
/// Malformed timestamps (NaN, `±inf`, absurd values like `1e300` that
/// survive a replay error budget) are treated as discontinuities — the
/// frame is released immediately and the pacing epoch is left alone —
/// rather than panicking inside `Duration::from_secs_f64` like the
/// original CLI-local implementation did.
#[derive(Debug)]
pub struct Pacer {
    speed: f64,
    start: Instant,
    first_t: Option<f64>,
}

impl Pacer {
    /// A pacer at `speed`× real time (0 disables pacing).
    pub fn new(speed: f64) -> Self {
        Self {
            speed,
            start: Instant::now(),
            first_t: None,
        }
    }

    /// Sleeps until the wall clock catches up with frame time `t`.
    pub fn wait_for(&mut self, t: f64) {
        if self.speed <= 0.0 {
            return;
        }
        // A non-finite first frame must not become the epoch: every
        // later gap against it would be NaN and pacing would silently
        // turn off for the rest of the replay.
        let t0 = match self.first_t {
            Some(t0) => t0,
            None if t.is_finite() => {
                self.first_t = Some(t);
                self.start = Instant::now();
                t
            }
            None => return,
        };
        let Some(target) = pacing_gap(t0, t, self.speed) else {
            return; // discontinuity: release immediately, keep the epoch
        };
        if let Some(wait) = target.checked_sub(self.start.elapsed()) {
            std::thread::sleep(wait);
        }
    }
}

/// Deterministic poll schedule for follow-mode (`tail -f`) readers.
///
/// A fixed sleep puts a constant latency floor under every frame — too
/// slow when the log is hot, pure waste when it is idle. This backoff
/// re-polls *immediately* after any poll that found data (a busy writer
/// gets drained at I/O speed) and decays exponentially toward `max`
/// while idle, so a quiet log costs one `stat` every 200 ms instead of
/// fifty.
///
/// The schedule is a pure function of the `found_data` history — no
/// clock reads — so it is unit-testable tick by tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PollBackoff {
    initial: Duration,
    max: Duration,
    next: Duration,
}

impl PollBackoff {
    /// A schedule starting at `initial` and doubling up to `max` while
    /// idle.
    pub fn new(initial: Duration, max: Duration) -> Self {
        PollBackoff {
            initial,
            max: max.max(initial),
            next: initial,
        }
    }

    /// The follow-mode default: 10 ms → 200 ms.
    pub fn follow_default() -> Self {
        PollBackoff::new(Duration::from_millis(10), Duration::from_millis(200))
    }

    /// How long to sleep before the next poll, given whether the one
    /// just completed found data. A hit resets the schedule and
    /// returns `ZERO` (re-poll immediately); a miss returns the
    /// current delay and doubles it, saturating at `max`.
    pub fn next_delay(&mut self, found_data: bool) -> Duration {
        if found_data {
            self.next = self.initial;
            return Duration::ZERO;
        }
        let delay = self.next;
        self.next = (self.next * 2).min(self.max);
        delay
    }
}

/// Streams `frames` through a fresh engine and returns the
/// batch-equivalent fixes plus the ingestion counters.
///
/// The fixes are byte-identical to [`MaraudersMap::track_all`] over
/// the same frames, provided the stream lost nothing (check
/// `stats.frames_late` and `stats.windows_evicted` — both stay zero
/// for any capture whose timestamp inversions fit inside
/// [`StreamConfig::allowed_lag_s`]).
///
/// Live localization is forced off regardless of `config`: every
/// per-window outcome is discarded here (only the batch re-pass below
/// is returned), so the per-window solve-and-locate would be pure
/// waste — skipping it is the bulk of replay's speed.
pub fn replay_frames<'a>(
    map: MaraudersMap,
    config: StreamConfig,
    frames: impl IntoIterator<Item = &'a CapturedFrame>,
) -> (Vec<TrackFix>, StreamStats) {
    let config = StreamConfig {
        live_localization: false,
        ..config
    };
    let mut engine = StreamEngine::new(map, config);
    let mut closed: Vec<ClosedWindow> = Vec::new();
    for frame in frames {
        closed.extend(engine.push(frame));
    }
    closed.extend(engine.finish());
    let fixes = engine.batch_fixes(closed);
    (fixes, engine.stats().clone())
}

/// [`replay_frames`] over a whole capture database, in stored order.
pub fn replay_database(
    map: MaraudersMap,
    config: StreamConfig,
    captures: &CaptureDatabase,
) -> (Vec<TrackFix>, StreamStats) {
    replay_frames(map, config, captures.iter())
}

/// Streams a serialized capture log (the
/// [`marauder_wifi::capture_log`] text format) through a fresh engine,
/// tolerating up to `error_budget` malformed body lines.
///
/// Real sniffer logs get corrupted — a process killed mid-write cuts
/// the final record, a flaky disk flips bytes. Aborting a whole
/// campaign over one bad line is worse than skipping it, but skipping
/// *silently* hides real corruption; the budget makes the trade
/// explicit. Malformed lines are skipped deterministically
/// (skip-and-count, returned for reporting) until the budget is
/// exceeded.
///
/// # Errors
///
/// [`PipelineError::BudgetExhausted`] naming the 1-based line that
/// overflowed the budget. A missing or wrong header line is never
/// covered by the budget — the text is not a capture log at all — and
/// aborts immediately as the distinct [`PipelineError::BadHeader`]
/// (previously it surfaced as a confusing `BudgetExhausted { line: 1 }`
/// even when the budget had plenty of room).
pub fn replay_log(
    map: MaraudersMap,
    config: StreamConfig,
    text: &str,
    error_budget: usize,
) -> Result<(Vec<TrackFix>, StreamStats, Vec<ParseLogError>), PipelineError> {
    let mut engine = StreamEngine::new(map, config);
    let mut closed: Vec<ClosedWindow> = Vec::new();
    let mut skipped: Vec<ParseLogError> = Vec::new();
    for item in capture_log_frames(text) {
        match item {
            Ok(frame) => closed.extend(engine.push(&frame)),
            // Header errors are always reported as line 1; body lines
            // start at 2. The header is exempt from the budget by
            // design: the budget rides out corruption inside a log, it
            // does not legitimize replaying a non-log.
            Err(e) if e.line() <= 1 => return Err(PipelineError::BadHeader),
            Err(e) if skipped.len() < error_budget => skipped.push(e),
            Err(e) => {
                return Err(PipelineError::BudgetExhausted {
                    line: e.line(),
                    budget: error_budget,
                })
            }
        }
    }
    closed.extend(engine.finish());
    let fixes = engine.batch_fixes(closed);
    Ok((fixes, engine.stats().clone(), skipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use marauder_core::apdb::{ApDatabase, ApRecord};
    use marauder_core::pipeline::{AttackConfig, KnowledgeLevel};
    use marauder_geo::Point;
    use marauder_wifi::channel::Channel;
    use marauder_wifi::frame::Frame;
    use marauder_wifi::mac::MacAddr;
    use marauder_wifi::ssid::Ssid;

    fn mac(i: u64) -> MacAddr {
        MacAddr::from_index(i)
    }

    fn map(level: KnowledgeLevel) -> MaraudersMap {
        let db: ApDatabase = (0..6)
            .map(|i| ApRecord {
                bssid: mac(100 + i),
                ssid: None,
                location: Point::new((i % 3) as f64 * 90.0, (i / 3) as f64 * 90.0),
                radius: (level == KnowledgeLevel::Full).then_some(130.0),
            })
            .collect();
        MaraudersMap::new(db, level, AttackConfig::default())
    }

    fn synthetic_capture() -> CaptureDatabase {
        // Two mobiles wander for ten windows; responses arrive with
        // small timestamp inversions like a real rig produces.
        let mut db = CaptureDatabase::new();
        for k in 0..60u64 {
            let t = k as f64 * 5.0;
            let mobile = 1 + k % 2;
            for ap in [100 + k % 6, 100 + (k + 1) % 6] {
                db.push(CapturedFrame {
                    time_s: t + 0.01 * (ap - 99) as f64,
                    card: 0,
                    frame: Frame::probe_response(
                        mac(ap),
                        mac(mobile),
                        Ssid::new("n").unwrap(),
                        Channel::bg(6).unwrap(),
                    ),
                });
            }
        }
        db
    }

    #[test]
    fn replay_is_byte_identical_to_track_all() {
        for level in [KnowledgeLevel::Full, KnowledgeLevel::LocationsOnly] {
            let captures = synthetic_capture();
            let mut batch_map = map(level);
            batch_map.ingest(&captures);
            let batch = batch_map.track_all(&captures);
            assert!(!batch.is_empty(), "{level:?}: scenario must produce fixes");

            let (streamed, stats) = replay_database(map(level), StreamConfig::default(), &captures);
            assert_eq!(stats.frames_late, 0);
            assert_eq!(stats.windows_evicted, 0);
            assert_eq!(streamed.len(), batch.len(), "{level:?}: fix count");
            for (s, b) in streamed.iter().zip(&batch) {
                assert_eq!(s.time_s.to_bits(), b.time_s.to_bits());
                assert_eq!(s.mobile, b.mobile);
                assert_eq!(s.gamma, b.gamma);
                assert_eq!(
                    s.estimate.position.x.to_bits(),
                    b.estimate.position.x.to_bits()
                );
                assert_eq!(
                    s.estimate.position.y.to_bits(),
                    b.estimate.position.y.to_bits()
                );
                assert_eq!(s.estimate.k, b.estimate.k);
                assert_eq!(s.estimate.area().to_bits(), b.estimate.area().to_bits());
            }
        }
    }

    #[test]
    fn replay_log_enforces_the_error_budget() {
        use marauder_wifi::capture_log::write_capture_log;
        let captures = synthetic_capture();
        let clean = write_capture_log(&captures);
        let mut lines: Vec<String> = clean.lines().map(String::from).collect();
        lines[10] = "garbage line".into(); // 1-based line 11
        lines[25] = "1.0 0 zz".into(); // 1-based line 26
        let corrupted = lines.join("\n");
        let cfg = StreamConfig::default;

        // Budget 0: abort on the first malformed line, 1-based.
        let err = replay_log(map(KnowledgeLevel::Full), cfg(), &corrupted, 0).unwrap_err();
        assert_eq!(
            err,
            PipelineError::BudgetExhausted {
                line: 11,
                budget: 0
            }
        );
        // Budget 1: the first is skipped, the second aborts.
        let err = replay_log(map(KnowledgeLevel::Full), cfg(), &corrupted, 1).unwrap_err();
        assert_eq!(
            err,
            PipelineError::BudgetExhausted {
                line: 26,
                budget: 1
            }
        );

        // Budget 2: completes, reporting exactly the two skipped lines.
        let (fixes, stats, skipped) =
            replay_log(map(KnowledgeLevel::Full), cfg(), &corrupted, 2).unwrap();
        assert_eq!(skipped.len(), 2);
        assert_eq!(skipped[0].line(), 11);
        assert_eq!(skipped[1].line(), 26);

        // The result is byte-identical to replaying the surviving
        // frames directly — the skips are deterministic.
        let survivors: String = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 10 && *i != 25)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let (want, want_stats, none_skipped) =
            replay_log(map(KnowledgeLevel::Full), cfg(), &survivors, 0).unwrap();
        assert!(none_skipped.is_empty());
        assert_eq!(stats, want_stats);
        assert_eq!(fixes.len(), want.len());
        assert!(!fixes.is_empty());
        for (a, b) in fixes.iter().zip(&want) {
            assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
            assert_eq!(a.mobile, b.mobile);
            assert_eq!(
                a.estimate.position.x.to_bits(),
                b.estimate.position.x.to_bits()
            );
            assert_eq!(
                a.estimate.position.y.to_bits(),
                b.estimate.position.y.to_bits()
            );
        }

        // A missing header is not a body error: no budget covers it.
        let err = replay_log(map(KnowledgeLevel::Full), cfg(), "not a log", 10).unwrap_err();
        assert_eq!(err, PipelineError::BadHeader);
    }

    #[test]
    fn corrupted_header_is_bad_header_even_with_generous_budget() {
        // Regression for the `e.line() > 1` guard: a corrupted line 1
        // used to surface as BudgetExhausted { line: 1 } regardless of
        // how generous the budget was, which reads as "you ran out of
        // budget" when the real problem is "this is not a capture
        // log". The header is typed as its own, budget-independent
        // failure.
        use marauder_wifi::capture_log::write_capture_log;
        let clean = write_capture_log(&synthetic_capture());
        let mut lines: Vec<String> = clean.lines().map(String::from).collect();
        lines[0] = "corrupted header".into();
        let corrupted = lines.join("\n");
        for budget in [0, 1, 1000] {
            let err = replay_log(
                map(KnowledgeLevel::Full),
                StreamConfig::default(),
                &corrupted,
                budget,
            )
            .unwrap_err();
            assert_eq!(err, PipelineError::BadHeader, "budget {budget}");
        }
    }

    #[test]
    fn budget_boundary_is_exact() {
        // Exactly N malformed body lines pass with budget N and abort
        // with budget N-1 on the (N)th malformation — the boundary is
        // exact, not off by one.
        use marauder_wifi::capture_log::write_capture_log;
        let clean = write_capture_log(&synthetic_capture());
        let mut lines: Vec<String> = clean.lines().map(String::from).collect();
        let n = 5;
        let corrupt_at: Vec<usize> = (0..n).map(|i| 3 + 4 * i).collect(); // 0-based
        for &i in &corrupt_at {
            lines[i] = format!("corrupt body {i}");
        }
        let corrupted = lines.join("\n");

        // Budget == N: completes, reporting exactly the N skips.
        let (_, _, skipped) = replay_log(
            map(KnowledgeLevel::Full),
            StreamConfig::default(),
            &corrupted,
            n,
        )
        .unwrap();
        assert_eq!(skipped.len(), n);
        let skipped_lines: Vec<usize> = skipped.iter().map(|e| e.line()).collect();
        let expected: Vec<usize> = corrupt_at.iter().map(|i| i + 1).collect();
        assert_eq!(skipped_lines, expected);

        // Budget == N-1: the N-th malformed line exhausts it.
        let err = replay_log(
            map(KnowledgeLevel::Full),
            StreamConfig::default(),
            &corrupted,
            n - 1,
        )
        .unwrap_err();
        assert_eq!(
            err,
            PipelineError::BudgetExhausted {
                line: corrupt_at[n - 1] + 1,
                budget: n - 1
            }
        );
    }

    #[test]
    fn pacing_gap_rejects_malformed_schedules_without_panicking() {
        // The regression this module exists for: 1e300 fed to
        // Duration::from_secs_f64 panics ("can not convert float
        // seconds to Duration"). pacing_gap types it as a
        // discontinuity instead.
        assert_eq!(pacing_gap(0.0, 1e300, 1.0), None);
        assert_eq!(pacing_gap(0.0, f64::INFINITY, 1.0), None);
        assert_eq!(pacing_gap(0.0, f64::NAN, 1.0), None);
        assert_eq!(pacing_gap(f64::NAN, 5.0, 1.0), None);
        assert_eq!(pacing_gap(0.0, MAX_PACING_GAP_S * 1.01, 1.0), None);
        // Speed divides the gap, so an absurd timestamp is absurd at
        // any speed — and a huge gap at high speed becomes sane again.
        assert_eq!(pacing_gap(0.0, 1e300, 1e6), None);
        assert_eq!(
            pacing_gap(0.0, 2e9, 4.0),
            Some(Duration::from_secs_f64(5e8))
        );

        // Sane schedules pace exactly; inversions release immediately.
        assert_eq!(pacing_gap(10.0, 70.0, 2.0), Some(Duration::from_secs(30)));
        assert_eq!(pacing_gap(10.0, 4.0, 2.0), Some(Duration::ZERO));
    }

    #[test]
    fn pacer_survives_malformed_timestamps() {
        // Pure-logic end of the CLI regression test: the old
        // CLI-local Pacer panicked here. No assertion on wall time —
        // the discontinuity rule means none of these sleeps.
        let mut pacer = Pacer::new(1_000_000.0);
        pacer.wait_for(0.0);
        pacer.wait_for(1e300); // absurd: skipped, epoch kept
        pacer.wait_for(f64::NAN);
        pacer.wait_for(0.5); // paced normally off the 0.0 epoch
        let mut nan_first = Pacer::new(10.0);
        nan_first.wait_for(f64::NAN); // must not poison the epoch
        nan_first.wait_for(3.0);
        assert_eq!(nan_first.first_t, Some(3.0));
    }

    #[test]
    fn poll_backoff_schedule_is_exact() {
        let mut poll = PollBackoff::follow_default();
        let ms = Duration::from_millis;
        // Idle decay: 10, 20, 40, 80, 160, then clamped at 200.
        let idle: Vec<Duration> = (0..7).map(|_| poll.next_delay(false)).collect();
        assert_eq!(
            idle,
            vec![ms(10), ms(20), ms(40), ms(80), ms(160), ms(200), ms(200)]
        );
        // A hit re-polls immediately and resets the decay.
        assert_eq!(poll.next_delay(true), Duration::ZERO);
        assert_eq!(poll.next_delay(true), Duration::ZERO);
        assert_eq!(poll.next_delay(false), ms(10));
        assert_eq!(poll.next_delay(false), ms(20));
        // max < initial is clamped, not a panic.
        let mut tight = PollBackoff::new(ms(50), ms(10));
        assert_eq!(tight.next_delay(false), ms(50));
        assert_eq!(tight.next_delay(false), ms(50));
    }

    #[test]
    fn incremental_solver_skips_most_windows() {
        let captures = synthetic_capture();
        let (_, stats) = replay_database(
            map(KnowledgeLevel::LocationsOnly),
            StreamConfig::default(),
            &captures,
        );
        assert!(stats.windows_closed > 10);
        assert!(
            stats.lp_solves < stats.windows_closed,
            "dirty tracking never skipped a solve: {} solves for {} windows",
            stats.lp_solves,
            stats.windows_closed
        );
    }
}
