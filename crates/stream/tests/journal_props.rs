//! Property tests for the frame journal's damage tolerance, mirroring
//! the wire-codec fuzz suite: any truncation or single-byte corruption
//! of a segment or checkpoint file yields either a clean torn-tail
//! recovery or a typed [`RecoveryError`] — never a panic, and never a
//! recovery that claims more frames than were written.
//!
//! Two invariants are pinned exactly:
//!
//! * damage to a *checkpoint* is never fatal (the journal is the
//!   source of truth; the checkpoint is skipped),
//! * damage to the *final segment* is never fatal (it is
//!   indistinguishable from a crash mid-append, so it is a torn tail).

use marauder_core::apdb::{ApDatabase, ApRecord};
use marauder_core::pipeline::{AttackConfig, KnowledgeLevel, MaraudersMap};
use marauder_geo::Point;
use marauder_stream::{
    FlushPolicy, FrameJournal, JournalConfig, RecoveryError, StreamConfig, StreamEngine,
};
use marauder_wifi::channel::Channel;
use marauder_wifi::frame::Frame;
use marauder_wifi::mac::MacAddr;
use marauder_wifi::sniffer::CapturedFrame;
use marauder_wifi::ssid::Ssid;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Frames in the template journal.
const FRAMES: usize = 24;

fn map() -> MaraudersMap {
    let db: ApDatabase = [
        (100u64, Point::new(0.0, 0.0)),
        (101, Point::new(100.0, 0.0)),
        (102, Point::new(50.0, 80.0)),
    ]
    .into_iter()
    .map(|(i, p)| ApRecord {
        bssid: MacAddr::from_index(i),
        ssid: None,
        location: p,
        radius: Some(120.0),
    })
    .collect();
    MaraudersMap::new(db, KnowledgeLevel::Full, AttackConfig::default())
}

fn frames(n: usize) -> Vec<CapturedFrame> {
    (0..n)
        .map(|k| CapturedFrame {
            time_s: k as f64 * 7.0,
            card: 0,
            frame: Frame::probe_response(
                MacAddr::from_index(100 + (k % 3) as u64),
                MacAddr::from_index(1 + (k % 2) as u64),
                Ssid::new("x").expect("short ssid"),
                Channel::bg(6).expect("bg channel"),
            ),
        })
        .collect()
}

fn lazy() -> StreamConfig {
    StreamConfig {
        live_localization: false,
        warm_start: false,
        ..StreamConfig::default()
    }
}

/// The template journal, built once and replayed from memory for every
/// case: three 8-record segments plus a mid-run checkpoint.
fn template() -> &'static Vec<(String, Vec<u8>)> {
    static T: OnceLock<Vec<(String, Vec<u8>)>> = OnceLock::new();
    T.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!(
            "marauder-journal-props-template-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut journal = FrameJournal::create(
            &dir,
            JournalConfig {
                segment_frames: 8,
                flush: FlushPolicy::OnRotate,
            },
        )
        .expect("create journal");
        let mut engine = StreamEngine::new(map(), lazy());
        let mut closed = Vec::new();
        for (k, f) in frames(FRAMES).iter().enumerate() {
            journal.append(f).expect("append");
            closed.extend(engine.push(f));
            if k == 10 {
                journal.checkpoint(&engine, &closed).expect("checkpoint");
            }
        }
        journal.sync().expect("sync");
        drop(journal);
        let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(&dir)
            .expect("list template")
            .map(|e| {
                let e = e.expect("entry");
                (
                    e.file_name().into_string().expect("utf-8 name"),
                    std::fs::read(e.path()).expect("read file"),
                )
            })
            .collect();
        let _ = std::fs::remove_dir_all(&dir);
        files.sort();
        assert!(files.len() >= 3, "template must rotate segments");
        files
    })
}

/// Writes one damaged copy of the template to a fresh scratch dir.
fn materialize(files: &[(String, Vec<u8>)]) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "marauder-journal-props-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    for (name, bytes) in files {
        std::fs::write(dir.join(name), bytes).expect("write file");
    }
    dir
}

fn final_segment_name(files: &[(String, Vec<u8>)]) -> String {
    files
        .iter()
        .filter(|(n, _)| n.starts_with("segment-"))
        .map(|(n, _)| n.clone())
        .max()
        .expect("template has segments")
}

/// Shared verdict: recovery of a journal with one damaged file either
/// succeeds within bounds or fails with the typed corruption error —
/// and the two protected damage classes always succeed.
fn check_recovery(
    files: &[(String, Vec<u8>)],
    damaged: &str,
    final_segment: &str,
) -> Result<(), TestCaseError> {
    let is_checkpoint = damaged.starts_with("checkpoint-");
    let is_final_segment = damaged == final_segment;
    let dir = materialize(files);
    let result = FrameJournal::recover(&dir, map(), lazy());
    let verdict = match result {
        Ok(rec) => {
            prop_assert!(
                rec.next_seq <= FRAMES as u64,
                "recovered more frames than were written"
            );
            prop_assert_eq!(rec.next_seq, rec.journal.next_seq());
            Ok(())
        }
        Err(RecoveryError::Corrupt { .. }) => {
            prop_assert!(
                !is_checkpoint,
                "checkpoint damage must be skipped, never fatal"
            );
            prop_assert!(
                !is_final_segment,
                "final-segment damage is a torn tail, never fatal"
            );
            Ok(())
        }
        Err(e) => Err(TestCaseError::fail(format!("unexpected I/O error: {e}"))),
    };
    let _ = std::fs::remove_dir_all(&dir);
    verdict
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn any_truncation_recovers_or_fails_typed(
        file_sel in any::<usize>(),
        cut in any::<usize>(),
    ) {
        let mut files = template().clone();
        let final_segment = final_segment_name(&files);
        let fi = file_sel % files.len();
        let damaged = files[fi].0.clone();
        let cut = cut % (files[fi].1.len() + 1);
        files[fi].1.truncate(cut);
        check_recovery(&files, &damaged, &final_segment)?;
    }

    #[test]
    fn any_single_byte_corruption_recovers_or_fails_typed(
        file_sel in any::<usize>(),
        pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut files = template().clone();
        let final_segment = final_segment_name(&files);
        let fi = file_sel % files.len();
        let damaged = files[fi].0.clone();
        let pos = pos % files[fi].1.len();
        files[fi].1[pos] ^= 1 << bit;
        check_recovery(&files, &damaged, &final_segment)?;
    }
}
