//! Live-source integration: the engine fed directly from the running
//! simulation (no capture database in between) must agree with the
//! batch pipeline over the database the same run recorded.

use marauder_core::apdb::ApDatabase;
use marauder_core::pipeline::{AttackConfig, KnowledgeLevel, MaraudersMap};
use marauder_geo::Point;
use marauder_sim::mobility::CircuitWalk;
use marauder_sim::scenario::CampusScenario;
use marauder_stream::{replay_database, StreamConfig, StreamEngine};
use marauder_wifi::device::{MobileStation, OsProfile};
use marauder_wifi::mac::MacAddr;

fn scenario() -> CampusScenario {
    let victim = MobileStation::new(MacAddr::from_index(0xFACE), OsProfile::MacOs);
    CampusScenario::builder()
        .seed(11)
        .num_aps(60)
        .num_mobiles(4)
        .duration_s(240.0)
        .beacon_period_s(None)
        .mobile(
            victim,
            Box::new(CircuitWalk::new(Point::ORIGIN, 120.0, 1.4)),
        )
        .build()
}

#[test]
fn live_sim_feed_matches_batch_track_all() {
    // Run the simulation once, feeding every decoded frame straight
    // into a streaming engine while also recording the database.
    let scen = scenario();
    let mut probe = scen.run(); // to build the AP knowledge first
    let db = ApDatabase::from_access_points(&probe.aps, probe.environment_margin);
    let map = MaraudersMap::new(db.clone(), KnowledgeLevel::Full, AttackConfig::default());

    let mut engine = StreamEngine::new(map, StreamConfig::default());
    let mut events = Vec::new();
    probe = scen.run_with(|frame| {
        events.extend(engine.push(frame));
    });
    events.extend(engine.finish());
    assert_eq!(
        engine.stats().frames_total,
        probe.captures.len(),
        "the live feed must see every decoded frame"
    );
    assert_eq!(engine.stats().frames_late, 0, "sim inversions fit the lag");
    assert_eq!(engine.stats().windows_evicted, 0);

    // Batch over the recorded database.
    let mut batch_map = MaraudersMap::new(db, KnowledgeLevel::Full, AttackConfig::default());
    batch_map.ingest(&probe.captures);
    let batch = batch_map.track_all(&probe.captures);
    assert!(!batch.is_empty());

    let live = engine.batch_fixes(events);
    assert_eq!(live.len(), batch.len());
    for (l, b) in live.iter().zip(&batch) {
        assert_eq!(l.time_s.to_bits(), b.time_s.to_bits());
        assert_eq!(l.mobile, b.mobile);
        assert_eq!(l.gamma, b.gamma);
        assert_eq!(
            l.estimate.position.x.to_bits(),
            b.estimate.position.x.to_bits()
        );
        assert_eq!(
            l.estimate.position.y.to_bits(),
            b.estimate.position.y.to_bits()
        );
    }
}

#[test]
fn full_knowledge_live_fixes_already_match_batch() {
    // At the Full level radii never change, so the fixes emitted the
    // moment each window closed — no end-of-stream re-localization —
    // are themselves the batch fixes, just in chronological order.
    let scen = scenario();
    let result = scen.run();
    let db = ApDatabase::from_access_points(&result.aps, result.environment_margin);
    let map = MaraudersMap::new(db.clone(), KnowledgeLevel::Full, AttackConfig::default());

    let mut engine = StreamEngine::new(map, StreamConfig::default());
    let mut live = Vec::new();
    for frame in result.captures.iter() {
        live.extend(engine.push(frame));
    }
    live.extend(engine.finish());
    let mut live: Vec<_> = live.into_iter().filter_map(|e| e.into_fix()).collect();
    live.sort_by_key(|f| (f.mobile, f.time_s.to_bits()));

    let mut batch_map = MaraudersMap::new(db, KnowledgeLevel::Full, AttackConfig::default());
    batch_map.ingest(&result.captures);
    let batch = batch_map.track_all(&result.captures);

    assert_eq!(live.len(), batch.len());
    for (l, b) in live.iter().zip(&batch) {
        assert_eq!(l.time_s.to_bits(), b.time_s.to_bits());
        assert_eq!(l.mobile, b.mobile);
        assert_eq!(
            l.estimate.position.x.to_bits(),
            b.estimate.position.x.to_bits()
        );
    }
}

#[test]
fn locations_only_replay_matches_batch_on_sim_capture() {
    let result = scenario().run();
    let db = ApDatabase::from_access_points(&result.aps, result.environment_margin).without_radii();
    let mut batch_map = MaraudersMap::new(
        db.clone(),
        KnowledgeLevel::LocationsOnly,
        AttackConfig::default(),
    );
    batch_map.ingest(&result.captures);
    let batch = batch_map.track_all(&result.captures);
    assert!(!batch.is_empty());

    let map = MaraudersMap::new(db, KnowledgeLevel::LocationsOnly, AttackConfig::default());
    let (streamed, stats) = replay_database(map, StreamConfig::default(), &result.captures);
    assert_eq!(stats.frames_late, 0);
    assert_eq!(streamed.len(), batch.len());
    for (s, b) in streamed.iter().zip(&batch) {
        assert_eq!(s.time_s.to_bits(), b.time_s.to_bits());
        assert_eq!(s.mobile, b.mobile);
        assert_eq!(s.gamma, b.gamma);
        assert_eq!(
            s.estimate.position.x.to_bits(),
            b.estimate.position.x.to_bits()
        );
        assert_eq!(
            s.estimate.position.y.to_bits(),
            b.estimate.position.y.to_bits()
        );
        assert_eq!(s.estimate.area().to_bits(), b.estimate.area().to_bits());
    }
    // The incremental solver skipped re-solves on clean windows.
    assert!(stats.lp_solves < stats.windows_closed);
}
