//! The pluggable time source behind span timing.
//!
//! The workspace invariant (enforced by marauder-lint's
//! `no-wall-clock` rule) is that library code never reads real time:
//! results must be a pure function of inputs and seeds. Timings are
//! the one legitimate exception — an observability layer that cannot
//! measure durations is not one — so the exception is *narrowed to
//! this file*: [`MonotonicClock`] is the single place the workspace
//! reads `Instant::now`, `lint.toml` carves exactly this path out, and
//! everything downstream consumes time through the [`Clock`] trait.
//! Tests substitute [`ManualClock`] and advance it by hand, so
//! timing-sensitive assertions stay deterministic.
//!
//! Clock readings only ever feed the registry's explicitly
//! **nondeterministic** section (see
//! [`MetricsRegistry`](crate::MetricsRegistry)); deterministic
//! counters, gauges and histograms never contain a clock value.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source for span timing.
///
/// Implementations must be cheap (called on hot paths) and monotone
/// non-decreasing; the absolute origin is arbitrary — only
/// differences between readings are ever recorded.
pub trait Clock: Send + Sync {
    /// Nanoseconds since the clock's (arbitrary) origin.
    fn now_ns(&self) -> u64;
}

/// The real-time clock for production runs: nanoseconds elapsed since
/// the clock was created, read from the OS monotonic clock.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // u64 nanoseconds overflow after ~584 years of process uptime;
        // saturate instead of wrapping so a pathological reading can
        // never make a span go backwards.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-cranked clock for tests: time only moves when the test says
/// so, making span-timing assertions exact.
#[derive(Debug, Default)]
pub struct ManualClock {
    now_ns: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at 0 ns.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// A clock frozen at `ns`.
    pub fn at_ns(ns: u64) -> Self {
        ManualClock {
            now_ns: AtomicU64::new(ns),
        }
    }

    /// Advances the clock by `delta_ns` nanoseconds.
    pub fn advance_ns(&self, delta_ns: u64) {
        self.now_ns.fetch_add(delta_ns, Ordering::SeqCst);
    }

    /// Jumps the clock to the absolute reading `ns`.
    pub fn set_ns(&self, ns: u64) {
        self.now_ns.store(ns, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_only_by_hand() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_ns(), 0);
        clock.advance_ns(250);
        assert_eq!(clock.now_ns(), 250);
        clock.set_ns(1_000_000);
        assert_eq!(clock.now_ns(), 1_000_000);
        let later = ManualClock::at_ns(42);
        assert_eq!(later.now_ns(), 42);
    }

    #[test]
    fn monotonic_clock_is_monotone() {
        let clock = MonotonicClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a, "monotonic clock went backwards: {a} -> {b}");
    }
}
