//! # marauder-obs — std-only observability for the attack pipeline
//!
//! Production operation of the Marauder's Map pipeline (continuous
//! sniffing → window extraction → AP-Rad LP → localization ladder)
//! needs to answer "what did the pipeline do, and where did the time
//! go" without ad-hoc prints. This crate provides exactly that, under
//! the workspace's determinism contract:
//!
//! * [`MetricsRegistry`] — counters, gauges and fixed-bucket
//!   histograms whose **contents are deterministic**: pure event
//!   counts, never clock readings, stored in ordered maps. The
//!   rendered JSON for these sections is byte-identical across runs at
//!   any `--threads` value.
//! * Span timing behind the pluggable [`Clock`] trait —
//!   [`MonotonicClock`] for real runs (the single reasoned
//!   `no-wall-clock` carve-out in `lint.toml`), [`ManualClock`] for
//!   tests. Timings and scheduling-dependent counters render under an
//!   explicit `"nondeterministic"` JSON key, after every deterministic
//!   section, so two reports can be diffed on their prefix.
//!
//! Producers across the workspace use the process-wide [`global()`]
//! registry; tests that need isolation construct their own
//! [`MetricsRegistry`].

#![forbid(unsafe_code)]

pub mod clock;
pub mod registry;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use registry::{Histogram, MetricsRegistry, Span, SpanStats};

use std::sync::OnceLock;

/// The process-wide registry that the runtime crates report into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// The process-wide monotonic clock used by [`span`].
pub fn global_clock() -> &'static MonotonicClock {
    static CLOCK: OnceLock<MonotonicClock> = OnceLock::new();
    CLOCK.get_or_init(MonotonicClock::new)
}

/// Starts a span on the global registry against the global monotonic
/// clock; the elapsed time is recorded under `name` when the returned
/// guard drops.
pub fn span(name: &'static str) -> Span<'static> {
    global().span(name, global_clock())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_a_singleton() {
        let a = global() as *const MetricsRegistry;
        let b = global() as *const MetricsRegistry;
        assert_eq!(a, b);
    }

    #[test]
    fn global_span_records_into_global_registry() {
        {
            let _span = span("obs.selftest");
        }
        let t = global().timing("obs.selftest").unwrap();
        assert!(t.count >= 1);
    }
}
