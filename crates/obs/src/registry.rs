//! The metrics registry and its hand-rendered JSON document.

use crate::clock::Clock;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard};

/// A fixed-bucket histogram: `bounds` are inclusive upper bucket edges
/// in ascending order, `counts` has one slot per bound plus a final
/// overflow slot. Contents are pure integer counts of observations, so
/// histograms are as deterministic as counters — bucket increments are
/// commutative, and no clock value is ever observed into one.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
        }
    }

    /// Counts `value` into its bucket: the first bound `>= value`, or
    /// the overflow slot (NaN also lands there — every comparison with
    /// NaN is false, which is the honest bucket for a non-value).
    fn observe(&mut self, value: f64) {
        let mut slot = self.bounds.len();
        for (i, b) in self.bounds.iter().enumerate() {
            if value <= *b {
                slot = i;
                break;
            }
        }
        self.counts[slot] += 1;
    }

    /// The inclusive upper bucket edges.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; one slot per bound plus the overflow slot.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations across all buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Aggregated span timings for one name. Lives exclusively in the
/// registry's nondeterministic section: durations come from a
/// [`Clock`] and are never comparable across runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of recorded spans.
    pub count: u64,
    /// Summed duration, nanoseconds.
    pub total_ns: u64,
    /// Shortest recorded span, nanoseconds.
    pub min_ns: u64,
    /// Longest recorded span, nanoseconds.
    pub max_ns: u64,
}

impl SpanStats {
    fn record(&mut self, ns: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
    /// Counters whose values legitimately depend on scheduling (e.g.
    /// blocks claimed per worker) — reported, but outside the
    /// determinism contract.
    nondet_counters: BTreeMap<String, u64>,
    timings: BTreeMap<String, SpanStats>,
}

/// A concurrent metrics registry with a hard determinism contract.
///
/// The registry stores two classes of series:
///
/// * **Deterministic** — counters, gauges and fixed-bucket histograms.
///   Their contents are integer event counts (never clock readings),
///   their storage is ordered (`BTreeMap`), and every producer in the
///   workspace updates them from data that is a pure function of the
///   inputs and seeds. The rendered `counters`/`gauges`/`histograms`
///   JSON sections are therefore byte-identical across runs at any
///   worker-thread count.
/// * **Nondeterministic** — span timings (from a [`Clock`]) and
///   scheduling counters (per-worker block claims). They are rendered
///   under a separate `"nondeterministic"` key so consumers can diff
///   the deterministic prefix of two reports byte-for-byte.
///
/// Interior mutability is a single `Mutex`: every producer call is one
/// short lock. Hot per-frame paths (the stream engine) accumulate
/// locally and merge once per run instead of locking per frame.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A panicking holder cannot leave partial state behind — every
        // update is a single map operation — so poison is recoverable.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Adds `delta` to the counter `name`, creating it at zero first.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.lock();
        match inner.counters.get_mut(name) {
            Some(v) => *v = v.saturating_add(delta),
            None => {
                inner.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Current value of counter `name` (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: i64) {
        self.lock().gauges.insert(name.to_string(), value);
    }

    /// Raises gauge `name` to `value` if `value` is larger (creates it
    /// otherwise) — the shape for high-water marks.
    pub fn gauge_max(&self, name: &str, value: i64) {
        let mut inner = self.lock();
        match inner.gauges.get_mut(name) {
            Some(v) => *v = (*v).max(value),
            None => {
                inner.gauges.insert(name.to_string(), value);
            }
        }
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.lock().gauges.get(name).copied()
    }

    /// Counts `value` into histogram `name`, creating it with `bounds`
    /// on first use. The bounds are fixed at creation; later calls
    /// observe into the existing buckets (differing `bounds` arguments
    /// are ignored — bucket layout is part of the series identity).
    pub fn histogram_observe(&self, name: &str, bounds: &[f64], value: f64) {
        let mut inner = self.lock();
        match inner.histograms.get_mut(name) {
            Some(h) => h.observe(value),
            None => {
                let mut h = Histogram::new(bounds);
                h.observe(value);
                inner.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Merges pre-aggregated bucket `counts` into histogram `name`
    /// (created with `bounds` on first use) — the batch path for hot
    /// loops that bucket locally. `counts` must have
    /// `bounds.len() + 1` slots; mismatched layouts are ignored rather
    /// than corrupting the series.
    pub fn histogram_merge(&self, name: &str, bounds: &[f64], counts: &[u64]) {
        if counts.len() != bounds.len() + 1 {
            return;
        }
        let mut inner = self.lock();
        let h = inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds));
        if h.counts.len() != counts.len() {
            return;
        }
        for (slot, c) in h.counts.iter_mut().zip(counts) {
            *slot = slot.saturating_add(*c);
        }
    }

    /// A copy of histogram `name`, if it exists.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.lock().histograms.get(name).cloned()
    }

    /// Adds `delta` to the **nondeterministic** counter `name`
    /// (scheduling-dependent series such as per-worker block claims).
    pub fn nondet_add(&self, name: &str, delta: u64) {
        let mut inner = self.lock();
        match inner.nondet_counters.get_mut(name) {
            Some(v) => *v = v.saturating_add(delta),
            None => {
                inner.nondet_counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Records one span duration under `name` (nondeterministic
    /// section).
    pub fn record_ns(&self, name: &str, ns: u64) {
        let mut inner = self.lock();
        match inner.timings.get_mut(name) {
            Some(t) => t.record(ns),
            None => {
                let mut t = SpanStats::default();
                t.record(ns);
                inner.timings.insert(name.to_string(), t);
            }
        }
    }

    /// Aggregated timings recorded under `name`.
    pub fn timing(&self, name: &str) -> Option<SpanStats> {
        self.lock().timings.get(name).cloned()
    }

    /// Starts a span: the returned guard records the elapsed `clock`
    /// time under `name` when dropped.
    pub fn span<'a>(&'a self, name: &'static str, clock: &'a dyn Clock) -> Span<'a> {
        Span {
            registry: self,
            clock,
            name,
            start_ns: clock.now_ns(),
        }
    }

    /// Clears every series, deterministic and not.
    pub fn reset(&self) {
        *self.lock() = Inner::default();
    }

    /// Renders only the deterministic sections (`counters`, `gauges`,
    /// `histograms`) as a complete JSON document — the byte-comparable
    /// surface.
    pub fn deterministic_json(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        out.push_str("{\n");
        render_deterministic(&mut out, &inner, true);
        out.push_str("}\n");
        out
    }

    /// Renders the full registry as JSON: the deterministic sections
    /// first, then everything scheduling- or clock-dependent under the
    /// `"nondeterministic"` key. Splitting the text at that key yields
    /// exactly the byte-comparable prefix.
    pub fn to_json(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        out.push_str("{\n");
        render_deterministic(&mut out, &inner, false);
        out.push_str("  \"nondeterministic\": {\n");
        render_u64_map(&mut out, "counters", &inner.nondet_counters, 4, false);
        out.push_str("    \"timings_ns\": {\n");
        let n = inner.timings.len();
        for (i, (name, t)) in inner.timings.iter().enumerate() {
            let sep = if i + 1 == n { "" } else { "," };
            let _ = writeln!(
                out,
                "      {}: {{\"count\": {}, \"total\": {}, \"min\": {}, \"max\": {}}}{sep}",
                json_string(name),
                t.count,
                t.total_ns,
                t.min_ns,
                t.max_ns
            );
        }
        out.push_str("    }\n");
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }
}

/// A live span; records its duration into the registry on drop.
#[derive(Debug)]
pub struct Span<'a> {
    registry: &'a MetricsRegistry,
    clock: &'a dyn Clock,
    name: &'static str,
    start_ns: u64,
}

impl std::fmt::Debug for dyn Clock + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Clock")
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let elapsed = self.clock.now_ns().saturating_sub(self.start_ns);
        self.registry.record_ns(self.name, elapsed);
    }
}

fn render_deterministic(out: &mut String, inner: &Inner, last: bool) {
    render_u64_map(out, "counters", &inner.counters, 2, false);
    let n = inner.gauges.len();
    out.push_str("  \"gauges\": {\n");
    for (i, (name, v)) in inner.gauges.iter().enumerate() {
        let sep = if i + 1 == n { "" } else { "," };
        let _ = writeln!(out, "    {}: {v}{sep}", json_string(name));
    }
    out.push_str("  },\n");
    let n = inner.histograms.len();
    out.push_str("  \"histograms\": {\n");
    for (i, (name, h)) in inner.histograms.iter().enumerate() {
        let sep = if i + 1 == n { "" } else { "," };
        let bounds = h
            .bounds
            .iter()
            .map(|b| json_f64(*b))
            .collect::<Vec<_>>()
            .join(", ");
        let counts = h
            .counts
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "    {}: {{\"bounds\": [{bounds}], \"counts\": [{counts}], \"total\": {}}}{sep}",
            json_string(name),
            h.total()
        );
    }
    if last {
        out.push_str("  }\n");
    } else {
        out.push_str("  },\n");
    }
}

fn render_u64_map(
    out: &mut String,
    key: &str,
    map: &BTreeMap<String, u64>,
    indent: usize,
    last: bool,
) {
    let pad = " ".repeat(indent);
    let _ = writeln!(out, "{pad}\"{key}\": {{");
    let n = map.len();
    for (i, (name, v)) in map.iter().enumerate() {
        let sep = if i + 1 == n { "" } else { "," };
        let _ = writeln!(out, "{pad}  {}: {v}{sep}", json_string(name));
    }
    let sep = if last { "" } else { "," };
    let _ = writeln!(out, "{pad}}}{sep}");
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn counters_accumulate_and_read_back() {
        let reg = MetricsRegistry::new();
        assert_eq!(reg.counter("a"), 0);
        reg.counter_add("a", 2);
        reg.counter_add("a", 3);
        reg.counter_add("b", 1);
        assert_eq!(reg.counter("a"), 5);
        assert_eq!(reg.counter("b"), 1);
    }

    #[test]
    fn gauges_set_and_high_water() {
        let reg = MetricsRegistry::new();
        assert_eq!(reg.gauge("g"), None);
        reg.gauge_set("g", -4);
        assert_eq!(reg.gauge("g"), Some(-4));
        reg.gauge_max("g", 10);
        reg.gauge_max("g", 3);
        assert_eq!(reg.gauge("g"), Some(10));
        reg.gauge_max("fresh", 7);
        assert_eq!(reg.gauge("fresh"), Some(7));
    }

    #[test]
    fn histogram_buckets_are_inclusive_upper_edges() {
        let reg = MetricsRegistry::new();
        let bounds = [1.0, 10.0];
        for v in [0.5, 1.0, 1.5, 10.0, 11.0, f64::NAN] {
            reg.histogram_observe("h", &bounds, v);
        }
        let h = reg.histogram("h").unwrap();
        assert_eq!(h.bounds(), &bounds);
        // <=1: {0.5, 1.0}; <=10: {1.5, 10.0}; overflow: {11.0, NaN}.
        assert_eq!(h.counts(), &[2, 2, 2]);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn histogram_merge_adds_preaggregated_counts() {
        let reg = MetricsRegistry::new();
        let bounds = [1.0, 2.0];
        reg.histogram_merge("h", &bounds, &[1, 2, 3]);
        reg.histogram_merge("h", &bounds, &[10, 0, 0]);
        // Wrong layout: silently ignored, series unchanged.
        reg.histogram_merge("h", &bounds, &[1, 1]);
        let h = reg.histogram("h").unwrap();
        assert_eq!(h.counts(), &[11, 2, 3]);
    }

    #[test]
    fn spans_record_manual_clock_durations() {
        let reg = MetricsRegistry::new();
        let clock = ManualClock::new();
        {
            let _span = reg.span("work", &clock);
            clock.advance_ns(500);
        }
        {
            let _span = reg.span("work", &clock);
            clock.advance_ns(100);
        }
        let t = reg.timing("work").unwrap();
        assert_eq!(t.count, 2);
        assert_eq!(t.total_ns, 600);
        assert_eq!(t.min_ns, 100);
        assert_eq!(t.max_ns, 500);
    }

    #[test]
    fn json_splits_deterministic_from_nondeterministic() {
        let reg = MetricsRegistry::new();
        reg.counter_add("z.last", 1);
        reg.counter_add("a.first", 2);
        reg.gauge_set("open", 3);
        reg.histogram_observe("lag", &[1.0], 0.5);
        reg.nondet_add("worker.blocks", 9);
        reg.record_ns("span", 123);

        let json = reg.to_json();
        // Deterministic keys appear before the nondeterministic block,
        // in sorted order.
        let det = json.split("\"nondeterministic\"").next().unwrap();
        assert!(det.contains("\"a.first\": 2"));
        assert!(det.contains("\"z.last\": 1"));
        assert!(det.find("a.first").unwrap() < det.find("z.last").unwrap());
        assert!(det.contains("\"open\": 3"));
        assert!(det.contains("\"bounds\": [1], \"counts\": [1, 0], \"total\": 1"));
        assert!(!det.contains("worker.blocks"));
        assert!(!det.contains("\"span\""));
        // Nondeterministic tail carries the rest.
        assert!(json.contains("\"worker.blocks\": 9"));
        assert!(json.contains("\"count\": 1, \"total\": 123, \"min\": 123, \"max\": 123"));
        // Cheap well-formedness: balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());

        // deterministic_json is a standalone document with the same
        // deterministic content.
        let det_doc = reg.deterministic_json();
        assert!(det_doc.contains("\"a.first\": 2"));
        assert!(!det_doc.contains("nondeterministic"));
        assert_eq!(det_doc.matches('{').count(), det_doc.matches('}').count());
    }

    #[test]
    fn identical_event_streams_render_identically_regardless_of_order() {
        // The determinism contract in miniature: counter adds commute.
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter_add("x", 1);
        a.counter_add("y", 2);
        a.counter_add("x", 4);
        b.counter_add("y", 2);
        b.counter_add("x", 4);
        b.counter_add("x", 1);
        assert_eq!(a.deterministic_json(), b.deterministic_json());
    }

    #[test]
    fn reset_clears_everything() {
        let reg = MetricsRegistry::new();
        reg.counter_add("a", 1);
        reg.nondet_add("b", 1);
        reg.record_ns("c", 1);
        reg.reset();
        assert_eq!(reg.counter("a"), 0);
        let json = reg.to_json();
        assert!(!json.contains("\"a\""));
        assert!(!json.contains("\"b\""));
        assert!(!json.contains("\"c\""));
    }
}
