//! Radio-frequency substrate for the Marauder's Map reproduction.
//!
//! The paper's coverage analysis (Section III-A and Appendix A) is pure
//! link-budget arithmetic: a wireless card decodes a frame when the
//! received power exceeds the receiver chain's sensitivity, and the
//! sensitivity is set by the chain's cascaded noise figure. This crate
//! implements that arithmetic with typed decibel units:
//!
//! * [`units`] — `Db`, `Dbm`, `Dbi`, `Hertz`, `Meters` newtypes with the
//!   only physically meaningful arithmetic defined between them,
//! * [`noise`] — noise-factor/figure conversions and the Friis cascade
//!   formula (paper eq. 12–15),
//! * [`link_budget`] — free-space path loss, received power, sensitivity
//!   and the Theorem-1 coverage radius,
//! * [`chain`] — a builder assembling antennas, connectors, LNAs,
//!   splitters and NICs into a [`chain::ReceiverChain`],
//! * [`components`] — the exact parts used in the paper's testbed,
//! * [`propagation`] — free-space plus log-distance/shadowing models used
//!   by the simulator to stress the algorithms beyond the paper's
//!   worst-case spherical model.
//!
//! # Example: reproduce the paper's coverage claim
//!
//! ```
//! use marauder_rf::chain::ReceiverChain;
//! use marauder_rf::components;
//! use marauder_rf::units::{Db, Hertz};
//!
//! // HyperLink 15 dBi antenna + RF-Lambda LNA + 4-way splitter + SRC card:
//! let chain = ReceiverChain::builder()
//!     .antenna(components::HYPERLINK_HG2415U)
//!     .lna(components::RF_LAMBDA_LNA)
//!     .splitter(components::HYPERLINK_SPLITTER_4WAY)
//!     .nic(components::UBIQUITI_SRC)
//!     .build();
//! let radius = chain.coverage_radius(
//!     &components::TYPICAL_MOBILE_TX,
//!     Hertz::from_mhz(2437.0),
//!     Db::new(components::CAMPUS_ENVIRONMENT_MARGIN_DB),
//! );
//! assert!(radius.meters() > 800.0); // ≈ 1 km in the paper (Fig. 12)
//! ```

#![forbid(unsafe_code)]

pub mod chain;
pub mod components;
pub mod link_budget;
pub mod noise;
pub mod propagation;
pub mod rates;
pub mod units;

pub use chain::{ReceiverChain, ReceiverChainBuilder};
pub use link_budget::{coverage_radius, free_space_path_loss, received_power, sensitivity};
pub use noise::{cascade_noise_figure, CascadeStage};
pub use propagation::{FreeSpace, LogDistance, PropagationModel, SectorObstruction};
pub use rates::DataRate;
pub use units::{Db, Dbi, Dbm, Hertz, Meters};
