//! The wireless receiver chain: antenna → connector → LNA → splitter →
//! wireless cards.
//!
//! This mirrors Figure 1 of the paper: a high-gain antenna feeds a
//! powered low-noise amplifier, whose output a signal splitter fans out
//! to several wireless cards so that multiple channels can be monitored
//! from one antenna. [`ReceiverChain`] computes the resulting cascade
//! noise figure, per-thread sensitivity and Theorem-1 coverage radius.

use crate::link_budget::{self, Transmitter};
use crate::noise::{cascade_noise_figure, CascadeStage};
use crate::units::{Db, Dbi, Dbm, Hertz, Meters};

/// An antenna component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Antenna {
    /// Marketing / catalog name.
    pub name: &'static str,
    /// Gain over isotropic, dBi.
    pub gain_dbi: f64,
}

/// A low-noise amplifier component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lna {
    /// Marketing / catalog name.
    pub name: &'static str,
    /// Power gain, dB.
    pub gain_db: f64,
    /// Noise figure, dB.
    pub noise_figure_db: f64,
}

/// A power splitter component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Splitter {
    /// Marketing / catalog name.
    pub name: &'static str,
    /// Number of output threads.
    pub ways: u32,
    /// Insertion loss beyond the ideal `10·log₁₀(ways)` split, dB.
    pub excess_loss_db: f64,
}

impl Splitter {
    /// Total per-thread loss: ideal split loss plus excess insertion loss.
    pub fn loss(&self) -> Db {
        Db::new(10.0 * (self.ways as f64).log10() + self.excess_loss_db)
    }
}

/// A wireless network interface card component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Nic {
    /// Marketing / catalog name.
    pub name: &'static str,
    /// Front-end noise figure, dB (typical cards: 4–6 dB, paper \[20\]).
    pub noise_figure_db: f64,
    /// Minimum SNR for acceptable demodulation, dB.
    pub snr_min_db: f64,
    /// Receiver (baseband filter) bandwidth, MHz.
    pub bandwidth_mhz: f64,
    /// Conducted transmit power, dBm (used when the card transmits).
    pub tx_power_dbm: f64,
}

/// An assembled receiver chain.
///
/// Construct with [`ReceiverChain::builder`]. See the
/// [crate-level example](crate) for the paper's full LNA chain.
#[derive(Debug, Clone, PartialEq)]
pub struct ReceiverChain {
    name: String,
    antenna: Antenna,
    connector_loss: Db,
    lna: Option<Lna>,
    splitter: Option<Splitter>,
    nic: Nic,
}

/// Builder for [`ReceiverChain`]. Only the NIC is mandatory; the default
/// antenna is the card's integrated 0 dBi antenna.
#[derive(Debug, Clone, Default)]
pub struct ReceiverChainBuilder {
    name: Option<String>,
    antenna: Option<Antenna>,
    connector_loss: Option<f64>,
    lna: Option<Lna>,
    splitter: Option<Splitter>,
    nic: Option<Nic>,
}

impl ReceiverChain {
    /// Starts building a chain.
    pub fn builder() -> ReceiverChainBuilder {
        ReceiverChainBuilder::default()
    }

    /// Display name of the chain (defaults to the NIC name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The receive antenna.
    pub fn antenna(&self) -> Antenna {
        self.antenna
    }

    /// The wireless card terminating the chain.
    pub fn nic(&self) -> Nic {
        self.nic
    }

    /// Number of signal threads the chain provides (1 without a splitter).
    /// Each thread can feed one wireless card monitoring one channel.
    pub fn threads(&self) -> u32 {
        self.splitter.map_or(1, |s| s.ways)
    }

    /// Cascade noise figure of the whole chain (paper eq. 15: with a
    /// high-gain LNA this is essentially the LNA's own noise figure).
    pub fn noise_figure(&self) -> Db {
        let mut stages: Vec<CascadeStage> = Vec::with_capacity(4);
        if self.connector_loss.db() > 0.0 {
            stages.push(CascadeStage::passive(self.connector_loss));
        }
        if let Some(lna) = self.lna {
            stages.push(CascadeStage::active(
                Db::new(lna.gain_db),
                Db::new(lna.noise_figure_db),
            ));
        }
        if let Some(sp) = self.splitter {
            stages.push(CascadeStage::passive(sp.loss()));
        }
        stages.push(CascadeStage::active(
            Db::ZERO,
            Db::new(self.nic.noise_figure_db),
        ));
        cascade_noise_figure(&stages)
    }

    /// The chain's sensitivity: minimum antenna-input power that still
    /// demodulates (paper eq. 16).
    pub fn sensitivity(&self) -> Dbm {
        link_budget::sensitivity(
            self.noise_figure(),
            Db::new(self.nic.snr_min_db),
            Hertz::from_mhz(self.nic.bandwidth_mhz),
        )
    }

    /// Theorem-1 coverage radius against transmitter `tx` at carrier
    /// `freq`, with `environment_margin` of additional loss standing in
    /// for the non-free-space reality of a campus.
    pub fn coverage_radius(&self, tx: &Transmitter, freq: Hertz, environment_margin: Db) -> Meters {
        link_budget::coverage_radius(
            tx,
            Dbi::new(self.antenna.gain_dbi),
            self.noise_figure(),
            Db::new(self.nic.snr_min_db),
            Hertz::from_mhz(self.nic.bandwidth_mhz),
            freq,
            environment_margin,
        )
    }

    /// Theorem-1 coverage radius when decoding at a specific data rate
    /// instead of the NIC's configured `snr_min` — quantifies why the
    /// 1 Mbps management traffic is sniffable far beyond any data
    /// session's range.
    pub fn coverage_radius_at_rate(
        &self,
        tx: &Transmitter,
        freq: Hertz,
        environment_margin: Db,
        rate: crate::rates::DataRate,
    ) -> Meters {
        link_budget::coverage_radius(
            tx,
            Dbi::new(self.antenna.gain_dbi),
            self.noise_figure(),
            rate.snr_min(),
            Hertz::from_mhz(self.nic.bandwidth_mhz),
            freq,
            environment_margin,
        )
    }

    /// Whether the chain decodes a transmission from `tx` over a path
    /// with the given total `path_loss` (any propagation model). The
    /// chain's own antenna gain is applied here.
    pub fn decodes_via(&self, tx: &Transmitter, path_loss: Db) -> bool {
        let prx = tx.eirp() + Dbi::new(self.antenna.gain_dbi).as_db() - path_loss;
        prx > self.sensitivity()
    }

    /// Whether the chain decodes a transmission from `tx` at distance `d`.
    pub fn decodes(
        &self,
        tx: &Transmitter,
        d: Meters,
        freq: Hertz,
        environment_margin: Db,
    ) -> bool {
        let prx = link_budget::received_power(
            tx,
            Dbi::new(self.antenna.gain_dbi),
            d,
            freq,
            environment_margin,
        );
        prx > self.sensitivity()
    }
}

impl ReceiverChainBuilder {
    /// Sets a display name (defaults to the NIC name).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Sets the receive antenna.
    pub fn antenna(mut self, antenna: Antenna) -> Self {
        self.antenna = Some(antenna);
        self
    }

    /// Sets the antenna-to-chain connector loss in dB (default 0).
    ///
    /// # Panics
    ///
    /// The terminal [`build`](Self::build) panics if the loss is negative.
    pub fn connector_loss_db(mut self, loss: f64) -> Self {
        self.connector_loss = Some(loss);
        self
    }

    /// Inserts a low-noise amplifier after the antenna.
    pub fn lna(mut self, lna: Lna) -> Self {
        self.lna = Some(lna);
        self
    }

    /// Inserts a signal splitter before the cards.
    pub fn splitter(mut self, splitter: Splitter) -> Self {
        self.splitter = Some(splitter);
        self
    }

    /// Sets the wireless card (mandatory).
    pub fn nic(mut self, nic: Nic) -> Self {
        self.nic = Some(nic);
        self
    }

    /// Assembles the chain.
    ///
    /// # Panics
    ///
    /// Panics when no NIC was provided or the connector loss is negative.
    pub fn build(self) -> ReceiverChain {
        // lint:allow(no-panic-in-lib) -- builder misuse; documented `# Panics` contract
        let nic = self.nic.expect("a receiver chain needs a wireless card");
        let connector_loss = self.connector_loss.unwrap_or(0.0);
        assert!(
            connector_loss >= 0.0,
            "connector loss must be >= 0 dB, got {connector_loss}"
        );
        let antenna = self.antenna.unwrap_or(Antenna {
            name: "integrated",
            gain_dbi: 0.0,
        });
        ReceiverChain {
            name: self.name.unwrap_or_else(|| nic.name.to_string()),
            antenna,
            connector_loss: Db::new(connector_loss),
            lna: self.lna,
            splitter: self.splitter,
            nic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components;
    use crate::units::Dbm;

    fn mobile() -> Transmitter {
        Transmitter::new(Dbm::new(15.0), Dbi::new(2.0))
    }

    fn ch6() -> Hertz {
        Hertz::from_mhz(2437.0)
    }

    fn margin() -> Db {
        Db::new(components::CAMPUS_ENVIRONMENT_MARGIN_DB)
    }

    #[test]
    #[should_panic(expected = "needs a wireless card")]
    fn build_without_nic_panics() {
        let _ = ReceiverChain::builder().build();
    }

    #[test]
    #[should_panic(expected = "connector loss must be >= 0")]
    fn negative_connector_loss_panics() {
        let _ = ReceiverChain::builder()
            .nic(components::UBIQUITI_SRC)
            .connector_loss_db(-1.0)
            .build();
    }

    #[test]
    fn default_antenna_is_integrated() {
        let chain = ReceiverChain::builder()
            .nic(components::DLINK_DWL_G650)
            .build();
        assert_eq!(chain.antenna().gain_dbi, 0.0);
        assert_eq!(chain.name(), "D-Link DWL-G650");
        assert_eq!(chain.threads(), 1);
    }

    #[test]
    fn lna_chain_nf_is_lna_nf() {
        let chain = ReceiverChain::builder()
            .antenna(components::HYPERLINK_HG2415U)
            .lna(components::RF_LAMBDA_LNA)
            .splitter(components::HYPERLINK_SPLITTER_4WAY)
            .nic(components::UBIQUITI_SRC)
            .build();
        assert!((chain.noise_figure().db() - 1.5).abs() < 0.05);
        assert_eq!(chain.threads(), 4);
    }

    #[test]
    fn fig12_coverage_ordering() {
        // Fig. 12 of the paper: DLink < SRC < HG2415U <= LNA (~1 km).
        let dlink = ReceiverChain::builder()
            .nic(components::DLINK_DWL_G650)
            .build();
        let src = ReceiverChain::builder()
            .antenna(components::TRI_BAND_CLIP_4DBI)
            .nic(components::UBIQUITI_SRC)
            .build();
        let hg = ReceiverChain::builder()
            .antenna(components::HYPERLINK_HG2415U)
            .nic(components::UBIQUITI_SRC)
            .build();
        let lna = ReceiverChain::builder()
            .antenna(components::HYPERLINK_HG2415U)
            .lna(components::RF_LAMBDA_LNA)
            .splitter(components::HYPERLINK_SPLITTER_4WAY)
            .nic(components::UBIQUITI_SRC)
            .build();
        let r = |c: &ReceiverChain| c.coverage_radius(&mobile(), ch6(), margin()).meters();
        assert!(r(&dlink) < r(&src), "{} !< {}", r(&dlink), r(&src));
        assert!(r(&src) < r(&hg));
        assert!(r(&hg) < r(&lna));
        // The full LNA chain reaches roughly the paper's 1 km.
        assert!(
            (r(&lna) - 1000.0).abs() < 250.0,
            "LNA radius {} not ≈ 1 km",
            r(&lna)
        );
    }

    #[test]
    fn decodes_inside_radius_only() {
        let chain = ReceiverChain::builder()
            .antenna(components::HYPERLINK_HG2415U)
            .lna(components::RF_LAMBDA_LNA)
            .nic(components::UBIQUITI_SRC)
            .build();
        let d = chain.coverage_radius(&mobile(), ch6(), margin());
        assert!(chain.decodes(&mobile(), Meters::new(d.meters() - 1.0), ch6(), margin()));
        assert!(!chain.decodes(&mobile(), Meters::new(d.meters() + 1.0), ch6(), margin()));
    }

    #[test]
    fn splitter_loss_is_ideal_plus_excess() {
        let s = Splitter {
            name: "test",
            ways: 4,
            excess_loss_db: 0.5,
        };
        assert!((s.loss().db() - (6.0206 + 0.5)).abs() < 1e-3);
    }

    #[test]
    fn splitter_after_lna_barely_costs_radius() {
        let base = ReceiverChain::builder()
            .antenna(components::HYPERLINK_HG2415U)
            .lna(components::RF_LAMBDA_LNA)
            .nic(components::UBIQUITI_SRC)
            .build();
        let split = ReceiverChain::builder()
            .antenna(components::HYPERLINK_HG2415U)
            .lna(components::RF_LAMBDA_LNA)
            .splitter(components::HYPERLINK_SPLITTER_4WAY)
            .nic(components::UBIQUITI_SRC)
            .build();
        let rb = base.coverage_radius(&mobile(), ch6(), margin()).meters();
        let rs = split.coverage_radius(&mobile(), ch6(), margin()).meters();
        // Less than 2% radius cost for 4x the monitored channels.
        assert!(rs > rb * 0.98, "split {rs} vs base {rb}");
    }

    #[test]
    fn management_rate_reaches_farthest() {
        use crate::rates::DataRate;
        let chain = ReceiverChain::builder()
            .antenna(components::HYPERLINK_HG2415U)
            .lna(components::RF_LAMBDA_LNA)
            .nic(components::UBIQUITI_SRC)
            .build();
        let r = |rate: DataRate| {
            chain
                .coverage_radius_at_rate(&mobile(), ch6(), margin(), rate)
                .meters()
        };
        assert!(r(DataRate::MANAGEMENT) > r(DataRate::B11));
        assert!(r(DataRate::B11) > r(DataRate::G54));
        // ~10x spread between the basic rate and 54 Mbps.
        let spread = r(DataRate::B1) / r(DataRate::G54);
        assert!(spread > 8.0, "spread {spread}");
    }

    #[test]
    fn named_builder() {
        let chain = ReceiverChain::builder()
            .name("rooftop rig")
            .nic(components::UBIQUITI_SRC)
            .build();
        assert_eq!(chain.name(), "rooftop rig");
    }
}
