//! Noise figures and the Friis cascade formula.
//!
//! Paper eq. (12)–(15): the noise factor of a cascade of receiver blocks
//! is `F = F₁ + (F₂−1)/G₁ + (F₃−1)/(G₁G₂) + …`, so a high-gain low-noise
//! amplifier placed first makes the whole chain's noise figure ≈ the
//! LNA's. That observation is what lets the paper split one antenna feed
//! across several wireless cards without losing sensitivity.

use crate::units::Db;

/// One powered block in a receiver cascade: its gain and noise figure
/// (both in dB). Passive lossy blocks (connectors, splitters) are modeled
/// with negative gain and a noise figure equal to their loss, the standard
/// result for attenuators at ambient temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascadeStage {
    /// Power gain of the stage (negative for loss).
    pub gain: Db,
    /// Noise figure of the stage.
    pub noise_figure: Db,
}

impl CascadeStage {
    /// An active stage (amplifier or NIC front-end).
    pub fn active(gain: Db, noise_figure: Db) -> Self {
        CascadeStage { gain, noise_figure }
    }

    /// A passive attenuating stage with the given positive loss: gain
    /// `−loss`, noise figure `loss`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is negative.
    pub fn passive(loss: Db) -> Self {
        assert!(loss.db() >= 0.0, "passive loss must be >= 0, got {loss}");
        CascadeStage {
            gain: -loss,
            noise_figure: loss,
        }
    }
}

/// Computes the cascade noise figure of a receiver chain by the Friis
/// formula (paper eq. 12–13).
///
/// Returns `Db::ZERO` for an empty chain (an ideal lossless wire).
///
/// # Example
///
/// A 45 dB-gain, 1.5 dB-NF LNA in front of a 5 dB-NF card gives a chain
/// noise figure of essentially 1.5 dB — the paper's 2.5–4.5 dB
/// improvement over the bare card:
///
/// ```
/// use marauder_rf::noise::{cascade_noise_figure, CascadeStage};
/// use marauder_rf::units::Db;
///
/// let chain = [
///     CascadeStage::active(Db::new(45.0), Db::new(1.5)), // LNA
///     CascadeStage::active(Db::new(0.0), Db::new(5.0)),  // NIC
/// ];
/// let nf = cascade_noise_figure(&chain);
/// assert!((nf.db() - 1.5).abs() < 0.01);
/// ```
pub fn cascade_noise_figure(stages: &[CascadeStage]) -> Db {
    let mut total_factor = 1.0; // linear noise factor
    let mut gain_product = 1.0; // linear gain of preceding stages
    for stage in stages {
        let f = stage.noise_figure.ratio();
        total_factor += (f - 1.0) / gain_product;
        gain_product *= stage.gain.ratio();
    }
    Db::from_ratio(total_factor)
}

/// Total gain of a cascade, the plain sum of stage gains in dB.
pub fn cascade_gain(stages: &[CascadeStage]) -> Db {
    stages.iter().map(|s| s.gain).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_chain_is_ideal() {
        assert!(cascade_noise_figure(&[]).db().abs() < 1e-12);
        assert!(cascade_gain(&[]).db().abs() < 1e-12);
    }

    #[test]
    fn single_stage_is_its_own_nf() {
        let nf = cascade_noise_figure(&[CascadeStage::active(Db::new(20.0), Db::new(3.0))]);
        assert!((nf.db() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lna_dominates_chain_nf() {
        // Paper: RF-Lambda LNA 45 dB gain / 1.5 dB NF ahead of a 4–6 dB
        // NF card makes the chain NF ≈ 1.5 dB.
        for &nic_nf in &[4.0, 5.0, 6.0] {
            let chain = [
                CascadeStage::active(Db::new(45.0), Db::new(1.5)),
                CascadeStage::active(Db::new(0.0), Db::new(nic_nf)),
            ];
            let nf = cascade_noise_figure(&chain);
            assert!(
                (nf.db() - 1.5).abs() < 0.01,
                "nic_nf={nic_nf}: chain NF {nf}"
            );
        }
    }

    #[test]
    fn without_lna_chain_nf_is_nic_nf() {
        let chain = [CascadeStage::active(Db::new(0.0), Db::new(5.0))];
        assert!((cascade_noise_figure(&chain).db() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn passive_stage_adds_its_loss() {
        // A 2 dB cable ahead of a 5 dB NF card: chain NF = 7 dB.
        let chain = [
            CascadeStage::passive(Db::new(2.0)),
            CascadeStage::active(Db::new(0.0), Db::new(5.0)),
        ];
        let nf = cascade_noise_figure(&chain);
        assert!((nf.db() - 7.0).abs() < 1e-9, "NF {nf}");
    }

    #[test]
    fn splitter_after_lna_barely_hurts() {
        // 4-way splitter (6 dB loss) after a 45 dB LNA: NF stays ≈ LNA's.
        let chain = [
            CascadeStage::active(Db::new(45.0), Db::new(1.5)),
            CascadeStage::passive(Db::new(6.0)),
            CascadeStage::active(Db::new(0.0), Db::new(5.0)),
        ];
        let nf = cascade_noise_figure(&chain);
        assert!((nf.db() - 1.5).abs() < 0.01, "NF {nf}");
        // Residual thread gain after splitting: 45 − 6 = 39 dB, the
        // paper's "45 − 10log4 = 39 dB" remark.
        assert!((cascade_gain(&chain[..2]).db() - 39.0).abs() < 1e-9);
    }

    #[test]
    fn friis_formula_matches_manual_computation() {
        // Two stages: F = F1 + (F2-1)/G1 in linear terms.
        let g1 = 10f64; // 10 dB
        let f1 = 2.0; // ~3 dB
        let f2 = 4.0; // ~6 dB
        let chain = [
            CascadeStage::active(Db::from_ratio(g1), Db::from_ratio(f1)),
            CascadeStage::active(Db::new(0.0), Db::from_ratio(f2)),
        ];
        let expected = f1 + (f2 - 1.0) / g1;
        assert!((cascade_noise_figure(&chain).ratio() - expected).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "passive loss must be >= 0")]
    fn negative_passive_loss_panics() {
        let _ = CascadeStage::passive(Db::new(-1.0));
    }

    #[test]
    fn nf_monotone_in_stage_nf() {
        let make = |nf2: f64| {
            cascade_noise_figure(&[
                CascadeStage::active(Db::new(10.0), Db::new(2.0)),
                CascadeStage::active(Db::new(0.0), Db::new(nf2)),
            ])
            .db()
        };
        assert!(make(3.0) < make(6.0));
        assert!(make(6.0) < make(9.0));
    }
}
