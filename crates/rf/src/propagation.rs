//! Propagation models.
//!
//! The paper deliberately analyzes coverage with the free-space
//! ("spherical") model as a *worst case* for the attacker: it
//! overestimates AP coverage, which can only enlarge the intersection
//! region. The simulator additionally offers a log-distance model with
//! deterministic log-normal shadowing and a sector-obstruction decorator
//! (the "small hills" of Fig. 12) so experiments can quantify how model
//! mismatch affects localization accuracy.

use crate::link_budget;
use crate::units::{Db, Hertz, Meters};
use marauder_geo::Point;

/// A path-loss model between two planar positions.
///
/// Implementations must be deterministic: the simulator replays links
/// repeatedly and expects identical loss for identical endpoints (use a
/// position-hash, not an RNG stream, for shadowing).
pub trait PropagationModel: Send + Sync {
    /// Path loss between `tx` and `rx` at carrier `freq`.
    fn path_loss(&self, tx: Point, rx: Point, freq: Hertz) -> Db;

    /// A short human-readable model name for experiment logs.
    fn name(&self) -> &str;
}

/// Ideal free-space propagation (paper eq. 9).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FreeSpace;

impl PropagationModel for FreeSpace {
    fn path_loss(&self, tx: Point, rx: Point, freq: Hertz) -> Db {
        link_budget::free_space_path_loss(Meters::new(tx.distance(rx)), freq)
    }

    fn name(&self) -> &str {
        "free-space"
    }
}

/// Log-distance path loss with deterministic log-normal shadowing:
/// `L(d) = L_fs(d₀) + 10·n·log₁₀(d/d₀) + X_σ`, where `X_σ` is a
/// zero-mean Gaussian with standard deviation `sigma_db`, derived from a
/// hash of the endpoint pair so that a link's shadowing is stable across
/// the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogDistance {
    /// Path-loss exponent `n` (2 = free space; 2.7–4 typical urban).
    pub exponent: f64,
    /// Reference distance `d₀`, meters.
    pub reference_distance: f64,
    /// Shadowing standard deviation, dB (0 disables shadowing).
    pub sigma_db: f64,
    /// Seed mixed into the per-link shadowing hash.
    pub seed: u64,
}

impl LogDistance {
    /// A typical suburban-campus profile: exponent 3.0, σ = 6 dB.
    pub fn campus(seed: u64) -> Self {
        LogDistance {
            exponent: 3.0,
            reference_distance: 1.0,
            sigma_db: 6.0,
            seed,
        }
    }

    /// Deterministic standard-normal draw for the unordered endpoint
    /// pair, via hashing + Box–Muller.
    fn shadowing_std_normal(&self, a: Point, b: Point) -> f64 {
        // Quantize to centimeters so equal positions hash equally even
        // after round-tripping through other representations.
        let q = |v: f64| (v * 100.0).round() as i64;
        let (mut lo, mut hi) = ((q(a.x), q(a.y)), (q(b.x), q(b.y)));
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        let mut h = self.seed ^ 0x517c_c1b7_2722_0a95;
        for v in [lo.0, lo.1, hi.0, hi.1] {
            h ^= v as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
            h ^= h >> 29;
        }
        // Two uniform draws from the hash.
        let u1 = ((h >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
        let h2 = h.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (h >> 17);
        let u2 = (h2 >> 11) as f64 / (1u64 << 53) as f64;
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl PropagationModel for LogDistance {
    fn path_loss(&self, tx: Point, rx: Point, freq: Hertz) -> Db {
        let d0 = self.reference_distance.max(1e-3);
        let d = tx.distance(rx).max(d0);
        let l0 = link_budget::free_space_path_loss(Meters::new(d0), freq).db();
        let mut loss = l0 + 10.0 * self.exponent * (d / d0).log10();
        if self.sigma_db > 0.0 {
            loss += self.sigma_db * self.shadowing_std_normal(tx, rx);
        }
        Db::new(loss.max(0.0))
    }

    fn name(&self) -> &str {
        "log-distance"
    }
}

/// Decorator that adds extra loss in angular sectors around an origin —
/// the simulator's stand-in for the hills that limited the paper's
/// HG2415U measurements (Fig. 12, observation (ii)).
#[derive(Debug, Clone)]
pub struct SectorObstruction<M> {
    inner: M,
    origin: Point,
    /// `(start_angle, end_angle, extra_loss_db)` triples; angles radians
    /// in `[0, 2π)`, sector spans CCW from start to end.
    sectors: Vec<(f64, f64, f64)>,
}

impl<M: PropagationModel> SectorObstruction<M> {
    /// Wraps `inner`, adding `sectors` of extra loss as seen from
    /// `origin` (usually the sniffer site).
    pub fn new(inner: M, origin: Point, sectors: Vec<(f64, f64, f64)>) -> Self {
        SectorObstruction {
            inner,
            origin,
            sectors,
        }
    }

    /// Extra loss applying to a ray from the origin towards `p`.
    fn extra_loss_towards(&self, p: Point) -> f64 {
        let ang = (p - self.origin).angle().rem_euclid(std::f64::consts::TAU);
        let mut extra: f64 = 0.0;
        for &(s, e, loss) in &self.sectors {
            let inside = if s <= e {
                ang >= s && ang <= e
            } else {
                ang >= s || ang <= e
            };
            if inside {
                extra = extra.max(loss);
            }
        }
        extra
    }
}

impl<M: PropagationModel> PropagationModel for SectorObstruction<M> {
    fn path_loss(&self, tx: Point, rx: Point, freq: Hertz) -> Db {
        let base = self.inner.path_loss(tx, rx, freq);
        // The obstruction affects whichever endpoint is far from the
        // origin; use the endpoint that is not the origin itself.
        let far = if tx.distance(self.origin) > rx.distance(self.origin) {
            tx
        } else {
            rx
        };
        base + Db::new(self.extra_loss_towards(far))
    }

    fn name(&self) -> &str {
        "sector-obstructed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch6() -> Hertz {
        Hertz::from_mhz(2437.0)
    }

    #[test]
    fn free_space_matches_link_budget() {
        let m = FreeSpace;
        let l = m.path_loss(Point::ORIGIN, Point::new(100.0, 0.0), ch6());
        let expected = link_budget::free_space_path_loss(Meters::new(100.0), ch6());
        assert_eq!(l, expected);
        assert_eq!(m.name(), "free-space");
    }

    #[test]
    fn log_distance_reduces_to_free_space_with_exponent_two() {
        let m = LogDistance {
            exponent: 2.0,
            reference_distance: 1.0,
            sigma_db: 0.0,
            seed: 0,
        };
        for &d in &[1.0, 10.0, 250.0] {
            let l = m.path_loss(Point::ORIGIN, Point::new(d, 0.0), ch6());
            let fs = FreeSpace.path_loss(Point::ORIGIN, Point::new(d, 0.0), ch6());
            assert!((l.db() - fs.db()).abs() < 1e-9, "d={d}");
        }
    }

    #[test]
    fn higher_exponent_means_more_loss() {
        let mk = |n: f64| LogDistance {
            exponent: n,
            reference_distance: 1.0,
            sigma_db: 0.0,
            seed: 0,
        };
        let p = Point::new(300.0, 0.0);
        let l2 = mk(2.0).path_loss(Point::ORIGIN, p, ch6());
        let l3 = mk(3.0).path_loss(Point::ORIGIN, p, ch6());
        let l4 = mk(4.0).path_loss(Point::ORIGIN, p, ch6());
        assert!(l2 < l3 && l3 < l4);
    }

    #[test]
    fn shadowing_is_deterministic_and_symmetric() {
        let m = LogDistance::campus(7);
        let (a, b) = (Point::new(10.0, 20.0), Point::new(-50.0, 3.0));
        let l1 = m.path_loss(a, b, ch6());
        let l2 = m.path_loss(a, b, ch6());
        let l3 = m.path_loss(b, a, ch6());
        assert_eq!(l1, l2);
        assert_eq!(l1, l3, "shadowing must not depend on link direction");
    }

    #[test]
    fn shadowing_varies_between_links_and_seeds() {
        let m1 = LogDistance::campus(1);
        let m2 = LogDistance::campus(2);
        let a = Point::ORIGIN;
        let l_link1 = m1.path_loss(a, Point::new(100.0, 0.0), ch6());
        let l_link2 = m1.path_loss(a, Point::new(0.0, 100.0), ch6());
        assert!((l_link1.db() - l_link2.db()).abs() > 1e-6);
        let l_seed2 = m2.path_loss(a, Point::new(100.0, 0.0), ch6());
        assert!((l_link1.db() - l_seed2.db()).abs() > 1e-6);
    }

    #[test]
    fn shadowing_has_roughly_right_moments() {
        let m = LogDistance::campus(99);
        let base = LogDistance { sigma_db: 0.0, ..m };
        let n = 4000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for i in 0..n {
            let p = Point::new(100.0 + i as f64, 37.0);
            let dev = m.path_loss(Point::ORIGIN, p, ch6()).db()
                - base.path_loss(Point::ORIGIN, p, ch6()).db();
            sum += dev;
            sum_sq += dev * dev;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.5, "mean {mean}");
        assert!((var.sqrt() - 6.0).abs() < 0.5, "std {}", var.sqrt());
    }

    #[test]
    fn sector_obstruction_blocks_only_its_sector() {
        let m = SectorObstruction::new(
            FreeSpace,
            Point::ORIGIN,
            vec![(0.0, std::f64::consts::FRAC_PI_2, 30.0)],
        );
        // Inside the obstructed quadrant (+x,+y).
        let blocked = m.path_loss(Point::ORIGIN, Point::new(70.0, 70.0), ch6());
        // Outside.
        let clear = m.path_loss(Point::ORIGIN, Point::new(-70.0, -70.0), ch6());
        assert!((blocked.db() - clear.db() - 30.0).abs() < 1e-9);
        assert_eq!(m.name(), "sector-obstructed");
    }

    #[test]
    fn wrapping_sector() {
        // Sector from 7π/4 through 0 to π/4.
        let m = SectorObstruction::new(
            FreeSpace,
            Point::ORIGIN,
            vec![(
                7.0 * std::f64::consts::PI / 4.0,
                std::f64::consts::FRAC_PI_4,
                20.0,
            )],
        );
        let east = m.path_loss(Point::ORIGIN, Point::new(100.0, 0.0), ch6());
        let west = m.path_loss(Point::ORIGIN, Point::new(-100.0, 0.0), ch6());
        assert!((east.db() - west.db() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn models_are_object_safe() {
        let models: Vec<Box<dyn PropagationModel>> =
            vec![Box::new(FreeSpace), Box::new(LogDistance::campus(1))];
        for m in &models {
            let l = m.path_loss(Point::ORIGIN, Point::new(10.0, 0.0), ch6());
            assert!(l.db() > 0.0);
        }
    }
}
