//! Catalog of the exact components used in the paper's testbed
//! (Section IV-A), plus typical transmitter profiles.
//!
//! Datasheet values not stated in the paper (NIC noise figures, SNR
//! minimums) use the ranges the paper cites: "a common WNIC has a noise
//! figure around 4.0–6.0 dB \[20\] and the LNA in our experiment is
//! 1.5 dB \[21\]".

use crate::chain::{Antenna, Lna, Nic, Splitter};
use crate::link_budget::Transmitter;
use crate::units::{Dbi, Dbm};

/// HyperLink HG2415U 2.4 GHz 15 dBi omnidirectional antenna — the paper's
/// rooftop antenna.
pub const HYPERLINK_HG2415U: Antenna = Antenna {
    name: "HyperLink HG2415U",
    gain_dbi: 15.0,
};

/// Tri-band laptop clip-mount 4 dBi antenna (paper ref. \[25\]), used with
/// the SRC card in the feasibility experiment.
pub const TRI_BAND_CLIP_4DBI: Antenna = Antenna {
    name: "tri-band clip mount",
    gain_dbi: 4.0,
};

/// RF-Lambda narrow-band LNA: 45 dB gain, 1.5 dB noise figure (paper
/// ref. \[21\]).
pub const RF_LAMBDA_LNA: Lna = Lna {
    name: "RF-Lambda LNA",
    gain_db: 45.0,
    noise_figure_db: 1.5,
};

/// HyperLink 4-way signal splitter.
pub const HYPERLINK_SPLITTER_4WAY: Splitter = Splitter {
    name: "HyperLink 4-way splitter",
    ways: 4,
    excess_loss_db: 0.5,
};

/// Ubiquiti Super Range Cardbus SRC, 300 mW 802.11a/b/g — the paper's
/// sniffing card. High-sensitivity front end (NF at the low end of the
/// common range).
pub const UBIQUITI_SRC: Nic = Nic {
    name: "Ubiquiti SRC",
    noise_figure_db: 4.0,
    snr_min_db: 10.0,
    bandwidth_mhz: 22.0,
    tx_power_dbm: 24.77, // 300 mW
};

/// D-Link DWL-G650 PCMCIA card — the paper's low-end baseline in Fig. 12.
pub const DLINK_DWL_G650: Nic = Nic {
    name: "D-Link DWL-G650",
    noise_figure_db: 6.0,
    snr_min_db: 10.0,
    bandwidth_mhz: 22.0,
    tx_power_dbm: 15.0,
};

/// Extra attenuation (dB) representing the campus environment — fade
/// margin, foliage and building losses that the paper's free-space
/// Theorem 1 drops "for brevity" but that its measured radii include.
/// Calibrated so the paper's full LNA chain covers ≈ 1 km (Fig. 12).
pub const CAMPUS_ENVIRONMENT_MARGIN_DB: f64 = 21.0;

/// A typical WiFi client transmitter: 15 dBm conducted power into a 2 dBi
/// integrated antenna — the mobile devices the attacker is sniffing.
pub fn typical_mobile_tx() -> Transmitter {
    Transmitter::new(Dbm::new(15.0), Dbi::new(2.0))
}

/// A typical-mobile transmitter constant for doc examples and defaults.
///
/// Identical to [`typical_mobile_tx`]; provided as a `static` so it can
/// be borrowed directly.
pub static TYPICAL_MOBILE_TX: Transmitter = Transmitter {
    power: Dbm::new_const(15.0),
    antenna_gain: Dbi::new_const(2.0),
};

/// A typical access-point transmitter: 100 mW (20 dBm) into a 2 dBi
/// antenna. Used when simulating AP→mobile beacon/probe-response traffic
/// and when estimating AP maximum transmission distances.
pub static TYPICAL_AP_TX: Transmitter = Transmitter {
    power: Dbm::new_const(20.0),
    antenna_gain: Dbi::new_const(2.0),
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_values_match_paper() {
        assert_eq!(HYPERLINK_HG2415U.gain_dbi, 15.0);
        assert_eq!(RF_LAMBDA_LNA.gain_db, 45.0);
        assert_eq!(RF_LAMBDA_LNA.noise_figure_db, 1.5);
        assert_eq!(HYPERLINK_SPLITTER_4WAY.ways, 4);
        // 300 mW within rounding.
        let mw = Dbm::new(UBIQUITI_SRC.tx_power_dbm).milliwatts();
        assert!((mw - 300.0).abs() < 2.0);
    }

    #[test]
    fn transmitter_profiles() {
        assert_eq!(typical_mobile_tx(), TYPICAL_MOBILE_TX);
        assert!((TYPICAL_AP_TX.eirp().dbm() - 22.0).abs() < 1e-9);
        assert!(TYPICAL_AP_TX.power > TYPICAL_MOBILE_TX.power);
    }

    #[test]
    fn nic_noise_figures_in_cited_range() {
        for nic in [UBIQUITI_SRC, DLINK_DWL_G650] {
            assert!(
                (4.0..=6.0).contains(&nic.noise_figure_db),
                "{} NF {} outside the paper's 4-6 dB range",
                nic.name,
                nic.noise_figure_db
            );
        }
    }
}
