//! 802.11b/g data rates and their demodulation thresholds.
//!
//! Management frames — the only traffic the attack consumes — are
//! transmitted at the *basic rate* (1 Mbps DBPSS for b/g compatibility),
//! which needs the least SNR of any rate. That is the physical reason
//! the sniffing rig hears probe requests from a kilometer away while a
//! data session at 54 Mbps would die within a hundred meters: the same
//! chain's coverage radius differs by ~20 dB of required SNR across the
//! rate table.

use crate::units::Db;
use std::fmt;

/// An 802.11b (DSSS/CCK) or 802.11g (OFDM) data rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataRate {
    /// 1 Mbps DBPSK — the b/g basic rate used by management frames.
    B1,
    /// 2 Mbps DQPSK.
    B2,
    /// 5.5 Mbps CCK.
    B5_5,
    /// 11 Mbps CCK.
    B11,
    /// 6 Mbps BPSK 1/2.
    G6,
    /// 9 Mbps BPSK 3/4.
    G9,
    /// 12 Mbps QPSK 1/2.
    G12,
    /// 18 Mbps QPSK 3/4.
    G18,
    /// 24 Mbps 16-QAM 1/2.
    G24,
    /// 36 Mbps 16-QAM 3/4.
    G36,
    /// 48 Mbps 64-QAM 2/3.
    G48,
    /// 54 Mbps 64-QAM 3/4.
    G54,
}

impl DataRate {
    /// All rates, slowest first.
    pub const ALL: [DataRate; 12] = [
        DataRate::B1,
        DataRate::B2,
        DataRate::B5_5,
        DataRate::G6,
        DataRate::G9,
        DataRate::B11,
        DataRate::G12,
        DataRate::G18,
        DataRate::G24,
        DataRate::G36,
        DataRate::G48,
        DataRate::G54,
    ];

    /// The basic rate management frames use.
    pub const MANAGEMENT: DataRate = DataRate::B1;

    /// Nominal throughput, Mbps.
    pub fn mbps(self) -> f64 {
        match self {
            DataRate::B1 => 1.0,
            DataRate::B2 => 2.0,
            DataRate::B5_5 => 5.5,
            DataRate::B11 => 11.0,
            DataRate::G6 => 6.0,
            DataRate::G9 => 9.0,
            DataRate::G12 => 12.0,
            DataRate::G18 => 18.0,
            DataRate::G24 => 24.0,
            DataRate::G36 => 36.0,
            DataRate::G48 => 48.0,
            DataRate::G54 => 54.0,
        }
    }

    /// Minimum SNR for acceptable demodulation, dB (typical receiver
    /// implementation-loss-inclusive figures).
    pub fn snr_min(self) -> Db {
        let db = match self {
            DataRate::B1 => 4.0,
            DataRate::B2 => 6.0,
            DataRate::B5_5 => 8.0,
            DataRate::B11 => 10.0,
            DataRate::G6 => 6.0,
            DataRate::G9 => 7.8,
            DataRate::G12 => 9.0,
            DataRate::G18 => 10.8,
            DataRate::G24 => 17.0,
            DataRate::G36 => 18.9,
            DataRate::G48 => 24.0,
            DataRate::G54 => 24.6,
        };
        Db::new(db)
    }

    /// The fastest rate decodable at the given SNR, if any.
    pub fn fastest_at(snr: Db) -> Option<DataRate> {
        DataRate::ALL
            .iter()
            .copied()
            .filter(|r| r.snr_min().db() <= snr.db())
            .max_by(|a, b| a.mbps().total_cmp(&b.mbps()))
    }

    /// Soft decode model: probability of successfully decoding a frame
    /// at this rate given the SNR margin over [`snr_min`](Self::snr_min)
    /// — a logistic curve with ~1.5 dB transition width, matching the
    /// sharp waterfall region of real PHYs.
    pub fn decode_probability(self, snr: Db) -> f64 {
        let margin = snr.db() - self.snr_min().db();
        1.0 / (1.0 + (-margin / 0.75).exp())
    }
}

impl fmt::Display for DataRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} Mbps", self.mbps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_monotone_where_it_should_be() {
        // Within each PHY family, faster rates need more SNR.
        let b = [DataRate::B1, DataRate::B2, DataRate::B5_5, DataRate::B11];
        for w in b.windows(2) {
            assert!(w[0].snr_min() < w[1].snr_min(), "{:?} vs {:?}", w[0], w[1]);
            assert!(w[0].mbps() < w[1].mbps());
        }
        let g = [
            DataRate::G6,
            DataRate::G9,
            DataRate::G12,
            DataRate::G18,
            DataRate::G24,
            DataRate::G36,
            DataRate::G48,
            DataRate::G54,
        ];
        for w in g.windows(2) {
            assert!(w[0].snr_min() < w[1].snr_min());
        }
    }

    #[test]
    fn management_rate_is_the_most_robust() {
        for r in DataRate::ALL {
            assert!(
                DataRate::MANAGEMENT.snr_min() <= r.snr_min(),
                "{r} more robust than the basic rate"
            );
        }
        // ~20 dB spread across the table.
        let spread = DataRate::G54.snr_min().db() - DataRate::B1.snr_min().db();
        assert!((18.0..25.0).contains(&spread), "spread {spread}");
    }

    #[test]
    fn fastest_at_selects_correctly() {
        assert_eq!(DataRate::fastest_at(Db::new(30.0)), Some(DataRate::G54));
        // At 10 dB both B11 (10 dB) and G12 (9 dB) decode; G12 is faster.
        assert_eq!(DataRate::fastest_at(Db::new(10.0)), Some(DataRate::G12));
        assert_eq!(DataRate::fastest_at(Db::new(4.5)), Some(DataRate::B1));
        assert_eq!(DataRate::fastest_at(Db::new(0.0)), None);
    }

    #[test]
    fn decode_probability_is_a_waterfall() {
        let r = DataRate::B1;
        let at = |snr: f64| r.decode_probability(Db::new(snr));
        assert!(at(r.snr_min().db() - 5.0) < 0.01);
        assert!((at(r.snr_min().db()) - 0.5).abs() < 1e-9);
        assert!(at(r.snr_min().db() + 5.0) > 0.99);
        // Monotone.
        let mut last = 0.0;
        for k in 0..40 {
            let p = at(-5.0 + k as f64);
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn management_range_advantage() {
        // 20 dB less required SNR = 10x the free-space range: quantify
        // why probe traffic is sniffable from ~1 km while data is not.
        let delta = DataRate::G54.snr_min().db() - DataRate::B1.snr_min().db();
        let range_ratio = 10f64.powf(delta / 20.0);
        assert!(range_ratio > 8.0, "range ratio {range_ratio}");
    }

    #[test]
    fn display() {
        assert_eq!(DataRate::B5_5.to_string(), "5.5 Mbps");
        assert_eq!(DataRate::G54.to_string(), "54 Mbps");
    }
}
