//! Typed radio units.
//!
//! Link-budget bugs are overwhelmingly unit bugs (adding two absolute
//! powers, subtracting a gain from a frequency, …). These newtypes make
//! the meaningful operations — and only those — type-check:
//!
//! * `Dbm + Db = Dbm` (apply gain/loss to an absolute power),
//! * `Dbm - Dbm = Db` (power ratio),
//! * `Db ± Db = Db` (compose gains),
//! * `Dbi` converts to `Db` explicitly (antenna gain enters the budget).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

/// A relative power ratio in decibels (gain when positive, loss when
/// negative).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Db(f64);

/// An absolute power level in dB-milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Dbm(f64);

/// An antenna gain relative to an isotropic radiator.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Dbi(f64);

/// A frequency in hertz.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Hertz(f64);

/// A distance in meters.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Meters(f64);

/// Speed of light in vacuum, m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

impl Db {
    /// Wraps a decibel value.
    ///
    /// # Panics
    ///
    /// Panics on NaN — a NaN decibel value always indicates an upstream
    /// arithmetic bug and would silently poison a whole link budget.
    pub fn new(db: f64) -> Self {
        assert!(!db.is_nan(), "dB value must not be NaN");
        Db(db)
    }

    /// Zero gain/loss.
    pub const ZERO: Db = Db(0.0);

    /// The raw decibel value.
    pub fn db(self) -> f64 {
        self.0
    }

    /// Converts a linear power ratio to decibels.
    ///
    /// # Panics
    ///
    /// Panics when `ratio` is not strictly positive.
    pub fn from_ratio(ratio: f64) -> Self {
        assert!(ratio > 0.0, "power ratio must be positive, got {ratio}");
        Db(10.0 * ratio.log10())
    }

    /// Converts to a linear power ratio.
    pub fn ratio(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }
}

impl Dbm {
    /// Wraps an absolute power in dBm.
    ///
    /// # Panics
    ///
    /// Panics on NaN.
    pub fn new(dbm: f64) -> Self {
        assert!(!dbm.is_nan(), "dBm value must not be NaN");
        Dbm(dbm)
    }

    /// Const constructor for catalog constants. Unlike [`Dbm::new`] this
    /// cannot reject NaN at compile time; only use with literals.
    pub const fn new_const(dbm: f64) -> Self {
        Dbm(dbm)
    }

    /// The raw dBm value.
    pub fn dbm(self) -> f64 {
        self.0
    }

    /// Converts a power in milliwatts.
    ///
    /// # Panics
    ///
    /// Panics when `mw` is not strictly positive.
    pub fn from_milliwatts(mw: f64) -> Self {
        assert!(mw > 0.0, "power must be positive, got {mw} mW");
        Dbm(10.0 * mw.log10())
    }

    /// The power in milliwatts.
    pub fn milliwatts(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }
}

impl Dbi {
    /// Wraps an antenna gain in dBi.
    ///
    /// # Panics
    ///
    /// Panics on NaN.
    pub fn new(dbi: f64) -> Self {
        assert!(!dbi.is_nan(), "dBi value must not be NaN");
        Dbi(dbi)
    }

    /// Const constructor for catalog constants. Unlike [`Dbi::new`] this
    /// cannot reject NaN at compile time; only use with literals.
    pub const fn new_const(dbi: f64) -> Self {
        Dbi(dbi)
    }

    /// The raw dBi value.
    pub fn dbi(self) -> f64 {
        self.0
    }

    /// The gain as a generic decibel ratio for budget arithmetic.
    pub fn as_db(self) -> Db {
        Db(self.0)
    }
}

impl Hertz {
    /// Wraps a frequency in Hz.
    ///
    /// # Panics
    ///
    /// Panics unless the frequency is strictly positive and finite.
    pub fn new(hz: f64) -> Self {
        assert!(
            hz.is_finite() && hz > 0.0,
            "frequency must be positive and finite, got {hz}"
        );
        Hertz(hz)
    }

    /// Builds from megahertz.
    pub fn from_mhz(mhz: f64) -> Self {
        Hertz::new(mhz * 1e6)
    }

    /// Builds from gigahertz.
    pub fn from_ghz(ghz: f64) -> Self {
        Hertz::new(ghz * 1e9)
    }

    /// The raw frequency in Hz.
    pub fn hz(self) -> f64 {
        self.0
    }

    /// The frequency in MHz.
    pub fn mhz(self) -> f64 {
        self.0 / 1e6
    }

    /// Free-space wavelength `λ = c / f`, meters.
    pub fn wavelength(self) -> Meters {
        Meters(SPEED_OF_LIGHT / self.0)
    }
}

impl Meters {
    /// Wraps a distance in meters.
    ///
    /// # Panics
    ///
    /// Panics on NaN or negative distances.
    pub fn new(m: f64) -> Self {
        assert!(!m.is_nan() && m >= 0.0, "distance must be >= 0, got {m}");
        Meters(m)
    }

    /// The raw distance in meters.
    pub fn meters(self) -> f64 {
        self.0
    }

    /// The distance in kilometers.
    pub fn km(self) -> f64 {
        self.0 / 1000.0
    }
}

impl Add for Db {
    type Output = Db;
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}

impl AddAssign for Db {
    fn add_assign(&mut self, rhs: Db) {
        self.0 += rhs.0;
    }
}

impl Sub for Db {
    type Output = Db;
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl SubAssign for Db {
    fn sub_assign(&mut self, rhs: Db) {
        self.0 -= rhs.0;
    }
}

impl Neg for Db {
    type Output = Db;
    fn neg(self) -> Db {
        Db(-self.0)
    }
}

impl Sum for Db {
    fn sum<I: Iterator<Item = Db>>(iter: I) -> Db {
        Db(iter.map(|d| d.0).sum())
    }
}

impl Add<Db> for Dbm {
    type Output = Dbm;
    fn add(self, rhs: Db) -> Dbm {
        Dbm(self.0 + rhs.0)
    }
}

impl AddAssign<Db> for Dbm {
    fn add_assign(&mut self, rhs: Db) {
        self.0 += rhs.0;
    }
}

impl Sub<Db> for Dbm {
    type Output = Dbm;
    fn sub(self, rhs: Db) -> Dbm {
        Dbm(self.0 - rhs.0)
    }
}

impl Sub for Dbm {
    type Output = Db;
    fn sub(self, rhs: Dbm) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dB", self.0)
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dBm", self.0)
    }
}

impl fmt::Display for Dbi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dBi", self.0)
    }
}

impl fmt::Display for Hertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} MHz", self.mhz())
    }
}

impl fmt::Display for Meters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} m", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_milliwatt_round_trip() {
        for &mw in &[0.001, 1.0, 100.0, 300.0] {
            let p = Dbm::from_milliwatts(mw);
            assert!((p.milliwatts() - mw).abs() / mw < 1e-12);
        }
        // 300 mW card (Ubiquiti SRC) is ~24.77 dBm.
        assert!((Dbm::from_milliwatts(300.0).dbm() - 24.771).abs() < 1e-3);
    }

    #[test]
    fn db_ratio_round_trip() {
        assert!((Db::from_ratio(2.0).db() - 3.0103).abs() < 1e-4);
        assert!((Db::new(10.0).ratio() - 10.0).abs() < 1e-12);
        assert!((Db::from_ratio(1.0).db()).abs() < 1e-12);
    }

    #[test]
    fn unit_arithmetic() {
        let p = Dbm::new(-40.0);
        let g = Db::new(15.0);
        assert_eq!((p + g).dbm(), -25.0);
        assert_eq!((p - g).dbm(), -55.0);
        assert_eq!((Dbm::new(-30.0) - Dbm::new(-60.0)).db(), 30.0);
        assert_eq!((Db::new(2.0) + Db::new(3.0)).db(), 5.0);
        assert_eq!((Db::new(2.0) - Db::new(3.0)).db(), -1.0);
        assert_eq!((-Db::new(2.0)).db(), -2.0);
        let total: Db = [Db::new(1.0), Db::new(2.0), Db::new(3.0)].into_iter().sum();
        assert_eq!(total.db(), 6.0);
    }

    #[test]
    fn dbi_enters_budget_as_db() {
        let antenna = Dbi::new(15.0);
        let p = Dbm::new(-90.0) + antenna.as_db();
        assert_eq!(p.dbm(), -75.0);
    }

    #[test]
    fn wavelength_at_wifi_frequencies() {
        // 2.437 GHz (channel 6) -> λ ≈ 12.3 cm.
        let l = Hertz::from_ghz(2.437).wavelength();
        assert!((l.meters() - 0.12302).abs() < 1e-4);
        assert!((Hertz::from_mhz(2437.0).hz() - 2.437e9).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_db_panics() {
        let _ = Db::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_frequency_panics() {
        let _ = Hertz::new(0.0);
    }

    #[test]
    #[should_panic(expected = "must be >= 0")]
    fn negative_distance_panics() {
        let _ = Meters::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "power must be positive")]
    fn zero_milliwatts_panics() {
        let _ = Dbm::from_milliwatts(0.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Db::new(1.5).to_string(), "1.50 dB");
        assert_eq!(Dbm::new(-92.0).to_string(), "-92.00 dBm");
        assert_eq!(Dbi::new(15.0).to_string(), "15.00 dBi");
        assert_eq!(Meters::new(1000.0).to_string(), "1000.0 m");
        assert!(Hertz::from_mhz(2412.0).to_string().contains("2412"));
    }

    #[test]
    fn assign_ops() {
        let mut g = Db::new(1.0);
        g += Db::new(2.0);
        g -= Db::new(0.5);
        assert_eq!(g.db(), 2.5);
        let mut p = Dbm::new(0.0);
        p += Db::new(3.0);
        assert_eq!(p.dbm(), 3.0);
    }

    #[test]
    fn km_conversion() {
        assert_eq!(Meters::new(1500.0).km(), 1.5);
    }
}
