//! Free-space link budget and the Theorem-1 coverage radius.
//!
//! Implements the paper's Appendix A equations:
//!
//! * eq. (9): free-space path loss `L_fs = 20·log₁₀(4πD/λ)`,
//! * eq. (10): received power `P_rx = P_tx + G_tx + G_rx − L_fs`,
//! * eq. (11)/(16): sensitivity
//!   `P_rx,min = −174 + NF + SNR_min + 10·log₁₀(B)`,
//! * Theorem 1: the maximum distance `D` at which `P_rx > P_rx,min`.
//!
//! An optional *environment margin* models the extra attenuation of a real
//! campus (fade margin, foliage, walls) which the paper explicitly drops
//! from the theory ("fade margin is ignored … for brevity") but which is
//! present in its measured 1 km radius.

use crate::units::{Db, Dbi, Dbm, Hertz, Meters};

/// Thermal-noise power density at the NIC input impedance, dBm/Hz (the
/// paper's `−174`).
pub const NOISE_FLOOR_DBM_PER_HZ: f64 = -174.0;

/// A transmitter description: output power and antenna gain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transmitter {
    /// Conducted transmit power.
    pub power: Dbm,
    /// Transmit antenna gain.
    pub antenna_gain: Dbi,
}

impl Transmitter {
    /// Creates a transmitter.
    pub fn new(power: Dbm, antenna_gain: Dbi) -> Self {
        Transmitter {
            power,
            antenna_gain,
        }
    }

    /// Effective isotropic radiated power.
    pub fn eirp(&self) -> Dbm {
        self.power + self.antenna_gain.as_db()
    }
}

/// Free-space path loss at distance `d` and frequency `freq`
/// (paper eq. 9).
///
/// Distances below one wavelength are clamped to one wavelength: the far
/// field formula is meaningless closer in, and clamping keeps the loss
/// non-negative.
pub fn free_space_path_loss(d: Meters, freq: Hertz) -> Db {
    let lambda = freq.wavelength().meters();
    let d = d.meters().max(lambda);
    Db::new(20.0 * (4.0 * std::f64::consts::PI * d / lambda).log10())
}

/// Received power over a free-space link (paper eq. 10), with `extra_loss`
/// standing in for fade margin / obstructions.
pub fn received_power(
    tx: &Transmitter,
    rx_antenna_gain: Dbi,
    d: Meters,
    freq: Hertz,
    extra_loss: Db,
) -> Dbm {
    tx.eirp() + rx_antenna_gain.as_db() - free_space_path_loss(d, freq) - extra_loss
}

/// Receiver sensitivity (paper eq. 11/16): the minimum input power that
/// the baseband can demodulate, given the chain noise figure `nf`, the
/// demodulator's `snr_min`, and the receiver bandwidth.
pub fn sensitivity(nf: Db, snr_min: Db, bandwidth: Hertz) -> Dbm {
    Dbm::new(NOISE_FLOOR_DBM_PER_HZ + nf.db() + snr_min.db() + 10.0 * bandwidth.hz().log10())
}

/// Theorem 1: the maximum free-space distance at which the link closes.
///
/// Solves `P_rx(D) = P_rx,min` for `D`:
/// `20·log₁₀(D) = G_rx − NF − SNR_min + C − extra_loss` with
/// `C = P_tx + G_tx − 20·log₁₀(4π/λ) − 10·log₁₀(B) + 174`.
///
/// # Example
///
/// ```
/// use marauder_rf::link_budget::{coverage_radius, Transmitter};
/// use marauder_rf::units::{Db, Dbi, Dbm, Hertz};
///
/// let tx = Transmitter::new(Dbm::new(15.0), Dbi::new(2.0));
/// let d = coverage_radius(
///     &tx,
///     Dbi::new(15.0),          // HyperLink antenna
///     Db::new(1.5),            // LNA noise figure
///     Db::new(10.0),           // SNR_min
///     Hertz::from_mhz(22.0),   // 802.11b channel bandwidth
///     Hertz::from_mhz(2437.0), // channel 6
///     Db::new(25.0),           // campus environment margin
/// );
/// assert!(d.meters() > 500.0 && d.meters() < 5000.0);
/// ```
#[allow(clippy::too_many_arguments)]
pub fn coverage_radius(
    tx: &Transmitter,
    rx_antenna_gain: Dbi,
    chain_nf: Db,
    snr_min: Db,
    bandwidth: Hertz,
    freq: Hertz,
    extra_loss: Db,
) -> Meters {
    let lambda = freq.wavelength().meters();
    let c = tx.power.dbm() + tx.antenna_gain.dbi()
        - 20.0 * (4.0 * std::f64::consts::PI / lambda).log10()
        - 10.0 * bandwidth.hz().log10()
        - NOISE_FLOOR_DBM_PER_HZ;
    let rhs = rx_antenna_gain.dbi() - chain_nf.db() - snr_min.db() + c - extra_loss.db();
    Meters::new(10f64.powf(rhs / 20.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch6() -> Hertz {
        Hertz::from_mhz(2437.0)
    }

    fn bw() -> Hertz {
        Hertz::from_mhz(22.0)
    }

    #[test]
    fn path_loss_at_reference_distances() {
        // At 2.4 GHz, FSPL at 100 m ≈ 80 dB.
        let l = free_space_path_loss(Meters::new(100.0), Hertz::from_ghz(2.4));
        assert!((l.db() - 80.0).abs() < 0.2, "loss {l}");
        // +6 dB per distance doubling.
        let l2 = free_space_path_loss(Meters::new(200.0), Hertz::from_ghz(2.4));
        assert!((l2.db() - l.db() - 6.0206).abs() < 1e-3);
    }

    #[test]
    fn path_loss_clamped_in_near_field() {
        let l = free_space_path_loss(Meters::new(0.0), ch6());
        // At one wavelength, loss = 20 log10(4π) ≈ 22 dB.
        assert!((l.db() - 21.98).abs() < 0.1);
    }

    #[test]
    fn sensitivity_matches_typical_cards() {
        // NF 5 dB, SNR_min 10 dB, B = 22 MHz: −174+5+10+73.4 ≈ −85.6 dBm,
        // in the right range for 802.11b cards (−80..−95 dBm).
        let s = sensitivity(Db::new(5.0), Db::new(10.0), bw());
        assert!((s.dbm() + 85.6).abs() < 0.2, "sensitivity {s}");
    }

    #[test]
    fn received_power_crosses_sensitivity_at_radius() {
        let tx = Transmitter::new(Dbm::new(15.0), Dbi::new(2.0));
        let (g, nf, snr, margin) = (Dbi::new(15.0), Db::new(1.5), Db::new(10.0), Db::new(25.0));
        let d = coverage_radius(&tx, g, nf, snr, bw(), ch6(), margin);
        let s = sensitivity(nf, snr, bw());
        // Just inside: receivable; just outside: not.
        let p_in = received_power(&tx, g, Meters::new(d.meters() * 0.99), ch6(), margin);
        let p_out = received_power(&tx, g, Meters::new(d.meters() * 1.01), ch6(), margin);
        assert!(p_in > s, "{p_in} vs {s}");
        assert!(p_out < s, "{p_out} vs {s}");
    }

    #[test]
    fn radius_grows_with_antenna_gain() {
        let tx = Transmitter::new(Dbm::new(15.0), Dbi::new(2.0));
        let r = |g: f64| {
            coverage_radius(
                &tx,
                Dbi::new(g),
                Db::new(5.0),
                Db::new(10.0),
                bw(),
                ch6(),
                Db::new(25.0),
            )
            .meters()
        };
        assert!(r(15.0) > r(4.0));
        assert!(r(4.0) > r(0.0));
        // +20 dB of gain = 10x radius in free space.
        assert!((r(20.0) / r(0.0) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn lna_improvement_matches_paper() {
        // Paper Section III-A: replacing a 4–6 dB NF NIC with a 1.5 dB NF
        // LNA buys 2.5–4.5 dB of SNR, i.e. a radius factor of
        // 10^(2.5/20)..10^(4.5/20) ≈ 1.33..1.68.
        let tx = Transmitter::new(Dbm::new(15.0), Dbi::new(2.0));
        let r = |nf: f64| {
            coverage_radius(
                &tx,
                Dbi::new(15.0),
                Db::new(nf),
                Db::new(10.0),
                bw(),
                ch6(),
                Db::new(25.0),
            )
            .meters()
        };
        let factor = r(1.5) / r(5.0);
        assert!(
            (factor - 10f64.powf(3.5 / 20.0)).abs() < 1e-9,
            "factor {factor}"
        );
    }

    #[test]
    fn eirp_sums_power_and_gain() {
        let tx = Transmitter::new(Dbm::from_milliwatts(100.0), Dbi::new(2.0));
        assert!((tx.eirp().dbm() - 22.0).abs() < 1e-9);
    }

    #[test]
    fn environment_margin_shrinks_radius() {
        let tx = Transmitter::new(Dbm::new(15.0), Dbi::new(2.0));
        let r = |m: f64| {
            coverage_radius(
                &tx,
                Dbi::new(15.0),
                Db::new(1.5),
                Db::new(10.0),
                bw(),
                ch6(),
                Db::new(m),
            )
            .meters()
        };
        assert!(r(0.0) > r(15.0));
        assert!(r(15.0) > r(30.0));
        // 20 dB margin = 10x radius reduction.
        assert!((r(0.0) / r(20.0) - 10.0).abs() < 1e-6);
    }
}
