//! Cross-validation of the simplex solver against brute-force vertex
//! enumeration.
//!
//! For a bounded feasible LP, an optimum lies at a vertex of the
//! feasible polytope — i.e. at an intersection of `n` constraint
//! hyperplanes (including the axes). For small `n` we can enumerate all
//! candidate vertices, keep the feasible ones, and take the best: an
//! independent oracle for the simplex implementation.

use marauder_lp::{Outcome, Problem, Relation};

/// A dense `≤` system: rows of `(coeffs, rhs)` plus implicit `x ≥ 0`
/// and per-variable caps.
struct DenseLp {
    objective: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>,
    caps: Vec<f64>,
}

impl DenseLp {
    fn to_problem(&self) -> Problem {
        let mut p = Problem::maximize(&self.objective);
        for (a, b) in &self.rows {
            let coeffs: Vec<(usize, f64)> = a.iter().copied().enumerate().collect();
            p.add_constraint(&coeffs, Relation::Le, *b);
        }
        for (i, &c) in self.caps.iter().enumerate() {
            p.add_upper_bound(i, c);
        }
        p
    }

    /// All constraint hyperplanes as `a·x = b` rows (constraints, caps,
    /// axes).
    fn hyperplanes(&self) -> Vec<(Vec<f64>, f64)> {
        let n = self.objective.len();
        let mut out: Vec<(Vec<f64>, f64)> = self.rows.clone();
        for i in 0..n {
            let mut axis = vec![0.0; n];
            axis[i] = 1.0;
            out.push((axis.clone(), self.caps[i])); // x_i = cap
            out.push((axis, 0.0)); // x_i = 0
        }
        out
    }

    fn feasible(&self, x: &[f64]) -> bool {
        let tol = 1e-7;
        for (a, b) in &self.rows {
            let lhs: f64 = a.iter().zip(x).map(|(ai, xi)| ai * xi).sum();
            if lhs > b + tol {
                return false;
            }
        }
        x.iter()
            .zip(&self.caps)
            .all(|(xi, c)| *xi >= -tol && *xi <= c + tol)
    }

    /// Brute-force optimum over all vertices (n = 2 or 3 only).
    fn brute_force_optimum(&self) -> Option<f64> {
        let n = self.objective.len();
        assert!(n == 2 || n == 3, "vertex enumeration only for tiny n");
        let planes = self.hyperplanes();
        let mut best: Option<f64> = None;
        let idx: Vec<usize> = (0..planes.len()).collect();
        let mut consider = |x: &[f64]| {
            if self.feasible(x) {
                let v: f64 = self.objective.iter().zip(x).map(|(c, xi)| c * xi).sum();
                best = Some(best.map_or(v, |b: f64| b.max(v)));
            }
        };
        if n == 2 {
            for i in &idx {
                for j in &idx {
                    if i >= j {
                        continue;
                    }
                    if let Some(x) = solve2(&planes[*i], &planes[*j]) {
                        consider(&x);
                    }
                }
            }
        } else {
            for i in &idx {
                for j in &idx {
                    for k in &idx {
                        if !(i < j && j < k) {
                            continue;
                        }
                        if let Some(x) = solve3(&planes[*i], &planes[*j], &planes[*k]) {
                            consider(&x);
                        }
                    }
                }
            }
        }
        best
    }
}

fn solve2(a: &(Vec<f64>, f64), b: &(Vec<f64>, f64)) -> Option<[f64; 2]> {
    let det = a.0[0] * b.0[1] - a.0[1] * b.0[0];
    if det.abs() < 1e-10 {
        return None;
    }
    Some([
        (a.1 * b.0[1] - a.0[1] * b.1) / det,
        (a.0[0] * b.1 - a.1 * b.0[0]) / det,
    ])
}

fn solve3(a: &(Vec<f64>, f64), b: &(Vec<f64>, f64), c: &(Vec<f64>, f64)) -> Option<[f64; 3]> {
    // Cramer's rule on the 3x3 system.
    let m = [&a.0, &b.0, &c.0];
    let rhs = [a.1, b.1, c.1];
    let det3 = |m: [[f64; 3]; 3]| {
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    };
    let base = [
        [m[0][0], m[0][1], m[0][2]],
        [m[1][0], m[1][1], m[1][2]],
        [m[2][0], m[2][1], m[2][2]],
    ];
    let d = det3(base);
    if d.abs() < 1e-10 {
        return None;
    }
    let mut x = [0.0; 3];
    for (col, xi) in x.iter_mut().enumerate() {
        let mut mm = base;
        for row in 0..3 {
            mm[row][col] = rhs[row];
        }
        *xi = det3(mm) / d;
    }
    Some(x)
}

/// Deterministic pseudo-random LP generator.
fn random_lp(seed: u64, n: usize) -> DenseLp {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let objective: Vec<f64> = (0..n).map(|_| next() * 10.0 - 3.0).collect();
    let caps: Vec<f64> = (0..n).map(|_| 1.0 + next() * 9.0).collect();
    let rows: Vec<(Vec<f64>, f64)> = (0..(2 + (seed % 4) as usize))
        .map(|_| {
            let a: Vec<f64> = (0..n).map(|_| next() * 4.0 - 1.0).collect();
            // rhs chosen so the origin is feasible (b >= 0).
            let b = next() * 8.0;
            (a, b)
        })
        .collect();
    DenseLp {
        objective,
        rows,
        caps,
    }
}

/// Runs one seed through the sparse solver, the dense reference, and
/// the vertex oracle; all three must land on the same optimum (and
/// sparse must match dense bit for bit).
fn check_seed(seed: u64, lp: &DenseLp) {
    let brute = lp.brute_force_optimum().expect("origin is feasible");
    let sparse = lp.to_problem().solve();
    let dense = marauder_lp::dense::solve(&lp.to_problem());
    match (&sparse, &dense) {
        (Outcome::Optimal(sol), Outcome::Optimal(dsol)) => {
            assert!(
                (sol.objective - brute).abs() < 1e-5 * (1.0 + brute.abs()),
                "seed {seed}: simplex {} vs brute force {brute}",
                sol.objective
            );
            assert!(
                (dsol.objective - brute).abs() < 1e-5 * (1.0 + brute.abs()),
                "seed {seed}: dense reference {} vs brute force {brute}",
                dsol.objective
            );
            assert_eq!(
                (sol.objective + 0.0).to_bits(),
                (dsol.objective + 0.0).to_bits(),
                "seed {seed}: sparse and dense objective bits diverged"
            );
            for (i, (sv, dv)) in sol.values.iter().zip(&dsol.values).enumerate() {
                assert_eq!(
                    (sv + 0.0).to_bits(),
                    (dv + 0.0).to_bits(),
                    "seed {seed}: value {i} diverged: {sv} vs {dv}"
                );
            }
        }
        other => panic!("seed {seed}: expected optimal from both, got {other:?}"),
    }
}

#[test]
fn simplex_matches_vertex_enumeration_2d() {
    for seed in 0..60u64 {
        check_seed(seed, &random_lp(seed, 2));
    }
}

#[test]
fn simplex_matches_vertex_enumeration_3d() {
    for seed in 0..40u64 {
        let s = seed.wrapping_add(1000);
        check_seed(s, &random_lp(s, 3));
    }
}
