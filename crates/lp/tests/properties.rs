//! Property-based tests for the simplex solver.
//!
//! Strategy: generate LPs with a known feasible point, then check that
//! the solver (a) reports feasibility, (b) returns a feasible solution,
//! and (c) returns an objective at least as good as the known point.
//!
//! The differential properties at the bottom pin the sparse solver
//! against the retained dense reference ([`marauder_lp::dense`]):
//! bit-for-bit on the cold path (status, objective, values — modulo
//! zero signs, which neither path defines), and optimum-equivalent on
//! warm-started solves (which may legitimately stop at a different
//! vertex of the same optimal face).

use marauder_lp::{dense, solve_with_basis, BasisHint, Outcome, Problem, Relation, WarmStart};
use proptest::prelude::*;

/// A generated LP whose constraints are all of the form `aᵀx ≤ b` with
/// `b = aᵀx₀ + slack` for a known point `x₀ ≥ 0`, guaranteeing
/// feasibility, plus per-variable caps that guarantee boundedness.
#[derive(Debug, Clone)]
struct FeasibleLp {
    objective: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>,
    caps: Vec<f64>,
    x0: Vec<f64>,
}

fn arb_feasible_lp() -> impl Strategy<Value = FeasibleLp> {
    (2usize..6).prop_flat_map(|n| {
        let objective = prop::collection::vec(-5.0..5.0f64, n);
        let x0 = prop::collection::vec(0.0..3.0f64, n);
        let rows =
            prop::collection::vec((prop::collection::vec(-2.0..2.0f64, n), 0.01..4.0f64), 1..8);
        let caps = prop::collection::vec(0.5..10.0f64, n);
        (objective, x0, rows, caps).prop_map(|(objective, x0, raw_rows, caps)| {
            // Clamp x0 under the caps so it stays feasible.
            let x0: Vec<f64> = x0.iter().zip(&caps).map(|(v, c)| v.min(*c)).collect();
            let rows = raw_rows
                .into_iter()
                .map(|(a, slack)| {
                    let b: f64 = a.iter().zip(&x0).map(|(ai, xi)| ai * xi).sum::<f64>() + slack;
                    (a, b)
                })
                .collect();
            FeasibleLp {
                objective,
                rows,
                caps,
                x0,
            }
        })
    })
}

fn build(lp: &FeasibleLp) -> Problem {
    let mut p = Problem::maximize(&lp.objective);
    for (a, b) in &lp.rows {
        let coeffs: Vec<(usize, f64)> = a.iter().copied().enumerate().collect();
        p.add_constraint(&coeffs, Relation::Le, *b);
    }
    for (i, &cap) in lp.caps.iter().enumerate() {
        p.add_upper_bound(i, cap);
    }
    p
}

/// A generated LP with arbitrary relations — feasibility NOT
/// guaranteed (infeasible and unbounded programs are the point).
#[derive(Debug, Clone)]
struct MixedLp {
    objective: Vec<f64>,
    rows: Vec<(Vec<f64>, u8, f64)>,
}

fn arb_mixed_lp() -> impl Strategy<Value = MixedLp> {
    (2usize..5).prop_flat_map(|n| {
        let objective = prop::collection::vec(-5.0..5.0f64, n);
        let rows = prop::collection::vec(
            (prop::collection::vec(-3.0..3.0f64, n), 0u8..3, -6.0..6.0f64),
            1..7,
        );
        (objective, rows).prop_map(|(objective, rows)| MixedLp { objective, rows })
    })
}

fn build_mixed(lp: &MixedLp) -> Problem {
    let mut p = Problem::maximize(&lp.objective);
    for (a, rel, b) in &lp.rows {
        let coeffs: Vec<(usize, f64)> = a.iter().copied().enumerate().collect();
        let relation = match rel {
            0 => Relation::Le,
            1 => Relation::Ge,
            _ => Relation::Eq,
        };
        p.add_constraint(&coeffs, relation, *b);
    }
    p
}

/// Asserts two outcomes are identical bit for bit, treating `-0.0` and
/// `+0.0` as the same value (`x + 0.0` canonicalizes the zero sign,
/// which neither solver pins down).
fn assert_bit_identical(sparse: &Outcome, dense: &Outcome) -> Result<(), TestCaseError> {
    match (sparse, dense) {
        (Outcome::Optimal(s), Outcome::Optimal(d)) => {
            prop_assert_eq!(
                (s.objective + 0.0).to_bits(),
                (d.objective + 0.0).to_bits(),
                "objective bits diverged: {} vs {}",
                s.objective,
                d.objective
            );
            prop_assert_eq!(s.values.len(), d.values.len());
            for (i, (sv, dv)) in s.values.iter().zip(&d.values).enumerate() {
                prop_assert_eq!(
                    (sv + 0.0).to_bits(),
                    (dv + 0.0).to_bits(),
                    "value {} diverged: {} vs {}",
                    i,
                    sv,
                    dv
                );
            }
            Ok(())
        }
        (a, b) => {
            prop_assert_eq!(a, b, "outcome kind diverged");
            Ok(())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solver_finds_feasible_optimum(lp in arb_feasible_lp()) {
        let p = build(&lp);
        let outcome = p.solve();
        let sol = match outcome {
            Outcome::Optimal(s) => s,
            other => return Err(TestCaseError::fail(format!("expected optimal, got {other:?}"))),
        };
        // (b) solution is feasible.
        for (a, b) in &lp.rows {
            let lhs: f64 = a.iter().zip(&sol.values).map(|(ai, xi)| ai * xi).sum();
            prop_assert!(lhs <= b + 1e-6, "violated: {lhs} > {b}");
        }
        for (i, &cap) in lp.caps.iter().enumerate() {
            prop_assert!(sol.values[i] <= cap + 1e-6);
            prop_assert!(sol.values[i] >= -1e-9);
        }
        // (c) at least as good as the known feasible point.
        let x0_obj: f64 = lp.objective.iter().zip(&lp.x0).map(|(c, x)| c * x).sum();
        prop_assert!(sol.objective >= x0_obj - 1e-6,
            "optimum {} worse than feasible point {}", sol.objective, x0_obj);
        // Objective is consistent with values.
        let recomputed: f64 = lp.objective.iter().zip(&sol.values).map(|(c, x)| c * x).sum();
        prop_assert!((recomputed - sol.objective).abs() < 1e-6);
    }

    #[test]
    fn min_and_max_bracket_each_other(lp in arb_feasible_lp()) {
        let pmax = build(&lp);
        let mut pmin = Problem::minimize(&lp.objective);
        for (a, b) in &lp.rows {
            let coeffs: Vec<(usize, f64)> = a.iter().copied().enumerate().collect();
            pmin.add_constraint(&coeffs, Relation::Le, *b);
        }
        for (i, &cap) in lp.caps.iter().enumerate() {
            pmin.add_upper_bound(i, cap);
        }
        let smax = pmax.solve().into_optimal().expect("bounded");
        let smin = pmin.solve().into_optimal().expect("bounded below: x >= 0, caps");
        prop_assert!(smin.objective <= smax.objective + 1e-6);
    }

    #[test]
    fn sparse_cold_path_matches_dense_reference_bit_for_bit(lp in arb_feasible_lp()) {
        let p = build(&lp);
        assert_bit_identical(&p.solve(), &dense::solve(&p))?;
    }

    #[test]
    fn sparse_matches_dense_on_mixed_relations(lp in arb_mixed_lp()) {
        // Degenerate, infeasible and unbounded programs included: the
        // two solvers must agree on the *kind* of outcome and, when
        // optimal, on every bit of the solution.
        let p = build_mixed(&lp);
        assert_bit_identical(&p.solve(), &dense::solve(&p))?;
    }

    #[test]
    fn warm_start_reaches_the_dense_optimum(lp in arb_feasible_lp()) {
        let p = build(&lp);
        let cold = solve_with_basis(&p, None);
        let warm = solve_with_basis(&p, Some(&WarmStart { rows: cold.basis.clone() }));
        // A negative generated RHS normalizes the row to `≥`, which
        // needs artificials and correctly declines the warm attempt.
        let pure_le = lp.rows.iter().all(|(_, b)| *b >= 0.0);
        if pure_le {
            prop_assert!(warm.warm_start_used, "own optimal basis must be a warm hit");
            // Usually 0; rounding in the rebuilt reduced costs can
            // allow a couple of degenerate same-vertex pivots, but the
            // warm solve must never do more optimizing work than cold.
            prop_assert!(warm.pivots - warm.setup_pivots <= cold.pivots,
                "warm optimizing pivots {} exceed cold {}",
                warm.pivots - warm.setup_pivots, cold.pivots);
        }
        let d = dense::solve(&p).into_optimal().expect("feasible by construction");
        let w = warm.outcome.into_optimal().expect("warm solve must stay optimal");
        prop_assert!((w.objective - d.objective).abs() < 1e-6 * (1.0 + d.objective.abs()),
            "warm objective {} vs dense {}", w.objective, d.objective);
        // The warm vertex may differ from the dense one, but it must be
        // feasible for the original program.
        for (a, b) in &lp.rows {
            let lhs: f64 = a.iter().zip(&w.values).map(|(ai, xi)| ai * xi).sum();
            prop_assert!(lhs <= b + 1e-6, "warm solution violates a row: {lhs} > {b}");
        }
        for (i, &cap) in lp.caps.iter().enumerate() {
            prop_assert!(w.values[i] <= cap + 1e-6);
            prop_assert!(w.values[i] >= -1e-9);
        }
    }

    #[test]
    fn arbitrary_warm_hints_never_change_the_optimum(lp in arb_feasible_lp(), salt in 0usize..7) {
        // Garbage hints (wrong variables, duplicates, out-of-range
        // indices) may hit or miss, but must never change the optimum.
        let p = build(&lp);
        let n = lp.objective.len();
        let hints: Vec<BasisHint> = (0..p.num_constraints())
            .map(|r| match (r + salt) % 3 {
                0 => BasisHint::Slack,
                1 => BasisHint::Decision((r + salt) % n),
                _ => BasisHint::Decision(n + r), // out of range on purpose
            })
            .collect();
        let warm = solve_with_basis(&p, Some(&WarmStart { rows: hints }));
        let d = dense::solve(&p).into_optimal().expect("feasible by construction");
        let w = warm.outcome.into_optimal().expect("hints must not break optimality");
        prop_assert!((w.objective - d.objective).abs() < 1e-6 * (1.0 + d.objective.abs()),
            "hinted objective {} vs dense {}", w.objective, d.objective);
    }

    #[test]
    fn scaling_objective_scales_optimum(lp in arb_feasible_lp(), k in 0.1..5.0f64) {
        let base = build(&lp).solve().into_optimal().expect("bounded");
        let scaled_obj: Vec<f64> = lp.objective.iter().map(|c| c * k).collect();
        let scaled_lp = FeasibleLp { objective: scaled_obj, ..lp.clone() };
        let scaled = build(&scaled_lp).solve().into_optimal().expect("bounded");
        prop_assert!((scaled.objective - k * base.objective).abs() < 1e-5 * (1.0 + base.objective.abs()),
            "k={k}: {} vs {}", scaled.objective, k * base.objective);
    }
}
