//! Property-based tests for the simplex solver.
//!
//! Strategy: generate LPs with a known feasible point, then check that
//! the solver (a) reports feasibility, (b) returns a feasible solution,
//! and (c) returns an objective at least as good as the known point.

use marauder_lp::{Outcome, Problem, Relation};
use proptest::prelude::*;

/// A generated LP whose constraints are all of the form `aᵀx ≤ b` with
/// `b = aᵀx₀ + slack` for a known point `x₀ ≥ 0`, guaranteeing
/// feasibility, plus per-variable caps that guarantee boundedness.
#[derive(Debug, Clone)]
struct FeasibleLp {
    objective: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>,
    caps: Vec<f64>,
    x0: Vec<f64>,
}

fn arb_feasible_lp() -> impl Strategy<Value = FeasibleLp> {
    (2usize..6).prop_flat_map(|n| {
        let objective = prop::collection::vec(-5.0..5.0f64, n);
        let x0 = prop::collection::vec(0.0..3.0f64, n);
        let rows =
            prop::collection::vec((prop::collection::vec(-2.0..2.0f64, n), 0.01..4.0f64), 1..8);
        let caps = prop::collection::vec(0.5..10.0f64, n);
        (objective, x0, rows, caps).prop_map(|(objective, x0, raw_rows, caps)| {
            // Clamp x0 under the caps so it stays feasible.
            let x0: Vec<f64> = x0.iter().zip(&caps).map(|(v, c)| v.min(*c)).collect();
            let rows = raw_rows
                .into_iter()
                .map(|(a, slack)| {
                    let b: f64 = a.iter().zip(&x0).map(|(ai, xi)| ai * xi).sum::<f64>() + slack;
                    (a, b)
                })
                .collect();
            FeasibleLp {
                objective,
                rows,
                caps,
                x0,
            }
        })
    })
}

fn build(lp: &FeasibleLp) -> Problem {
    let mut p = Problem::maximize(&lp.objective);
    for (a, b) in &lp.rows {
        let coeffs: Vec<(usize, f64)> = a.iter().copied().enumerate().collect();
        p.add_constraint(&coeffs, Relation::Le, *b);
    }
    for (i, &cap) in lp.caps.iter().enumerate() {
        p.add_upper_bound(i, cap);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solver_finds_feasible_optimum(lp in arb_feasible_lp()) {
        let p = build(&lp);
        let outcome = p.solve();
        let sol = match outcome {
            Outcome::Optimal(s) => s,
            other => return Err(TestCaseError::fail(format!("expected optimal, got {other:?}"))),
        };
        // (b) solution is feasible.
        for (a, b) in &lp.rows {
            let lhs: f64 = a.iter().zip(&sol.values).map(|(ai, xi)| ai * xi).sum();
            prop_assert!(lhs <= b + 1e-6, "violated: {lhs} > {b}");
        }
        for (i, &cap) in lp.caps.iter().enumerate() {
            prop_assert!(sol.values[i] <= cap + 1e-6);
            prop_assert!(sol.values[i] >= -1e-9);
        }
        // (c) at least as good as the known feasible point.
        let x0_obj: f64 = lp.objective.iter().zip(&lp.x0).map(|(c, x)| c * x).sum();
        prop_assert!(sol.objective >= x0_obj - 1e-6,
            "optimum {} worse than feasible point {}", sol.objective, x0_obj);
        // Objective is consistent with values.
        let recomputed: f64 = lp.objective.iter().zip(&sol.values).map(|(c, x)| c * x).sum();
        prop_assert!((recomputed - sol.objective).abs() < 1e-6);
    }

    #[test]
    fn min_and_max_bracket_each_other(lp in arb_feasible_lp()) {
        let pmax = build(&lp);
        let mut pmin = Problem::minimize(&lp.objective);
        for (a, b) in &lp.rows {
            let coeffs: Vec<(usize, f64)> = a.iter().copied().enumerate().collect();
            pmin.add_constraint(&coeffs, Relation::Le, *b);
        }
        for (i, &cap) in lp.caps.iter().enumerate() {
            pmin.add_upper_bound(i, cap);
        }
        let smax = pmax.solve().into_optimal().expect("bounded");
        let smin = pmin.solve().into_optimal().expect("bounded below: x >= 0, caps");
        prop_assert!(smin.objective <= smax.objective + 1e-6);
    }

    #[test]
    fn scaling_objective_scales_optimum(lp in arb_feasible_lp(), k in 0.1..5.0f64) {
        let base = build(&lp).solve().into_optimal().expect("bounded");
        let scaled_obj: Vec<f64> = lp.objective.iter().map(|c| c * k).collect();
        let scaled_lp = FeasibleLp { objective: scaled_obj, ..lp.clone() };
        let scaled = build(&scaled_lp).solve().into_optimal().expect("bounded");
        prop_assert!((scaled.objective - k * base.objective).abs() < 1e-5 * (1.0 + base.objective.abs()),
            "k={k}: {} vs {}", scaled.objective, k * base.objective);
    }
}
