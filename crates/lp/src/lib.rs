//! A small, dependency-free linear-programming solver.
//!
//! The paper's AP-Rad algorithm estimates every access point's maximum
//! transmission distance by solving a linear program: maximize `Σ rⱼ`
//! subject to `rᵢ + rⱼ ≥ dᵢⱼ` for co-observed AP pairs and
//! `rᵢ + rⱼ < dᵢⱼ` for pairs never observed together (Section III-C2).
//! No LP solver exists in the allowed dependency set, so this crate
//! implements a two-phase simplex with Bland's anti-cycling rule. The
//! hot-path solver ([`simplex`]) works on a **sparse row
//! representation** (AP-Rad constraints touch only 1–2 variables) and
//! supports **warm starts** from a previous optimal basis; the
//! original dense tableau is retained in [`dense`] as a bit-exact
//! reference oracle for the differential test suite.
//!
//! The model is: maximize (or minimize) `cᵀx` subject to linear
//! constraints `aᵀx {≤,≥,=} b` and `x ≥ 0`. Upper bounds are expressed
//! as ordinary `≤` constraints.
//!
//! # Example
//!
//! ```
//! use marauder_lp::{Problem, Relation};
//!
//! // maximize 3x + 2y  s.t.  x + y ≤ 4,  x ≤ 2,  x,y ≥ 0
//! let mut p = Problem::maximize(&[3.0, 2.0]);
//! p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 4.0);
//! p.add_constraint(&[(0, 1.0)], Relation::Le, 2.0);
//! let sol = p.solve().into_optimal().expect("bounded and feasible");
//! assert!((sol.objective - 10.0).abs() < 1e-9); // x=2, y=2
//! ```

#![forbid(unsafe_code)]

pub mod dense;
pub mod problem;
pub mod simplex;

pub use problem::{Constraint, Problem, Relation};
pub use simplex::{solve_with_basis, BasisHint, Outcome, Solution, SolveReport, WarmStart};
