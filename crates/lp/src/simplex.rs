//! Two-phase dense simplex.
//!
//! Textbook implementation: constraints are normalized to non-negative
//! right-hand sides, slack variables are added for `≤`, surplus plus
//! artificial variables for `≥`, and artificial variables for `=`.
//! Phase 1 minimizes the sum of artificials (infeasible when positive at
//! optimum); phase 2 optimizes the real objective. Pivoting uses Dantzig's
//! rule with a fallback to Bland's rule after a stall threshold, which
//! guarantees termination on degenerate problems.

use crate::problem::{Problem, Relation};

/// Numerical tolerance for pivoting and feasibility decisions.
const TOL: f64 = 1e-9;

/// An optimal solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal variable assignment.
    pub values: Vec<f64>,
    /// Objective value at the optimum (in the problem's own sense:
    /// maximum for maximization problems, minimum for minimizations).
    pub objective: f64,
}

/// Result of solving a linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// A finite optimum was found.
    Optimal(Solution),
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

impl Outcome {
    /// Extracts the solution, discarding the failure cases.
    pub fn into_optimal(self) -> Option<Solution> {
        match self {
            Outcome::Optimal(s) => Some(s),
            _ => None,
        }
    }

    /// `true` for [`Outcome::Infeasible`].
    pub fn is_infeasible(&self) -> bool {
        matches!(self, Outcome::Infeasible)
    }
}

struct Tableau {
    /// `rows × cols` coefficient matrix; the last column is the RHS.
    a: Vec<Vec<f64>>,
    /// Objective row (cost coefficients, last entry = objective value
    /// negated by simplex convention).
    z: Vec<f64>,
    /// Basis: for each row, the index of its basic variable.
    basis: Vec<usize>,
    cols: usize,
    /// Pivot operations performed, across both phases; reported as the
    /// `lp.pivots` metric (deterministic: pivoting order is a pure
    /// function of the problem).
    pivots: u64,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        self.pivots += 1;
        let piv = self.a[row][col];
        debug_assert!(piv.abs() > TOL, "pivot too small: {piv}");
        let inv = 1.0 / piv;
        for v in &mut self.a[row] {
            *v *= inv;
        }
        let pivot_row = self.a[row].clone();
        for (r, a_row) in self.a.iter_mut().enumerate() {
            if r == row {
                continue;
            }
            let factor = a_row[col];
            if factor.abs() > TOL {
                for (v, pv) in a_row.iter_mut().zip(&pivot_row) {
                    *v -= factor * pv;
                }
                a_row[col] = 0.0; // exact zero against drift
            }
        }
        let factor = self.z[col];
        if factor.abs() > TOL {
            for (v, pv) in self.z.iter_mut().zip(&pivot_row) {
                *v -= factor * pv;
            }
            self.z[col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// Runs simplex iterations (maximization of the `z` row in the form
    /// where reduced costs appear negated). Returns `false` when the
    /// problem is unbounded. `active_cols` limits the entering columns.
    fn optimize(&mut self, active_cols: usize) -> bool {
        let mut stalled = 0usize;
        let stall_threshold = 64 + 4 * self.a.len();
        loop {
            // Entering column: Dantzig (most negative) or Bland when
            // degenerate pivoting threatens to cycle.
            let entering = if stalled < stall_threshold {
                let mut best: Option<(usize, f64)> = None;
                for c in 0..active_cols {
                    let v = self.z[c];
                    if v < -TOL && best.is_none_or(|(_, bv)| v < bv) {
                        best = Some((c, v));
                    }
                }
                best.map(|(c, _)| c)
            } else {
                (0..active_cols).find(|&c| self.z[c] < -TOL)
            };
            let Some(col) = entering else {
                return true; // optimal
            };
            // Leaving row: minimum ratio test (Bland ties by basis index).
            let mut leave: Option<(usize, f64)> = None;
            for r in 0..self.a.len() {
                let coef = self.a[r][col];
                if coef > TOL {
                    let ratio = self.a[r][self.cols - 1] / coef;
                    let better = match leave {
                        None => true,
                        Some((lr, lratio)) => {
                            ratio < lratio - TOL
                                || (ratio < lratio + TOL && self.basis[r] < self.basis[lr])
                        }
                    };
                    if better {
                        leave = Some((r, ratio));
                    }
                }
            }
            let Some((row, ratio)) = leave else {
                return false; // unbounded
            };
            if ratio.abs() < TOL {
                stalled += 1;
            } else {
                stalled = 0;
            }
            self.pivot(row, col);
        }
    }
}

/// Solves a [`Problem`] with the two-phase simplex method.
pub fn solve(problem: &Problem) -> Outcome {
    let reg = marauder_obs::global();
    let _span = reg.span("lp.solve", marauder_obs::global_clock());
    let (outcome, pivots) = solve_counted(problem);
    reg.counter_add("lp.solves", 1);
    reg.counter_add("lp.pivots", pivots);
    outcome
}

/// The solver body, returning the outcome plus the pivot count so
/// [`solve`] can flush metrics on every exit path at once.
fn solve_counted(problem: &Problem) -> (Outcome, u64) {
    let n = problem.num_vars();
    let m = problem.num_constraints();

    // Normalize constraints to dense rows with non-negative RHS.
    struct Row {
        coeffs: Vec<f64>,
        relation: Relation,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(m);
    for c in problem.constraints() {
        let mut coeffs = vec![0.0; n];
        for &(i, v) in &c.coeffs {
            coeffs[i] += v;
        }
        let (coeffs, relation, rhs) = if c.rhs < 0.0 {
            let flipped = match c.relation {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
            (coeffs.iter().map(|v| -v).collect(), flipped, -c.rhs)
        } else {
            (coeffs, c.relation, c.rhs)
        };
        rows.push(Row {
            coeffs,
            relation,
            rhs,
        });
    }

    let num_slack = rows
        .iter()
        .filter(|r| matches!(r.relation, Relation::Le | Relation::Ge))
        .count();
    let num_artificial = rows
        .iter()
        .filter(|r| matches!(r.relation, Relation::Ge | Relation::Eq))
        .count();
    let cols = n + num_slack + num_artificial + 1; // + RHS

    let mut a = vec![vec![0.0; cols]; m];
    let mut basis = vec![usize::MAX; m];
    let mut slack_idx = n;
    let mut art_idx = n + num_slack;
    let mut artificials: Vec<usize> = Vec::with_capacity(num_artificial);

    for (r, row) in rows.iter().enumerate() {
        a[r][..n].copy_from_slice(&row.coeffs);
        a[r][cols - 1] = row.rhs;
        match row.relation {
            Relation::Le => {
                a[r][slack_idx] = 1.0;
                basis[r] = slack_idx;
                slack_idx += 1;
            }
            Relation::Ge => {
                a[r][slack_idx] = -1.0; // surplus
                slack_idx += 1;
                a[r][art_idx] = 1.0;
                basis[r] = art_idx;
                artificials.push(art_idx);
                art_idx += 1;
            }
            Relation::Eq => {
                a[r][art_idx] = 1.0;
                basis[r] = art_idx;
                artificials.push(art_idx);
                art_idx += 1;
            }
        }
    }

    let mut t = Tableau {
        a,
        z: vec![0.0; cols],
        basis,
        cols,
        pivots: 0,
    };

    // Phase 1: minimize sum of artificials == maximize -(sum).
    if !artificials.is_empty() {
        for &c in &artificials {
            t.z[c] = 1.0;
        }
        // Make the objective row consistent with the basis (artificials
        // are basic): subtract their rows.
        for r in 0..m {
            if artificials.contains(&t.basis[r]) {
                let row = t.a[r].clone();
                for (v, rv) in t.z.iter_mut().zip(&row) {
                    *v -= rv;
                }
            }
        }
        let bounded = t.optimize(cols - 1);
        debug_assert!(bounded, "phase 1 is always bounded below by 0");
        let phase1_obj = -t.z[cols - 1];
        if phase1_obj > 1e-7 {
            return (Outcome::Infeasible, t.pivots);
        }
        // Drive any remaining basic artificials out (degenerate rows).
        for r in 0..m {
            if artificials.contains(&t.basis[r]) {
                if let Some(c) = (0..n + num_slack).find(|&c| t.a[r][c].abs() > TOL) {
                    t.pivot(r, c);
                }
                // If no pivot column exists the row is all-zero
                // (redundant constraint) and can stay as-is.
            }
        }
        // Erase artificial columns so phase 2 never re-enters them.
        for &c in &artificials {
            for r in 0..m {
                t.a[r][c] = 0.0;
            }
        }
    }

    // Phase 2: the real objective. Simplex maximizes; minimization
    // negates the costs.
    let sign = if problem.is_maximize() { 1.0 } else { -1.0 };
    t.z = vec![0.0; cols];
    for (i, &c) in problem.objective().iter().enumerate() {
        t.z[i] = -sign * c;
    }
    // Make the objective row consistent with the current basis.
    for r in 0..m {
        let b = t.basis[r];
        if b < cols - 1 && t.z[b].abs() > TOL {
            let factor = t.z[b];
            let row = t.a[r].clone();
            for (v, rv) in t.z.iter_mut().zip(&row) {
                *v -= factor * rv;
            }
            t.z[b] = 0.0;
        }
    }
    if !t.optimize(n + num_slack) {
        return (Outcome::Unbounded, t.pivots);
    }

    let mut values = vec![0.0; n];
    for (r, &b) in t.basis.iter().enumerate() {
        if b < n {
            values[b] = t.a[r][cols - 1];
        }
    }
    let objective: f64 = problem
        .objective()
        .iter()
        .zip(&values)
        .map(|(c, v)| c * v)
        .sum();
    (Outcome::Optimal(Solution { values, objective }), t.pivots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x+5y st x<=4, 2y<=12, 3x+2y<=18 -> x=2,y=6,obj=36.
        let mut p = Problem::maximize(&[3.0, 5.0]);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 4.0);
        p.add_constraint(&[(1, 2.0)], Relation::Le, 12.0);
        p.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
        let s = p.solve().into_optimal().unwrap();
        assert_close(s.objective, 36.0);
        assert_close(s.values[0], 2.0);
        assert_close(s.values[1], 6.0);
    }

    #[test]
    fn minimization_with_ge() {
        // min 2x+3y st x+y>=10, x>=3 -> x=10,y=0? obj 20 (x cheapest).
        let mut p = Problem::minimize(&[2.0, 3.0]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 10.0);
        p.add_constraint(&[(0, 1.0)], Relation::Ge, 3.0);
        let s = p.solve().into_optimal().unwrap();
        assert_close(s.objective, 20.0);
        assert_close(s.values[0], 10.0);
    }

    #[test]
    fn equality_constraints() {
        // max x+y st x+y=5, x<=2 -> obj 5, x=2,y=3 (or any on segment).
        let mut p = Problem::maximize(&[1.0, 1.0]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 5.0);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 2.0);
        let s = p.solve().into_optimal().unwrap();
        assert_close(s.objective, 5.0);
        assert!(s.values[0] <= 2.0 + 1e-9);
        assert_close(s.values[0] + s.values[1], 5.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::maximize(&[1.0]);
        p.add_constraint(&[(0, 1.0)], Relation::Ge, 5.0);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 3.0);
        assert!(p.solve().is_infeasible());
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::maximize(&[1.0, 1.0]);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 3.0); // y unbounded
        assert_eq!(p.solve(), Outcome::Unbounded);
    }

    #[test]
    fn negative_rhs_normalization() {
        // max -x st -x >= -4 (i.e. x <= 4); optimum x=0, obj 0.
        let mut p = Problem::maximize(&[-1.0]);
        p.add_constraint(&[(0, -1.0)], Relation::Ge, -4.0);
        let s = p.solve().into_optimal().unwrap();
        assert_close(s.objective, 0.0);
        // min -x with same constraint -> x=4, obj -4.
        let mut p = Problem::minimize(&[-1.0]);
        p.add_constraint(&[(0, -1.0)], Relation::Ge, -4.0);
        let s = p.solve().into_optimal().unwrap();
        assert_close(s.objective, -4.0);
        assert_close(s.values[0], 4.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate LP (multiple constraints tight at origin).
        let mut p = Problem::maximize(&[0.75, -150.0, 0.02, -6.0]);
        p.add_constraint(
            &[(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(
            &[(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(&[(2, 1.0)], Relation::Le, 1.0);
        let s = p
            .solve()
            .into_optimal()
            .expect("Beale's example is bounded");
        assert_close(s.objective, 0.05);
    }

    #[test]
    fn redundant_equalities() {
        let mut p = Problem::maximize(&[1.0]);
        p.add_constraint(&[(0, 1.0)], Relation::Eq, 2.0);
        p.add_constraint(&[(0, 2.0)], Relation::Eq, 4.0); // same constraint
        let s = p.solve().into_optimal().unwrap();
        assert_close(s.values[0], 2.0);
    }

    #[test]
    fn aprad_shaped_problem() {
        // Three APs on a line at 0, 10, 25. Pairs (0,1) co-observed
        // (r0+r1 >= 10); (1,2) and (0,2) not (r1+r2 <= 15-eps,
        // r0+r2 <= 25-eps). Maximize sum with caps at 20.
        let eps = 1e-3;
        let mut p = Problem::maximize(&[1.0, 1.0, 1.0]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 10.0);
        p.add_constraint(&[(1, 1.0), (2, 1.0)], Relation::Le, 15.0 - eps);
        p.add_constraint(&[(0, 1.0), (2, 1.0)], Relation::Le, 25.0 - eps);
        for i in 0..3 {
            p.add_upper_bound(i, 20.0);
        }
        let s = p.solve().into_optimal().unwrap();
        // Feasibility of the reported solution.
        let r = &s.values;
        assert!(r[0] + r[1] >= 10.0 - 1e-6);
        assert!(r[1] + r[2] <= 15.0 - eps + 1e-6);
        assert!(r[0] + r[2] <= 25.0 - eps + 1e-6);
        for &v in r {
            assert!((0.0..=20.0 + 1e-6).contains(&v));
        }
        // Optimal: r0=20 (cap), then r0+r2<=25-eps -> r2 = 5-eps; r1+r2<=15-eps
        // -> r1 = 10. Sum = 35 - 2eps... check optimum ≈ 35.
        assert!((s.objective - 35.0).abs() < 0.1, "obj {}", s.objective);
    }

    #[test]
    fn no_constraints_bounded_only_if_costs_nonpositive() {
        let p = Problem::maximize(&[-1.0, -2.0]);
        let s = p.solve().into_optimal().unwrap();
        assert_close(s.objective, 0.0);
        let p = Problem::maximize(&[1.0]);
        assert_eq!(p.solve(), Outcome::Unbounded);
    }

    #[test]
    fn larger_random_feasible_problem() {
        // Diagonally dominant system with known feasible interior point.
        let n = 25;
        let c: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let mut p = Problem::maximize(&c);
        for i in 0..n {
            // x_i + 0.1 x_{i+1} <= 2
            p.add_constraint(&[(i, 1.0), ((i + 1) % n, 0.1)], Relation::Le, 2.0);
        }
        let s = p.solve().into_optimal().unwrap();
        // Solution must satisfy all constraints.
        for i in 0..n {
            assert!(s.values[i] + 0.1 * s.values[(i + 1) % n] <= 2.0 + 1e-6);
            assert!(s.values[i] >= -1e-9);
        }
        // Symmetric problem: every x_i = 2/1.1.
        for i in 0..n {
            assert!((s.values[i] - 2.0 / 1.1).abs() < 1e-6);
        }
    }
}
