//! Two-phase simplex over a **sparse row representation**, with
//! optional warm starts.
//!
//! AP-Rad programs are extremely sparse: every constraint touches one
//! or two variables (a per-AP cap or a pair row), so a dense `m × n`
//! tableau is almost entirely zeros and every pivot pays for all of
//! them. This module stores each row as a sorted `(column, value)`
//! support list and pays only for actual nonzeros (plus fill-in, which
//! stays tiny for pair-structured programs).
//!
//! # Bit-exactness contract
//!
//! The cold path reproduces the retained dense reference
//! ([`crate::dense`]) **bit for bit**: pivot selection (Dantzig with a
//! Bland fallback after the stall threshold), the minimum-ratio test
//! with its basis-index tie break, and the per-entry update arithmetic
//! (`v - factor · pv`, pivot-row scaling by `1/piv`) are all replicated
//! operation for operation. A stored explicit `0.0` in the dense
//! tableau and an absent sparse entry are interchangeable: every
//! comparison is tolerance-gated and every update of a zero entry
//! yields a zero contribution, so dropping exact zeros changes no
//! pivot decision and no extracted value. (Signs of zeros may differ
//! internally; they are unobservable through the tolerance gates and
//! the `values`/`objective` extraction.) The differential suite in
//! `tests/properties.rs` pins this equivalence, including pivot
//! counts.
//!
//! # Warm starts
//!
//! [`solve_with_basis`] accepts the optimal basis of a *related*
//! previously-solved program (as per-row [`BasisHint`]s) and tries to
//! re-solve from it: the standardized tableau is eliminated to the
//! hinted basis with plain pivots (no entering scans, no ratio tests),
//! and if the resulting right-hand side is non-negative — the hinted
//! basis is primal feasible for the *new* program — phase 2 starts
//! there instead of from the all-slack basis. When the hinted basis is
//! infeasible (or the program needs artificials at all), the solver
//! falls back to a cold start from scratch, so a stale hint can cost
//! time but never correctness. Warm-started solves terminate at a true
//! optimum, but where alternate optima exist it may be a *different
//! vertex* than the cold path's — callers that pin bit-exact outputs
//! must use the cold path (see `ApRadSolver`'s canonical/live split).
//!
//! Dantzig pricing is kept for speed and Bland's rule for termination:
//! both are deterministic (first-wins tie breaks over a fixed column
//! order), which the workspace's reproducibility contract requires —
//! a steepest-edge or random pricing rule would be faster on paper but
//! would make pivot sequences (and the `lp.pivots` counters) depend on
//! floating-point noise amplification rather than on the input alone.

use crate::problem::{Problem, Relation};

/// Numerical tolerance for pivoting and feasibility decisions.
pub(crate) const TOL: f64 = 1e-9;

/// Minimum pivot magnitude accepted while eliminating to a warm-start
/// basis. Stricter than [`TOL`]: a warm elimination is free to skip a
/// numerically dubious pivot (the variable just stays nonbasic and
/// phase 2 brings it back in if it matters), so there is no reason to
/// accept near-singular pivots that amplify error.
const WARM_PIVOT_TOL: f64 = 1e-7;

/// An optimal solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal variable assignment.
    pub values: Vec<f64>,
    /// Objective value at the optimum (in the problem's own sense:
    /// maximum for maximization problems, minimum for minimizations).
    pub objective: f64,
}

/// Result of solving a linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// A finite optimum was found.
    Optimal(Solution),
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

impl Outcome {
    /// Extracts the solution, discarding the failure cases.
    pub fn into_optimal(self) -> Option<Solution> {
        match self {
            Outcome::Optimal(s) => Some(s),
            _ => None,
        }
    }

    /// `true` for [`Outcome::Infeasible`].
    pub fn is_infeasible(&self) -> bool {
        matches!(self, Outcome::Infeasible)
    }
}

/// What was basic in one constraint row at an optimum — the unit of
/// warm-start state callers carry between related solves.
///
/// Hints are structural, not positional: `Decision(j)` names problem
/// variable `j`, so a caller re-solving a grown program translates
/// hints through its own stable variable identities (the AP-Rad solver
/// maps them through BSSIDs) and row identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BasisHint {
    /// The row's own slack (or an artificial / unknown) was basic —
    /// the row needs no elimination to start from.
    Slack,
    /// Decision variable `j` was basic in this row.
    Decision(usize),
    /// The slack of constraint row `q` was basic in this row. Slacks
    /// migrate between rows over a long solve (a row's own slack
    /// leaves the basis, then re-enters in a different row);
    /// reconstructing the optimum requires replaying those migrations,
    /// not just the decision pivots.
    SlackOf(usize),
}

/// A warm-start suggestion: for each constraint row of the new problem
/// (in declaration order), what to make basic before optimizing.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WarmStart {
    /// One hint per constraint, aligned with
    /// [`Problem::constraints`]. A length mismatch disables the warm
    /// attempt (counted as a miss).
    pub rows: Vec<BasisHint>,
}

/// Everything [`solve_with_basis`] learned: the outcome plus the
/// warm-start bookkeeping callers and metrics need.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// The solve result.
    pub outcome: Outcome,
    /// The final basis, one hint per constraint row — feed this back
    /// as the next related solve's [`WarmStart`].
    pub basis: Vec<BasisHint>,
    /// Total pivot operations, including warm-basis elimination.
    pub pivots: u64,
    /// Pivots spent eliminating to the hinted basis (0 on cold
    /// solves). `pivots - setup_pivots` is the optimizing work — the
    /// quantity warm starting actually shrinks, since elimination
    /// pivots skip the entering scan and ratio test entirely.
    pub setup_pivots: u64,
    /// `true` when the hinted basis was primal feasible and phase 2
    /// started from it; `false` on cold solves and fallbacks.
    pub warm_start_used: bool,
}

/// Solves a [`Problem`] with the two-phase sparse simplex (cold start).
///
/// Flushes the `lp.solves` / `lp.pivots` / `lp.pivots.cold` counters
/// and records an `lp.solve` span.
pub fn solve(problem: &Problem) -> Outcome {
    let reg = marauder_obs::global();
    let _span = reg.span("lp.solve", marauder_obs::global_clock());
    let report = run(problem, None);
    reg.counter_add("lp.solves", 1);
    reg.counter_add("lp.pivots", report.pivots);
    reg.counter_add("lp.pivots.cold", report.pivots);
    report.outcome
}

/// Solves a [`Problem`], optionally warm-starting from a previous
/// optimal basis, and reports the final basis for the next solve.
///
/// Metrics: `lp.solves`, `lp.pivots` always; on a warm hit
/// `lp.warm_start.hit`, `lp.pivots.warm` (optimizing pivots) and
/// `lp.pivots.warm_setup` (elimination pivots); on a declined or
/// failed warm attempt `lp.warm_start.miss` plus the cold counters.
pub fn solve_with_basis(problem: &Problem, warm: Option<&WarmStart>) -> SolveReport {
    let reg = marauder_obs::global();
    let _span = reg.span("lp.solve", marauder_obs::global_clock());
    let report = run(problem, warm);
    reg.counter_add("lp.solves", 1);
    reg.counter_add("lp.pivots", report.pivots);
    if report.warm_start_used {
        reg.counter_add("lp.warm_start.hit", 1);
        reg.counter_add("lp.pivots.warm", report.pivots - report.setup_pivots);
        reg.counter_add("lp.pivots.warm_setup", report.setup_pivots);
    } else {
        if warm.is_some() {
            reg.counter_add("lp.warm_start.miss", 1);
        }
        reg.counter_add("lp.pivots.cold", report.pivots);
    }
    report
}

/// The solver body: standardize, try the warm basis if one was hinted,
/// otherwise (or on fallback) run the cold two-phase method.
fn run(problem: &Problem, warm: Option<&WarmStart>) -> SolveReport {
    // Warm attempt: only meaningful when the standardized program is
    // pure-`≤` (all-slack basis exists, no artificials) and the hint
    // covers every row.
    if let Some(w) = warm {
        let mut s = Standardized::build(problem);
        if s.artificials.is_empty() && w.rows.len() == s.t.num_rows() {
            let n = s.n;
            let mut used = vec![false; n];
            // Install the hinted basis by pivoting each row onto its
            // hinted column. A single pass in row order is not enough:
            // a hinted variable's coefficient in its host row is often
            // zero until fill-in from *other* hinted pivots introduces
            // it, and a migrated slack's column stays unit (zero in
            // every foreign row) until its home row is re-pivoted. So
            // iterate to a fixpoint, each pass installing whatever
            // became pivotable; an unresolvable residue (singular or
            // order-unreachable hint sets) simply stalls and the
            // feasibility check below decides.
            loop {
                let mut progressed = false;
                for (r, hint) in w.rows.iter().enumerate() {
                    let target = match *hint {
                        BasisHint::Decision(j) if j < n && !used[j] => j,
                        BasisHint::SlackOf(q) => match s.row_slack.get(q).copied().flatten() {
                            Some(col) => col,
                            None => continue,
                        },
                        _ => continue,
                    };
                    if s.t.basis[r] == target {
                        continue;
                    }
                    let coef = s.t.get(r, target);
                    if coef.abs() > WARM_PIVOT_TOL {
                        s.t.pivot(r, target);
                        if target < n {
                            used[target] = true;
                        }
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
            }
            // The hinted (row, column) pairing can stall: install-only
            // pivots reach some bases only through intermediate pivots
            // the hints don't describe. The basic *solution* depends
            // only on the basis set, though — so finish by bringing
            // each still-missing hinted column into any row whose
            // current basic column the target basis does not contain
            // (extract_basis reports the true pairing afterwards).
            let basis_cols = s.n + s.num_slack;
            let mut want = vec![false; basis_cols];
            let mut coherent = true;
            for (r, hint) in w.rows.iter().enumerate() {
                let target = match *hint {
                    BasisHint::Decision(j) if j < n => Some(j),
                    BasisHint::SlackOf(q) => s.row_slack.get(q).copied().flatten(),
                    // Own slack — also the fallback for out-of-range
                    // decision hints, matching the install loop above.
                    _ => s.row_slack[r],
                };
                let Some(t) = target else { continue };
                if want[t] {
                    // Two rows claim one column: garbage hints. Leave
                    // the repair to the feasibility check.
                    coherent = false;
                    break;
                }
                want[t] = true;
            }
            loop {
                if !coherent {
                    break;
                }
                let mut basic_now = vec![false; basis_cols];
                for &b in &s.t.basis {
                    if b < basis_cols {
                        basic_now[b] = true;
                    }
                }
                let mut progressed = false;
                for r in 0..s.t.num_rows() {
                    let cur = s.t.basis[r];
                    if cur < basis_cols && want[cur] {
                        continue;
                    }
                    let hit = s.t.rows_c[r]
                        .iter()
                        .zip(&s.t.rows_v[r])
                        .find(|(c, v)| {
                            let c = **c as usize;
                            c < basis_cols && want[c] && !basic_now[c] && v.abs() > WARM_PIVOT_TOL
                        })
                        .map(|(c, _)| *c as usize);
                    if let Some(c) = hit {
                        s.t.pivot(r, c);
                        basic_now[c] = true;
                        if cur < basis_cols {
                            basic_now[cur] = false;
                        }
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
            }
            let setup_pivots = s.t.pivots;
            if s.t.rhs.iter().all(|&b| b >= -TOL) {
                // Re-eliminating a basis whose coefficients came from
                // square roots leaves ±1e-16-scale residues on rhs
                // entries that are exactly zero in exact arithmetic
                // (degenerate rows). A strict `>= 0.0` here would
                // reject the program's own optimal basis; instead
                // accept within TOL and clamp the residues so phase 2
                // sees the invariant it assumes (all-nonnegative rhs).
                for b in s.t.rhs.iter_mut() {
                    if *b < 0.0 {
                        *b = 0.0;
                    }
                }
                // The hinted basis is primal feasible for the new
                // program: phase 2 from here.
                let (outcome, basis) = phase2(problem, &mut s);
                return SolveReport {
                    outcome,
                    basis,
                    pivots: s.t.pivots,
                    setup_pivots,
                    warm_start_used: true,
                };
            }
            // Hinted basis infeasible: fall through to a cold start on
            // a fresh tableau (the eliminated one is poisoned).
        }
    }

    let mut s = Standardized::build(problem);
    // Phase 1: minimize sum of artificials == maximize -(sum).
    if !s.artificials.is_empty() {
        let m = s.t.num_rows();
        let cols = s.t.cols;
        for &c in &s.artificials {
            s.t.z[c] = 1.0;
        }
        // Make the objective row consistent with the basis (artificials
        // are basic): subtract their rows.
        let art_base = s.n + s.num_slack;
        for r in 0..m {
            if s.t.basis[r] >= art_base {
                for i in 0..s.t.rows_c[r].len() {
                    let c = s.t.rows_c[r][i] as usize;
                    s.t.z[c] -= s.t.rows_v[r][i];
                }
                s.t.z[cols - 1] -= s.t.rhs[r];
            }
        }
        let bounded = s.t.optimize(cols - 1);
        debug_assert!(bounded, "phase 1 is always bounded below by 0");
        let phase1_obj = -s.t.z[cols - 1];
        if phase1_obj > 1e-7 {
            return SolveReport {
                outcome: Outcome::Infeasible,
                basis: extract_basis(&s),
                pivots: s.t.pivots,
                setup_pivots: 0,
                warm_start_used: false,
            };
        }
        // Drive any remaining basic artificials out (degenerate rows).
        for r in 0..m {
            if s.t.basis[r] >= art_base {
                let pivot_col = s.t.rows_c[r]
                    .iter()
                    .zip(&s.t.rows_v[r])
                    .take_while(|(c, _)| (**c as usize) < art_base)
                    .find(|(_, v)| v.abs() > TOL)
                    .map(|(c, _)| *c as usize);
                if let Some(c) = pivot_col {
                    s.t.pivot(r, c);
                }
                // If no pivot column exists the row is all-zero
                // (redundant constraint) and can stay as-is.
            }
        }
        // Erase artificial columns so phase 2 never re-enters them.
        // Artificial columns occupy [art_base, cols-1) and supports are
        // sorted, so a truncate removes them all.
        for r in 0..m {
            let keep = s.t.rows_c[r].partition_point(|&c| (c as usize) < art_base);
            s.t.rows_c[r].truncate(keep);
            s.t.rows_v[r].truncate(keep);
        }
    }

    let (outcome, basis) = phase2(problem, &mut s);
    SolveReport {
        outcome,
        basis,
        pivots: s.t.pivots,
        setup_pivots: 0,
        warm_start_used: false,
    }
}

/// Phase 2 from the tableau's current (primal feasible) basis: install
/// the real objective, re-establish reduced-cost consistency, optimize
/// and extract.
fn phase2(problem: &Problem, s: &mut Standardized) -> (Outcome, Vec<BasisHint>) {
    let cols = s.t.cols;
    let m = s.t.num_rows();
    // Simplex maximizes; minimization negates the costs.
    let sign = if problem.is_maximize() { 1.0 } else { -1.0 };
    s.t.z.clear();
    s.t.z.resize(cols, 0.0);
    for (i, &c) in problem.objective().iter().enumerate() {
        s.t.z[i] = -sign * c;
    }
    // Make the objective row consistent with the current basis.
    for r in 0..m {
        let b = s.t.basis[r];
        if b < cols - 1 && s.t.z[b].abs() > TOL {
            let factor = s.t.z[b];
            for i in 0..s.t.rows_c[r].len() {
                let c = s.t.rows_c[r][i] as usize;
                s.t.z[c] -= factor * s.t.rows_v[r][i];
            }
            s.t.z[cols - 1] -= factor * s.t.rhs[r];
            s.t.z[b] = 0.0;
        }
    }
    if !s.t.optimize(s.n + s.num_slack) {
        return (Outcome::Unbounded, extract_basis(s));
    }

    let mut values = vec![0.0; s.n];
    for (r, &b) in s.t.basis.iter().enumerate() {
        if b < s.n {
            values[b] = s.t.rhs[r];
        }
    }
    let objective: f64 = problem
        .objective()
        .iter()
        .zip(&values)
        .map(|(c, v)| c * v)
        .sum();
    (
        Outcome::Optimal(Solution { values, objective }),
        extract_basis(s),
    )
}

fn extract_basis(s: &Standardized) -> Vec<BasisHint> {
    s.t.basis
        .iter()
        .enumerate()
        .map(|(r, &b)| {
            if b < s.n {
                BasisHint::Decision(b)
            } else if b < s.n + s.num_slack {
                let home = s.slack_home[b - s.n];
                if home == r {
                    BasisHint::Slack
                } else {
                    BasisHint::SlackOf(home)
                }
            } else {
                // Artificial basic (degenerate all-zero row): nothing
                // a future solve can replay.
                BasisHint::Slack
            }
        })
        .collect()
}

/// The standardized program: normalized rows in a sparse tableau, with
/// slack/surplus/artificial columns assigned exactly as the dense
/// reference assigns them.
struct Standardized {
    n: usize,
    num_slack: usize,
    /// Artificial column ids (ascending).
    artificials: Vec<usize>,
    /// Per row, the slack/surplus column it introduced (`None` for
    /// `=` rows).
    row_slack: Vec<Option<usize>>,
    /// Per slack ordinal (`col - n`), the row that introduced it —
    /// the inverse of `row_slack`, used to name migrated slacks in
    /// [`BasisHint::SlackOf`] terms.
    slack_home: Vec<usize>,
    t: SparseTableau,
}

impl Standardized {
    fn build(problem: &Problem) -> Self {
        let n = problem.num_vars();
        let m = problem.num_constraints();

        // Normalize each constraint: gather coefficients per column in
        // declaration order (duplicates sum in order, matching the
        // dense `coeffs[i] += v` accumulation), then flip rows with a
        // negative RHS.
        struct Row {
            support: Vec<(u32, f64)>,
            relation: Relation,
            rhs: f64,
        }
        let mut rows: Vec<Row> = Vec::with_capacity(m);
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for c in problem.constraints() {
            scratch.clear();
            scratch.extend(c.coeffs.iter().map(|&(i, v)| (i as u32, v)));
            // Stable sort keeps duplicate-column contributions in
            // declaration order, so run-summing them reproduces the
            // dense accumulation bit for bit.
            scratch.sort_by_key(|&(i, _)| i);
            let mut support: Vec<(u32, f64)> = Vec::with_capacity(scratch.len());
            for &(i, v) in scratch.iter() {
                match support.last_mut() {
                    Some((li, lv)) if *li == i => *lv += v,
                    _ => support.push((i, v)),
                }
            }
            // Entries summing to an exact zero are what the dense
            // tableau stores as 0.0 — equivalent to absent.
            support.retain(|&(_, v)| v != 0.0);
            let (support, relation, rhs) = if c.rhs < 0.0 {
                let flipped = match c.relation {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
                (
                    support.iter().map(|&(i, v)| (i, -v)).collect(),
                    flipped,
                    -c.rhs,
                )
            } else {
                (support, c.relation, c.rhs)
            };
            rows.push(Row {
                support,
                relation,
                rhs,
            });
        }

        let num_slack = rows
            .iter()
            .filter(|r| matches!(r.relation, Relation::Le | Relation::Ge))
            .count();
        let num_artificial = rows
            .iter()
            .filter(|r| matches!(r.relation, Relation::Ge | Relation::Eq))
            .count();
        let cols = n + num_slack + num_artificial + 1; // + RHS

        let mut rows_c: Vec<Vec<u32>> = Vec::with_capacity(m);
        let mut rows_v: Vec<Vec<f64>> = Vec::with_capacity(m);
        let mut rhs: Vec<f64> = Vec::with_capacity(m);
        let mut basis = vec![usize::MAX; m];
        let mut slack_idx = n;
        let mut art_idx = n + num_slack;
        let mut artificials: Vec<usize> = Vec::with_capacity(num_artificial);
        let mut row_slack: Vec<Option<usize>> = vec![None; m];
        let mut slack_home: Vec<usize> = Vec::with_capacity(num_slack);

        for (r, row) in rows.iter().enumerate() {
            let mut cs: Vec<u32> = row.support.iter().map(|&(i, _)| i).collect();
            let mut vs: Vec<f64> = row.support.iter().map(|&(_, v)| v).collect();
            // Slack/surplus and artificial columns come after the
            // decision columns, so pushing keeps the support sorted.
            match row.relation {
                Relation::Le => {
                    cs.push(slack_idx as u32);
                    vs.push(1.0);
                    basis[r] = slack_idx;
                    row_slack[r] = Some(slack_idx);
                    slack_home.push(r);
                    slack_idx += 1;
                }
                Relation::Ge => {
                    cs.push(slack_idx as u32);
                    vs.push(-1.0); // surplus
                    row_slack[r] = Some(slack_idx);
                    slack_home.push(r);
                    slack_idx += 1;
                    cs.push(art_idx as u32);
                    vs.push(1.0);
                    basis[r] = art_idx;
                    artificials.push(art_idx);
                    art_idx += 1;
                }
                Relation::Eq => {
                    cs.push(art_idx as u32);
                    vs.push(1.0);
                    basis[r] = art_idx;
                    artificials.push(art_idx);
                    art_idx += 1;
                }
            }
            rows_c.push(cs);
            rows_v.push(vs);
            rhs.push(row.rhs);
        }

        Standardized {
            n,
            num_slack,
            artificials,
            row_slack,
            slack_home,
            t: SparseTableau {
                rows_c,
                rows_v,
                rhs,
                z: vec![0.0; cols],
                basis,
                cols,
                pivots: 0,
                scratch_c: Vec::new(),
                scratch_v: Vec::new(),
            },
        }
    }
}

/// The sparse tableau: per-row sorted supports over the standardized
/// columns, a dense objective row, and a dense RHS column.
struct SparseTableau {
    /// Per row, the ascending column ids of the nonzero entries
    /// (decision, slack and artificial columns; never the RHS).
    rows_c: Vec<Vec<u32>>,
    /// Values parallel to `rows_c`. An exact `0.0` is never stored —
    /// entries cancelling to zero are dropped, mirroring the dense
    /// tableau's explicit zeroing.
    rows_v: Vec<Vec<f64>>,
    /// Right-hand side per row (the dense tableau's last column).
    rhs: Vec<f64>,
    /// Objective row, dense (cost slots plus the objective value slot
    /// at `cols - 1`).
    z: Vec<f64>,
    /// Basis: for each row, the index of its basic variable.
    basis: Vec<usize>,
    cols: usize,
    /// Pivot operations performed; reported as the `lp.pivots` metric
    /// (deterministic: pivoting order is a pure function of the
    /// problem and the warm hint).
    pivots: u64,
    /// Merge buffers reused across pivots.
    scratch_c: Vec<u32>,
    scratch_v: Vec<f64>,
}

impl SparseTableau {
    fn num_rows(&self) -> usize {
        self.rhs.len()
    }

    /// The entry at `(row, col)` (0.0 when absent from the support).
    fn get(&self, row: usize, col: usize) -> f64 {
        match self.rows_c[row].binary_search(&(col as u32)) {
            Ok(i) => self.rows_v[row][i],
            Err(_) => 0.0,
        }
    }

    fn pivot(&mut self, row: usize, col: usize) {
        self.pivots += 1;
        let piv = self.get(row, col);
        debug_assert!(piv.abs() > TOL, "pivot too small: {piv}");
        let inv = 1.0 / piv;
        for v in &mut self.rows_v[row] {
            *v *= inv;
        }
        self.rhs[row] *= inv;
        // Take the pivot row out so it can be read while other rows
        // are rewritten (put back below).
        let pc = std::mem::take(&mut self.rows_c[row]);
        let pv = std::mem::take(&mut self.rows_v[row]);
        let prhs = self.rhs[row];
        let mut out_c = std::mem::take(&mut self.scratch_c);
        let mut out_v = std::mem::take(&mut self.scratch_v);
        for r in 0..self.rhs.len() {
            if r == row {
                continue;
            }
            let factor = match self.rows_c[r].binary_search(&(col as u32)) {
                Ok(i) => self.rows_v[r][i],
                Err(_) => continue,
            };
            if factor.abs() > TOL {
                merge_sub(
                    &self.rows_c[r],
                    &self.rows_v[r],
                    factor,
                    &pc,
                    &pv,
                    col as u32,
                    &mut out_c,
                    &mut out_v,
                );
                std::mem::swap(&mut self.rows_c[r], &mut out_c);
                std::mem::swap(&mut self.rows_v[r], &mut out_v);
                self.rhs[r] -= factor * prhs;
            }
        }
        let zf = self.z[col];
        if zf.abs() > TOL {
            for (c, v) in pc.iter().zip(&pv) {
                self.z[*c as usize] -= zf * v;
            }
            self.z[self.cols - 1] -= zf * prhs;
            self.z[col] = 0.0;
        }
        self.rows_c[row] = pc;
        self.rows_v[row] = pv;
        self.scratch_c = out_c;
        self.scratch_v = out_v;
        self.basis[row] = col;
    }

    /// Runs simplex iterations (maximization of the `z` row in the form
    /// where reduced costs appear negated). Returns `false` when the
    /// problem is unbounded. `active_cols` limits the entering columns.
    fn optimize(&mut self, active_cols: usize) -> bool {
        let mut stalled = 0usize;
        let stall_threshold = 64 + 4 * self.num_rows();
        loop {
            // Entering column: Dantzig (most negative) or Bland when
            // degenerate pivoting threatens to cycle.
            let entering = if stalled < stall_threshold {
                let mut best: Option<(usize, f64)> = None;
                for c in 0..active_cols {
                    let v = self.z[c];
                    if v < -TOL && best.is_none_or(|(_, bv)| v < bv) {
                        best = Some((c, v));
                    }
                }
                best.map(|(c, _)| c)
            } else {
                (0..active_cols).find(|&c| self.z[c] < -TOL)
            };
            let Some(col) = entering else {
                return true; // optimal
            };
            // Leaving row: minimum ratio test (Bland ties by basis index).
            let mut leave: Option<(usize, f64)> = None;
            for r in 0..self.num_rows() {
                let coef = self.get(r, col);
                if coef > TOL {
                    let ratio = self.rhs[r] / coef;
                    let better = match leave {
                        None => true,
                        Some((lr, lratio)) => {
                            ratio < lratio - TOL
                                || (ratio < lratio + TOL && self.basis[r] < self.basis[lr])
                        }
                    };
                    if better {
                        leave = Some((r, ratio));
                    }
                }
            }
            let Some((row, ratio)) = leave else {
                return false; // unbounded
            };
            if ratio.abs() < TOL {
                stalled += 1;
            } else {
                stalled = 0;
            }
            self.pivot(row, col);
        }
    }
}

/// `target := target - factor · pivot_row`, merged over sorted
/// supports into `out_c`/`out_v`. The pivot column is dropped (the
/// dense path forces it to exact zero) and entries cancelling to an
/// exact zero are dropped (the dense path stores the zero; the two are
/// equivalent under the tolerance gates).
#[allow(clippy::too_many_arguments)]
fn merge_sub(
    tc: &[u32],
    tv: &[f64],
    factor: f64,
    pc: &[u32],
    pv: &[f64],
    skip: u32,
    out_c: &mut Vec<u32>,
    out_v: &mut Vec<f64>,
) {
    out_c.clear();
    out_v.clear();
    out_c.reserve(tc.len() + pc.len());
    out_v.reserve(tc.len() + pc.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < tc.len() || j < pc.len() {
        let tcol = if i < tc.len() { tc[i] } else { u32::MAX };
        let pcol = if j < pc.len() { pc[j] } else { u32::MAX };
        if tcol < pcol {
            if tcol != skip {
                out_c.push(tcol);
                out_v.push(tv[i]);
            }
            i += 1;
        } else if pcol < tcol {
            // Fill-in: the dense path computes `0.0 - factor · pv`.
            let nv = 0.0 - factor * pv[j];
            if pcol != skip && nv != 0.0 {
                out_c.push(pcol);
                out_v.push(nv);
            }
            j += 1;
        } else {
            let nv = tv[i] - factor * pv[j];
            if tcol != skip && nv != 0.0 {
                out_c.push(tcol);
                out_v.push(nv);
            }
            i += 1;
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x+5y st x<=4, 2y<=12, 3x+2y<=18 -> x=2,y=6,obj=36.
        let mut p = Problem::maximize(&[3.0, 5.0]);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 4.0);
        p.add_constraint(&[(1, 2.0)], Relation::Le, 12.0);
        p.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
        let s = p.solve().into_optimal().unwrap();
        assert_close(s.objective, 36.0);
        assert_close(s.values[0], 2.0);
        assert_close(s.values[1], 6.0);
    }

    #[test]
    fn minimization_with_ge() {
        // min 2x+3y st x+y>=10, x>=3 -> x=10,y=0? obj 20 (x cheapest).
        let mut p = Problem::minimize(&[2.0, 3.0]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 10.0);
        p.add_constraint(&[(0, 1.0)], Relation::Ge, 3.0);
        let s = p.solve().into_optimal().unwrap();
        assert_close(s.objective, 20.0);
        assert_close(s.values[0], 10.0);
    }

    #[test]
    fn equality_constraints() {
        // max x+y st x+y=5, x<=2 -> obj 5, x=2,y=3 (or any on segment).
        let mut p = Problem::maximize(&[1.0, 1.0]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 5.0);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 2.0);
        let s = p.solve().into_optimal().unwrap();
        assert_close(s.objective, 5.0);
        assert!(s.values[0] <= 2.0 + 1e-9);
        assert_close(s.values[0] + s.values[1], 5.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::maximize(&[1.0]);
        p.add_constraint(&[(0, 1.0)], Relation::Ge, 5.0);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 3.0);
        assert!(p.solve().is_infeasible());
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::maximize(&[1.0, 1.0]);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 3.0); // y unbounded
        assert_eq!(p.solve(), Outcome::Unbounded);
    }

    #[test]
    fn negative_rhs_normalization() {
        // max -x st -x >= -4 (i.e. x <= 4); optimum x=0, obj 0.
        let mut p = Problem::maximize(&[-1.0]);
        p.add_constraint(&[(0, -1.0)], Relation::Ge, -4.0);
        let s = p.solve().into_optimal().unwrap();
        assert_close(s.objective, 0.0);
        // min -x with same constraint -> x=4, obj -4.
        let mut p = Problem::minimize(&[-1.0]);
        p.add_constraint(&[(0, -1.0)], Relation::Ge, -4.0);
        let s = p.solve().into_optimal().unwrap();
        assert_close(s.objective, -4.0);
        assert_close(s.values[0], 4.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate LP (multiple constraints tight at origin).
        let mut p = Problem::maximize(&[0.75, -150.0, 0.02, -6.0]);
        p.add_constraint(
            &[(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(
            &[(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(&[(2, 1.0)], Relation::Le, 1.0);
        let s = p
            .solve()
            .into_optimal()
            .expect("Beale's example is bounded");
        assert_close(s.objective, 0.05);
    }

    #[test]
    fn redundant_equalities() {
        let mut p = Problem::maximize(&[1.0]);
        p.add_constraint(&[(0, 1.0)], Relation::Eq, 2.0);
        p.add_constraint(&[(0, 2.0)], Relation::Eq, 4.0); // same constraint
        let s = p.solve().into_optimal().unwrap();
        assert_close(s.values[0], 2.0);
    }

    #[test]
    fn aprad_shaped_problem() {
        // Three APs on a line at 0, 10, 25. Pairs (0,1) co-observed
        // (r0+r1 >= 10); (1,2) and (0,2) not (r1+r2 <= 15-eps,
        // r0+r2 <= 25-eps). Maximize sum with caps at 20.
        let eps = 1e-3;
        let mut p = Problem::maximize(&[1.0, 1.0, 1.0]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 10.0);
        p.add_constraint(&[(1, 1.0), (2, 1.0)], Relation::Le, 15.0 - eps);
        p.add_constraint(&[(0, 1.0), (2, 1.0)], Relation::Le, 25.0 - eps);
        for i in 0..3 {
            p.add_upper_bound(i, 20.0);
        }
        let s = p.solve().into_optimal().unwrap();
        // Feasibility of the reported solution.
        let r = &s.values;
        assert!(r[0] + r[1] >= 10.0 - 1e-6);
        assert!(r[1] + r[2] <= 15.0 - eps + 1e-6);
        assert!(r[0] + r[2] <= 25.0 - eps + 1e-6);
        for &v in r {
            assert!((0.0..=20.0 + 1e-6).contains(&v));
        }
        // Optimal: r0=20 (cap), then r0+r2<=25-eps -> r2 = 5-eps; r1+r2<=15-eps
        // -> r1 = 10. Sum = 35 - 2eps... check optimum ≈ 35.
        assert!((s.objective - 35.0).abs() < 0.1, "obj {}", s.objective);
    }

    #[test]
    fn no_constraints_bounded_only_if_costs_nonpositive() {
        let p = Problem::maximize(&[-1.0, -2.0]);
        let s = p.solve().into_optimal().unwrap();
        assert_close(s.objective, 0.0);
        let p = Problem::maximize(&[1.0]);
        assert_eq!(p.solve(), Outcome::Unbounded);
    }

    #[test]
    fn larger_random_feasible_problem() {
        // Diagonally dominant system with known feasible interior point.
        let n = 25;
        let c: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let mut p = Problem::maximize(&c);
        for i in 0..n {
            // x_i + 0.1 x_{i+1} <= 2
            p.add_constraint(&[(i, 1.0), ((i + 1) % n, 0.1)], Relation::Le, 2.0);
        }
        let s = p.solve().into_optimal().unwrap();
        // Solution must satisfy all constraints.
        for i in 0..n {
            assert!(s.values[i] + 0.1 * s.values[(i + 1) % n] <= 2.0 + 1e-6);
            assert!(s.values[i] >= -1e-9);
        }
        // Symmetric problem: every x_i = 2/1.1.
        for i in 0..n {
            assert!((s.values[i] - 2.0 / 1.1).abs() < 1e-6);
        }
    }

    #[test]
    fn duplicate_coefficients_accumulate() {
        // 2x (as 1x + 1x) <= 4 -> x <= 2.
        let mut p = Problem::maximize(&[1.0]);
        p.add_constraint(&[(0, 1.0), (0, 1.0)], Relation::Le, 4.0);
        let s = p.solve().into_optimal().unwrap();
        assert_close(s.values[0], 2.0);
    }

    #[test]
    fn cold_path_matches_dense_reference_bit_for_bit() {
        // The headline contract of the rewrite: same pivots, same bits.
        let problems = test_problem_zoo();
        for (name, p) in &problems {
            let report = run(p, None);
            let (dense_outcome, dense_pivots) = crate::dense::solve_counted(p);
            assert_eq!(
                report.pivots, dense_pivots,
                "{name}: pivot count diverged from dense reference"
            );
            match (&report.outcome, &dense_outcome) {
                (Outcome::Optimal(s), Outcome::Optimal(d)) => {
                    // `+ 0.0` canonicalizes -0.0 so the bit compare
                    // ignores zero signs (unobservable either way).
                    assert_eq!(
                        (s.objective + 0.0).to_bits(),
                        (d.objective + 0.0).to_bits(),
                        "{name}: objective bits diverged"
                    );
                    for (i, (sv, dv)) in s.values.iter().zip(&d.values).enumerate() {
                        assert_eq!(
                            (sv + 0.0).to_bits(),
                            (dv + 0.0).to_bits(),
                            "{name}: value {i} diverged: {sv} vs {dv}"
                        );
                    }
                }
                (a, b) => assert_eq!(a, b, "{name}: outcome kind diverged"),
            }
        }
    }

    #[test]
    fn warm_start_with_own_basis_takes_zero_optimizing_pivots() {
        let (_, p) = &test_problem_zoo()[0];
        let cold = solve_with_basis(p, None);
        assert!(!cold.warm_start_used);
        assert!(cold.pivots > 0);
        let warm = solve_with_basis(
            p,
            Some(&WarmStart {
                rows: cold.basis.clone(),
            }),
        );
        assert!(warm.warm_start_used, "optimal basis must be feasible");
        assert_eq!(
            warm.pivots - warm.setup_pivots,
            0,
            "re-solving from the optimal basis must need no optimizing pivots"
        );
        let co = cold.outcome.into_optimal().unwrap();
        let wo = warm.outcome.into_optimal().unwrap();
        assert!((co.objective - wo.objective).abs() < 1e-9);
    }

    #[test]
    fn warm_start_infeasible_basis_falls_back_cold() {
        // max x+y st x+y <= 4, x <= 2. Basis {x in row 0} puts x = 4,
        // which drives row 1's slack to 2 - 4 < 0: primal infeasible,
        // so the warm attempt must fall back and still find the
        // optimum.
        let mut p = Problem::maximize(&[1.0, 1.0]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Le, 4.0);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 2.0);
        let warm = WarmStart {
            rows: vec![BasisHint::Decision(0), BasisHint::Slack],
        };
        let report = solve_with_basis(&p, Some(&warm));
        assert!(!report.warm_start_used, "infeasible hint must miss");
        let s = report.outcome.into_optimal().unwrap();
        assert_close(s.objective, 4.0);
    }

    #[test]
    fn warm_start_declined_for_ge_programs() {
        let mut p = Problem::minimize(&[2.0, 3.0]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 10.0);
        let warm = WarmStart {
            rows: vec![BasisHint::Decision(0)],
        };
        let report = solve_with_basis(&p, Some(&warm));
        assert!(!report.warm_start_used);
        let s = report.outcome.into_optimal().unwrap();
        assert_close(s.objective, 20.0);
    }

    #[test]
    fn warm_start_after_added_row_saves_pivots() {
        // An AP-Rad-shaped program solved cold, then re-solved with one
        // extra (loose) pair row: the old basis stays feasible and the
        // warm solve should need far fewer optimizing pivots.
        let n = 30;
        let build = |extra: bool| {
            let mut p = Problem::maximize(&vec![1.0; n]);
            for i in 0..n {
                p.add_upper_bound(i, 100.0);
            }
            for i in 0..n - 1 {
                p.add_constraint(&[(i, 1.0), (i + 1, 1.0)], Relation::Le, 150.0);
            }
            if extra {
                p.add_constraint(&[(0, 1.0), (n - 1, 1.0)], Relation::Le, 190.0);
            }
            p
        };
        let cold = solve_with_basis(&build(false), None);
        let mut rows = cold.basis.clone();
        rows.push(BasisHint::Slack); // the new row starts slack-basic
        let grown = build(true);
        let warm = solve_with_basis(&grown, Some(&WarmStart { rows }));
        assert!(warm.warm_start_used);
        let cold_grown = solve_with_basis(&grown, None);
        let warm_opt = warm.pivots - warm.setup_pivots;
        assert!(
            warm_opt * 4 < cold_grown.pivots.max(1),
            "warm optimizing pivots {warm_opt} not < 25% of cold {}",
            cold_grown.pivots
        );
        let wo = warm.outcome.into_optimal().unwrap();
        let co = cold_grown.outcome.into_optimal().unwrap();
        assert!((wo.objective - co.objective).abs() < 1e-6);
    }

    /// A small zoo of structurally varied programs shared by the
    /// equivalence tests.
    fn test_problem_zoo() -> Vec<(&'static str, Problem)> {
        let mut zoo = Vec::new();

        let mut p = Problem::maximize(&[3.0, 5.0]);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 4.0);
        p.add_constraint(&[(1, 2.0)], Relation::Le, 12.0);
        p.add_constraint(&[(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
        zoo.push(("textbook", p));

        let mut p = Problem::minimize(&[2.0, 3.0]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 10.0);
        p.add_constraint(&[(0, 1.0)], Relation::Ge, 3.0);
        zoo.push(("min_ge", p));

        let mut p = Problem::maximize(&[1.0, 1.0]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Eq, 5.0);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 2.0);
        zoo.push(("equality", p));

        let mut p = Problem::maximize(&[1.0]);
        p.add_constraint(&[(0, 1.0)], Relation::Ge, 5.0);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 3.0);
        zoo.push(("infeasible", p));

        let mut p = Problem::maximize(&[0.75, -150.0, 0.02, -6.0]);
        p.add_constraint(
            &[(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(
            &[(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(&[(2, 1.0)], Relation::Le, 1.0);
        zoo.push(("beale", p));

        let eps = 1e-3;
        let mut p = Problem::maximize(&[1.0, 1.0, 1.0]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Relation::Ge, 10.0);
        p.add_constraint(&[(1, 1.0), (2, 1.0)], Relation::Le, 15.0 - eps);
        p.add_constraint(&[(0, 1.0), (2, 1.0)], Relation::Le, 25.0 - eps);
        for i in 0..3 {
            p.add_upper_bound(i, 20.0);
        }
        zoo.push(("aprad_shaped", p));

        let n = 25;
        let c: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let mut p = Problem::maximize(&c);
        for i in 0..n {
            p.add_constraint(&[(i, 1.0), ((i + 1) % n, 0.1)], Relation::Le, 2.0);
        }
        zoo.push(("ring", p));

        let mut p = Problem::maximize(&[-1.0]);
        p.add_constraint(&[(0, -1.0)], Relation::Ge, -4.0);
        zoo.push(("neg_rhs", p));

        zoo
    }
}
