//! Linear-program model: variables, objective and constraints.

use crate::simplex::{self, Outcome};
use std::fmt;

/// Direction of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `aᵀx ≤ b`
    Le,
    /// `aᵀx ≥ b`
    Ge,
    /// `aᵀx = b`
    Eq,
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Relation::Le => "<=",
            Relation::Ge => ">=",
            Relation::Eq => "=",
        })
    }
}

/// One linear constraint in sparse form.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// `(variable index, coefficient)` pairs; unmentioned variables have
    /// coefficient 0.
    pub coeffs: Vec<(usize, f64)>,
    /// Constraint direction.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program over non-negative variables.
///
/// Build with [`Problem::maximize`] or [`Problem::minimize`], add
/// constraints, then [`solve`](Problem::solve). See the
/// [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct Problem {
    objective: Vec<f64>,
    maximize: bool,
    constraints: Vec<Constraint>,
}

impl Problem {
    /// A maximization problem with the given objective coefficients (one
    /// per variable).
    pub fn maximize(objective: &[f64]) -> Self {
        Problem {
            objective: objective.to_vec(),
            maximize: true,
            constraints: Vec::new(),
        }
    }

    /// A minimization problem with the given objective coefficients.
    pub fn minimize(objective: &[f64]) -> Self {
        Problem {
            objective: objective.to_vec(),
            maximize: false,
            constraints: Vec::new(),
        }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Whether this is a maximization problem.
    pub fn is_maximize(&self) -> bool {
        self.maximize
    }

    /// The objective coefficient vector.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// The constraints added so far.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Adds the constraint `Σ coeffs[k].1 · x[coeffs[k].0] relation rhs`.
    ///
    /// Repeated variable indices are summed.
    ///
    /// # Panics
    ///
    /// Panics when a variable index is out of range or a coefficient/rhs
    /// is not finite.
    pub fn add_constraint(&mut self, coeffs: &[(usize, f64)], relation: Relation, rhs: f64) {
        assert!(rhs.is_finite(), "constraint rhs must be finite, got {rhs}");
        for &(i, c) in coeffs {
            assert!(
                i < self.num_vars(),
                "variable index {i} out of range (have {} variables)",
                self.num_vars()
            );
            assert!(c.is_finite(), "coefficient must be finite, got {c}");
        }
        self.constraints.push(Constraint {
            coeffs: coeffs.to_vec(),
            relation,
            rhs,
        });
    }

    /// Convenience: adds an upper bound `x[i] ≤ bound`.
    pub fn add_upper_bound(&mut self, i: usize, bound: f64) {
        self.add_constraint(&[(i, 1.0)], Relation::Le, bound);
    }

    /// Solves the program with the two-phase simplex method.
    pub fn solve(&self) -> Outcome {
        simplex::solve(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let mut p = Problem::maximize(&[1.0, 2.0]);
        assert_eq!(p.num_vars(), 2);
        assert!(p.is_maximize());
        assert_eq!(p.num_constraints(), 0);
        p.add_constraint(&[(0, 1.0)], Relation::Le, 1.0);
        assert_eq!(p.num_constraints(), 1);
        assert_eq!(p.constraints()[0].relation, Relation::Le);
        assert!(!Problem::minimize(&[1.0]).is_maximize());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_variable_index_panics() {
        let mut p = Problem::maximize(&[1.0]);
        p.add_constraint(&[(3, 1.0)], Relation::Le, 1.0);
    }

    #[test]
    #[should_panic(expected = "rhs must be finite")]
    fn nan_rhs_panics() {
        let mut p = Problem::maximize(&[1.0]);
        p.add_constraint(&[(0, 1.0)], Relation::Le, f64::NAN);
    }

    #[test]
    fn relation_display() {
        assert_eq!(Relation::Le.to_string(), "<=");
        assert_eq!(Relation::Ge.to_string(), ">=");
        assert_eq!(Relation::Eq.to_string(), "=");
    }
}
