//! The retained two-phase **dense** simplex — the reference solver.
//!
//! This is the original tableau implementation the sparse revised
//! simplex in [`simplex`](crate::simplex) replaced on the hot path. It
//! is kept verbatim as an independent oracle: the differential property
//! suite pins the sparse solver's outcomes (status, objective and
//! values, bit for bit on the cold path) against this module, so any
//! divergence in the rewrite shows up as a test failure rather than a
//! silent behavioral drift.
//!
//! The implementation is textbook: constraints are normalized to
//! non-negative right-hand sides, slack variables are added for `≤`,
//! surplus plus artificial variables for `≥`, and artificial variables
//! for `=`. Phase 1 minimizes the sum of artificials (infeasible when
//! positive at optimum); phase 2 optimizes the real objective. Pivoting
//! uses Dantzig's rule with a fallback to Bland's rule after a stall
//! threshold, which guarantees termination on degenerate problems.
//!
//! Unlike [`crate::simplex::solve`], this entry point records no
//! metrics: it is a pure function, safe to call from tests and benches
//! without polluting the `lp.*` counters.

use crate::problem::{Problem, Relation};
use crate::simplex::{Outcome, Solution, TOL};

/// Solves a [`Problem`] with the dense two-phase simplex method.
pub fn solve(problem: &Problem) -> Outcome {
    solve_counted(problem).0
}

/// The solver body, returning the outcome plus the pivot count so the
/// differential suite can also pin pivot-for-pivot equality with the
/// sparse cold path.
pub fn solve_counted(problem: &Problem) -> (Outcome, u64) {
    let n = problem.num_vars();
    let m = problem.num_constraints();

    // Normalize constraints to dense rows with non-negative RHS.
    struct Row {
        coeffs: Vec<f64>,
        relation: Relation,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(m);
    for c in problem.constraints() {
        let mut coeffs = vec![0.0; n];
        for &(i, v) in &c.coeffs {
            coeffs[i] += v;
        }
        let (coeffs, relation, rhs) = if c.rhs < 0.0 {
            let flipped = match c.relation {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
            (coeffs.iter().map(|v| -v).collect(), flipped, -c.rhs)
        } else {
            (coeffs, c.relation, c.rhs)
        };
        rows.push(Row {
            coeffs,
            relation,
            rhs,
        });
    }

    let num_slack = rows
        .iter()
        .filter(|r| matches!(r.relation, Relation::Le | Relation::Ge))
        .count();
    let num_artificial = rows
        .iter()
        .filter(|r| matches!(r.relation, Relation::Ge | Relation::Eq))
        .count();
    let cols = n + num_slack + num_artificial + 1; // + RHS

    let mut a = vec![vec![0.0; cols]; m];
    let mut basis = vec![usize::MAX; m];
    let mut slack_idx = n;
    let mut art_idx = n + num_slack;
    let mut artificials: Vec<usize> = Vec::with_capacity(num_artificial);

    for (r, row) in rows.iter().enumerate() {
        a[r][..n].copy_from_slice(&row.coeffs);
        a[r][cols - 1] = row.rhs;
        match row.relation {
            Relation::Le => {
                a[r][slack_idx] = 1.0;
                basis[r] = slack_idx;
                slack_idx += 1;
            }
            Relation::Ge => {
                a[r][slack_idx] = -1.0; // surplus
                slack_idx += 1;
                a[r][art_idx] = 1.0;
                basis[r] = art_idx;
                artificials.push(art_idx);
                art_idx += 1;
            }
            Relation::Eq => {
                a[r][art_idx] = 1.0;
                basis[r] = art_idx;
                artificials.push(art_idx);
                art_idx += 1;
            }
        }
    }

    let mut t = Tableau {
        a,
        z: vec![0.0; cols],
        basis,
        cols,
        pivots: 0,
    };

    // Phase 1: minimize sum of artificials == maximize -(sum).
    if !artificials.is_empty() {
        for &c in &artificials {
            t.z[c] = 1.0;
        }
        // Make the objective row consistent with the basis (artificials
        // are basic): subtract their rows.
        for r in 0..m {
            if artificials.contains(&t.basis[r]) {
                let row = t.a[r].clone();
                for (v, rv) in t.z.iter_mut().zip(&row) {
                    *v -= rv;
                }
            }
        }
        let bounded = t.optimize(cols - 1);
        debug_assert!(bounded, "phase 1 is always bounded below by 0");
        let phase1_obj = -t.z[cols - 1];
        if phase1_obj > 1e-7 {
            return (Outcome::Infeasible, t.pivots);
        }
        // Drive any remaining basic artificials out (degenerate rows).
        for r in 0..m {
            if artificials.contains(&t.basis[r]) {
                if let Some(c) = (0..n + num_slack).find(|&c| t.a[r][c].abs() > TOL) {
                    t.pivot(r, c);
                }
                // If no pivot column exists the row is all-zero
                // (redundant constraint) and can stay as-is.
            }
        }
        // Erase artificial columns so phase 2 never re-enters them.
        for &c in &artificials {
            for r in 0..m {
                t.a[r][c] = 0.0;
            }
        }
    }

    // Phase 2: the real objective. Simplex maximizes; minimization
    // negates the costs.
    let sign = if problem.is_maximize() { 1.0 } else { -1.0 };
    t.z = vec![0.0; cols];
    for (i, &c) in problem.objective().iter().enumerate() {
        t.z[i] = -sign * c;
    }
    // Make the objective row consistent with the current basis.
    for r in 0..m {
        let b = t.basis[r];
        if b < cols - 1 && t.z[b].abs() > TOL {
            let factor = t.z[b];
            let row = t.a[r].clone();
            for (v, rv) in t.z.iter_mut().zip(&row) {
                *v -= factor * rv;
            }
            t.z[b] = 0.0;
        }
    }
    if !t.optimize(n + num_slack) {
        return (Outcome::Unbounded, t.pivots);
    }

    let mut values = vec![0.0; n];
    for (r, &b) in t.basis.iter().enumerate() {
        if b < n {
            values[b] = t.a[r][cols - 1];
        }
    }
    let objective: f64 = problem
        .objective()
        .iter()
        .zip(&values)
        .map(|(c, v)| c * v)
        .sum();
    (Outcome::Optimal(Solution { values, objective }), t.pivots)
}

struct Tableau {
    /// `rows × cols` coefficient matrix; the last column is the RHS.
    a: Vec<Vec<f64>>,
    /// Objective row (cost coefficients, last entry = objective value
    /// negated by simplex convention).
    z: Vec<f64>,
    /// Basis: for each row, the index of its basic variable.
    basis: Vec<usize>,
    cols: usize,
    /// Pivot operations performed, across both phases.
    pivots: u64,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        self.pivots += 1;
        let piv = self.a[row][col];
        debug_assert!(piv.abs() > TOL, "pivot too small: {piv}");
        let inv = 1.0 / piv;
        for v in &mut self.a[row] {
            *v *= inv;
        }
        let pivot_row = self.a[row].clone();
        for (r, a_row) in self.a.iter_mut().enumerate() {
            if r == row {
                continue;
            }
            let factor = a_row[col];
            if factor.abs() > TOL {
                for (v, pv) in a_row.iter_mut().zip(&pivot_row) {
                    *v -= factor * pv;
                }
                a_row[col] = 0.0; // exact zero against drift
            }
        }
        let factor = self.z[col];
        if factor.abs() > TOL {
            for (v, pv) in self.z.iter_mut().zip(&pivot_row) {
                *v -= factor * pv;
            }
            self.z[col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// Runs simplex iterations (maximization of the `z` row in the form
    /// where reduced costs appear negated). Returns `false` when the
    /// problem is unbounded. `active_cols` limits the entering columns.
    fn optimize(&mut self, active_cols: usize) -> bool {
        let mut stalled = 0usize;
        let stall_threshold = 64 + 4 * self.a.len();
        loop {
            // Entering column: Dantzig (most negative) or Bland when
            // degenerate pivoting threatens to cycle.
            let entering = if stalled < stall_threshold {
                let mut best: Option<(usize, f64)> = None;
                for c in 0..active_cols {
                    let v = self.z[c];
                    if v < -TOL && best.is_none_or(|(_, bv)| v < bv) {
                        best = Some((c, v));
                    }
                }
                best.map(|(c, _)| c)
            } else {
                (0..active_cols).find(|&c| self.z[c] < -TOL)
            };
            let Some(col) = entering else {
                return true; // optimal
            };
            // Leaving row: minimum ratio test (Bland ties by basis index).
            let mut leave: Option<(usize, f64)> = None;
            for r in 0..self.a.len() {
                let coef = self.a[r][col];
                if coef > TOL {
                    let ratio = self.a[r][self.cols - 1] / coef;
                    let better = match leave {
                        None => true,
                        Some((lr, lratio)) => {
                            ratio < lratio - TOL
                                || (ratio < lratio + TOL && self.basis[r] < self.basis[lr])
                        }
                    };
                    if better {
                        leave = Some((r, ratio));
                    }
                }
            }
            let Some((row, ratio)) = leave else {
                return false; // unbounded
            };
            if ratio.abs() < TOL {
                stalled += 1;
            } else {
                stalled = 0;
            }
            self.pivot(row, col);
        }
    }
}
