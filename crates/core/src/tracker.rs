//! Trajectory smoothing over localization fixes.
//!
//! The paper localizes each observation window independently; a real
//! tracking adversary would exploit the fact that victims move along
//! continuous paths. This module adds a constant-velocity Kalman filter
//! over the fix sequence — an extension the paper's future-work
//! discussion points toward ("tracking mobiles"), ablated in the
//! benchmark suite.

use crate::pipeline::TrackFix;
use marauder_geo::Point;

/// A 2-D constant-velocity Kalman filter over position fixes.
///
/// State: `[x, y, vx, vy]`; measurements: the M-Loc position estimates,
/// with measurement noise derived from each fix's intersected-area size
/// (a bigger region means a less certain fix).
///
/// # Example
///
/// ```
/// use marauder_core::tracker::KalmanSmoother;
/// let smoother = KalmanSmoother::default();
/// assert!(smoother.process_noise > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KalmanSmoother {
    /// Process noise intensity (m²/s³): how much the velocity is allowed
    /// to wander. Pedestrians: ~0.1–1.
    pub process_noise: f64,
    /// Floor on the per-fix measurement standard deviation, meters.
    pub min_measurement_std: f64,
}

impl Default for KalmanSmoother {
    fn default() -> Self {
        KalmanSmoother {
            process_noise: 0.5,
            min_measurement_std: 5.0,
        }
    }
}

/// One smoothed track point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackPoint {
    /// Fix time, seconds.
    pub time_s: f64,
    /// Smoothed position.
    pub position: Point,
    /// Estimated velocity, m/s.
    pub velocity: (f64, f64),
}

/// 4×4 matrix as row-major array (internal helper).
type Mat4 = [[f64; 4]; 4];

fn mat_mul(a: &Mat4, b: &Mat4) -> Mat4 {
    let mut out = [[0.0; 4]; 4];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            *v = (0..4).map(|k| a[i][k] * b[k][j]).sum();
        }
    }
    out
}

fn mat_add(a: &Mat4, b: &Mat4) -> Mat4 {
    let mut out = *a;
    for i in 0..4 {
        for j in 0..4 {
            out[i][j] += b[i][j];
        }
    }
    out
}

fn transpose(a: &Mat4) -> Mat4 {
    let mut out = [[0.0; 4]; 4];
    for (i, row) in a.iter().enumerate() {
        for (j, v) in row.iter().enumerate() {
            out[j][i] = *v;
        }
    }
    out
}

impl KalmanSmoother {
    /// Runs the filter over time-ordered fixes, returning one smoothed
    /// point per fix. Returns an empty vector for no fixes.
    ///
    /// # Panics
    ///
    /// Panics if the fixes are not sorted by time.
    pub fn smooth(&self, fixes: &[TrackFix]) -> Vec<TrackPoint> {
        let Some(first) = fixes.first() else {
            return Vec::new();
        };
        // State and covariance.
        let mut x = [
            first.estimate.position.x,
            first.estimate.position.y,
            0.0,
            0.0,
        ];
        let mut p: Mat4 = [[0.0; 4]; 4];
        let r0 = self.measurement_var(first);
        p[0][0] = r0;
        p[1][1] = r0;
        p[2][2] = 4.0; // generous initial velocity uncertainty (±2 m/s)
        p[3][3] = 4.0;

        let mut out = Vec::with_capacity(fixes.len());
        out.push(TrackPoint {
            time_s: first.time_s,
            position: first.estimate.position,
            velocity: (0.0, 0.0),
        });
        let mut last_t = first.time_s;

        for fix in &fixes[1..] {
            let dt = fix.time_s - last_t;
            assert!(dt >= 0.0, "fixes must be time-sorted");
            let dt = dt.max(1e-3);
            last_t = fix.time_s;

            // Predict: x' = F x,  P' = F P Fᵀ + Q.
            let f: Mat4 = [
                [1.0, 0.0, dt, 0.0],
                [0.0, 1.0, 0.0, dt],
                [0.0, 0.0, 1.0, 0.0],
                [0.0, 0.0, 0.0, 1.0],
            ];
            let q_pos = self.process_noise * dt * dt * dt / 3.0;
            let q_cross = self.process_noise * dt * dt / 2.0;
            let q_vel = self.process_noise * dt;
            let q: Mat4 = [
                [q_pos, 0.0, q_cross, 0.0],
                [0.0, q_pos, 0.0, q_cross],
                [q_cross, 0.0, q_vel, 0.0],
                [0.0, q_cross, 0.0, q_vel],
            ];
            x = [x[0] + dt * x[2], x[1] + dt * x[3], x[2], x[3]];
            p = mat_add(&mat_mul(&mat_mul(&f, &p), &transpose(&f)), &q);

            // Update with measurement z = (mx, my), H = [I2 0].
            let r = self.measurement_var(fix);
            let (zx, zy) = (fix.estimate.position.x, fix.estimate.position.y);
            // Innovation covariance S = HPHᵀ + R (2x2).
            let s = [[p[0][0] + r, p[0][1]], [p[1][0], p[1][1] + r]];
            let det = s[0][0] * s[1][1] - s[0][1] * s[1][0];
            let s_inv = [
                [s[1][1] / det, -s[0][1] / det],
                [-s[1][0] / det, s[0][0] / det],
            ];
            // Kalman gain K = P Hᵀ S⁻¹ (4x2).
            let mut k = [[0.0; 2]; 4];
            for (i, krow) in k.iter_mut().enumerate() {
                for (j, kv) in krow.iter_mut().enumerate() {
                    *kv = p[i][0] * s_inv[0][j] + p[i][1] * s_inv[1][j];
                }
            }
            let (ix, iy) = (zx - x[0], zy - x[1]);
            for (xi, krow) in x.iter_mut().zip(&k) {
                *xi += krow[0] * ix + krow[1] * iy;
            }
            // P = (I − K H) P.
            let mut ikh: Mat4 = [[0.0; 4]; 4];
            for (i, row) in ikh.iter_mut().enumerate() {
                for (j, v) in row.iter_mut().enumerate() {
                    let kh = if j < 2 { k[i][j] } else { 0.0 };
                    *v = if i == j { 1.0 - kh } else { -kh };
                }
            }
            p = mat_mul(&ikh, &p);

            out.push(TrackPoint {
                time_s: fix.time_s,
                position: Point::new(x[0], x[1]),
                velocity: (x[2], x[3]),
            });
        }
        out
    }

    /// Per-fix measurement variance: the intersected region's "radius"
    /// (√(area/π)) as a 1-σ proxy, floored at `min_measurement_std`.
    fn measurement_var(&self, fix: &TrackFix) -> f64 {
        let area = fix.estimate.area();
        let std = if area.is_finite() && area > 0.0 {
            (area / std::f64::consts::PI).sqrt() / 2.0
        } else {
            self.min_measurement_std
        };
        std.max(self.min_measurement_std).powi(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{CoverageDisc, MLoc};
    use marauder_geo::montecarlo::SplitMix64;
    use marauder_wifi::mac::MacAddr;
    use std::collections::BTreeSet;

    /// Builds a synthetic fix at a given position by running M-Loc on
    /// discs jittered around it.
    fn fix_at(true_pos: Point, t: f64, rng: &mut SplitMix64) -> TrackFix {
        let r = 80.0;
        let discs: Vec<CoverageDisc> = (0..5)
            .map(|_| loop {
                let x = rng.uniform(-r, r);
                let y = rng.uniform(-r, r);
                if x * x + y * y <= r * r {
                    return CoverageDisc::new(Point::new(true_pos.x + x, true_pos.y + y), r);
                }
            })
            .collect();
        let estimate = MLoc::paper().locate(&discs).expect("discs share true_pos");
        TrackFix {
            time_s: t,
            mobile: MacAddr::from_index(1),
            gamma: BTreeSet::new(),
            estimate,
            provenance: crate::pipeline::FixProvenance::MLoc,
        }
    }

    fn straight_walk(n: usize, dt: f64, speed: f64, seed: u64) -> (Vec<TrackFix>, Vec<Point>) {
        let mut rng = SplitMix64::new(seed);
        let mut fixes = Vec::new();
        let mut truth = Vec::new();
        for k in 0..n {
            let t = k as f64 * dt;
            let pos = Point::new(speed * t, 20.0);
            truth.push(pos);
            fixes.push(fix_at(pos, t, &mut rng));
        }
        (fixes, truth)
    }

    fn rms(points: &[Point], truth: &[Point]) -> f64 {
        let sum: f64 = points
            .iter()
            .zip(truth)
            .map(|(p, t)| p.distance_sq(*t))
            .sum();
        (sum / points.len() as f64).sqrt()
    }

    #[test]
    fn empty_and_single_fix() {
        let s = KalmanSmoother::default();
        assert!(s.smooth(&[]).is_empty());
        let mut rng = SplitMix64::new(1);
        let f = fix_at(Point::new(10.0, 10.0), 0.0, &mut rng);
        let out = s.smooth(std::slice::from_ref(&f));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].position, f.estimate.position);
    }

    #[test]
    fn smoothing_reduces_rms_error_on_a_straight_walk() {
        let (fixes, truth) = straight_walk(40, 10.0, 1.4, 7);
        let raw: Vec<Point> = fixes.iter().map(|f| f.estimate.position).collect();
        let smoothed: Vec<Point> = KalmanSmoother::default()
            .smooth(&fixes)
            .iter()
            .map(|p| p.position)
            .collect();
        // Compare on the second half, after the filter has converged.
        let h = truth.len() / 2;
        let e_raw = rms(&raw[h..], &truth[h..]);
        let e_smooth = rms(&smoothed[h..], &truth[h..]);
        assert!(
            e_smooth < e_raw * 0.9,
            "smoothing did not help: {e_smooth} vs raw {e_raw}"
        );
    }

    #[test]
    fn velocity_estimate_converges() {
        let (fixes, _) = straight_walk(60, 10.0, 1.4, 3);
        let out = KalmanSmoother::default().smooth(&fixes);
        // Instantaneous velocity is noisy; average the converged tail.
        let tail = &out[out.len() - 20..];
        let vx = tail.iter().map(|p| p.velocity.0).sum::<f64>() / tail.len() as f64;
        let vy = tail.iter().map(|p| p.velocity.1).sum::<f64>() / tail.len() as f64;
        assert!((vx - 1.4).abs() < 0.5, "vx {vx}");
        assert!(vy.abs() < 0.5, "vy {vy}");
    }

    #[test]
    #[should_panic(expected = "time-sorted")]
    fn unsorted_fixes_panic() {
        let mut rng = SplitMix64::new(5);
        let a = fix_at(Point::ORIGIN, 10.0, &mut rng);
        let b = fix_at(Point::ORIGIN, 5.0, &mut rng);
        let _ = KalmanSmoother::default().smooth(&[a, b]);
    }

    #[test]
    fn stationary_target_collapses_to_mean() {
        let mut rng = SplitMix64::new(11);
        let truth = Point::new(50.0, -30.0);
        let fixes: Vec<TrackFix> = (0..50)
            .map(|k| fix_at(truth, k as f64 * 5.0, &mut rng))
            .collect();
        let out = KalmanSmoother {
            process_noise: 0.05,
            ..Default::default()
        }
        .smooth(&fixes);
        let last = out.last().expect("non-empty");
        let raw_err: f64 = fixes
            .iter()
            .map(|f| f.estimate.position.distance(truth))
            .sum::<f64>()
            / fixes.len() as f64;
        assert!(
            last.position.distance(truth) < raw_err,
            "converged estimate {} not better than raw mean error {raw_err}",
            last.position.distance(truth)
        );
    }
}
