//! GeoJSON rendering of the Marauder's Map display (paper Fig. 7).
//!
//! The paper overlays AP positions, the mobile's real location (red
//! tags) and the estimated location (blue tags) on Google Maps. This
//! module emits the same information as a GeoJSON `FeatureCollection`,
//! loadable in any modern map viewer. Planar coordinates are converted
//! back to WGS-84 through an [`EnuFrame`] when one is supplied;
//! otherwise raw meters are emitted (handy for plotting tools).

use crate::apdb::ApRecord;
use crate::pipeline::TrackFix;
use marauder_geo::{EnuFrame, Point};
use std::fmt::Write as _;

/// Builds a GeoJSON document feature by feature.
///
/// # Example
///
/// ```
/// use marauder_core::map::MapBuilder;
/// use marauder_geo::Point;
///
/// let mut map = MapBuilder::planar();
/// map.add_marker(Point::new(10.0, 5.0), "ap", "cafe-wifi");
/// let geojson = map.finish();
/// assert!(geojson.contains("FeatureCollection"));
/// assert!(geojson.contains("cafe-wifi"));
/// ```
#[derive(Debug, Clone)]
pub struct MapBuilder {
    frame: Option<EnuFrame>,
    features: Vec<String>,
}

impl MapBuilder {
    /// A builder emitting raw planar coordinates (meters).
    pub fn planar() -> Self {
        MapBuilder {
            frame: None,
            features: Vec::new(),
        }
    }

    /// A builder converting planar points to WGS-84 through `frame`.
    pub fn georeferenced(frame: EnuFrame) -> Self {
        MapBuilder {
            frame: Some(frame),
            features: Vec::new(),
        }
    }

    fn coords(&self, p: Point) -> (f64, f64) {
        match &self.frame {
            Some(frame) => {
                let g = frame.plane_to_geodetic(p);
                (g.lon_deg, g.lat_deg)
            }
            None => (p.x, p.y),
        }
    }

    /// Adds a point feature with a `kind` and `label` property.
    pub fn add_marker(&mut self, p: Point, kind: &str, label: &str) {
        let (x, y) = self.coords(p);
        self.features.push(format!(
            r#"{{"type":"Feature","geometry":{{"type":"Point","coordinates":[{x:.8},{y:.8}]}},"properties":{{"kind":{},"label":{}}}}}"#,
            json_string(kind),
            json_string(label)
        ));
    }

    /// Adds an access point from the knowledge database.
    pub fn add_ap(&mut self, rec: &ApRecord) {
        let label = rec.ssid.as_deref().unwrap_or("");
        let full = format!("{} {}", rec.bssid, label);
        self.add_marker(rec.location, "ap", full.trim());
        if let Some(r) = rec.radius {
            self.add_circle(rec.location, r, "ap-coverage", label);
        }
    }

    /// Adds the mobile's real location — the paper's red tag.
    pub fn add_true_position(&mut self, p: Point, label: &str) {
        self.add_marker(p, "true-position", label);
    }

    /// Adds a tracking fix — estimated position (the paper's blue tag)
    /// plus the intersected-region vertices as a polygon when available.
    pub fn add_fix(&mut self, fix: &TrackFix) {
        let label = format!("{} @ {:.0}s", fix.mobile, fix.time_s);
        self.add_marker(fix.estimate.position, "estimate", &label);
        let verts = fix.estimate.region.vertices();
        if verts.len() >= 3 {
            let pts: Vec<Point> = verts.to_vec();
            self.add_polygon(&pts, "estimate-region", &label);
        }
    }

    /// Adds a circle approximated by a 64-gon.
    pub fn add_circle(&mut self, center: Point, radius: f64, kind: &str, label: &str) {
        let pts: Vec<Point> = (0..64)
            .map(|i| {
                let a = i as f64 * std::f64::consts::TAU / 64.0;
                Point::new(center.x + radius * a.cos(), center.y + radius * a.sin())
            })
            .collect();
        self.add_polygon(&pts, kind, label);
    }

    /// Adds a polygon feature (the ring is closed automatically).
    ///
    /// # Panics
    ///
    /// Panics with fewer than 3 points.
    pub fn add_polygon(&mut self, points: &[Point], kind: &str, label: &str) {
        assert!(points.len() >= 3, "polygon needs >= 3 points");
        let mut ring = String::new();
        for p in points.iter().chain(std::iter::once(&points[0])) {
            let (x, y) = self.coords(*p);
            if !ring.is_empty() {
                ring.push(',');
            }
            let _ = write!(ring, "[{x:.8},{y:.8}]");
        }
        self.features.push(format!(
            r#"{{"type":"Feature","geometry":{{"type":"Polygon","coordinates":[[{ring}]]}},"properties":{{"kind":{},"label":{}}}}}"#,
            json_string(kind),
            json_string(label)
        ));
    }

    /// Number of features added so far.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// `true` when no features were added.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Serializes the `FeatureCollection`.
    pub fn finish(self) -> String {
        format!(
            r#"{{"type":"FeatureCollection","features":[{}]}}"#,
            self.features.join(",")
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use marauder_geo::Geodetic;
    use marauder_wifi::mac::MacAddr;

    #[test]
    fn empty_collection_is_valid() {
        let map = MapBuilder::planar();
        assert!(map.is_empty());
        let s = map.finish();
        assert_eq!(s, r#"{"type":"FeatureCollection","features":[]}"#);
    }

    #[test]
    fn markers_and_polygons() {
        let mut map = MapBuilder::planar();
        map.add_marker(Point::new(1.0, 2.0), "ap", "x");
        map.add_circle(Point::ORIGIN, 10.0, "coverage", "c");
        assert_eq!(map.len(), 2);
        let s = map.finish();
        assert!(s.contains(r#""type":"Point""#));
        assert!(s.contains(r#""type":"Polygon""#));
        assert!(s.contains("[1.00000000,2.00000000]"));
    }

    #[test]
    fn georeferenced_emits_lon_lat() {
        let frame = EnuFrame::new(Geodetic::new(42.6555, -71.3251, 30.0));
        let mut map = MapBuilder::georeferenced(frame);
        map.add_marker(Point::ORIGIN, "sniffer", "rig");
        let s = map.finish();
        // The origin maps back to the frame origin's lon/lat.
        assert!(s.contains("-71.325"), "{s}");
        assert!(s.contains("42.655"), "{s}");
    }

    #[test]
    fn ap_record_with_radius_adds_coverage() {
        let rec = ApRecord {
            bssid: MacAddr::from_index(1),
            ssid: Some("net".into()),
            location: Point::new(5.0, 5.0),
            radius: Some(50.0),
        };
        let mut map = MapBuilder::planar();
        map.add_ap(&rec);
        assert_eq!(map.len(), 2); // marker + coverage circle
        let s = map.finish();
        assert!(s.contains("ap-coverage"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b"), r#""a\"b""#);
        assert_eq!(json_string("a\\b"), r#""a\\b""#);
        assert_eq!(json_string("a\nb"), r#""a\nb""#);
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
        let mut map = MapBuilder::planar();
        map.add_marker(Point::ORIGIN, "k", "evil\"label");
        assert!(map.finish().contains(r#"evil\"label"#));
    }

    #[test]
    #[should_panic(expected = "polygon needs")]
    fn tiny_polygon_panics() {
        let mut map = MapBuilder::planar();
        map.add_polygon(&[Point::ORIGIN, Point::new(1.0, 0.0)], "k", "l");
    }
}
