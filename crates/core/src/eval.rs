//! Accuracy evaluation (Figs. 13–17).
//!
//! The paper reports: a histogram of estimation errors (Fig. 13), mean
//! error vs. the minimum number of communicable APs (Fig. 14), the size
//! of the intersected area vs. that minimum (Fig. 15), and the
//! probability that the intersected area covers the true location
//! (Fig. 16). This module computes all of them from per-fix records.

use crate::pipeline::FixProvenance;
use std::collections::BTreeMap;
use std::fmt;

/// One localization attempt scored against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixRecord {
    /// Number of communicable APs used for the fix.
    pub k: usize,
    /// Estimation error, meters.
    pub error_m: f64,
    /// Size of the intersected area, m² (`NaN` for estimators without a
    /// region, e.g. Centroid).
    pub area_m2: f64,
    /// Whether the intersected area covered the true location (`false`
    /// for estimators without a region).
    pub covered: bool,
    /// Which rung of the degradation ladder produced the fix (plain
    /// [`FixProvenance::MLoc`] on clean captures; baseline evaluators
    /// tag their own rung).
    pub provenance: FixProvenance,
}

/// A collection of scored fixes for one algorithm.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvalOutcome {
    /// The per-fix records.
    pub records: Vec<FixRecord>,
}

/// Summary statistics over a set of errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean, meters.
    pub mean: f64,
    /// Median, meters.
    pub median: f64,
    /// Maximum, meters.
    pub max: f64,
}

impl ErrorStats {
    /// Computes statistics, or `None` for an empty slice.
    ///
    /// Non-finite inputs (NaN, ±∞) are filtered out before any
    /// aggregation: a single poisoned fix must not corrupt a whole
    /// campaign's mean/median/max. `None` when nothing finite remains.
    pub fn from_errors(errors: &[f64]) -> Option<ErrorStats> {
        let mut sorted: Vec<f64> = errors.iter().copied().filter(|e| e.is_finite()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(|a, b| a.total_cmp(b));
        let count = sorted.len();
        let mean = neumaier_sum(&sorted) / count as f64;
        let median = if count % 2 == 1 {
            sorted[count / 2]
        } else {
            (sorted[count / 2 - 1] + sorted[count / 2]) / 2.0
        };
        Some(ErrorStats {
            count,
            mean,
            median,
            max: *sorted.last()?,
        })
    }
}

/// Neumaier-compensated summation: tracks the low-order bits that
/// naive `iter().sum()` discards, so the mean over large campaigns
/// (10⁵+ fixes) doesn't drift with accumulation order or magnitude
/// spread. Unlike plain Kahan, the compensation also survives the
/// case where the next term is larger than the running sum.
fn neumaier_sum(values: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut comp = 0.0;
    for &x in values {
        let t = sum + x;
        if sum.abs() >= x.abs() {
            comp += (sum - t) + x;
        } else {
            comp += (x - t) + sum;
        }
        sum = t;
    }
    sum + comp
}

impl fmt::Display for ErrorStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} m median={:.2} m max={:.2} m",
            self.count, self.mean, self.median, self.max
        )
    }
}

impl EvalOutcome {
    /// Creates an outcome from records.
    pub fn new(records: Vec<FixRecord>) -> Self {
        EvalOutcome { records }
    }

    /// Number of fixes.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no fixes were scored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Error statistics over all fixes.
    pub fn error_stats(&self) -> Option<ErrorStats> {
        let errors: Vec<f64> = self.records.iter().map(|r| r.error_m).collect();
        ErrorStats::from_errors(&errors)
    }

    /// How many fixes each rung of the degradation ladder produced.
    /// Every rung appears in the map, zero-count rungs included, so
    /// reports account for the full ladder.
    pub fn provenance_histogram(&self) -> BTreeMap<FixProvenance, usize> {
        let mut hist: BTreeMap<FixProvenance, usize> =
            FixProvenance::ALL.iter().map(|&p| (p, 0)).collect();
        for r in &self.records {
            *hist.entry(r.provenance).or_insert(0) += 1;
        }
        hist
    }

    /// Fig. 13: histogram of errors with the given bucket width; returns
    /// `(bucket_start_m, count)` pairs covering `[0, max_error]`.
    ///
    /// # Panics
    ///
    /// Panics for a non-positive bucket width.
    pub fn error_histogram(&self, bucket_m: f64) -> Vec<(f64, usize)> {
        assert!(bucket_m > 0.0, "bucket width must be positive");
        let max = self
            .records
            .iter()
            .map(|r| r.error_m)
            .fold(0.0f64, f64::max);
        let n_buckets = (max / bucket_m).floor() as usize + 1;
        let mut hist = vec![0usize; n_buckets.max(1)];
        for r in &self.records {
            let b = ((r.error_m / bucket_m).floor() as usize).min(hist.len() - 1);
            hist[b] += 1;
        }
        hist.into_iter()
            .enumerate()
            .map(|(i, c)| (i as f64 * bucket_m, c))
            .collect()
    }

    /// The `p`-th percentile of the errors (0–100, nearest-rank), or
    /// `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics for `p` outside `[0, 100]`.
    pub fn error_percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.records.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = self.records.iter().map(|r| r.error_m).collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
    }

    /// The empirical CDF evaluated at the given error values:
    /// `(threshold_m, fraction of fixes with error ≤ threshold)`.
    pub fn error_cdf(&self, thresholds: &[f64]) -> Vec<(f64, f64)> {
        let n = self.records.len();
        thresholds
            .iter()
            .map(|&t| {
                let c = self.records.iter().filter(|r| r.error_m <= t).count();
                (t, if n == 0 { 0.0 } else { c as f64 / n as f64 })
            })
            .collect()
    }

    /// Fig. 14: mean error over fixes with `k ≥ k_min`, for each
    /// `k_min` in `1..=max_k`.
    pub fn mean_error_vs_min_k(&self) -> Vec<(usize, f64)> {
        bucket_by_min_aps(&self.records, |r| Some(r.error_m))
    }

    /// Fig. 15: mean intersected area over fixes with `k ≥ k_min`
    /// (records without an area are skipped).
    pub fn mean_area_vs_min_k(&self) -> Vec<(usize, f64)> {
        bucket_by_min_aps(&self.records, |r| {
            if r.area_m2.is_finite() {
                Some(r.area_m2)
            } else {
                None
            }
        })
    }

    /// Fig. 16: fraction of fixes with `k ≥ k_min` whose region covered
    /// the true location.
    pub fn coverage_vs_min_k(&self) -> Vec<(usize, f64)> {
        bucket_by_min_aps(&self.records, |r| Some(if r.covered { 1.0 } else { 0.0 }))
    }
}

impl FromIterator<FixRecord> for EvalOutcome {
    fn from_iter<T: IntoIterator<Item = FixRecord>>(iter: T) -> Self {
        EvalOutcome::new(iter.into_iter().collect())
    }
}

/// Buckets records by the *minimum* number of communicable APs: for each
/// `k_min` from 1 to the maximum observed `k`, averages `metric` over
/// all records with `k ≥ k_min`. Records for which `metric` returns
/// `None` are skipped; empty buckets are omitted.
pub fn bucket_by_min_aps<F>(records: &[FixRecord], metric: F) -> Vec<(usize, f64)>
where
    F: Fn(&FixRecord) -> Option<f64>,
{
    let max_k = records.iter().map(|r| r.k).max().unwrap_or(0);
    (1..=max_k)
        .filter_map(|k_min| {
            let vals: Vec<f64> = records
                .iter()
                .filter(|r| r.k >= k_min)
                .filter_map(&metric)
                .collect();
            if vals.is_empty() {
                None
            } else {
                Some((k_min, vals.iter().sum::<f64>() / vals.len() as f64))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(k: usize, error: f64, area: f64, covered: bool) -> FixRecord {
        FixRecord {
            k,
            error_m: error,
            area_m2: area,
            covered,
            provenance: FixProvenance::MLoc,
        }
    }

    #[test]
    fn stats_basics() {
        let s = ErrorStats::from_errors(&[1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.max, 3.0);
        assert!(ErrorStats::from_errors(&[]).is_none());
        // Even count: median is the midpoint.
        let s = ErrorStats::from_errors(&[1.0, 2.0, 3.0, 10.0]).unwrap();
        assert_eq!(s.median, 2.5);
        assert!(s.to_string().contains("mean=4.00"));
    }

    #[test]
    fn stats_filter_non_finite_errors() {
        // Regression: a single NaN/∞ fix used to poison the campaign
        // mean (NaN) and max (∞). Non-finite inputs are dropped.
        let s = ErrorStats::from_errors(&[1.0, f64::NAN, 3.0, f64::INFINITY, 2.0]).unwrap();
        assert_eq!(s.count, 3, "only the finite errors are counted");
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.max, 3.0);
        assert!(s.mean.is_finite() && s.max.is_finite());
        // All-poisoned input yields no statistics rather than garbage.
        assert!(ErrorStats::from_errors(&[f64::NAN, f64::NEG_INFINITY]).is_none());
    }

    #[test]
    fn mean_uses_compensated_summation() {
        // Adversarial magnitude spread: naive left-to-right summation
        // of the sorted sequence [-1e16, 1.0, 1e16] loses the 1.0
        // entirely (-1e16 + 1.0 == -1e16 in f64) and reports mean 0.
        // Neumaier compensation carries the lost low-order bits, so
        // the mean is exactly 1/3.
        let s = ErrorStats::from_errors(&[1e16, 1.0, -1e16]).unwrap();
        assert_eq!(s.mean, 1.0 / 3.0);

        // Drift check at campaign scale: 10⁵ copies of 0.1 (not
        // representable in binary) plus one huge cancelling pair.
        let mut errors = vec![0.1f64; 100_000];
        errors.push(1e18);
        errors.push(-1e18);
        let s = ErrorStats::from_errors(&errors).unwrap();
        let expected = 0.1 * 100_000.0 / 100_002.0;
        assert!(
            (s.mean - expected).abs() < 1e-9,
            "compensated mean drifted: {} vs {expected}",
            s.mean
        );
    }

    #[test]
    fn provenance_histogram_accounts_for_every_rung() {
        let mut records = vec![rec(3, 1.0, 1.0, true), rec(2, 2.0, 1.0, true)];
        records.push(FixRecord {
            provenance: FixProvenance::Centroid,
            ..rec(2, 9.0, f64::NAN, false)
        });
        let outcome = EvalOutcome::new(records);
        let hist = outcome.provenance_histogram();
        assert_eq!(hist[&FixProvenance::MLoc], 2);
        assert_eq!(hist[&FixProvenance::Centroid], 1);
        // Zero-count rungs are present, so reports sum to len().
        assert_eq!(hist.len(), FixProvenance::ALL.len());
        assert_eq!(hist.values().sum::<usize>(), outcome.len());
    }

    #[test]
    fn histogram_buckets() {
        let outcome: EvalOutcome = vec![
            rec(3, 2.0, 10.0, true),
            rec(3, 7.0, 10.0, true),
            rec(3, 8.0, 10.0, true),
            rec(3, 14.9, 10.0, true),
        ]
        .into_iter()
        .collect();
        let hist = outcome.error_histogram(5.0);
        assert_eq!(hist.len(), 3);
        assert_eq!(hist[0], (0.0, 1));
        assert_eq!(hist[1], (5.0, 2));
        assert_eq!(hist[2], (10.0, 1));
        // Total preserved.
        let total: usize = hist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 4);
    }

    #[test]
    #[should_panic(expected = "bucket width must be positive")]
    fn zero_bucket_panics() {
        let _ = EvalOutcome::default().error_histogram(0.0);
    }

    #[test]
    fn min_k_bucketing() {
        let outcome: EvalOutcome = vec![
            rec(1, 30.0, 100.0, true),
            rec(2, 20.0, 50.0, true),
            rec(4, 10.0, 25.0, false),
        ]
        .into_iter()
        .collect();
        let errs = outcome.mean_error_vs_min_k();
        assert_eq!(errs[0], (1, 20.0)); // all three
        assert_eq!(errs[1], (2, 15.0)); // k >= 2
        assert_eq!(errs[2], (3, 10.0)); // k >= 3 -> only the k=4 fix
        assert_eq!(errs[3], (4, 10.0));
        let cov = outcome.coverage_vs_min_k();
        assert_eq!(cov[0], (1, 2.0 / 3.0));
        assert_eq!(cov[3], (4, 0.0));
    }

    #[test]
    fn area_bucketing_skips_nan() {
        let outcome: EvalOutcome = vec![
            rec(2, 5.0, f64::NAN, false), // centroid-style record
            rec(2, 5.0, 40.0, true),
        ]
        .into_iter()
        .collect();
        let areas = outcome.mean_area_vs_min_k();
        assert_eq!(areas, vec![(1, 40.0), (2, 40.0)]);
    }

    #[test]
    fn percentiles() {
        let outcome: EvalOutcome = (1..=100).map(|i| rec(2, i as f64, 1.0, true)).collect();
        assert_eq!(outcome.error_percentile(50.0), Some(50.0));
        assert_eq!(outcome.error_percentile(90.0), Some(90.0));
        assert_eq!(outcome.error_percentile(100.0), Some(100.0));
        assert_eq!(outcome.error_percentile(0.0), Some(1.0));
        assert!(EvalOutcome::default().error_percentile(50.0).is_none());
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn bad_percentile_panics() {
        let _ = EvalOutcome::default().error_percentile(101.0);
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let outcome: EvalOutcome = vec![
            rec(1, 5.0, 1.0, true),
            rec(1, 15.0, 1.0, true),
            rec(1, 25.0, 1.0, true),
            rec(1, 35.0, 1.0, true),
        ]
        .into_iter()
        .collect();
        let cdf = outcome.error_cdf(&[0.0, 10.0, 20.0, 30.0, 40.0]);
        assert_eq!(cdf[0].1, 0.0);
        assert_eq!(cdf[1].1, 0.25);
        assert_eq!(cdf[2].1, 0.5);
        assert_eq!(cdf[4].1, 1.0);
        for w in cdf.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        // Empty outcome: all zeros.
        assert_eq!(EvalOutcome::default().error_cdf(&[10.0])[0].1, 0.0);
    }

    #[test]
    fn empty_outcome() {
        let outcome = EvalOutcome::default();
        assert!(outcome.is_empty());
        assert_eq!(outcome.len(), 0);
        assert!(outcome.error_stats().is_none());
        assert!(outcome.mean_error_vs_min_k().is_empty());
    }
}
