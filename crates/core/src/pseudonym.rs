//! Defeating MAC pseudonyms with implicit identifiers.
//!
//! The paper (Section I): "Pang et al. \[13\] demonstrate that many
//! implicit identifiers such as network names in probing traffic may
//! break those pseudonyms. Combined with their schemes, the digital
//! Marauder's map can also track a victim in case pseudo-MAC addresses
//! are used." This module implements that combination: wire identities
//! are clustered by the *preferred-network fingerprint* their directed
//! probes leak, and tracking then follows the cluster instead of any
//! single MAC.
//!
//! Fingerprints are not globally unique: two devices that only remember
//! "linksys" are indistinguishable and will be over-linked. Raise
//! [`PseudonymLinker::min_fingerprint_len`] (and the Jaccard threshold)
//! when the population probes for common default SSIDs; distinctive
//! home/work network names — Pang et al.'s observation — are what make
//! the identifier strong.

use crate::pipeline::{MaraudersMap, TrackFix};
use marauder_wifi::mac::MacAddr;
use marauder_wifi::sniffer::CaptureDatabase;
use marauder_wifi::ssid::Ssid;
use std::collections::{BTreeMap, BTreeSet};

/// A device recovered by linking pseudonymous wire identities.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkedDevice {
    /// The wire MACs attributed to this physical device, in first-seen
    /// order.
    pub pseudonyms: Vec<MacAddr>,
    /// The implicit identifier that linked them: the union of SSIDs the
    /// device probed for.
    pub fingerprint: BTreeSet<Ssid>,
}

impl LinkedDevice {
    /// Tracks the linked device across all of its pseudonyms, merging
    /// and time-sorting the per-MAC fixes.
    pub fn track(&self, map: &MaraudersMap, captures: &CaptureDatabase) -> Vec<TrackFix> {
        let mut fixes: Vec<TrackFix> = self
            .pseudonyms
            .iter()
            .flat_map(|mac| map.track(captures, *mac))
            .collect();
        fixes.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));
        fixes
    }
}

/// Clusters wire identities by fingerprint similarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PseudonymLinker {
    /// Minimum Jaccard similarity between two fingerprints to link them
    /// (1.0 = identical preferred lists only).
    pub min_jaccard: f64,
    /// Fingerprints smaller than this cannot be linked reliably and are
    /// left as singleton devices.
    pub min_fingerprint_len: usize,
}

impl Default for PseudonymLinker {
    fn default() -> Self {
        PseudonymLinker {
            min_jaccard: 0.5,
            min_fingerprint_len: 1,
        }
    }
}

fn jaccard(a: &BTreeSet<Ssid>, b: &BTreeSet<Ssid>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    inter / union
}

impl PseudonymLinker {
    /// Links the capture's probing identities into physical devices.
    ///
    /// Identities whose directed probes revealed similar
    /// preferred-network fingerprints (Jaccard ≥ `min_jaccard`) are
    /// merged with union-find; identities that only ever sent wildcard
    /// probes stay unlinked singletons.
    pub fn link(&self, captures: &CaptureDatabase) -> Vec<LinkedDevice> {
        let macs: Vec<MacAddr> = captures.probing_mobiles().into_iter().collect();
        let prints: Vec<BTreeSet<Ssid>> =
            macs.iter().map(|m| captures.ssids_probed_by(*m)).collect();

        // Union-find over identity indices.
        let mut parent: Vec<usize> = (0..macs.len()).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let root = find(parent, parent[i]);
                parent[i] = root;
            }
            parent[i]
        }
        for i in 0..macs.len() {
            if prints[i].len() < self.min_fingerprint_len {
                continue;
            }
            for j in (i + 1)..macs.len() {
                if prints[j].len() < self.min_fingerprint_len {
                    continue;
                }
                if jaccard(&prints[i], &prints[j]) >= self.min_jaccard {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[rj] = ri;
                    }
                }
            }
        }

        let mut clusters: BTreeMap<usize, LinkedDevice> = BTreeMap::new();
        for i in 0..macs.len() {
            let root = find(&mut parent, i);
            let entry = clusters.entry(root).or_insert_with(|| LinkedDevice {
                pseudonyms: Vec::new(),
                fingerprint: BTreeSet::new(),
            });
            entry.pseudonyms.push(macs[i]);
            entry.fingerprint.extend(prints[i].iter().cloned());
        }
        clusters.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marauder_wifi::frame::Frame;
    use marauder_wifi::sniffer::CapturedFrame;

    fn probe(mac: MacAddr, ssid: Option<&str>, t: f64) -> CapturedFrame {
        CapturedFrame {
            time_s: t,
            card: 0,
            frame: Frame::probe_request(mac, ssid.map(|s| Ssid::new(s).expect("short")), 6),
        }
    }

    fn mac(i: u64) -> MacAddr {
        MacAddr::from_index(i)
    }

    #[test]
    fn identical_fingerprints_link() {
        let mut db = CaptureDatabase::new();
        for (i, m) in [mac(1), mac(2)].into_iter().enumerate() {
            db.push(probe(m, Some("home"), i as f64));
            db.push(probe(m, Some("work"), i as f64 + 0.1));
        }
        db.push(probe(mac(3), Some("cafe"), 5.0));
        let devices = PseudonymLinker::default().link(&db);
        assert_eq!(devices.len(), 2);
        let big = devices
            .iter()
            .find(|d| d.pseudonyms.len() == 2)
            .expect("linked pair");
        assert!(big.fingerprint.contains(&Ssid::new("home").unwrap()));
        assert_eq!(big.fingerprint.len(), 2);
    }

    #[test]
    fn partial_overlap_respects_threshold() {
        let mut db = CaptureDatabase::new();
        // {a,b,c} vs {a,b,d}: Jaccard = 2/4 = 0.5.
        for s in ["a", "b", "c"] {
            db.push(probe(mac(1), Some(s), 0.0));
        }
        for s in ["a", "b", "d"] {
            db.push(probe(mac(2), Some(s), 1.0));
        }
        let strict = PseudonymLinker {
            min_jaccard: 0.6,
            ..Default::default()
        };
        assert_eq!(strict.link(&db).len(), 2, "0.5 < 0.6 must not link");
        let loose = PseudonymLinker {
            min_jaccard: 0.5,
            ..Default::default()
        };
        assert_eq!(loose.link(&db).len(), 1, "0.5 >= 0.5 must link");
    }

    #[test]
    fn wildcard_only_identities_stay_singletons() {
        let mut db = CaptureDatabase::new();
        db.push(probe(mac(1), None, 0.0));
        db.push(probe(mac(2), None, 1.0));
        let devices = PseudonymLinker::default().link(&db);
        assert_eq!(devices.len(), 2);
        for d in devices {
            assert_eq!(d.pseudonyms.len(), 1);
            assert!(d.fingerprint.is_empty());
        }
    }

    #[test]
    fn transitive_linking_via_union_find() {
        // A~B (share x,y), B~C (share y,z with B's superset) — check the
        // cluster closes transitively.
        let mut db = CaptureDatabase::new();
        for s in ["x", "y"] {
            db.push(probe(mac(1), Some(s), 0.0));
        }
        for s in ["x", "y", "z"] {
            db.push(probe(mac(2), Some(s), 1.0));
        }
        for s in ["y", "z"] {
            db.push(probe(mac(3), Some(s), 2.0));
        }
        let devices = PseudonymLinker {
            min_jaccard: 0.6,
            ..Default::default()
        }
        .link(&db);
        assert_eq!(devices.len(), 1, "expected one transitive cluster");
        assert_eq!(devices[0].pseudonyms.len(), 3);
    }

    #[test]
    fn jaccard_edge_cases() {
        let empty: BTreeSet<Ssid> = BTreeSet::new();
        assert_eq!(jaccard(&empty, &empty), 0.0);
        let a: BTreeSet<Ssid> = [Ssid::new("x").unwrap()].into_iter().collect();
        assert_eq!(jaccard(&a, &a), 1.0);
        assert_eq!(jaccard(&a, &empty), 0.0);
    }
}
