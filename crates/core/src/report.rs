//! Human-readable attack reports.
//!
//! The paper's display is a map; an analyst also wants the summary
//! behind it: who was seen, what hardware they carry, which identities
//! belong together, and where each device went. [`AttackReport`]
//! assembles that from a capture database and a prepared
//! [`MaraudersMap`].

use crate::pipeline::{MaraudersMap, TrackFix};
use crate::pseudonym::PseudonymLinker;
use marauder_wifi::mac::MacAddr;
use marauder_wifi::sniffer::CaptureDatabase;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Summary of one tracked device.
#[derive(Debug, Clone)]
pub struct DeviceSummary {
    /// The device's (possibly pseudonymous) identities.
    pub identities: Vec<MacAddr>,
    /// Adapter vendor, when the OUI reveals it.
    pub vendor: Option<&'static str>,
    /// Preferred networks leaked by directed probes.
    pub fingerprint: Vec<String>,
    /// Number of localization fixes.
    pub fixes: usize,
    /// Time span covered by the fixes, seconds.
    pub track_span_s: f64,
    /// Straight-line path length across the fixes, meters.
    pub path_length_m: f64,
    /// Mean uncertainty radius over the fixes, meters.
    pub mean_uncertainty_m: f64,
}

/// A full attack report.
#[derive(Debug, Clone)]
pub struct AttackReport {
    /// Total frames captured.
    pub frames: usize,
    /// Capture time span, seconds.
    pub span_s: f64,
    /// Distinct wire identities seen.
    pub wire_identities: usize,
    /// Identities that sent probe requests.
    pub probing_identities: usize,
    /// Distinct APs heard.
    pub aps_heard: usize,
    /// Per-device summaries, most-tracked first.
    pub devices: Vec<DeviceSummary>,
}

impl AttackReport {
    /// Builds the report: links pseudonyms, tracks every linked device,
    /// and summarizes.
    pub fn generate(
        map: &MaraudersMap,
        captures: &CaptureDatabase,
        linker: &PseudonymLinker,
    ) -> AttackReport {
        let (t0, t1) = captures.iter().fold((f64::MAX, f64::MIN), |(lo, hi), r| {
            (lo.min(r.time_s), hi.max(r.time_s))
        });
        let span_s = if captures.is_empty() { 0.0 } else { t1 - t0 };

        let mut devices: Vec<DeviceSummary> = linker
            .link(captures)
            .into_iter()
            .map(|linked| {
                let fixes = linked.track(map, captures);
                let vendor = linked.pseudonyms.iter().find_map(|m| m.vendor());
                DeviceSummary {
                    vendor,
                    fingerprint: linked
                        .fingerprint
                        .iter()
                        .map(|s| s.as_str().to_string())
                        .collect(),
                    fixes: fixes.len(),
                    track_span_s: track_span(&fixes),
                    path_length_m: path_length(&fixes),
                    mean_uncertainty_m: mean_uncertainty(&fixes),
                    identities: linked.pseudonyms,
                }
            })
            .collect();
        devices.sort_by_key(|d| std::cmp::Reverse(d.fixes));

        AttackReport {
            frames: captures.len(),
            span_s,
            wire_identities: captures.mobiles().len(),
            probing_identities: captures.probing_mobiles().len(),
            aps_heard: captures.access_points().len(),
            devices,
        }
    }

    /// Renders the report as plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== Marauder's Map attack report ===");
        let _ = writeln!(
            out,
            "capture: {} frames over {:.0} s; {} wire identities ({} probing); {} APs heard",
            self.frames, self.span_s, self.wire_identities, self.probing_identities, self.aps_heard
        );
        let _ = writeln!(out, "devices ({} linked):", self.devices.len());
        for (i, d) in self.devices.iter().enumerate() {
            let ids: Vec<String> = d.identities.iter().map(|m| m.to_string()).collect();
            let _ = writeln!(out, "  #{i} {}", ids.join(" ~ "));
            if let Some(v) = d.vendor {
                let _ = writeln!(out, "     vendor: {v}");
            }
            if !d.fingerprint.is_empty() {
                let _ = writeln!(out, "     probes for: {}", d.fingerprint.join(", "));
            }
            let _ = writeln!(
                out,
                "     {} fixes over {:.0} s, path {:.0} m, mean uncertainty {:.0} m",
                d.fixes, d.track_span_s, d.path_length_m, d.mean_uncertainty_m
            );
        }
        // Vendor histogram across identities (not devices) — hardware mix.
        let mut vendors: BTreeMap<&'static str, usize> = BTreeMap::new();
        for d in &self.devices {
            for id in &d.identities {
                if let Some(v) = id.vendor() {
                    *vendors.entry(v).or_default() += 1;
                }
            }
        }
        if !vendors.is_empty() {
            let _ = writeln!(out, "adapter vendors:");
            for (v, c) in vendors {
                let _ = writeln!(out, "  {v}: {c}");
            }
        }
        out
    }
}

fn track_span(fixes: &[TrackFix]) -> f64 {
    match (fixes.first(), fixes.last()) {
        (Some(a), Some(b)) => b.time_s - a.time_s,
        _ => 0.0,
    }
}

fn path_length(fixes: &[TrackFix]) -> f64 {
    fixes
        .windows(2)
        .map(|w| w[0].estimate.position.distance(w[1].estimate.position))
        .sum()
}

fn mean_uncertainty(fixes: &[TrackFix]) -> f64 {
    let vals: Vec<f64> = fixes
        .iter()
        .filter_map(|f| f.estimate.uncertainty_radius())
        .collect();
    if vals.is_empty() {
        0.0
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apdb::ApDatabase;
    use crate::pipeline::{AttackConfig, KnowledgeLevel};
    use marauder_geo::Point;
    use marauder_sim::mobility::CircuitWalk;
    use marauder_sim::scenario::CampusScenario;
    use marauder_wifi::device::{MobileStation, OsProfile, ScanBehavior};
    use marauder_wifi::ssid::Ssid;

    fn scenario_report() -> AttackReport {
        let victim = MobileStation::new(MacAddr::from_index(0x2E9), OsProfile::MacOs)
            .with_preferred(Ssid::new("report-home").unwrap())
            .with_behavior(ScanBehavior::Active {
                interval_s: 30.0,
                directed: true,
            });
        let result = CampusScenario::builder()
            .seed(21)
            .region_half_width(300.0)
            .num_aps(60)
            .num_mobiles(4)
            .duration_s(300.0)
            .beacon_period_s(None)
            .mobile(
                victim,
                Box::new(CircuitWalk::new(Point::ORIGIN, 100.0, 1.4)),
            )
            .build()
            .run();
        let db = ApDatabase::from_access_points(&result.aps, result.environment_margin);
        let mut map = MaraudersMap::new(db, KnowledgeLevel::Full, AttackConfig::default());
        map.ingest(&result.captures);
        AttackReport::generate(&map, &result.captures, &PseudonymLinker::default())
    }

    #[test]
    fn report_covers_the_population() {
        let r = scenario_report();
        assert!(r.frames > 0);
        assert!(r.span_s > 0.0);
        assert!(r.wire_identities >= 4);
        assert!(!r.devices.is_empty());
        // Devices sorted by fixes, descending.
        for w in r.devices.windows(2) {
            assert!(w[0].fixes >= w[1].fixes);
        }
        // The directed prober's fingerprint shows up.
        assert!(r
            .devices
            .iter()
            .any(|d| d.fingerprint.contains(&"report-home".to_string())));
    }

    #[test]
    fn render_is_complete_text() {
        let r = scenario_report();
        let text = r.render();
        assert!(text.contains("attack report"));
        assert!(text.contains("devices ("));
        assert!(text.contains("fixes over"));
        assert!(text.contains("probes for: report-home"));
        // Every device header line present.
        assert_eq!(
            text.matches("\n  #").count(),
            r.devices.len(),
            "one header per device"
        );
    }

    #[test]
    fn empty_capture_is_fine() {
        let db = ApDatabase::new();
        let map = MaraudersMap::new(db, KnowledgeLevel::LocationsOnly, AttackConfig::default());
        let captures = CaptureDatabase::new();
        let r = AttackReport::generate(&map, &captures, &PseudonymLinker::default());
        assert_eq!(r.frames, 0);
        assert_eq!(r.span_s, 0.0);
        assert!(r.devices.is_empty());
        assert!(r.render().contains("0 frames"));
    }
}
