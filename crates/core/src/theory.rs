//! Numerical evaluation of the paper's theorems (Figs. 2, 3, 5, 6).
//!
//! * Theorem 2: expected intersected area of the disc-intersection
//!   approach with `k` communicable APs of true radius `r`,
//! * Corollary 1: that area decreases in `k` (and in AP density),
//! * Theorem 3: the same with an over-estimated radius `R ≥ r`, plus
//!   the coverage probability `(R/r)^{2k}` when `R < r`.
//!
//! The integrals have no closed form; they are evaluated with adaptive
//! Simpson quadrature. Each one is cross-validated against direct Monte
//! Carlo simulation in the test suite.

use marauder_geo::{Circle, Point};

/// Adaptive Simpson quadrature of `f` over `[a, b]` with absolute
/// tolerance `tol`.
///
/// # Panics
///
/// Panics when `a > b` or `tol` is not positive.
pub fn integrate<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> f64 {
    assert!(a <= b, "integration bounds reversed: {a} > {b}");
    assert!(tol > 0.0, "tolerance must be positive");
    if a == b {
        return 0.0;
    }
    fn simpson<F: Fn(f64) -> f64>(f: &F, a: f64, fa: f64, b: f64, fb: f64) -> (f64, f64, f64) {
        let m = (a + b) / 2.0;
        let fm = f(m);
        ((b - a) / 6.0 * (fa + 4.0 * fm + fb), m, fm)
    }
    #[allow(clippy::too_many_arguments)]
    fn recurse<F: Fn(f64) -> f64>(
        f: &F,
        a: f64,
        fa: f64,
        b: f64,
        fb: f64,
        whole: f64,
        m: f64,
        fm: f64,
        tol: f64,
        depth: u32,
    ) -> f64 {
        let (left, lm, flm) = simpson(f, a, fa, m, fm);
        let (right, rm, frm) = simpson(f, m, fm, b, fb);
        let delta = left + right - whole;
        if depth == 0 || delta.abs() <= 15.0 * tol {
            return left + right + delta / 15.0;
        }
        recurse(f, a, fa, m, fm, left, lm, flm, tol / 2.0, depth - 1)
            + recurse(f, m, fm, b, fb, right, rm, frm, tol / 2.0, depth - 1)
    }
    let fa = f(a);
    let fb = f(b);
    let (whole, m, fm) = simpson(&f, a, fa, b, fb);
    recurse(&f, a, fa, b, fb, whole, m, fm, tol, 40)
}

/// The probability that a uniformly placed AP is communicable from both
/// the mobile and a point at normalized distance `y = x / (2r)` — the
/// integrand kernel of Theorem 2.
fn kernel(y: f64) -> f64 {
    let y = y.clamp(0.0, 1.0);
    (2.0 / std::f64::consts::PI) * (y.acos() - y * (1.0 - y * y).sqrt())
}

/// Theorem 2: expected intersected area `CA` for a mobile communicable
/// with `k` APs of maximum transmission distance `r`, APs uniformly
/// distributed.
///
/// `k` may be fractional (useful for density sweeps where `k = πr²ρ`).
///
/// # Panics
///
/// Panics for `k < 1` or non-positive `r`.
///
/// # Example
///
/// ```
/// use marauder_core::theory::expected_intersection_area;
/// let a1 = expected_intersection_area(1.0, 1.0);
/// let a10 = expected_intersection_area(10.0, 1.0);
/// assert!(a10 < a1); // Corollary 1
/// ```
pub fn expected_intersection_area(k: f64, r: f64) -> f64 {
    assert!(k >= 1.0, "need at least one communicable AP, got k={k}");
    assert!(r > 0.0, "radius must be positive, got {r}");
    let integral = integrate(|y| y * kernel(y).powf(k), 0.0, 1.0, 1e-10);
    8.0 * std::f64::consts::PI * r * r * integral
}

/// Corollary 1 viewpoint for Fig. 3: expected intersected area as a
/// function of the radius `r` at fixed AP density `rho` (APs/m²), where
/// the expected number of communicable APs is `k = π r² ρ` (clamped to
/// at least 1).
pub fn expected_area_at_density(r: f64, rho: f64) -> f64 {
    assert!(rho > 0.0, "density must be positive");
    let k = (std::f64::consts::PI * r * r * rho).max(1.0);
    expected_intersection_area(k, r)
}

/// Theorem 3 (`R ≥ r`): expected intersected area when the attacker
/// assumes radius `R` while the true radius is `r`.
///
/// # Panics
///
/// Panics unless `R ≥ r > 0` and `k ≥ 1`.
///
/// # Example
///
/// ```
/// use marauder_core::theory::{expected_intersection_area, expected_intersection_area_overestimate};
/// let exact = expected_intersection_area(10.0, 1.0);
/// let matched = expected_intersection_area_overestimate(10.0, 1.0, 1.0);
/// assert!((exact - matched).abs() / exact < 0.01); // R = r reduces to Theorem 2
/// let over = expected_intersection_area_overestimate(10.0, 1.0, 2.0);
/// assert!(over > exact); // overestimates grow the area
/// ```
pub fn expected_intersection_area_overestimate(k: f64, r: f64, big_r: f64) -> f64 {
    assert!(k >= 1.0, "need at least one communicable AP");
    assert!(
        r > 0.0 && big_r >= r,
        "need R >= r > 0, got r={r}, R={big_r}"
    );
    let c1 = Circle::new(Point::ORIGIN, r);
    let denom = std::f64::consts::PI * r * r;
    // CA = π ∫₀^{(2R)²} Pr(x)^k du  with u = x², Pr = A(C₁₂)/(πr²).
    let integral = integrate(
        |u| {
            let x = u.max(0.0).sqrt();
            let c2 = Circle::new(Point::new(x, 0.0), big_r);
            (c1.lens_area(&c2) / denom).powf(k)
        },
        0.0,
        (2.0 * big_r) * (2.0 * big_r),
        1e-9,
    );
    std::f64::consts::PI * integral
}

/// Theorem 3 (`R < r`): probability that the intersected area covers the
/// mobile's true location when radii are *under*estimated.
///
/// Returns 1 for `R ≥ r`.
///
/// # Panics
///
/// Panics for non-positive radii or `k < 1`.
pub fn coverage_probability(k: f64, r: f64, big_r: f64) -> f64 {
    assert!(k >= 1.0, "need at least one communicable AP");
    assert!(r > 0.0 && big_r > 0.0, "radii must be positive");
    if big_r >= r {
        1.0
    } else {
        (big_r / r).powf(2.0 * k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marauder_geo::{monte_carlo_intersection_area, DiscIntersection};

    #[test]
    fn quadrature_on_known_integrals() {
        assert!((integrate(|x| x * x, 0.0, 1.0, 1e-12) - 1.0 / 3.0).abs() < 1e-10);
        assert!((integrate(f64::sin, 0.0, std::f64::consts::PI, 1e-12) - 2.0).abs() < 1e-10);
        assert!((integrate(|x| x.exp(), 0.0, 1.0, 1e-12) - (1f64.exp() - 1.0)).abs() < 1e-10);
        assert_eq!(integrate(|x| x, 2.0, 2.0, 1e-9), 0.0);
    }

    #[test]
    #[should_panic(expected = "bounds reversed")]
    fn reversed_bounds_panic() {
        let _ = integrate(|x| x, 1.0, 0.0, 1e-9);
    }

    #[test]
    fn kernel_properties() {
        assert!((kernel(0.0) - 1.0).abs() < 1e-12, "p(0) = 1 (same point)");
        assert!(kernel(1.0).abs() < 1e-12, "p(1) = 0 (distance 2r)");
        // Monotone decreasing.
        let mut last = 1.1;
        for i in 0..=20 {
            let v = kernel(i as f64 / 20.0);
            assert!(v <= last + 1e-12);
            last = v;
        }
    }

    #[test]
    fn theorem2_decreases_with_k() {
        // Corollary 1 / Fig. 2.
        let mut last = f64::INFINITY;
        for k in 1..=30 {
            let ca = expected_intersection_area(k as f64, 1.0);
            assert!(ca < last, "CA(k={k}) = {ca} did not decrease");
            assert!(ca > 0.0);
            last = ca;
        }
    }

    #[test]
    fn theorem2_scales_with_r_squared() {
        let a1 = expected_intersection_area(5.0, 1.0);
        let a3 = expected_intersection_area(5.0, 3.0);
        assert!((a3 / a1 - 9.0).abs() < 1e-9);
    }

    #[test]
    fn theorem2_roughly_inverse_in_k() {
        // "the intersected area is roughly inversely proportional with
        // the number of communicable APs" (paper, Fig. 2 discussion).
        let a5 = expected_intersection_area(5.0, 1.0);
        let a10 = expected_intersection_area(10.0, 1.0);
        let ratio = a5 / a10;
        assert!((1.5..3.5).contains(&ratio), "ratio {ratio} not ≈ 2");
    }

    #[test]
    fn theorem2_matches_simulation() {
        // Direct Monte Carlo of the generative model: k APs uniform in
        // the disc of radius r around the mobile; area of the
        // intersection of their coverage discs.
        use marauder_geo::montecarlo::SplitMix64;
        let r = 1.0;
        let k = 4;
        let mut rng = SplitMix64::new(2024);
        let trials = 400;
        let mut total = 0.0;
        for t in 0..trials {
            let discs: Vec<marauder_geo::Circle> = (0..k)
                .map(|_| {
                    // Uniform in disc via rejection.
                    loop {
                        let x = rng.uniform(-r, r);
                        let y = rng.uniform(-r, r);
                        if x * x + y * y <= r * r {
                            return marauder_geo::Circle::new(Point::new(x, y), r);
                        }
                    }
                })
                .collect();
            let exact = DiscIntersection::new(&discs).area();
            // Cross-check a few trials against the sampling estimator.
            if t < 3 {
                let mc = monte_carlo_intersection_area(&discs, 50_000, t as u64);
                assert!((exact - mc).abs() < 0.05);
            }
            total += exact;
        }
        let simulated = total / trials as f64;
        let theory = expected_intersection_area(k as f64, r);
        let rel = (simulated - theory).abs() / theory;
        assert!(
            rel < 0.12,
            "simulated {simulated} vs theory {theory} (rel {rel})"
        );
    }

    #[test]
    fn density_view_decreases_with_r() {
        // Corollary 1 / Fig. 3: at fixed density, larger radius means
        // smaller intersected area (once k > 1 kicks in).
        let rho = 3.0; // APs per unit area: k = π r² ρ > 1 for r >= 0.4
        let mut last = f64::INFINITY;
        for i in 4..=20 {
            let r = i as f64 / 10.0;
            let ca = expected_area_at_density(r, rho);
            assert!(ca < last, "CA(r={r}) = {ca} did not decrease");
            last = ca;
        }
    }

    #[test]
    fn theorem3_reduces_to_theorem2_at_matched_radius() {
        for k in [1.0, 3.0, 10.0] {
            let t2 = expected_intersection_area(k, 1.0);
            let t3 = expected_intersection_area_overestimate(k, 1.0, 1.0);
            let rel = (t2 - t3).abs() / t2;
            assert!(rel < 1e-6, "k={k}: {t2} vs {t3}");
        }
    }

    #[test]
    fn theorem3_grows_rapidly_with_overestimate() {
        // Fig. 5: CA grows with R (k = 10, r = 1).
        let mut last = 0.0;
        for i in 0..=8 {
            let big_r = 1.0 + i as f64 * 0.25;
            let ca = expected_intersection_area_overestimate(10.0, 1.0, big_r);
            assert!(ca > last, "CA(R={big_r}) = {ca} did not grow");
            last = ca;
        }
        // Doubling R inflates the area by far more than 2x.
        let a1 = expected_intersection_area_overestimate(10.0, 1.0, 1.0);
        let a2 = expected_intersection_area_overestimate(10.0, 1.0, 2.0);
        assert!(a2 / a1 > 4.0, "growth factor {}", a2 / a1);
    }

    #[test]
    fn theorem3_overestimate_matches_simulation() {
        use marauder_geo::montecarlo::SplitMix64;
        let (k, r, big_r) = (3usize, 1.0, 1.5);
        let mut rng = SplitMix64::new(7);
        let trials = 300;
        let mut total = 0.0;
        for _ in 0..trials {
            let discs: Vec<marauder_geo::Circle> = (0..k)
                .map(|_| loop {
                    let x = rng.uniform(-r, r);
                    let y = rng.uniform(-r, r);
                    if x * x + y * y <= r * r {
                        return marauder_geo::Circle::new(Point::new(x, y), big_r);
                    }
                })
                .collect();
            total += DiscIntersection::new(&discs).area();
        }
        let simulated = total / trials as f64;
        let theory = expected_intersection_area_overestimate(k as f64, r, big_r);
        let rel = (simulated - theory).abs() / theory;
        assert!(
            rel < 0.12,
            "simulated {simulated} vs theory {theory} (rel {rel})"
        );
    }

    #[test]
    fn coverage_probability_fig6() {
        // Fig. 6: k = 10, r = 1; probability collapses as R shrinks.
        assert_eq!(coverage_probability(10.0, 1.0, 1.0), 1.0);
        assert_eq!(coverage_probability(10.0, 1.0, 2.0), 1.0);
        let p9 = coverage_probability(10.0, 1.0, 0.9);
        assert!((p9 - 0.9f64.powi(20)).abs() < 1e-12);
        let p5 = coverage_probability(10.0, 1.0, 0.5);
        assert!(p5 < 1e-5, "p(R=0.5) = {p5}");
        // Monotone in R.
        assert!(p9 > p5);
        // Larger k collapses faster.
        assert!(coverage_probability(20.0, 1.0, 0.9) < p9);
    }

    #[test]
    fn coverage_probability_matches_simulation() {
        // Simulate: k APs uniform in disc(r); does ∩ disc(AP, R) with
        // R < r cover the mobile (origin)? Theorem: p = (R/r)^{2k}.
        use marauder_geo::montecarlo::SplitMix64;
        let (k, r, big_r) = (3usize, 1.0, 0.8);
        let mut rng = SplitMix64::new(99);
        let trials = 4000;
        let mut covered = 0;
        for _ in 0..trials {
            let mut all_in = true;
            for _ in 0..k {
                loop {
                    let x = rng.uniform(-r, r);
                    let y = rng.uniform(-r, r);
                    if x * x + y * y <= r * r {
                        if x * x + y * y > big_r * big_r {
                            all_in = false;
                        }
                        break;
                    }
                }
            }
            if all_in {
                covered += 1;
            }
        }
        let simulated = covered as f64 / trials as f64;
        let theory = coverage_probability(k as f64, r, big_r);
        assert!(
            (simulated - theory).abs() < 0.03,
            "simulated {simulated} vs theory {theory}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one communicable AP")]
    fn k_zero_panics() {
        let _ = expected_intersection_area(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "R >= r")]
    fn underestimate_in_area_fn_panics() {
        let _ = expected_intersection_area_overestimate(5.0, 1.0, 0.5);
    }
}
