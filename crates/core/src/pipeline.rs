//! The full attack pipeline (paper Fig. 1).
//!
//! A [`MaraudersMap`] is the malicious-localization component: it holds
//! the AP knowledge (downloaded, measured, or trained), ingests the
//! sniffer's capture database, fills any missing radii with AP-Rad's LP
//! estimates, and then locates or tracks any mobile the sniffer saw.

use crate::algorithms::{ApLoc, ApRad, ApRadSolver, Centroid, CoverageDisc, Estimate, MLoc};
use crate::apdb::ApDatabase;
use crate::error::PipelineError;
use marauder_geo::Point;
use marauder_sim::wardrive::TrainingTuple;
use marauder_wifi::mac::MacAddr;
use marauder_wifi::sniffer::{CaptureDatabase, ObservationSet};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// What the attacker knows about the APs beforehand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnowledgeLevel {
    /// Locations and maximum transmission distances (M-Loc).
    Full,
    /// Locations only, e.g. from WiGLE (AP-Rad).
    LocationsOnly,
    /// Nothing: AP knowledge comes from wardriving training (AP-Loc).
    NoKnowledge,
}

/// How the pipeline reacts when disc intersection is impossible for a
/// window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradationPolicy {
    /// Paper behavior: a window that M-Loc (including its inflation
    /// fallback) cannot localize is dropped. This is the default so
    /// clean-capture outputs are unchanged.
    #[default]
    Strict,
    /// Walk the full degradation ladder: M-Loc → inflation fallback →
    /// Centroid of the known AP locations → Nearest-AP. A window is
    /// lost only when *no* observed AP has a known location. Every fix
    /// carries a [`FixProvenance`] saying which rung produced it.
    Graceful,
}

/// Which rung of the degradation ladder produced a fix.
///
/// Ordered from best to worst: under faults the chaos harness reports
/// a histogram of these so an experiment can say not just *that* a
/// device was tracked but *how* trustworthy each fix is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FixProvenance {
    /// Disc intersection succeeded with the knowledge as-is.
    MLoc,
    /// Disc intersection succeeded only after the radius-inflation
    /// fallback (some radius was underestimated — Theorem 3's `R < r`
    /// regime, or a fault thinned the co-observation evidence).
    Inflated,
    /// No usable discs; the fix is the centroid of the ≥ 2 known AP
    /// locations in Γ.
    Centroid,
    /// Exactly one observed AP had a known location; the fix is that
    /// location (tightest-radius AP when radii are known).
    NearestAp,
}

impl FixProvenance {
    /// Stable lower-case name, used in reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            FixProvenance::MLoc => "mloc",
            FixProvenance::Inflated => "inflated",
            FixProvenance::Centroid => "centroid",
            FixProvenance::NearestAp => "nearest_ap",
        }
    }

    /// All variants, ladder order.
    pub const ALL: [FixProvenance; 4] = [
        FixProvenance::MLoc,
        FixProvenance::Inflated,
        FixProvenance::Centroid,
        FixProvenance::NearestAp,
    ];

    /// `true` for the rungs below plain M-Loc.
    pub fn is_degraded(self) -> bool {
        self != FixProvenance::MLoc
    }
}

impl std::fmt::Display for FixProvenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackConfig {
    /// Window length for grouping probe responses into observation sets,
    /// seconds.
    ///
    /// Windows are half-open, per
    /// [`marauder_wifi::sniffer::window_index`]: window `k` covers
    /// `[k·window_s, (k+1)·window_s)`, and a frame at exactly the
    /// boundary instant belongs to the *next* window. Both the batch
    /// pipeline and the streaming engine (`marauder-stream`) share this
    /// convention through that function.
    pub window_s: f64,
    /// The M-Loc instance used for final localization.
    pub mloc: MLoc,
    /// The AP-Rad instance used when radii must be estimated.
    pub aprad: ApRad,
    /// The AP-Loc instance used when locations must be trained.
    pub aploc: ApLoc,
    /// What to do when disc intersection is impossible (default:
    /// [`Strict`](DegradationPolicy::Strict), the paper behavior).
    pub degradation: DegradationPolicy,
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig {
            window_s: 30.0,
            mloc: MLoc::default(),
            aprad: ApRad::default(),
            aploc: ApLoc::default(),
            degradation: DegradationPolicy::default(),
        }
    }
}

/// One tracked position of one mobile.
#[derive(Debug, Clone)]
pub struct TrackFix {
    /// Window start time, seconds.
    pub time_s: f64,
    /// The tracked mobile.
    pub mobile: MacAddr,
    /// The communicable-AP set observed in the window.
    pub gamma: BTreeSet<MacAddr>,
    /// The localization estimate.
    pub estimate: Estimate,
    /// Which rung of the degradation ladder produced the estimate.
    pub provenance: FixProvenance,
}

/// The digital Marauder's Map.
///
/// # Example
///
/// ```no_run
/// use marauder_core::pipeline::{AttackConfig, KnowledgeLevel, MaraudersMap};
/// use marauder_core::apdb::ApDatabase;
/// use marauder_wifi::sniffer::CaptureDatabase;
///
/// let knowledge: ApDatabase = unimplemented!("download from WiGLE");
/// let captures: CaptureDatabase = unimplemented!("sniff");
/// let mut map = MaraudersMap::new(knowledge, KnowledgeLevel::LocationsOnly,
///                                 AttackConfig::default());
/// map.ingest(&captures);
/// for fix in map.track_all(&captures) {
///     println!("{} is near {}", fix.mobile, fix.estimate.position);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct MaraudersMap {
    knowledge: KnowledgeLevel,
    config: AttackConfig,
    locations: BTreeMap<MacAddr, Point>,
    radii: BTreeMap<MacAddr, f64>,
    /// Training-implied lower bounds on radii (NoKnowledge level only).
    min_radii: BTreeMap<MacAddr, f64>,
    observations: Vec<BTreeSet<MacAddr>>,
    /// MAC → dense id, assigned in sorted-MAC order over `locations`.
    ids: HashMap<MacAddr, u32>,
    /// Per-id coverage disc; `Some` only when both the location and the
    /// radius are known. Rebuilt whenever `radii` changes so `locate`
    /// runs on indexed slices instead of per-MAC tree lookups.
    discs: Vec<Option<CoverageDisc>>,
}

impl MaraudersMap {
    /// Builds the map from an AP database (knowledge levels
    /// [`Full`](KnowledgeLevel::Full) and
    /// [`LocationsOnly`](KnowledgeLevel::LocationsOnly)).
    ///
    /// # Panics
    ///
    /// Panics when `Full` knowledge is claimed but some record lacks a
    /// radius, and when called with
    /// [`NoKnowledge`](KnowledgeLevel::NoKnowledge) (use
    /// [`from_training`](Self::from_training) instead).
    pub fn new(db: ApDatabase, knowledge: KnowledgeLevel, config: AttackConfig) -> Self {
        assert!(
            knowledge != KnowledgeLevel::NoKnowledge,
            "use MaraudersMap::from_training for the no-knowledge level"
        );
        if knowledge == KnowledgeLevel::Full {
            assert!(
                db.has_all_radii(),
                "Full knowledge requires a radius on every AP record"
            );
        }
        let mut locations = BTreeMap::new();
        let mut radii = BTreeMap::new();
        for rec in db.iter() {
            locations.insert(rec.bssid, rec.location);
            if knowledge == KnowledgeLevel::Full {
                // lint:allow(no-panic-in-lib) -- has_all_radii() asserted at entry; documented `# Panics` contract
                radii.insert(rec.bssid, rec.radius.expect("checked above"));
            }
        }
        let mut map = MaraudersMap {
            knowledge,
            config,
            locations,
            radii,
            min_radii: BTreeMap::new(),
            observations: Vec::new(),
            ids: HashMap::new(),
            discs: Vec::new(),
        };
        map.rebuild_interned();
        map
    }

    /// Builds the map from wardriving training tuples (knowledge level
    /// [`NoKnowledge`](KnowledgeLevel::NoKnowledge)): AP locations are
    /// estimated with AP-Loc's disc intersection.
    pub fn from_training(training: &[TrainingTuple], config: AttackConfig) -> Self {
        let locations = config.aploc.estimate_ap_locations(training);
        let min_radii = config.aploc.training_radius_bounds(training, &locations);
        let mut map = MaraudersMap {
            knowledge: KnowledgeLevel::NoKnowledge,
            config,
            locations,
            radii: BTreeMap::new(),
            min_radii,
            observations: Vec::new(),
            ids: HashMap::new(),
            discs: Vec::new(),
        };
        map.rebuild_interned();
        map
    }

    /// Re-interns the AP tables: dense ids in sorted-MAC order plus one
    /// optional disc per id. Must run after any change to `locations`
    /// or `radii`.
    fn rebuild_interned(&mut self) {
        self.ids = self
            .locations
            .keys()
            .enumerate()
            .map(|(i, mac)| (*mac, i as u32))
            .collect();
        self.discs = self
            .locations
            .iter()
            .map(|(mac, loc)| self.radii.get(mac).map(|r| CoverageDisc::new(*loc, *r)))
            .collect();
    }

    /// The knowledge level this map operates at.
    pub fn knowledge(&self) -> KnowledgeLevel {
        self.knowledge
    }

    /// The pipeline configuration in use.
    pub fn config(&self) -> &AttackConfig {
        &self.config
    }

    /// Replaces the AP radii with an externally computed estimate and
    /// re-interns the coverage discs — the streaming engine's
    /// incremental-update entry point (it owns an [`ApRadSolver`] and
    /// pushes refreshed solutions here as windows close).
    ///
    /// # Panics
    ///
    /// Panics at the [`Full`](KnowledgeLevel::Full) level, where radii
    /// are part of the a-priori knowledge and must never be estimated
    /// over.
    pub fn apply_radii(&mut self, radii: BTreeMap<MacAddr, f64>) {
        assert!(
            self.knowledge != KnowledgeLevel::Full,
            "Full-knowledge radii are ground truth; refusing to overwrite"
        );
        self.radii = radii;
        self.rebuild_interned();
    }

    /// An incremental AP-Rad solver over this map's knowledge
    /// (locations, training bounds, LP configuration), starting from an
    /// empty observation history.
    ///
    /// Returns `None` at the [`Full`](KnowledgeLevel::Full) level —
    /// radii are known there, nothing is ever solved for.
    pub fn radius_solver(&self) -> Option<ApRadSolver> {
        (self.knowledge != KnowledgeLevel::Full).then(|| {
            ApRadSolver::new(
                self.config.aprad.clone(),
                self.locations.clone(),
                self.min_radii.clone(),
            )
        })
    }

    /// The AP locations in use (trained or known).
    pub fn ap_locations(&self) -> &BTreeMap<MacAddr, Point> {
        &self.locations
    }

    /// The AP radii in use (known or LP-estimated; empty before
    /// [`ingest`](Self::ingest) at the non-Full levels).
    pub fn ap_radii(&self) -> &BTreeMap<MacAddr, f64> {
        &self.radii
    }

    /// Ingests a capture database: extracts windowed observation sets
    /// and, when radii are not part of the knowledge, estimates them
    /// with the AP-Rad linear program.
    pub fn ingest(&mut self, captures: &CaptureDatabase) {
        let reg = marauder_obs::global();
        let _span = reg.span("core.ingest", marauder_obs::global_clock());
        reg.counter_add("core.frames_ingested", captures.len() as u64);
        self.observations = captures
            .observation_sets(self.config.window_s)
            .into_iter()
            .map(|o| o.aps)
            .collect();
        reg.counter_add("core.windows_extracted", self.observations.len() as u64);
        if self.knowledge != KnowledgeLevel::Full {
            self.radii = self.config.aprad.estimate_radii_with_bounds(
                &self.locations,
                &self.observations,
                &self.min_radii,
            );
            self.rebuild_interned();
        }
    }

    /// Locates a mobile from its communicable-AP set.
    ///
    /// Thin `Option` view over [`try_locate`](Self::try_locate): under
    /// the default [`Strict`](DegradationPolicy::Strict) policy this
    /// returns `None` exactly when no AP in `gamma` has both a known
    /// location and radius (or the discs are degenerate), as it always
    /// has.
    pub fn locate(&self, gamma: &BTreeSet<MacAddr>) -> Option<Estimate> {
        self.try_locate(gamma).ok().map(|(est, _)| est)
    }

    /// Locates a mobile from its communicable-AP set, walking the
    /// degradation ladder and reporting *why* on failure.
    ///
    /// The ladder, walked top to bottom:
    ///
    /// 1. **M-Loc** over the APs with a known location *and* radius —
    ///    provenance [`MLoc`](FixProvenance::MLoc), or
    ///    [`Inflated`](FixProvenance::Inflated) when the empty-region
    ///    inflation fallback had to fire.
    /// 2. **Centroid** of the ≥ 2 known AP locations (radii unusable) —
    ///    only under [`DegradationPolicy::Graceful`].
    /// 3. **Nearest-AP** when exactly one location is known — only
    ///    under [`DegradationPolicy::Graceful`].
    ///
    /// # Errors
    ///
    /// [`PipelineError`] naming the first rung that could not be
    /// reached: empty Γ, no known APs, or degenerate disc geometry
    /// (the latter only terminal under the `Strict` policy).
    pub fn try_locate(
        &self,
        gamma: &BTreeSet<MacAddr>,
    ) -> Result<(Estimate, FixProvenance), PipelineError> {
        if gamma.is_empty() {
            return Err(PipelineError::EmptyObservation);
        }
        // Gamma iterates in sorted-MAC order and the interned tables
        // were built in that same order, so the disc sequence is
        // identical to per-MAC map lookups — just without the tree
        // walks per AP.
        let discs: Vec<CoverageDisc> = gamma
            .iter()
            .filter_map(|mac| {
                let id = *self.ids.get(mac)?;
                self.discs[id as usize]
            })
            .collect();
        if let Some(est) = self.config.mloc.locate(&discs) {
            let provenance = if est.inflation > 1.0 {
                FixProvenance::Inflated
            } else {
                FixProvenance::MLoc
            };
            return Ok((est, provenance));
        }
        let strict = self.config.degradation == DegradationPolicy::Strict;
        if strict && !discs.is_empty() {
            return Err(PipelineError::DegenerateGeometry { discs: discs.len() });
        }
        // Lower rungs: fall back to the known locations alone.
        let known: Vec<(MacAddr, Point)> = gamma
            .iter()
            .filter_map(|mac| Some((*mac, *self.locations.get(mac)?)))
            .collect();
        if known.is_empty() {
            return Err(PipelineError::NoKnownAps {
                observed: gamma.len(),
            });
        }
        if strict {
            // Locations alone are never enough under the paper policy.
            return Err(PipelineError::NoUsableRadii { known: known.len() });
        }
        if known.len() >= 2 {
            let positions: Vec<Point> = known.iter().map(|(_, p)| *p).collect();
            let position = Centroid
                .locate(&positions)
                .ok_or(PipelineError::NoKnownAps {
                    observed: gamma.len(),
                })?;
            return Ok((
                Estimate::point(position, known.len()),
                FixProvenance::Centroid,
            ));
        }
        // Exactly one known location: the nearest-AP degenerate case.
        // With several known radii the tightest disc would win, but at
        // one known AP the choice is forced.
        let (_, position) = known[0];
        Ok((Estimate::point(position, 1), FixProvenance::NearestAp))
    }

    /// Localizes a batch of observation windows with the map's current
    /// knowledge: one [`TrackFix`] per locatable window, in input
    /// order, unlocatable windows dropped.
    ///
    /// This is the single localization path shared by
    /// [`track`](Self::track), [`track_all`](Self::track_all) and the
    /// streaming engine's replay — batch-vs-stream byte equivalence
    /// holds because both sides funnel through here. The windows fan
    /// out across worker threads (see [`marauder_par`]); the output is
    /// bit-identical for any worker count.
    pub fn localize_windows(&self, obs: Vec<ObservationSet>) -> Vec<TrackFix> {
        self.localize_windows_accounted(obs).0
    }

    /// [`localize_windows`](Self::localize_windows), also returning the
    /// typed reason each unlocatable window was dropped (in input
    /// order) — the chaos harness's accounting hook: fixes plus losses
    /// always sum to the input windows.
    pub fn localize_windows_accounted(
        &self,
        obs: Vec<ObservationSet>,
    ) -> (Vec<TrackFix>, Vec<PipelineError>) {
        let reg = marauder_obs::global();
        let _span = reg.span("core.localize_windows", marauder_obs::global_clock());
        // Localization is a pure function of the AP set, and real
        // captures repeat gammas constantly (a parked mobile hears the
        // same APs window after window; replay re-localizes the same
        // windows per mobile). Deduplicate before fanning out: each
        // distinct gamma is localized once and the result fanned back
        // to every window that shares it. `uniq` preserves first-seen
        // order, so the parallel map's work order — and therefore the
        // output — is independent of how many duplicates exist.
        let mut index_of: BTreeMap<&BTreeSet<MacAddr>, usize> = BTreeMap::new();
        let mut uniq: Vec<&BTreeSet<MacAddr>> = Vec::new();
        let which: Vec<usize> = obs
            .iter()
            .map(|o| {
                *index_of.entry(&o.aps).or_insert_with(|| {
                    uniq.push(&o.aps);
                    uniq.len() - 1
                })
            })
            .collect();
        let mut uniq_estimates: Vec<Option<_>> =
            marauder_par::par_map(&uniq, |aps| self.try_locate(aps))
                .into_iter()
                .map(Some)
                .collect();
        // Each unique result is moved out at its last use and cloned
        // only for earlier duplicates — estimates carry whole region
        // geometries, so per-window clones are worth avoiding.
        let mut last_use = vec![0usize; uniq_estimates.len()];
        for (w, &u) in which.iter().enumerate() {
            last_use[u] = w;
        }
        let estimates: Vec<_> = which
            .iter()
            .enumerate()
            .map(|(w, &u)| {
                let slot = if last_use[u] == w {
                    uniq_estimates[u].take()
                } else {
                    uniq_estimates[u].clone()
                };
                // A slot is vacated only at its last use, so it is
                // always occupied here; the fallback recomputes (a
                // deterministic no-op difference) rather than panic.
                slot.unwrap_or_else(|| self.try_locate(uniq[u]))
            })
            .collect();
        drop(index_of);
        drop(uniq);
        let mut lost = Vec::new();
        let fixes: Vec<TrackFix> = obs
            .into_iter()
            .zip(estimates)
            .filter_map(|(o, outcome)| match outcome {
                Ok((estimate, provenance)) => Some(TrackFix {
                    time_s: o.window_start_s,
                    mobile: o.mobile,
                    gamma: o.aps,
                    estimate,
                    provenance,
                }),
                Err(e) => {
                    lost.push(e);
                    None
                }
            })
            .collect();
        reg.counter_add("core.windows_localized", fixes.len() as u64);
        reg.counter_add("core.windows_lost", lost.len() as u64);
        // Per-rung provenance counts, accumulated locally so the batch
        // costs four registry touches, not one per fix. All four rungs
        // are flushed (zeros included) so every report carries the full
        // ladder.
        let mut by_rung = [0u64; FixProvenance::ALL.len()];
        for fix in &fixes {
            by_rung[fix.provenance as usize] += 1;
        }
        for (rung, n) in FixProvenance::ALL.iter().zip(by_rung) {
            reg.counter_add(&format!("core.fix.{rung}"), n);
        }
        (fixes, lost)
    }

    /// Tracks one mobile across the capture: one fix per observation
    /// window in which it was seen.
    ///
    /// Localization of the windows runs in parallel (see
    /// [`marauder_par`]); the fix order — and every estimate — is
    /// identical for any worker count.
    pub fn track(&self, captures: &CaptureDatabase, mobile: MacAddr) -> Vec<TrackFix> {
        let obs: Vec<_> = captures
            .observation_sets(self.config.window_s)
            .into_iter()
            .filter(|o| o.mobile == mobile)
            .collect();
        self.localize_windows(obs)
    }

    /// Tracks every mobile in the capture — the full Marauder's-Map
    /// display (paper Fig. 7).
    ///
    /// Fixes come out sorted by `(mobile, window)` — the order
    /// [`CaptureDatabase::observation_sets`] groups in. The per-window
    /// localizations are independent, so they fan out across worker
    /// threads; results are bit-identical to a sequential run.
    pub fn track_all(&self, captures: &CaptureDatabase) -> Vec<TrackFix> {
        self.localize_windows(captures.observation_sets(self.config.window_s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marauder_geo::Point;
    use marauder_sim::link::LinkModel;
    use marauder_sim::mobility::CircuitWalk;
    use marauder_sim::scenario::CampusScenario;
    use marauder_sim::wardrive::{wardrive, WardriveRoute};
    use marauder_wifi::device::{MobileStation, OsProfile};

    fn scenario_with_victim() -> (marauder_sim::scenario::SimulationResult, MacAddr) {
        let victim = MobileStation::new(MacAddr::from_index(0xFACE), OsProfile::MacOs);
        let mac = victim.mac;
        let scenario = CampusScenario::builder()
            .seed(11)
            .num_aps(60)
            .num_mobiles(6)
            .duration_s(240.0)
            .beacon_period_s(None)
            .mobile(
                victim,
                Box::new(CircuitWalk::new(Point::ORIGIN, 120.0, 1.4)),
            )
            .build();
        (scenario.run(), mac)
    }

    #[test]
    fn full_knowledge_tracks_the_victim_accurately() {
        let (result, mac) = scenario_with_victim();
        let db = ApDatabase::from_access_points(&result.aps, result.environment_margin);
        let mut map = MaraudersMap::new(db, KnowledgeLevel::Full, AttackConfig::default());
        map.ingest(&result.captures);
        let fixes = map.track(&result.captures, mac);
        assert!(!fixes.is_empty(), "victim must be tracked");
        // Compare each fix against the nearest-in-time ground truth.
        let mut total_err = 0.0;
        for fix in &fixes {
            let truth = result
                .ground_truth
                .iter()
                .filter(|g| g.mobile == mac)
                .min_by(|a, b| {
                    let da = (a.time_s - fix.time_s).abs();
                    let db = (b.time_s - fix.time_s).abs();
                    da.partial_cmp(&db).expect("finite")
                })
                .expect("ground truth exists");
            total_err += fix.estimate.position.distance(truth.position);
        }
        let mean = total_err / fixes.len() as f64;
        // The victim walks ~42 m per window; windowed Γ mixes positions,
        // so allow a generous bound — still far below the AP radius.
        assert!(mean < 120.0, "mean tracking error {mean}");
    }

    #[test]
    fn locations_only_estimates_radii_on_ingest() {
        let (result, mac) = scenario_with_victim();
        let db =
            ApDatabase::from_access_points(&result.aps, result.environment_margin).without_radii();
        let mut map = MaraudersMap::new(db, KnowledgeLevel::LocationsOnly, AttackConfig::default());
        assert!(map.ap_radii().is_empty());
        map.ingest(&result.captures);
        assert!(!map.ap_radii().is_empty(), "AP-Rad must fill radii");
        let fixes = map.track(&result.captures, mac);
        assert!(!fixes.is_empty());
    }

    #[test]
    fn no_knowledge_level_trains_locations() {
        let (result, mac) = scenario_with_victim();
        let link = LinkModel::free_space(result.environment_margin);
        let route = WardriveRoute::lawnmower(
            marauder_sim::deploy::Rect::centered_square(400.0),
            8,
            10.0,
            8.0,
        );
        let training = wardrive(&route, &result.aps, &link);
        let map_cfg = AttackConfig::default();
        let mut map = MaraudersMap::from_training(&training, map_cfg);
        assert_eq!(map.knowledge(), KnowledgeLevel::NoKnowledge);
        assert!(!map.ap_locations().is_empty());
        map.ingest(&result.captures);
        let fixes = map.track(&result.captures, mac);
        assert!(!fixes.is_empty(), "AP-Loc pipeline must produce fixes");
    }

    #[test]
    #[should_panic(expected = "requires a radius")]
    fn full_knowledge_without_radii_panics() {
        let db: ApDatabase = vec![crate::apdb::ApRecord {
            bssid: MacAddr::from_index(1),
            ssid: None,
            location: Point::ORIGIN,
            radius: None,
        }]
        .into_iter()
        .collect();
        let _ = MaraudersMap::new(db, KnowledgeLevel::Full, AttackConfig::default());
    }

    #[test]
    #[should_panic(expected = "from_training")]
    fn no_knowledge_via_new_panics() {
        let _ = MaraudersMap::new(
            ApDatabase::new(),
            KnowledgeLevel::NoKnowledge,
            AttackConfig::default(),
        );
    }

    #[test]
    fn locate_unknown_gamma_returns_none() {
        let db = ApDatabase::new();
        let map = MaraudersMap::new(db, KnowledgeLevel::LocationsOnly, AttackConfig::default());
        let gamma: BTreeSet<MacAddr> = [MacAddr::from_index(5)].into_iter().collect();
        assert!(map.locate(&gamma).is_none());
        // The typed path names the cause.
        assert_eq!(
            map.try_locate(&gamma).unwrap_err(),
            crate::error::PipelineError::NoKnownAps { observed: 1 }
        );
        assert_eq!(
            map.try_locate(&BTreeSet::new()).unwrap_err(),
            crate::error::PipelineError::EmptyObservation
        );
    }

    /// A map whose knowledge has locations for APs 1–3 but radii only
    /// where `radius` says so.
    fn ladder_map(radii: &[Option<f64>], policy: DegradationPolicy) -> MaraudersMap {
        let db: ApDatabase = radii
            .iter()
            .enumerate()
            .map(|(i, r)| crate::apdb::ApRecord {
                bssid: MacAddr::from_index(1 + i as u64),
                ssid: None,
                location: Point::new(i as f64 * 100.0, 0.0),
                radius: *r,
            })
            .collect();
        let mut map = MaraudersMap::new(
            db,
            KnowledgeLevel::LocationsOnly,
            AttackConfig {
                degradation: policy,
                ..AttackConfig::default()
            },
        );
        // Install the radii directly (skip the LP): only the Some
        // entries become usable discs.
        let usable: BTreeMap<MacAddr, f64> = radii
            .iter()
            .enumerate()
            .filter_map(|(i, r)| Some((MacAddr::from_index(1 + i as u64), (*r)?)))
            .collect();
        map.apply_radii(usable);
        map
    }

    #[test]
    fn ladder_reports_mloc_and_inflated_provenance() {
        let gamma: BTreeSet<MacAddr> = [MacAddr::from_index(1), MacAddr::from_index(2)]
            .into_iter()
            .collect();
        // Overlapping discs: plain M-Loc.
        let map = ladder_map(&[Some(120.0), Some(120.0)], DegradationPolicy::Strict);
        let (est, prov) = map.try_locate(&gamma).unwrap();
        assert_eq!(prov, FixProvenance::MLoc);
        assert!(est.inflation <= 1.0 + 1e-12);
        // Disjoint discs: the inflation fallback fires.
        let map = ladder_map(&[Some(20.0), Some(20.0)], DegradationPolicy::Strict);
        let (est, prov) = map.try_locate(&gamma).unwrap();
        assert_eq!(prov, FixProvenance::Inflated);
        assert!(est.inflation > 1.0);
    }

    #[test]
    fn graceful_ladder_degrades_to_centroid_then_nearest_ap() {
        // Three known locations, zero usable radii.
        let gamma: BTreeSet<MacAddr> = (1..=3).map(MacAddr::from_index).collect();
        let strict = ladder_map(&[None, None, None], DegradationPolicy::Strict);
        assert_eq!(
            strict.try_locate(&gamma).unwrap_err(),
            crate::error::PipelineError::NoUsableRadii { known: 3 }
        );
        let graceful = ladder_map(&[None, None, None], DegradationPolicy::Graceful);
        let (est, prov) = graceful.try_locate(&gamma).unwrap();
        assert_eq!(prov, FixProvenance::Centroid);
        assert!(est.position.distance(Point::new(100.0, 0.0)) < 1e-9);
        assert_eq!(est.k, 3);
        assert_eq!(est.area(), 0.0, "point estimate has no region");
        // One known location among unknowns: the nearest-AP rung.
        let gamma: BTreeSet<MacAddr> = [MacAddr::from_index(1), MacAddr::from_index(77)]
            .into_iter()
            .collect();
        let (est, prov) = graceful.try_locate(&gamma).unwrap();
        assert_eq!(prov, FixProvenance::NearestAp);
        assert!(est.position.distance(Point::new(0.0, 0.0)) < 1e-9);
        // Nothing known at all is lost even gracefully.
        let gamma: BTreeSet<MacAddr> = [MacAddr::from_index(77)].into_iter().collect();
        assert_eq!(
            graceful.try_locate(&gamma).unwrap_err(),
            crate::error::PipelineError::NoKnownAps { observed: 1 }
        );
    }

    #[test]
    fn accounted_localization_sums_to_total() {
        let (result, _) = scenario_with_victim();
        let db = ApDatabase::from_access_points(&result.aps, result.environment_margin);
        let mut map = MaraudersMap::new(db, KnowledgeLevel::Full, AttackConfig::default());
        map.ingest(&result.captures);
        let obs = result.captures.observation_sets(map.config().window_s);
        let total = obs.len();
        let (fixes, lost) = map.localize_windows_accounted(obs);
        assert_eq!(fixes.len() + lost.len(), total);
        assert!(fixes
            .iter()
            .all(|f| !f.provenance.is_degraded() || f.provenance == FixProvenance::Inflated));
    }

    #[test]
    fn track_all_is_invariant_to_worker_count() {
        let (result, _) = scenario_with_victim();
        let db = ApDatabase::from_access_points(&result.aps, result.environment_margin);
        let mut map = MaraudersMap::new(db, KnowledgeLevel::Full, AttackConfig::default());
        map.ingest(&result.captures);
        let run = |threads| {
            marauder_par::set_threads(threads);
            let fixes = map.track_all(&result.captures);
            marauder_par::set_threads(0);
            fixes
        };
        let sequential = run(1);
        assert!(!sequential.is_empty());
        for threads in [2, 4, 7] {
            let parallel = run(threads);
            assert_eq!(parallel.len(), sequential.len());
            for (p, s) in parallel.iter().zip(&sequential) {
                assert_eq!(p.time_s.to_bits(), s.time_s.to_bits());
                assert_eq!(p.mobile, s.mobile);
                assert_eq!(p.gamma, s.gamma);
                assert_eq!(
                    p.estimate.position.x.to_bits(),
                    s.estimate.position.x.to_bits()
                );
                assert_eq!(
                    p.estimate.position.y.to_bits(),
                    s.estimate.position.y.to_bits()
                );
            }
        }
    }

    #[test]
    fn radius_solver_reproduces_ingest_radii() {
        let (result, _) = scenario_with_victim();
        let db =
            ApDatabase::from_access_points(&result.aps, result.environment_margin).without_radii();
        let mut map = MaraudersMap::new(db, KnowledgeLevel::LocationsOnly, AttackConfig::default());
        map.ingest(&result.captures);
        // Fold the same windows through the incremental solver — the
        // radii must come out bit-identical to the batch ingest.
        let mut solver = map.radius_solver().expect("LocationsOnly has a solver");
        for o in result.captures.observation_sets(map.config().window_s) {
            solver.observe(&o.aps);
        }
        let live = solver.radii().clone();
        assert_eq!(live.len(), map.ap_radii().len());
        for (mac, r) in map.ap_radii() {
            assert_eq!(
                r.to_bits(),
                live[mac].to_bits(),
                "radius diverged for {mac}"
            );
        }
        // apply_radii is idempotent with the batch estimate.
        let before = map.ap_radii().clone();
        map.apply_radii(live);
        assert_eq!(&before, map.ap_radii());
    }

    #[test]
    fn full_knowledge_has_no_radius_solver() {
        let (result, _) = scenario_with_victim();
        let db = ApDatabase::from_access_points(&result.aps, result.environment_margin);
        let map = MaraudersMap::new(db, KnowledgeLevel::Full, AttackConfig::default());
        assert!(map.radius_solver().is_none());
    }

    #[test]
    #[should_panic(expected = "refusing to overwrite")]
    fn apply_radii_refuses_full_knowledge() {
        let (result, _) = scenario_with_victim();
        let db = ApDatabase::from_access_points(&result.aps, result.environment_margin);
        let mut map = MaraudersMap::new(db, KnowledgeLevel::Full, AttackConfig::default());
        map.apply_radii(BTreeMap::new());
    }

    #[test]
    fn track_all_covers_background_mobiles() {
        let (result, _) = scenario_with_victim();
        let db = ApDatabase::from_access_points(&result.aps, result.environment_margin);
        let mut map = MaraudersMap::new(db, KnowledgeLevel::Full, AttackConfig::default());
        map.ingest(&result.captures);
        let fixes = map.track_all(&result.captures);
        let tracked: BTreeSet<MacAddr> = fixes.iter().map(|f| f.mobile).collect();
        // Several distinct mobiles tracked (victim + probing background).
        assert!(tracked.len() >= 2, "tracked {} mobiles", tracked.len());
    }
}
