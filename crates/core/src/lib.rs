//! The Digital Marauder's Map — malicious WiFi localization.
//!
//! This crate implements the paper's contribution on top of the
//! workspace substrates: given the set of access points observed
//! communicating with a mobile device (no signal strength!), estimate
//! the device's position.
//!
//! Three algorithms cover three knowledge levels (Section III-C/D):
//!
//! | Algorithm | Needs | Idea |
//! |-----------|-------|------|
//! | [`algorithms::MLoc`] | AP locations **and** radii | intersect coverage discs, average the boundary vertices |
//! | [`algorithms::ApRad`] | AP locations only | estimate radii by linear programming over co-observation constraints, then M-Loc |
//! | [`algorithms::ApLoc`] | nothing (training tuples) | locate APs from wardriving tuples by disc intersection, then AP-Rad |
//!
//! Baselines from prior work: [`algorithms::Centroid`] and
//! [`algorithms::NearestAp`].
//!
//! The [`theory`] module evaluates the paper's Theorems 1–3 numerically
//! (Figs. 2, 3, 5, 6); [`pipeline`] packages the full training +
//! attacking phases; [`eval`] computes the accuracy statistics of
//! Figs. 13–17; [`map`] renders results as GeoJSON (the paper used
//! Google Maps).
//!
//! # Example
//!
//! ```
//! use marauder_core::algorithms::{CoverageDisc, MLoc};
//! use marauder_geo::Point;
//!
//! // Three APs with known positions and ranges saw the mobile:
//! let discs = vec![
//!     CoverageDisc::new(Point::new(0.0, 0.0), 120.0),
//!     CoverageDisc::new(Point::new(150.0, 20.0), 130.0),
//!     CoverageDisc::new(Point::new(60.0, 140.0), 125.0),
//! ];
//! let estimate = MLoc::default().locate(&discs).expect("discs intersect");
//! assert!(estimate.position.distance(Point::new(60.0, 40.0)) < 60.0);
//! ```

#![forbid(unsafe_code)]

pub mod algorithms;
pub mod apdb;
pub mod error;
pub mod eval;
pub mod map;
pub mod pipeline;
pub mod pseudonym;
pub mod report;
pub mod theory;
pub mod tracker;

pub use algorithms::{
    ApLoc, ApRad, ApRadSolver, Centroid, CoverageDisc, Estimate, MLoc, NearestAp, ObservationStats,
};
pub use apdb::{ApDatabase, ApRecord};
pub use error::PipelineError;
pub use eval::{bucket_by_min_aps, ErrorStats, EvalOutcome};
pub use pipeline::{
    AttackConfig, DegradationPolicy, FixProvenance, KnowledgeLevel, MaraudersMap, TrackFix,
};
pub use pseudonym::{LinkedDevice, PseudonymLinker};
pub use report::{AttackReport, DeviceSummary};
pub use tracker::{KalmanSmoother, TrackPoint};
