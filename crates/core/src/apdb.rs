//! The access-point knowledge database.
//!
//! The attacker's external knowledge — a WiGLE-like registry of AP
//! locations and (sometimes) maximum transmission distances. Built
//! either from downloaded data (simulated: the scenario's deployed APs)
//! or from the training phase (AP-Loc estimates). Supports the CSV
//! interchange format wardriving tools dump.

use marauder_geo::Point;
use marauder_rf::units::Db;
use marauder_wifi::device::AccessPoint;
use marauder_wifi::mac::MacAddr;
use std::collections::BTreeMap;
use std::fmt;

/// One AP's knowledge record.
#[derive(Debug, Clone, PartialEq)]
pub struct ApRecord {
    /// The AP's BSSID.
    pub bssid: MacAddr,
    /// Network name, when known.
    pub ssid: Option<String>,
    /// Position in the local ENU plane, meters.
    pub location: Point,
    /// Maximum transmission distance in meters, when known (WiGLE does
    /// not publish this; the paper measures it by driving around).
    pub radius: Option<f64>,
}

/// The attacker's AP database.
///
/// # Example
///
/// ```
/// use marauder_core::apdb::{ApDatabase, ApRecord};
/// use marauder_geo::Point;
/// use marauder_wifi::mac::MacAddr;
///
/// let mut db = ApDatabase::new();
/// db.insert(ApRecord {
///     bssid: MacAddr::from_index(1),
///     ssid: Some("cafe".into()),
///     location: Point::new(10.0, 5.0),
///     radius: Some(120.0),
/// });
/// assert_eq!(db.len(), 1);
/// assert!(db.get(MacAddr::from_index(1)).is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ApDatabase {
    records: BTreeMap<MacAddr, ApRecord>,
}

/// Error returned when parsing the CSV interchange format fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCsvError {
    line: usize,
    reason: String,
}

impl fmt::Display for ParseCsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "csv parse error on line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseCsvError {}

impl ApDatabase {
    /// An empty database.
    pub fn new() -> Self {
        ApDatabase::default()
    }

    /// Builds ground-truth external knowledge from deployed APs: exact
    /// locations plus the free-space maximum transmission distance under
    /// `environment_margin` — what the paper measures by driving around
    /// with a tablet.
    pub fn from_access_points(aps: &[AccessPoint], environment_margin: Db) -> Self {
        let mut db = ApDatabase::new();
        for ap in aps {
            db.insert(ApRecord {
                bssid: ap.bssid,
                ssid: Some(ap.ssid.as_str().to_string()),
                location: ap.location,
                radius: Some(ap.max_transmission_distance(environment_margin).meters()),
            });
        }
        db
    }

    /// Inserts (or replaces) a record, returning the previous one.
    pub fn insert(&mut self, rec: ApRecord) -> Option<ApRecord> {
        self.records.insert(rec.bssid, rec)
    }

    /// Looks up a record by BSSID.
    pub fn get(&self, bssid: MacAddr) -> Option<&ApRecord> {
        self.records.get(&bssid)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over records in BSSID order.
    pub fn iter(&self) -> impl Iterator<Item = &ApRecord> {
        self.records.values()
    }

    /// A copy with all radii removed — the "only AP locations are known"
    /// knowledge level (what WiGLE actually gives you).
    pub fn without_radii(&self) -> ApDatabase {
        let mut db = self.clone();
        for rec in db.records.values_mut() {
            rec.radius = None;
        }
        db
    }

    /// `true` when every record carries a radius.
    pub fn has_all_radii(&self) -> bool {
        self.records.values().all(|r| r.radius.is_some())
    }

    /// Sets the radius for one AP (used by AP-Rad to write back its LP
    /// estimates). Returns `false` when the BSSID is unknown.
    pub fn set_radius(&mut self, bssid: MacAddr, radius: f64) -> bool {
        match self.records.get_mut(&bssid) {
            Some(r) => {
                r.radius = Some(radius);
                true
            }
            None => false,
        }
    }

    /// Serializes to the CSV interchange format:
    /// `bssid,ssid,x,y,radius` with empty fields for unknowns.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("bssid,ssid,x,y,radius\n");
        for r in self.records.values() {
            let ssid = r.ssid.as_deref().unwrap_or("");
            let radius = r.radius.map(|v| format!("{v:.3}")).unwrap_or_default();
            out.push_str(&format!(
                "{},{},{:.3},{:.3},{}\n",
                r.bssid, ssid, r.location.x, r.location.y, radius
            ));
        }
        out
    }

    /// Parses the CSV interchange format produced by
    /// [`to_csv`](Self::to_csv).
    ///
    /// # Errors
    ///
    /// Returns [`ParseCsvError`] naming the offending line.
    pub fn from_csv(text: &str) -> Result<Self, ParseCsvError> {
        let mut db = ApDatabase::new();
        for (i, line) in text.lines().enumerate() {
            if i == 0 || line.trim().is_empty() {
                continue; // header / blank
            }
            let err = |reason: &str| ParseCsvError {
                line: i + 1,
                reason: reason.to_string(),
            };
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 5 {
                return Err(err("expected 5 fields"));
            }
            let bssid: MacAddr = fields[0].parse().map_err(|_| err("bad bssid"))?;
            let ssid = if fields[1].is_empty() {
                None
            } else {
                Some(fields[1].to_string())
            };
            let x: f64 = fields[2].parse().map_err(|_| err("bad x"))?;
            let y: f64 = fields[3].parse().map_err(|_| err("bad y"))?;
            let radius = if fields[4].is_empty() {
                None
            } else {
                Some(fields[4].parse().map_err(|_| err("bad radius"))?)
            };
            if radius.is_some_and(|r| r < 0.0) {
                return Err(err("negative radius"));
            }
            db.insert(ApRecord {
                bssid,
                ssid,
                location: Point::new(x, y),
                radius,
            });
        }
        Ok(db)
    }
}

impl FromIterator<ApRecord> for ApDatabase {
    fn from_iter<T: IntoIterator<Item = ApRecord>>(iter: T) -> Self {
        let mut db = ApDatabase::new();
        for r in iter {
            db.insert(r);
        }
        db
    }
}

impl Extend<ApRecord> for ApDatabase {
    fn extend<T: IntoIterator<Item = ApRecord>>(&mut self, iter: T) {
        for r in iter {
            self.insert(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marauder_wifi::channel::Channel;
    use marauder_wifi::ssid::Ssid;

    fn rec(i: u64, radius: Option<f64>) -> ApRecord {
        ApRecord {
            bssid: MacAddr::from_index(i),
            ssid: Some(format!("net-{i}")),
            location: Point::new(i as f64, -(i as f64)),
            radius,
        }
    }

    #[test]
    fn insert_get_len() {
        let mut db = ApDatabase::new();
        assert!(db.is_empty());
        assert!(db.insert(rec(1, Some(100.0))).is_none());
        assert!(db.insert(rec(2, None)).is_none());
        assert_eq!(db.len(), 2);
        assert_eq!(db.get(MacAddr::from_index(1)).unwrap().radius, Some(100.0));
        assert!(db.get(MacAddr::from_index(9)).is_none());
        // Replacement returns the old record.
        let old = db.insert(rec(1, Some(50.0))).unwrap();
        assert_eq!(old.radius, Some(100.0));
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn without_radii_strips_everything() {
        let db: ApDatabase = (0..5).map(|i| rec(i, Some(100.0))).collect();
        assert!(db.has_all_radii());
        let stripped = db.without_radii();
        assert_eq!(stripped.len(), 5);
        assert!(!stripped.has_all_radii());
        assert!(stripped.iter().all(|r| r.radius.is_none()));
        // Original untouched.
        assert!(db.has_all_radii());
    }

    #[test]
    fn set_radius() {
        let mut db: ApDatabase = (0..3).map(|i| rec(i, None)).collect();
        assert!(db.set_radius(MacAddr::from_index(0), 42.0));
        assert!(!db.set_radius(MacAddr::from_index(99), 1.0));
        assert_eq!(db.get(MacAddr::from_index(0)).unwrap().radius, Some(42.0));
    }

    #[test]
    fn csv_round_trip() {
        let db: ApDatabase = vec![rec(1, Some(123.456)), rec(2, None)]
            .into_iter()
            .collect();
        let csv = db.to_csv();
        let back = ApDatabase::from_csv(&csv).unwrap();
        assert_eq!(back.len(), 2);
        let r1 = back.get(MacAddr::from_index(1)).unwrap();
        assert!((r1.radius.unwrap() - 123.456).abs() < 1e-6);
        assert_eq!(r1.ssid.as_deref(), Some("net-1"));
        let r2 = back.get(MacAddr::from_index(2)).unwrap();
        assert_eq!(r2.radius, None);
    }

    #[test]
    fn csv_rejects_malformed() {
        assert!(ApDatabase::from_csv("header\nnot,enough,fields").is_err());
        assert!(ApDatabase::from_csv("h\nzz:zz,s,1,2,3").is_err());
        assert!(ApDatabase::from_csv("h\n00:16:00:00:00:01,s,x,2,3").is_err());
        let neg = ApDatabase::from_csv("h\n00:16:00:00:00:01,s,1,2,-5");
        assert!(neg.unwrap_err().to_string().contains("negative radius"));
    }

    #[test]
    fn csv_skips_blank_lines() {
        let db = ApDatabase::from_csv("bssid,ssid,x,y,radius\n\n\n").unwrap();
        assert!(db.is_empty());
    }

    #[test]
    fn from_access_points_computes_radii() {
        let aps = vec![AccessPoint::new(
            MacAddr::from_index(7),
            Ssid::new("x").unwrap(),
            Channel::bg(6).unwrap(),
            Point::new(1.0, 2.0),
        )];
        let db = ApDatabase::from_access_points(&aps, Db::new(21.0));
        let r = db.get(MacAddr::from_index(7)).unwrap();
        assert_eq!(r.location, Point::new(1.0, 2.0));
        assert!(r.radius.unwrap() > 10.0);
        assert_eq!(r.ssid.as_deref(), Some("x"));
    }

    #[test]
    fn extend_merges() {
        let mut db: ApDatabase = vec![rec(1, None)].into_iter().collect();
        db.extend(vec![rec(2, None), rec(3, None)]);
        assert_eq!(db.len(), 3);
    }
}
