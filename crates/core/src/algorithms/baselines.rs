//! Baseline localizers from prior work.
//!
//! * [`Centroid`] — estimate the mobile at the arithmetic mean of its
//!   communicable APs' positions (the range-free approach of the paper's
//!   ref. [26]). Vulnerable to biased AP distributions (Fig. 4): a dense
//!   cluster of APs drags the estimate toward the cluster.
//! * [`NearestAp`] — estimate the mobile at a single AP's location (the
//!   "closest AP" approach, paper refs. [5]); equals disc intersection at
//!   `k = 1`. Without signal strength the attacker cannot know which AP
//!   is truly nearest, so the smallest-radius communicable AP (the
//!   tightest constraint) is used when radii are known.

use marauder_geo::Point;

/// The centroid-of-APs baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Centroid;

impl Centroid {
    /// The mean of the communicable APs' positions, or `None` when the
    /// slice is empty.
    pub fn locate(&self, ap_positions: &[Point]) -> Option<Point> {
        Point::mean(ap_positions.iter().copied())
    }
}

/// The nearest-AP baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NearestAp;

impl NearestAp {
    /// Picks the AP with the smallest known radius (tightest disc); ties
    /// and unknown radii fall back to the first AP. Returns `None` for
    /// an empty slice.
    pub fn locate(&self, aps: &[(Point, Option<f64>)]) -> Option<Point> {
        if aps.is_empty() {
            return None;
        }
        let best = aps.iter().min_by(|a, b| {
            let ra = a.1.unwrap_or(f64::INFINITY);
            let rb = b.1.unwrap_or(f64::INFINITY);
            ra.total_cmp(&rb)
        })?;
        Some(best.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centroid_basics() {
        let c = Centroid;
        assert_eq!(c.locate(&[]), None);
        assert_eq!(
            c.locate(&[Point::new(2.0, 4.0)]),
            Some(Point::new(2.0, 4.0))
        );
        let mean = c
            .locate(&[
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(5.0, 9.0),
            ])
            .unwrap();
        assert_eq!(mean, Point::new(5.0, 3.0));
    }

    #[test]
    fn centroid_is_dragged_by_clusters() {
        // Fig. 4's failure mode: 2 spread APs + 8 clustered far away.
        let mut aps = vec![Point::new(-100.0, 0.0), Point::new(100.0, 0.0)];
        for i in 0..8 {
            aps.push(Point::new(400.0 + i as f64, 400.0));
        }
        let est = Centroid.locate(&aps).unwrap();
        // The estimate is pulled deep into the cluster's direction even
        // though the mobile (near the origin) hears all of them.
        assert!(est.x > 300.0 && est.y > 300.0, "estimate {est}");
    }

    #[test]
    fn nearest_ap_prefers_smallest_radius() {
        let aps = [
            (Point::new(0.0, 0.0), Some(500.0)),
            (Point::new(50.0, 0.0), Some(80.0)),
            (Point::new(90.0, 0.0), Some(200.0)),
        ];
        assert_eq!(NearestAp.locate(&aps), Some(Point::new(50.0, 0.0)));
    }

    #[test]
    fn nearest_ap_without_radii_takes_first() {
        let aps = [(Point::new(1.0, 1.0), None), (Point::new(2.0, 2.0), None)];
        assert_eq!(NearestAp.locate(&aps), Some(Point::new(1.0, 1.0)));
        assert_eq!(NearestAp.locate(&[]), None);
    }

    #[test]
    fn known_radius_beats_unknown() {
        let aps = [
            (Point::new(1.0, 1.0), None),
            (Point::new(2.0, 2.0), Some(100.0)),
        ];
        assert_eq!(NearestAp.locate(&aps), Some(Point::new(2.0, 2.0)));
    }
}
