//! The malicious localization algorithms.
//!
//! * [`MLoc`] — disc intersection with known AP locations and radii
//!   (paper Algorithm "M-Loc"),
//! * [`ApRad`] — linear-programming radius estimation from
//!   co-observation constraints, then M-Loc (Algorithm "AP-Rad"),
//! * [`ApLoc`] — AP localization from wardriving training tuples, then
//!   AP-Rad (Algorithm "AP-Loc"),
//! * [`Centroid`] / [`NearestAp`] — prior-work baselines the paper
//!   compares against.

mod aploc;
mod aprad;
mod baselines;
mod mloc;

pub use aploc::ApLoc;
pub use aprad::{ApRad, ApRadSolver, ObservationStats, PairPruning};
pub use baselines::{Centroid, NearestAp};
pub use mloc::{CentroidMode, MLoc};

use marauder_geo::{Circle, DiscIntersection, Point};

/// One AP's assumed maximum coverage area: a disc around its location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageDisc {
    /// AP location, local ENU meters.
    pub center: Point,
    /// Assumed maximum transmission distance, meters.
    pub radius: f64,
}

impl CoverageDisc {
    /// Creates a coverage disc.
    ///
    /// # Panics
    ///
    /// Panics for a negative or non-finite radius.
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "coverage radius must be finite and >= 0, got {radius}"
        );
        CoverageDisc { center, radius }
    }

    /// The disc as a geometry circle.
    pub fn circle(&self) -> Circle {
        Circle::new(self.center, self.radius)
    }
}

impl From<CoverageDisc> for Circle {
    fn from(d: CoverageDisc) -> Circle {
        d.circle()
    }
}

/// A localization estimate together with its supporting region.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// The estimated position.
    pub position: Point,
    /// The intersected region the estimate was drawn from.
    pub region: DiscIntersection,
    /// Number of communicable APs used.
    pub k: usize,
    /// Radius multiplier that had to be applied before the discs
    /// intersected (1.0 when the raw discs already intersected; > 1.0
    /// means the knowledge underestimated some radius — Theorem 3's
    /// `R < r` regime).
    pub inflation: f64,
}

impl Estimate {
    /// Area of the intersected region, m² (Fig. 15's metric).
    pub fn area(&self) -> f64 {
        self.region.area()
    }

    /// Whether the region covers a (ground-truth) point — Fig. 16's
    /// metric.
    pub fn covers(&self, p: Point) -> bool {
        self.region.contains(p)
    }

    /// The smallest circle enclosing the intersected region (boundary
    /// arcs sampled densely): an honest "the victim is within `radius`
    /// of `center`" statement for the map display. `None` only for an
    /// empty region.
    pub fn enclosing_circle(&self) -> Option<Circle> {
        let mut samples: Vec<Point> = self.region.vertices().to_vec();
        for arc in self.region.arcs() {
            let steps = 16usize;
            for k in 0..=steps {
                let a = arc.start + arc.span() * k as f64 / steps as f64;
                samples.push(arc.circle.point_at(a));
            }
        }
        marauder_geo::smallest_enclosing_circle(&samples)
    }

    /// Worst-case distance from the point estimate to anywhere in the
    /// region — the uncertainty the attacker should quote.
    pub fn uncertainty_radius(&self) -> Option<f64> {
        let mec = self.enclosing_circle()?;
        Some(self.position.distance(mec.center) + mec.radius)
    }

    /// A degenerate point estimate with no supporting region — the
    /// shape the degradation ladder's Centroid and Nearest-AP rungs
    /// produce when disc intersection is impossible. The region is a
    /// single zero-radius disc at the position, so `area()` is 0 and
    /// `covers` holds only at the point itself.
    pub fn point(position: Point, k: usize) -> Self {
        Estimate {
            position,
            region: DiscIntersection::new(&[Circle::new(position, 0.0)]),
            k,
            inflation: 1.0,
        }
    }
}
