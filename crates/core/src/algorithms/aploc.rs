//! AP-Loc: localization with no prior AP knowledge (paper Section
//! III-C3 and the "AP-Loc" pseudocode).
//!
//! The adversary first wardrives the area collecting training tuples
//! (location, communicable-AP set). Each AP's location is then estimated
//! as the centroid of the intersection of discs centered at the training
//! locations that saw it — with a theoretical upper-bound radius, since
//! neither the true radii nor (yet) the AP positions are known. With AP
//! locations estimated, AP-Rad takes over: LP radius estimation, then
//! M-Loc.

use super::{ApRad, CoverageDisc, Estimate, MLoc};
use marauder_geo::Point;
use marauder_sim::wardrive::TrainingTuple;
use marauder_wifi::mac::MacAddr;
use std::collections::{BTreeMap, BTreeSet};

/// The AP-Loc localizer.
#[derive(Debug, Clone, PartialEq)]
pub struct ApLoc {
    /// Theoretical upper bound on AP transmission distance used for the
    /// training discs, meters (the paper: "use a theoretical upper bound
    /// as the radius").
    pub training_radius: f64,
    /// The AP-Rad stage run after AP locations are estimated.
    pub aprad: ApRad,
}

impl Default for ApLoc {
    fn default() -> Self {
        ApLoc {
            training_radius: 250.0,
            aprad: ApRad::default(),
        }
    }
}

impl ApLoc {
    /// Estimates the location of every AP that appears in at least one
    /// training tuple, by intersecting discs around the training
    /// locations that saw it (region centroid, as the paper specifies
    /// "estimate the AP's location as the centroid of the intersected
    /// area").
    pub fn estimate_ap_locations(&self, training: &[TrainingTuple]) -> BTreeMap<MacAddr, Point> {
        let mut seen_at: BTreeMap<MacAddr, Vec<Point>> = BTreeMap::new();
        for t in training {
            for mac in &t.aps {
                seen_at.entry(*mac).or_default().push(t.location);
            }
        }
        let mloc = MLoc::region_centroid();
        seen_at
            .into_iter()
            .filter_map(|(mac, points)| {
                let discs: Vec<CoverageDisc> = points
                    .into_iter()
                    .map(|p| CoverageDisc::new(p, self.training_radius))
                    .collect();
                let est = mloc.locate(&discs)?;
                Some((mac, est.position))
            })
            .collect()
    }

    /// Lower bounds on the radii implied by the training data: an AP
    /// heard from a training location must reach at least from its
    /// (estimated) position to that location. Feeding these into the
    /// AP-Rad LP keeps radii from collapsing when the trained positions
    /// distort pairwise distances.
    pub fn training_radius_bounds(
        &self,
        training: &[TrainingTuple],
        locations: &BTreeMap<MacAddr, Point>,
    ) -> BTreeMap<MacAddr, f64> {
        let mut bounds: BTreeMap<MacAddr, f64> = BTreeMap::new();
        for t in training {
            for mac in &t.aps {
                if let Some(loc) = locations.get(mac) {
                    let d = loc.distance(t.location);
                    let e = bounds.entry(*mac).or_insert(0.0);
                    *e = e.max(d);
                }
            }
        }
        bounds
    }

    /// Full AP-Loc: estimate AP locations from `training`, estimate
    /// radii from `observations` (AP-Rad with training lower bounds),
    /// then locate the mobile whose communicable set is `gamma`.
    ///
    /// Returns `None` when no AP in `gamma` could be located from the
    /// training data.
    pub fn locate(
        &self,
        training: &[TrainingTuple],
        observations: &[BTreeSet<MacAddr>],
        gamma: &BTreeSet<MacAddr>,
    ) -> Option<Estimate> {
        let locations = self.estimate_ap_locations(training);
        let bounds = self.training_radius_bounds(training, &locations);
        let radii = self
            .aprad
            .estimate_radii_with_bounds(&locations, observations, &bounds);
        let discs: Vec<CoverageDisc> = gamma
            .iter()
            .filter_map(|mac| {
                let loc = locations.get(mac)?;
                let r = radii.get(mac)?;
                Some(CoverageDisc::new(*loc, *r))
            })
            .collect();
        self.aprad.mloc.locate(&discs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(i: u64) -> MacAddr {
        MacAddr::from_index(i)
    }

    /// Ground truth world shared by the tests: APs with true radius `r`.
    struct World {
        aps: BTreeMap<MacAddr, Point>,
        r: f64,
    }

    impl World {
        fn new(r: f64) -> World {
            let mut aps = BTreeMap::new();
            aps.insert(mac(1), Point::new(0.0, 0.0));
            aps.insert(mac(2), Point::new(140.0, 30.0));
            aps.insert(mac(3), Point::new(60.0, 150.0));
            aps.insert(mac(4), Point::new(-80.0, 110.0));
            aps.insert(mac(5), Point::new(40.0, -120.0));
            World { aps, r }
        }

        fn observe(&self, at: Point) -> BTreeSet<MacAddr> {
            self.aps
                .iter()
                .filter(|(_, p)| p.distance(at) <= self.r)
                .map(|(m, _)| *m)
                .collect()
        }

        /// Wardrive a grid and keep tuples (including empty ones).
        fn training(&self, pitch: f64, half: f64) -> Vec<TrainingTuple> {
            let mut out = Vec::new();
            let mut x = -half;
            while x <= half {
                let mut y = -half;
                while y <= half {
                    let p = Point::new(x, y);
                    out.push(TrainingTuple {
                        location: p,
                        aps: self.observe(p),
                    });
                    y += pitch;
                }
                x += pitch;
            }
            out
        }
    }

    #[test]
    fn ap_locations_recovered_from_dense_training() {
        let world = World::new(120.0);
        let training = world.training(30.0, 200.0);
        let aploc = ApLoc {
            training_radius: 130.0,
            ..ApLoc::default()
        };
        let est = aploc.estimate_ap_locations(&training);
        assert_eq!(est.len(), world.aps.len());
        for (mac, true_pos) in &world.aps {
            let got = est[mac];
            let err = got.distance(*true_pos);
            assert!(
                err < 40.0,
                "AP {mac} estimated {got}, truth {true_pos} (err {err})"
            );
        }
    }

    #[test]
    fn sparse_training_still_gives_estimates() {
        // The paper's Fig. 17 point: even ~19 tuples give usable AP
        // positions.
        let world = World::new(120.0);
        let training = world.training(100.0, 200.0); // 5x5 = 25 tuples
        let aploc = ApLoc {
            training_radius: 150.0,
            ..ApLoc::default()
        };
        let est = aploc.estimate_ap_locations(&training);
        assert!(!est.is_empty());
        for (mac, got) in &est {
            let err = got.distance(world.aps[mac]);
            assert!(err < 120.0, "AP {mac} err {err}");
        }
    }

    #[test]
    fn empty_training_gives_nothing() {
        let aploc = ApLoc::default();
        assert!(aploc.estimate_ap_locations(&[]).is_empty());
        assert!(aploc.locate(&[], &[], &BTreeSet::new()).is_none());
    }

    #[test]
    fn tuples_with_empty_ap_sets_are_harmless() {
        let world = World::new(100.0);
        let mut training = world.training(50.0, 150.0);
        training.push(TrainingTuple {
            location: Point::new(10_000.0, 10_000.0),
            aps: BTreeSet::new(),
        });
        let est = ApLoc::default().estimate_ap_locations(&training);
        assert!(!est.is_empty());
    }

    #[test]
    fn full_pipeline_localizes_a_victim() {
        let world = World::new(130.0);
        let training = world.training(40.0, 200.0);
        // Attack-phase observations: mobiles wandering around.
        let mut observations = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let p = Point::new(i as f64 * 35.0 - 150.0, j as f64 * 35.0 - 150.0);
                let obs = world.observe(p);
                if !obs.is_empty() {
                    observations.push(obs);
                }
            }
        }
        let victim = Point::new(30.0, 40.0);
        let gamma = world.observe(victim);
        assert!(gamma.len() >= 2, "victim must see APs");
        let aploc = ApLoc {
            training_radius: 140.0,
            aprad: ApRad {
                // A tight theoretical cap: with only 5 APs most pairs are
                // co-observed, so the maximize-sum LP pushes unconstrained
                // radii to this bound (exactly the paper's preference for
                // overestimates); a sane bound keeps the region tight.
                max_radius: 150.0,
                ..ApRad::default()
            },
        };
        let est = aploc
            .locate(&training, &observations, &gamma)
            .expect("locatable");
        let err = est.position.distance(victim);
        // AP-Loc is the weakest knowledge level; accept a coarser error
        // than M-Loc but still far better than the area size.
        assert!(err < 100.0, "error {err}");
    }

    #[test]
    fn more_training_tuples_reduce_ap_error() {
        // Fig. 17's trend: average AP-position error decreases with the
        // number of training tuples.
        let world = World::new(120.0);
        let mean_err = |pitch: f64| {
            let training = world.training(pitch, 200.0);
            let est = ApLoc {
                training_radius: 140.0,
                ..ApLoc::default()
            }
            .estimate_ap_locations(&training);
            let total: f64 = est.iter().map(|(m, p)| p.distance(world.aps[m])).sum();
            total / est.len().max(1) as f64
        };
        let sparse = mean_err(130.0);
        let dense = mean_err(25.0);
        assert!(
            dense < sparse,
            "dense training err {dense} !< sparse err {sparse}"
        );
    }
}
