//! AP-Rad: estimate AP maximum transmission distances by linear
//! programming, then localize with M-Loc (paper Section III-C2 and the
//! "AP-Rad" pseudocode).
//!
//! Constraint generation follows the paper exactly:
//!
//! * if two APs were observed communicating with the same mobile in the
//!   same observation window, `rᵢ + rⱼ ≥ dᵢⱼ`,
//! * if two APs were *never* co-observed over the capture,
//!   `rᵢ + rⱼ < dᵢⱼ` (encoded as `≤ dᵢⱼ − ε`),
//! * objective: maximize `Σ rⱼ` (overestimates are safer than
//!   underestimates, Theorem 3).
//!
//! Real captures can make this system infeasible (two never-co-observed
//! APs may simply never have had a mobile in their overlap). When that
//! happens the negative constraints are dropped, tightest first, until
//! the system becomes feasible — the paper's "highly likely" hedge made
//! operational.

use super::{CoverageDisc, Estimate, MLoc};
use marauder_geo::{GridIndex, Point};
use marauder_lp::{solve_with_basis, BasisHint, Outcome, Problem, Relation, WarmStart};
use marauder_wifi::mac::MacAddr;
use std::collections::{BTreeMap, BTreeSet};

/// A reusable spatial index over an AP `locations` map.
///
/// The grid query only ever *over*-approximates the candidate pairs
/// (every hit is re-checked by the exact admission gate), so the index
/// can be built once over the **full** location knowledge and reused
/// across windows even as the observed subset grows — rebuilding a
/// per-solve grid was a dominant constant factor of the incremental
/// path. Payloads are indices into the ascending BSSID order, mapped
/// to the current solve's variable indices with one array lookup.
#[derive(Debug, Clone)]
pub struct LocationsGrid {
    cell: f64,
    macs: Vec<MacAddr>,
    grid: GridIndex<u32>,
}

impl LocationsGrid {
    /// Builds the index for programs capped at `max_radius`.
    pub fn new(locations: &BTreeMap<MacAddr, Point>, max_radius: f64) -> Self {
        let cell = (2.0 * max_radius).max(1e-6);
        let mut grid = GridIndex::new(cell);
        let mut macs = Vec::with_capacity(locations.len());
        for (li, (m, p)) in locations.iter().enumerate() {
            grid.insert(*p, li as u32);
            macs.push(*m);
        }
        LocationsGrid { cell, macs, grid }
    }

    /// Whether this index is still valid for the given parameters.
    fn matches(&self, max_radius: f64, num_locations: usize) -> bool {
        let want_cell = (2.0 * max_radius).max(1e-6);
        self.cell.to_bits() == want_cell.to_bits() && self.macs.len() == num_locations
    }
}

/// Row identity in BSSID terms — stable across solves even as the
/// variable set grows, which is what lets a warm basis survive the
/// re-indexing between windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum RowKey {
    /// The `r_i ≤ max_radius` cap row for one AP.
    Bound(MacAddr),
    /// A never-co-observed `r_i + r_j ≤ d − ε` row (canonical order).
    Neg(MacAddr, MacAddr),
    /// A forced co-observation `r_i + r_j ≥ d` row (canonical order).
    Forced(MacAddr, MacAddr),
}

/// A basis hint in BSSID terms (see [`RowKey`]).
#[derive(Debug, Clone, Copy)]
enum MacHint {
    Slack,
    Decision(MacAddr),
    /// The slack of the row keyed by `RowKey` was basic in this row —
    /// slack migrations must be remembered in row-identity terms so
    /// they survive re-indexing between windows.
    SlackOf(RowKey),
}

/// The previous solve's optimal basis, keyed by row identity.
#[derive(Debug, Clone, Default)]
struct WarmMemory {
    rows: BTreeMap<RowKey, MacHint>,
}

/// Whether a solve may warm-start from (and update) a basis memory.
enum SolveMode<'a> {
    /// Canonical: plain cold solves, bit-identical across call sites.
    Cold,
    /// Live: re-solve from the remembered basis when feasible. The
    /// result is a genuine optimum but may sit on a different vertex
    /// of the optimal face than the cold path's.
    Warm(&'a mut WarmMemory),
}

/// How candidate never-co-observed pairs are enumerated.
///
/// Both strategies produce *identical* constraint sets (and therefore
/// identical radii): the grid query with radius `2·max_radius` is a
/// superset of the pairs the distance gate admits, and the collected
/// partner lists are re-sorted into the full scan's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PairPruning {
    /// Check all `O(n²)` AP pairs.
    FullScan,
    /// Query a uniform spatial grid for partners within `2·max_radius`
    /// of each AP — expected `O(n · neighbours)` on sparse campuses —
    /// and fan the per-AP queries out across worker threads.
    #[default]
    Grid,
}

/// Order-independent sufficient statistics of a set of observation
/// windows — everything the AP-Rad linear program reads.
///
/// The LP's constraint set is a pure function of three aggregates: the
/// set of observed-and-located APs (the variables), the set of
/// co-observed pairs (`≥` candidates), and each AP's seen-count
/// *compared against* `min_observations_for_negative` (the
/// negative-evidence gate). Folding windows in any order yields the
/// same aggregates, which is what lets the streaming engine ingest
/// windows one at a time and still reproduce the batch radii bit for
/// bit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObservationStats {
    observed: BTreeSet<MacAddr>,
    co: BTreeSet<(MacAddr, MacAddr)>,
    seen: BTreeMap<MacAddr, usize>,
    windows: usize,
}

impl ObservationStats {
    /// Empty statistics (no windows folded yet).
    pub fn new() -> Self {
        ObservationStats::default()
    }

    /// Folds one observation window (`Γ_k`) into the statistics.
    ///
    /// Only APs present in `locations` are counted — exactly the
    /// filtering [`ApRad::estimate_radii_with_bounds`] applies.
    /// `threshold` is the solver's `min_observations_for_negative`.
    ///
    /// Returns `true` when the update can change the LP's constraint
    /// set — a first-ever AP, a first-ever co-observation pair, or a
    /// seen-count crossing `threshold` — i.e. when any cached radii are
    /// stale. Returns `false` when the fold provably leaves the LP
    /// unchanged, so incremental consumers can skip the re-solve.
    pub fn ingest(
        &mut self,
        gamma: &BTreeSet<MacAddr>,
        locations: &BTreeMap<MacAddr, Point>,
        threshold: usize,
    ) -> bool {
        self.windows += 1;
        let mut dirty = false;
        let located: Vec<MacAddr> = gamma
            .iter()
            .copied()
            .filter(|m| locations.contains_key(m))
            .collect();
        for &m in &located {
            if self.observed.insert(m) {
                dirty = true; // new LP variable
            }
            let count = self.seen.entry(m).or_insert(0);
            *count += 1;
            if *count == threshold {
                dirty = true; // negative-evidence gate flips for m
            }
        }
        // `located` is ascending (gamma is a BTreeSet), so (a, b) is
        // already in canonical (min, max) order.
        for (i, &a) in located.iter().enumerate() {
            for &b in &located[i + 1..] {
                if self.co.insert((a, b)) {
                    dirty = true; // new co-observation constraint
                }
            }
        }
        dirty
    }

    /// APs observed at least once (with a known location).
    pub fn observed(&self) -> &BTreeSet<MacAddr> {
        &self.observed
    }

    /// Canonically ordered `(min, max)` co-observed AP pairs.
    pub fn co_pairs(&self) -> &BTreeSet<(MacAddr, MacAddr)> {
        &self.co
    }

    /// Per-AP window counts (how many windows each AP appeared in).
    pub fn seen_counts(&self) -> &BTreeMap<MacAddr, usize> {
        &self.seen
    }

    /// Total number of windows folded in.
    pub fn windows(&self) -> usize {
        self.windows
    }

    /// Reassembles statistics from their parts — the snapshot-restore
    /// path. Counterpart of the accessors above.
    pub fn from_parts(
        observed: BTreeSet<MacAddr>,
        co: BTreeSet<(MacAddr, MacAddr)>,
        seen: BTreeMap<MacAddr, usize>,
        windows: usize,
    ) -> Self {
        ObservationStats {
            observed,
            co,
            seen,
            windows,
        }
    }
}

/// The AP-Rad localizer.
#[derive(Debug, Clone, PartialEq)]
pub struct ApRad {
    /// Theoretical upper bound on any AP's radius, meters (caps the LP).
    pub max_radius: f64,
    /// Margin subtracted from strict `<` constraints, meters.
    pub epsilon: f64,
    /// Per AP, how many nearest never-co-observed neighbours contribute
    /// `<` constraints. Bounds the LP size on dense campuses; looser
    /// constraints on the same variables essentially never bind.
    pub max_negative_per_ap: usize,
    /// The paper's "over a sufficient amount of time" gate: a
    /// never-co-observed pair only yields a `<` constraint when *both*
    /// APs were seen in at least this many observation sets — otherwise
    /// the absence of co-observation is sampling noise, not evidence.
    pub min_observations_for_negative: usize,
    /// Candidate-pair enumeration strategy.
    pub pruning: PairPruning,
    /// The M-Loc instance used after radii are estimated.
    pub mloc: MLoc,
}

impl Default for ApRad {
    fn default() -> Self {
        ApRad {
            max_radius: 1000.0,
            epsilon: 1e-3,
            max_negative_per_ap: 12,
            min_observations_for_negative: 3,
            pruning: PairPruning::default(),
            mloc: MLoc::default(),
        }
    }
}

impl ApRad {
    /// Estimates a radius for every AP that appears in at least one
    /// observation set and has a known location.
    ///
    /// `locations` maps BSSIDs to positions (the external knowledge);
    /// `observations` are per-mobile-per-window communicable-AP sets
    /// (`Γ_k` in the paper). APs in observations without a known
    /// location are ignored.
    pub fn estimate_radii(
        &self,
        locations: &BTreeMap<MacAddr, Point>,
        observations: &[BTreeSet<MacAddr>],
    ) -> BTreeMap<MacAddr, f64> {
        self.estimate_radii_with_bounds(locations, observations, &BTreeMap::new())
    }

    /// Like [`estimate_radii`](Self::estimate_radii), with additional
    /// per-AP lower bounds `r_i ≥ min_radii[i]`.
    ///
    /// AP-Loc supplies these from its training tuples: an AP heard from
    /// a training location must reach at least that far, which keeps the
    /// LP from collapsing radii when trained AP positions distort the
    /// pairwise distances.
    pub fn estimate_radii_with_bounds(
        &self,
        locations: &BTreeMap<MacAddr, Point>,
        observations: &[BTreeSet<MacAddr>],
        min_radii: &BTreeMap<MacAddr, f64>,
    ) -> BTreeMap<MacAddr, f64> {
        let mut stats = ObservationStats::new();
        for obs in observations {
            stats.ingest(obs, locations, self.min_observations_for_negative);
        }
        self.solve_from_stats(locations, &stats, min_radii)
    }

    /// Solves the AP-Rad linear program from pre-aggregated
    /// [`ObservationStats`] instead of raw observation windows.
    ///
    /// This is the batch path's actual solver —
    /// [`estimate_radii_with_bounds`](Self::estimate_radii_with_bounds)
    /// is a thin wrapper that folds its windows into stats first — and
    /// the streaming engine's re-solve entry point. `stats` must have
    /// been built against the same `locations` map (its `ingest` filter
    /// is what keeps unlocated APs out of the program).
    pub fn solve_from_stats(
        &self,
        locations: &BTreeMap<MacAddr, Point>,
        stats: &ObservationStats,
        min_radii: &BTreeMap<MacAddr, f64>,
    ) -> BTreeMap<MacAddr, f64> {
        self.solve_impl(locations, stats, min_radii, None, SolveMode::Cold)
    }

    /// The shared solver body behind the cold and warm entry points.
    ///
    /// `grid` optionally supplies a prebuilt [`LocationsGrid`] (the
    /// incremental solver reuses one across windows); when absent or
    /// stale, a fresh one is built per call. `mode` selects plain cold
    /// solves or warm starts from a basis memory — the *constraint
    /// set* is identical either way, only the LP starting point (and
    /// therefore possibly which optimal vertex is reported) differs.
    fn solve_impl(
        &self,
        locations: &BTreeMap<MacAddr, Point>,
        stats: &ObservationStats,
        min_radii: &BTreeMap<MacAddr, f64>,
        grid: Option<&LocationsGrid>,
        mut mode: SolveMode<'_>,
    ) -> BTreeMap<MacAddr, f64> {
        // Variables: APs that are both observed and located, ascending.
        let vars: Vec<MacAddr> = stats.observed.iter().copied().collect();
        if vars.is_empty() {
            return BTreeMap::new();
        }
        let index: BTreeMap<MacAddr, usize> =
            vars.iter().enumerate().map(|(i, m)| (*m, i)).collect();

        // Co-observed pairs, as index pairs, in a sorted flat vector:
        // the admission gate probes membership for nearly every
        // candidate pair, and a binary search over a contiguous array
        // beats a `BTreeSet` tree walk there. The MAC pairs are already
        // canonical (min, max) and `index` is monotone over MACs, so
        // the index pairs come out canonical — and therefore sorted —
        // too.
        let co: Vec<(u32, u32)> = stats
            .co
            .iter()
            .map(|(a, b)| (index[a] as u32, index[b] as u32))
            .collect();
        debug_assert!(co.windows(2).all(|w| w[0] < w[1]));

        // Intern positions once: the pair enumeration and LP verification
        // below hit distances millions of times on a dense campus, and a
        // slice index beats a tree walk per lookup. The coordinates are
        // also split into parallel x/y arrays: the enumeration's inner
        // loop only ever needs the two coordinates, and the flat layout
        // keeps them in cache.
        let pts: Vec<Point> = vars.iter().map(|m| locations[m]).collect();
        let xs: Vec<f64> = pts.iter().map(|p| p.x).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.y).collect();
        // Bit-identical to `Point::distance`: same subtraction order,
        // same `sqrt(dx² + dy²)`.
        let dist_sq = |i: usize, j: usize| {
            let dx = xs[i] - xs[j];
            let dy = ys[i] - ys[j];
            dx * dx + dy * dy
        };
        let dist = |i: usize, j: usize| dist_sq(i, j).sqrt();

        // Per-variable lower bounds (0 without training data), and the
        // substitution r_i = lo_i + s_i, s_i >= 0 that turns them into
        // plain non-negativity — the LP then needs no >= rows at all for
        // the bounds.
        let lo: Vec<f64> = vars
            .iter()
            .map(|m| {
                min_radii
                    .get(m)
                    .copied()
                    .unwrap_or(0.0)
                    .clamp(0.0, self.max_radius)
            })
            .collect();

        // Negative (never-co-observed) pairs, tightest first. Two
        // prunings keep the LP small on dense campuses:
        // * a pair farther apart than 2·max_radius constrains nothing,
        // * per AP only the `max_negative_per_ap` nearest negative
        //   neighbours are kept — looser constraints on the same
        //   variables essentially never bind under the maximize-sum
        //   objective.
        // A negative constraint contradicting the training lower bounds
        // is certainly wrong (the estimated pair distance is too small)
        // and is discarded.
        // How often each AP was seen at all — the negative-evidence gate.
        let seen_count: Vec<usize> = vars
            .iter()
            .map(|m| stats.seen.get(m).copied().unwrap_or(0))
            .collect();

        // Every gate is symmetric in (i, j), so both enumeration
        // strategies can share it. The checks run cheapest-reject
        // first: the seen-count gate is two array reads, the squared
        // distance needs no square root and no membership probe, and
        // the co-pair binary search — the most expensive test — runs
        // only for pairs that survive the geometry. The early-out
        // threshold carries a 1e-9 relative guard band so that pairs
        // within square-root rounding of the exact `d ≥ 2·max_radius`
        // boundary always fall through to the exact gate below —
        // reordering the checks must not change a single admission.
        let reject_sq = {
            let t = 2.0 * self.max_radius * (1.0 + 1e-9);
            t * t
        };
        let admit = |i: usize, j: usize| -> Option<f64> {
            if seen_count[i] < self.min_observations_for_negative
                || seen_count[j] < self.min_observations_for_negative
            {
                return None; // not enough evidence that they never meet
            }
            if dist_sq(i, j) > reject_sq {
                return None; // clearly out of range: skip the sqrt
            }
            let d = dist(i, j);
            if d >= 2.0 * self.max_radius || lo[i] + lo[j] > d - self.epsilon {
                return None;
            }
            let key = (i.min(j) as u32, i.max(j) as u32);
            if co.binary_search(&key).is_ok() {
                return None;
            }
            Some(d)
        };

        let mut neighbour_lists: Vec<Vec<(usize, f64)>> = match self.pruning {
            PairPruning::FullScan => {
                let mut lists: Vec<Vec<(usize, f64)>> = vec![Vec::new(); vars.len()];
                for i in 0..vars.len() {
                    for j in (i + 1)..vars.len() {
                        if let Some(d) = admit(i, j) {
                            lists[i].push((j, d));
                            lists[j].push((i, d));
                        }
                    }
                }
                lists
            }
            PairPruning::Grid => {
                // Reuse the caller's prebuilt index when it still
                // matches; otherwise build one for this call. The grid
                // holds *all* located APs (a superset of the observed
                // variables), so growth of the observed set never
                // invalidates it — unmapped hits fall out at the
                // `loc_to_var` lookup.
                let local;
                let lg = match grid {
                    Some(g) if g.matches(self.max_radius, locations.len()) => g,
                    _ => {
                        local = LocationsGrid::new(locations, self.max_radius);
                        &local
                    }
                };
                let mut loc_to_var = vec![u32::MAX; lg.macs.len()];
                {
                    let mut vi = 0usize;
                    for (li, m) in lg.macs.iter().enumerate() {
                        if vi < vars.len() && vars[vi] == *m {
                            loc_to_var[li] = vi as u32;
                            vi += 1;
                        }
                    }
                    debug_assert_eq!(vi, vars.len(), "vars must be a subset of locations");
                }
                marauder_par::par_map_range(vars.len(), |i| {
                    let mut list: Vec<(usize, f64)> = lg
                        .grid
                        .within(pts[i], 2.0 * self.max_radius)
                        .filter_map(|&(_, li)| {
                            let j = loc_to_var[li as usize] as usize;
                            if j == u32::MAX as usize || j == i {
                                return None;
                            }
                            admit(i, j).map(|d| (j, d))
                        })
                        .collect();
                    // The full scan appends partners in ascending index
                    // order; restoring that order here (the by-distance
                    // sort below is stable) makes the two strategies
                    // produce byte-identical constraint sets.
                    list.sort_unstable_by_key(|&(j, _)| j);
                    list
                })
            }
        };
        let mut keep: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (i, list) in neighbour_lists.iter_mut().enumerate() {
            list.sort_by(|a, b| a.1.total_cmp(&b.1));
            for &(j, _) in list.iter().take(self.max_negative_per_ap) {
                keep.insert((i.min(j), i.max(j)));
            }
        }
        let mut negative: Vec<(usize, usize, f64)> =
            keep.into_iter().map(|(i, j)| (i, j, dist(i, j))).collect();
        negative.sort_by(|a, b| a.2.total_cmp(&b.2));

        // Key structural insight: under `maximize Σ r`, the co-observation
        // constraints `r_i + r_j >= d_ij` can never lower the optimum —
        // they are either satisfied by the unconstrained maximum or make
        // the program infeasible. So solve WITHOUT them first (slack-only
        // LP: phase 1 is free), then verify and only materialize the
        // violated ones. This keeps the tableau small on real campuses
        // where co-pairs vastly outnumber binding constraints.
        let mut forced: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut active_from = 0usize; // negative[..active_from] dropped
        let mut best: Option<Vec<f64>> = None;
        let warm_capable = matches!(mode, SolveMode::Warm(_));
        for _round in 0..12 {
            let mut p = Problem::maximize(&vec![1.0; vars.len()]);
            // Row identities in BSSID terms, parallel to the rows added
            // below — only materialized on the warm path, where they key
            // the basis memory across solves.
            let mut keys: Vec<RowKey> = Vec::new();
            for (i, l) in lo.iter().enumerate() {
                p.add_upper_bound(i, self.max_radius - l);
                if warm_capable {
                    keys.push(RowKey::Bound(vars[i]));
                }
            }
            for &(i, j, d) in &negative[active_from..] {
                p.add_constraint(
                    &[(i, 1.0), (j, 1.0)],
                    Relation::Le,
                    d - self.epsilon - lo[i] - lo[j],
                );
                if warm_capable {
                    keys.push(RowKey::Neg(vars[i], vars[j]));
                }
            }
            for &(i, j) in &forced {
                let rhs = dist(i, j) - lo[i] - lo[j];
                if rhs > 0.0 {
                    p.add_constraint(&[(i, 1.0), (j, 1.0)], Relation::Ge, rhs);
                    if warm_capable {
                        keys.push(RowKey::Forced(vars[i], vars[j]));
                    }
                }
            }
            let outcome = match &mut mode {
                SolveMode::Cold => p.solve(),
                SolveMode::Warm(memory) => {
                    // Translate the remembered basis into this solve's
                    // row/variable indices. Rows with no memory (newly
                    // appeared constraints) default to their slack —
                    // exactly what a fresh tableau would hold for them.
                    // Forced `≥` rows need artificials, which the LP
                    // layer declines to warm anyway; skip the work.
                    let hints = (!memory.rows.is_empty() && forced.is_empty()).then(|| {
                        let row_of: BTreeMap<RowKey, usize> =
                            keys.iter().enumerate().map(|(i, k)| (*k, i)).collect();
                        WarmStart {
                            rows: keys
                                .iter()
                                .map(|k| match memory.rows.get(k) {
                                    Some(MacHint::Decision(m)) => index
                                        .get(m)
                                        .map_or(BasisHint::Slack, |&v| BasisHint::Decision(v)),
                                    Some(MacHint::SlackOf(qk)) => row_of
                                        .get(qk)
                                        .map_or(BasisHint::Slack, |&q| BasisHint::SlackOf(q)),
                                    _ => BasisHint::Slack,
                                })
                                .collect(),
                        }
                    });
                    let report = solve_with_basis(&p, hints.as_ref());
                    memory.rows = keys
                        .iter()
                        .zip(&report.basis)
                        .map(|(k, h)| {
                            let hint = match h {
                                BasisHint::Decision(v) if *v < vars.len() => {
                                    MacHint::Decision(vars[*v])
                                }
                                BasisHint::SlackOf(q) => keys
                                    .get(*q)
                                    .map_or(MacHint::Slack, |qk| MacHint::SlackOf(*qk)),
                                _ => MacHint::Slack,
                            };
                            (*k, hint)
                        })
                        .collect();
                    report.outcome
                }
            };
            match outcome {
                Outcome::Optimal(sol) => {
                    let r: Vec<f64> = sol
                        .values
                        .iter()
                        .zip(&lo)
                        .map(|(s, l)| (s.max(0.0) + l).min(self.max_radius))
                        .collect();
                    // Verify every co-observation constraint.
                    let mut new_violation = false;
                    for &(i, j) in &co {
                        let (i, j) = (i as usize, j as usize);
                        if r[i] + r[j] < dist(i, j) - 1e-6 && forced.insert((i, j)) {
                            new_violation = true;
                        }
                    }
                    best = Some(r);
                    if !new_violation {
                        break;
                    }
                }
                Outcome::Infeasible => {
                    // Forced >= rows conflict with kept <= rows: drop the
                    // tightest remaining negative rows (the paper's
                    // "highly likely" constraints are the suspect ones).
                    if active_from >= negative.len() {
                        break; // only forced rows left; repair below
                    }
                    let step = ((negative.len() - active_from) / 10).max(1);
                    active_from += step;
                }
                Outcome::Unbounded => {
                    unreachable!("all variables are capped at max_radius")
                }
            }
        }
        // Final repair: whatever co-pairs remain violated (iteration cap
        // or irreparable conflicts) are fixed by raising both radii to
        // half the pair distance — a guaranteed-feasible overestimate.
        let mut r = best.unwrap_or_else(|| lo.clone());
        for &(i, j) in &co {
            let (i, j) = (i as usize, j as usize);
            let d = dist(i, j);
            if r[i] + r[j] < d - 1e-6 {
                r[i] = r[i].max((d / 2.0).min(self.max_radius));
                r[j] = r[j].max((d / 2.0).min(self.max_radius));
            }
        }
        vars.iter().zip(r).map(|(m, v)| (*m, v)).collect()
    }

    /// Full AP-Rad: estimate radii from `observations`, then locate the
    /// mobile whose communicable set is `gamma`.
    ///
    /// Returns `None` when no AP in `gamma` has both a location and an
    /// estimated radius.
    pub fn locate(
        &self,
        locations: &BTreeMap<MacAddr, Point>,
        observations: &[BTreeSet<MacAddr>],
        gamma: &BTreeSet<MacAddr>,
    ) -> Option<Estimate> {
        let radii = self.estimate_radii(locations, observations);
        let discs: Vec<CoverageDisc> = gamma
            .iter()
            .filter_map(|mac| {
                let loc = locations.get(mac)?;
                let r = radii.get(mac)?;
                Some(CoverageDisc::new(*loc, *r))
            })
            .collect();
        self.mloc.locate(&discs)
    }
}

/// Incremental AP-Rad: fold observation windows in one at a time,
/// re-solving the linear program only when the fold actually changed
/// the constraint set.
///
/// The dirty test is exact, not heuristic: the LP reads the
/// observation history *only* through [`ObservationStats`]'s three
/// aggregates, and [`ObservationStats::ingest`] reports precisely when
/// one of them changed in a way the program can see. When `observe`
/// returns `false`, the cached radii are still bit-identical to what a
/// fresh batch solve over the full history would produce — the
/// streaming engine's incremental-update guarantee rests on this.
#[derive(Debug, Clone)]
pub struct ApRadSolver {
    aprad: ApRad,
    locations: BTreeMap<MacAddr, Point>,
    min_radii: BTreeMap<MacAddr, f64>,
    stats: ObservationStats,
    /// `Some` iff the cached solution matches `stats`.
    cached: Option<BTreeMap<MacAddr, f64>>,
    /// Spatial index over `locations`, built lazily and reused across
    /// solves (see [`LocationsGrid`]).
    grid: Option<LocationsGrid>,
    /// Warm-start state for the live estimate path, `Some` iff enabled.
    warm: Option<WarmState>,
}

/// Live-path warm-start state: the remembered basis plus a separate
/// result cache (warm results may sit on a different optimal vertex
/// than the canonical cold cache, so the two must never mix).
#[derive(Debug, Clone, Default)]
struct WarmState {
    memory: WarmMemory,
    cached: Option<BTreeMap<MacAddr, f64>>,
}

impl ApRadSolver {
    /// A solver over fixed AP knowledge. `min_radii` are the
    /// training-implied lower bounds (empty outside the no-knowledge
    /// level).
    pub fn new(
        aprad: ApRad,
        locations: BTreeMap<MacAddr, Point>,
        min_radii: BTreeMap<MacAddr, f64>,
    ) -> Self {
        ApRadSolver {
            aprad,
            locations,
            min_radii,
            stats: ObservationStats::new(),
            cached: None,
            grid: None,
            warm: None,
        }
    }

    /// Enables or disables warm-started live solves (off by default).
    ///
    /// Warm starts only affect [`live_radii`](Self::live_radii):
    /// [`radii`](Self::radii) stays a plain cold solve either way, so
    /// every bit-exactness guarantee on the canonical path is
    /// unaffected. Disabling drops the remembered basis.
    pub fn set_warm_start(&mut self, on: bool) {
        if on {
            if self.warm.is_none() {
                self.warm = Some(WarmState::default());
            }
        } else {
            self.warm = None;
        }
    }

    /// Folds one closed observation window into the solver's history.
    ///
    /// Returns `true` when the window dirtied the LP (cached radii
    /// invalidated), `false` when the cached solution provably still
    /// holds.
    pub fn observe(&mut self, gamma: &BTreeSet<MacAddr>) -> bool {
        let dirty = self.stats.ingest(
            gamma,
            &self.locations,
            self.aprad.min_observations_for_negative,
        );
        if dirty {
            self.cached = None;
            if let Some(w) = self.warm.as_mut() {
                w.cached = None;
            }
        }
        dirty
    }

    /// `true` when the next [`radii`](Self::radii) call must re-solve.
    pub fn is_dirty(&self) -> bool {
        self.cached.is_none()
    }

    /// `true` when the next [`live_radii`](Self::live_radii) call must
    /// re-solve. With warm starts disabled this is
    /// [`is_dirty`](Self::is_dirty); with them enabled it tracks the
    /// warm cache instead (the two caches fill independently).
    pub fn is_live_dirty(&self) -> bool {
        match &self.warm {
            Some(w) => w.cached.is_none(),
            None => self.cached.is_none(),
        }
    }

    /// Rebuilds the locations grid if missing or stale. Only the Grid
    /// pruning strategy reads it.
    fn ensure_grid(&mut self) {
        if self.aprad.pruning != PairPruning::Grid {
            return;
        }
        let stale = !matches!(
            &self.grid,
            Some(g) if g.matches(self.aprad.max_radius, self.locations.len())
        );
        if stale {
            self.grid = Some(LocationsGrid::new(&self.locations, self.aprad.max_radius));
        }
    }

    /// The current radii estimate, re-solving the LP if any window
    /// since the last solve dirtied the constraint set.
    ///
    /// Bit-identical to
    /// [`ApRad::estimate_radii_with_bounds`] over the same window
    /// history, regardless of how the observes and solves interleaved.
    pub fn radii(&mut self) -> &BTreeMap<MacAddr, f64> {
        if self.cached.is_none() {
            self.ensure_grid();
            self.cached = Some(self.aprad.solve_impl(
                &self.locations,
                &self.stats,
                &self.min_radii,
                self.grid.as_ref(),
                SolveMode::Cold,
            ));
        }
        // The branch above guarantees `cached` is filled, so the
        // closure never runs; this keeps the accessor panic-free.
        self.cached.get_or_insert_with(BTreeMap::new)
    }

    /// The current radii estimate for *live* consumers, re-solving from
    /// the previous solve's optimal basis when warm starts are enabled.
    ///
    /// Warm results are genuine optima of the same program but may
    /// differ in the last bits from [`radii`](Self::radii) when the
    /// optimal face has several vertices — callers that must be
    /// bit-reproducible (batch fixes, snapshots, figures) use `radii`;
    /// per-window live estimates use this.
    pub fn live_radii(&mut self) -> &BTreeMap<MacAddr, f64> {
        if self.warm.is_none() {
            return self.radii();
        }
        self.ensure_grid();
        // Disjoint-field reborrow: `warm` mutably, everything else
        // shared.
        let ApRadSolver {
            aprad,
            locations,
            min_radii,
            stats,
            grid,
            warm,
            ..
        } = self;
        // `warm` is known `Some` (early return above), so the closure
        // never runs; this keeps the accessor panic-free.
        let w = warm.get_or_insert_with(WarmState::default);
        if w.cached.is_none() {
            w.cached = Some(aprad.solve_impl(
                locations,
                stats,
                min_radii,
                grid.as_ref(),
                SolveMode::Warm(&mut w.memory),
            ));
        }
        // Filled just above; the closure never runs (panic-free).
        w.cached.get_or_insert_with(BTreeMap::new)
    }

    /// The accumulated observation statistics.
    pub fn stats(&self) -> &ObservationStats {
        &self.stats
    }

    /// The cached solution, if the solver is currently clean.
    pub fn cached_radii(&self) -> Option<&BTreeMap<MacAddr, f64>> {
        self.cached.as_ref()
    }

    /// Replaces the solver's history and cache — the snapshot-restore
    /// path. `cached` must be the solution for `stats` (or `None` to
    /// force a re-solve on the next [`radii`](Self::radii) call).
    ///
    /// Warm-start state is *not* part of a snapshot: the basis memory
    /// and live cache reset, so the first live solve after a restore is
    /// cold — correct (just not accelerated) by construction.
    pub fn restore(&mut self, stats: ObservationStats, cached: Option<BTreeMap<MacAddr, f64>>) {
        self.stats = stats;
        self.cached = cached;
        if let Some(w) = self.warm.as_mut() {
            *w = WarmState::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(i: u64) -> MacAddr {
        MacAddr::from_index(i)
    }

    fn set(macs: &[u64]) -> BTreeSet<MacAddr> {
        macs.iter().map(|&i| mac(i)).collect()
    }

    /// A simple world: APs on a grid with true radius `r`; observations
    /// generated from mobiles at given positions.
    struct World {
        locations: BTreeMap<MacAddr, Point>,
        r: f64,
    }

    impl World {
        fn grid(n: usize, pitch: f64, r: f64) -> World {
            let mut locations = BTreeMap::new();
            for i in 0..n {
                for j in 0..n {
                    locations.insert(
                        mac((i * n + j) as u64),
                        Point::new(i as f64 * pitch, j as f64 * pitch),
                    );
                }
            }
            World { locations, r }
        }

        fn observe(&self, at: Point) -> BTreeSet<MacAddr> {
            self.locations
                .iter()
                .filter(|(_, p)| p.distance(at) <= self.r)
                .map(|(m, _)| *m)
                .collect()
        }
    }

    #[test]
    fn empty_inputs() {
        let aprad = ApRad::default();
        assert!(aprad.estimate_radii(&BTreeMap::new(), &[]).is_empty());
        assert!(aprad
            .locate(&BTreeMap::new(), &[], &BTreeSet::new())
            .is_none());
    }

    #[test]
    fn radii_respect_constraints() {
        let world = World::grid(4, 60.0, 80.0);
        // Sample observations over the grid.
        let mut observations = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                let p = Point::new(i as f64 * 25.0, j as f64 * 25.0);
                let obs = world.observe(p);
                if !obs.is_empty() {
                    observations.push(obs);
                }
            }
        }
        let aprad = ApRad {
            max_radius: 300.0,
            ..ApRad::default()
        };
        let radii = aprad.estimate_radii(&world.locations, &observations);
        assert!(!radii.is_empty());
        // Every co-observed constraint holds.
        for obs in &observations {
            let present: Vec<&MacAddr> = obs.iter().collect();
            for (a, &i) in present.iter().enumerate() {
                for &j in &present[a + 1..] {
                    if let (Some(ri), Some(rj)) = (radii.get(i), radii.get(j)) {
                        let d = world.locations[i].distance(world.locations[j]);
                        assert!(
                            ri + rj >= d - 1e-6,
                            "co-observed pair violates: {ri} + {rj} < {d}"
                        );
                    }
                }
            }
        }
        // Estimates never exceed the cap.
        for r in radii.values() {
            assert!(*r <= 300.0 + 1e-6);
        }
    }

    #[test]
    fn radii_are_overestimates_of_truth_on_dense_data() {
        // With dense sampling, the LP's maximize-sum objective pushes
        // every radius to the largest value consistent with the negative
        // constraints — at or above the truth for most APs.
        let world = World::grid(4, 70.0, 75.0);
        let mut observations = Vec::new();
        for i in 0..18 {
            for j in 0..18 {
                let p = Point::new(i as f64 * 13.0 - 10.0, j as f64 * 13.0 - 10.0);
                let obs = world.observe(p);
                if !obs.is_empty() {
                    observations.push(obs);
                }
            }
        }
        let aprad = ApRad {
            max_radius: 400.0,
            ..ApRad::default()
        };
        let radii = aprad.estimate_radii(&world.locations, &observations);
        let over = radii.values().filter(|r| **r >= world.r * 0.8).count();
        assert!(
            over * 10 >= radii.len() * 7,
            "only {over}/{} radii near or above truth",
            radii.len()
        );
    }

    #[test]
    fn unlocated_aps_are_ignored() {
        let mut locations = BTreeMap::new();
        locations.insert(mac(1), Point::new(0.0, 0.0));
        locations.insert(mac(2), Point::new(50.0, 0.0));
        // mac(3) appears in observations but has no location.
        let observations = vec![set(&[1, 2, 3])];
        let radii = ApRad::default().estimate_radii(&locations, &observations);
        assert_eq!(radii.len(), 2);
        assert!(!radii.contains_key(&mac(3)));
    }

    #[test]
    fn locate_reconstructs_position() {
        let world = World::grid(5, 50.0, 70.0);
        let mut observations = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                let p = Point::new(i as f64 * 18.0, j as f64 * 18.0);
                let obs = world.observe(p);
                if obs.len() >= 2 {
                    observations.push(obs);
                }
            }
        }
        let victim_pos = Point::new(105.0, 95.0);
        let gamma = world.observe(victim_pos);
        assert!(gamma.len() >= 3);
        let aprad = ApRad {
            max_radius: 250.0,
            ..ApRad::default()
        };
        let est = aprad
            .locate(&world.locations, &observations, &gamma)
            .expect("locatable");
        let err = est.position.distance(victim_pos);
        assert!(err < 60.0, "error {err} too large");
    }

    #[test]
    fn infeasible_constraints_are_dropped() {
        // Construct a contradiction: A and B co-observed at distance 200
        // (r_a + r_b >= 200), but A-C and B-C never co-observed with C
        // close to both (r_a + r_c <= 10, r_b + r_c <= 10 would force
        // r_a + r_b <= 20 < 200 after accounting r_c >= 0).
        let mut locations = BTreeMap::new();
        locations.insert(mac(1), Point::new(0.0, 0.0));
        locations.insert(mac(2), Point::new(200.0, 0.0));
        locations.insert(mac(3), Point::new(100.0, 1.0));
        let observations = vec![set(&[1, 2]), set(&[3])];
        let radii = ApRad::default().estimate_radii(&locations, &observations);
        // Must return something sensible despite the contradiction.
        assert_eq!(radii.len(), 3);
        let (ra, rb) = (radii[&mac(1)], radii[&mac(2)]);
        assert!(ra + rb >= 200.0 - 1e-6, "kept constraint violated");
    }

    #[test]
    fn grid_pruning_matches_full_scan_exactly() {
        // The grid enumeration must reproduce the full scan's constraint
        // set — and therefore its radii — to the bit, for a max_radius
        // small enough that the grid actually prunes (several cells span
        // the world) and for one so large that every pair is in range.
        let world = World::grid(6, 45.0, 60.0);
        let mut observations = Vec::new();
        for i in 0..14 {
            for j in 0..14 {
                let p = Point::new(i as f64 * 17.0, j as f64 * 17.0);
                let obs = world.observe(p);
                if !obs.is_empty() {
                    observations.push(obs);
                }
            }
        }
        for max_radius in [90.0, 5000.0] {
            let full = ApRad {
                max_radius,
                pruning: PairPruning::FullScan,
                ..ApRad::default()
            };
            let grid = ApRad {
                max_radius,
                pruning: PairPruning::Grid,
                ..ApRad::default()
            };
            let r_full = full.estimate_radii(&world.locations, &observations);
            let r_grid = grid.estimate_radii(&world.locations, &observations);
            assert_eq!(r_full.len(), r_grid.len());
            for (mac, rf) in &r_full {
                let rg = r_grid[mac];
                assert_eq!(
                    rf.to_bits(),
                    rg.to_bits(),
                    "radius diverged for {mac} at max_radius {max_radius}: {rf} vs {rg}"
                );
            }
        }
    }

    #[test]
    fn incremental_solver_matches_batch_bit_for_bit() {
        let world = World::grid(4, 60.0, 80.0);
        let mut observations = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let p = Point::new(i as f64 * 22.0, j as f64 * 22.0);
                let obs = world.observe(p);
                if !obs.is_empty() {
                    observations.push(obs);
                }
            }
        }
        let aprad = ApRad {
            max_radius: 300.0,
            ..ApRad::default()
        };
        let batch = aprad.estimate_radii(&world.locations, &observations);
        // Fold the windows in one at a time, solving at arbitrary
        // points along the way; the final answer must equal the batch.
        let mut solver = ApRadSolver::new(aprad, world.locations.clone(), BTreeMap::new());
        for (k, obs) in observations.iter().enumerate() {
            solver.observe(obs);
            if k % 7 == 0 {
                let _ = solver.radii(); // interleaved solves must not perturb the result
            }
        }
        let live = solver.radii().clone();
        assert_eq!(live.len(), batch.len());
        for (mac, rb) in &batch {
            assert_eq!(
                rb.to_bits(),
                live[mac].to_bits(),
                "incremental radius diverged for {mac}"
            );
        }
        assert_eq!(solver.stats().windows(), observations.len());
    }

    #[test]
    fn clean_observes_skip_the_resolve() {
        let world = World::grid(3, 60.0, 80.0);
        let gamma = world.observe(Point::new(60.0, 60.0));
        assert!(gamma.len() >= 2);
        let aprad = ApRad {
            max_radius: 300.0,
            min_observations_for_negative: 3,
            ..ApRad::default()
        };
        let threshold = aprad.min_observations_for_negative;
        let mut solver = ApRadSolver::new(aprad, world.locations.clone(), BTreeMap::new());
        // First fold: new APs + new co-pairs → dirty.
        assert!(solver.observe(&gamma));
        let _ = solver.radii();
        assert!(!solver.is_dirty());
        // Second fold of the identical window only bumps seen-counts
        // (1 → 2, below the threshold of 3) → provably clean.
        assert!(!solver.observe(&gamma));
        assert!(!solver.is_dirty(), "clean observe must keep the cache");
        // Third fold crosses the negative-evidence threshold → dirty.
        assert!(solver.observe(&gamma));
        assert!(solver.is_dirty());
        // Fourth fold: counts 3 → 4 change nothing the LP can see.
        let _ = solver.radii();
        assert!(!solver.observe(&gamma));
        // And the cached result still matches a batch solve over the
        // same four windows exactly.
        let windows = vec![gamma.clone(); 4];
        let batch = ApRad {
            max_radius: 300.0,
            min_observations_for_negative: threshold,
            ..ApRad::default()
        }
        .estimate_radii(&world.locations, &windows);
        for (mac, rb) in &batch {
            assert_eq!(rb.to_bits(), solver.radii()[mac].to_bits());
        }
    }

    #[test]
    fn solver_restore_round_trips() {
        let world = World::grid(3, 60.0, 80.0);
        let g1 = world.observe(Point::new(30.0, 30.0));
        let g2 = world.observe(Point::new(90.0, 60.0));
        let aprad = ApRad {
            max_radius: 300.0,
            ..ApRad::default()
        };
        let mut solver = ApRadSolver::new(aprad.clone(), world.locations.clone(), BTreeMap::new());
        solver.observe(&g1);
        solver.observe(&g2);
        let radii = solver.radii().clone();
        // Tear the state apart through the accessors and rebuild — the
        // snapshot path — then continue with more windows on both.
        let stats = ObservationStats::from_parts(
            solver.stats().observed().clone(),
            solver.stats().co_pairs().clone(),
            solver.stats().seen_counts().clone(),
            solver.stats().windows(),
        );
        let mut restored = ApRadSolver::new(aprad, world.locations.clone(), BTreeMap::new());
        restored.restore(stats, Some(radii));
        assert!(!restored.is_dirty());
        let g3 = world.observe(Point::new(120.0, 120.0));
        solver.observe(&g3);
        restored.observe(&g3);
        for (mac, r) in solver.radii().clone() {
            assert_eq!(r.to_bits(), restored.radii()[&mac].to_bits());
        }
    }

    #[test]
    fn warm_live_radii_reach_the_cold_optimum() {
        // The warm path may stop at a different vertex of the optimal
        // face, but it must solve the *same* program: same objective
        // value (Σ r), same constraint satisfaction, and the canonical
        // `radii()` cache must stay bit-identical to a batch solve.
        let world = World::grid(4, 60.0, 80.0);
        let mut observations = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let p = Point::new(i as f64 * 22.0, j as f64 * 22.0);
                let obs = world.observe(p);
                if !obs.is_empty() {
                    observations.push(obs);
                }
            }
        }
        let aprad = ApRad {
            max_radius: 300.0,
            ..ApRad::default()
        };
        let batch = aprad.estimate_radii(&world.locations, &observations);
        let mut solver = ApRadSolver::new(aprad, world.locations.clone(), BTreeMap::new());
        solver.set_warm_start(true);
        for obs in &observations {
            solver.observe(obs);
            let _ = solver.live_radii(); // per-window live solve, warm after the first
        }
        let live = solver.live_radii().clone();
        assert_eq!(live.len(), batch.len());
        let live_sum: f64 = live.values().sum();
        let batch_sum: f64 = batch.values().sum();
        assert!(
            (live_sum - batch_sum).abs() < 1e-6 * (1.0 + batch_sum.abs()),
            "warm objective {live_sum} diverged from cold {batch_sum}"
        );
        // Warm result satisfies every co-observation constraint.
        for (a, b) in solver.stats().co_pairs() {
            let d = world.locations[a].distance(world.locations[b]);
            assert!(live[a] + live[b] >= d - 1e-6);
        }
        for r in live.values() {
            assert!(*r <= 300.0 + 1e-6 && *r >= -1e-9);
        }
        // The canonical cache is untouched by warm solves.
        for (mac, rb) in &batch {
            assert_eq!(rb.to_bits(), solver.radii()[mac].to_bits());
        }
    }

    #[test]
    fn far_apart_negative_pairs_do_not_bloat_the_lp() {
        // APs further apart than 2*max_radius yield no constraint; the
        // solver should happily give everyone the cap.
        let mut locations = BTreeMap::new();
        locations.insert(mac(1), Point::new(0.0, 0.0));
        locations.insert(mac(2), Point::new(1e6, 0.0));
        let observations = vec![set(&[1]), set(&[2])];
        let aprad = ApRad {
            max_radius: 100.0,
            ..ApRad::default()
        };
        let radii = aprad.estimate_radii(&locations, &observations);
        assert!((radii[&mac(1)] - 100.0).abs() < 1e-6);
        assert!((radii[&mac(2)] - 100.0).abs() < 1e-6);
    }
}
