//! M-Loc: disc-intersection localization with known AP locations and
//! maximum transmission distances (paper Section III-D, first
//! algorithm).
//!
//! The paper's pseudocode computes Δ — all pairwise circle-intersection
//! points lying inside every disc — and returns `AVG(Δ)`. Two cases the
//! pseudocode leaves open are handled explicitly here:
//!
//! * **No vertices but non-empty region** (`k = 1`, coincident discs, or
//!   one disc contained in all others): the estimate falls back to the
//!   exact centroid of the region, which in those cases is the dominant
//!   disc's center — the "nearest AP" degenerate case the paper
//!   describes.
//! * **Empty region** (radii underestimated, or a shadowing world that
//!   violates the disc model): all radii are scaled by the smallest
//!   multiplier that makes the intersection non-empty (found by
//!   bisection), consistent with the paper's finding that overestimates
//!   are strictly preferable to underestimates (Theorem 3).

use super::{CoverageDisc, Estimate};
use marauder_geo::{Circle, DiscIntersection};

/// Which centroid the estimate uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CentroidMode {
    /// `AVG(Δ)` — the mean of the boundary vertices, exactly as in the
    /// paper's pseudocode.
    #[default]
    VertexAverage,
    /// The exact area centroid of the intersected region (this
    /// reproduction's refinement; ablated in the benchmarks).
    Region,
}

/// The M-Loc localizer.
///
/// See the [crate-level example](crate) for typical use.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MLoc {
    /// Centroid flavor.
    pub mode: CentroidMode,
    /// Disable the empty-region inflation fallback (locate then returns
    /// `None` when discs do not intersect).
    pub no_inflation: bool,
}

impl MLoc {
    /// M-Loc with the paper's exact `AVG(Δ)` estimator.
    pub fn paper() -> Self {
        MLoc::default()
    }

    /// M-Loc using the exact region centroid.
    pub fn region_centroid() -> Self {
        MLoc {
            mode: CentroidMode::Region,
            no_inflation: false,
        }
    }

    /// Locates a mobile from the coverage discs of its communicable APs.
    ///
    /// Returns `None` when `discs` is empty, or when the discs do not
    /// intersect and inflation is disabled.
    pub fn locate(&self, discs: &[CoverageDisc]) -> Option<Estimate> {
        if discs.is_empty() {
            return None;
        }
        let circles: Vec<Circle> = discs.iter().map(CoverageDisc::circle).collect();
        let (region, inflation) = self.intersect_with_fallback(&circles)?;
        let position = match self.mode {
            CentroidMode::VertexAverage => {
                region.vertex_centroid().or_else(|| region.centroid())?
            }
            CentroidMode::Region => region.centroid()?,
        };
        Some(Estimate {
            position,
            region,
            k: discs.len(),
            inflation,
        })
    }

    /// Intersects, inflating radii when necessary (and allowed).
    fn intersect_with_fallback(&self, circles: &[Circle]) -> Option<(DiscIntersection, f64)> {
        let region = DiscIntersection::new(circles);
        if !region.is_empty() {
            return Some((region, 1.0));
        }
        if self.no_inflation {
            return None;
        }
        // Find an upper multiplier that works by doubling, then bisect
        // down to ~0.1% precision.
        let inflate = |m: f64| {
            let scaled: Vec<Circle> = circles
                .iter()
                .map(|c| Circle::new(c.center, c.radius * m))
                .collect();
            DiscIntersection::new(&scaled)
        };
        let mut hi = 2.0;
        while inflate(hi).is_empty() {
            hi *= 2.0;
            if hi > 1e6 {
                return None; // degenerate input (e.g. all radii zero)
            }
        }
        let mut lo = hi / 2.0;
        for _ in 0..40 {
            let mid = (lo + hi) / 2.0;
            if inflate(mid).is_empty() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some((inflate(hi), hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marauder_geo::Point;

    fn d(x: f64, y: f64, r: f64) -> CoverageDisc {
        CoverageDisc::new(Point::new(x, y), r)
    }

    #[test]
    fn empty_input_returns_none() {
        assert!(MLoc::paper().locate(&[]).is_none());
    }

    #[test]
    fn single_ap_reduces_to_nearest_ap() {
        // k = 1: "the disc-intersection approach is essentially reduced
        // to the nearest AP approach".
        let est = MLoc::paper().locate(&[d(10.0, -5.0, 100.0)]).unwrap();
        assert!(est.position.distance(Point::new(10.0, -5.0)) < 1e-9);
        assert_eq!(est.k, 1);
        assert_eq!(est.inflation, 1.0);
        assert!((est.area() - std::f64::consts::PI * 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn true_position_always_covered_with_correct_radii() {
        // Mobile at m; APs within range r of m; discs must cover m.
        let m = Point::new(30.0, 40.0);
        let r = 100.0;
        let centers = [
            Point::new(0.0, 0.0),
            Point::new(80.0, 10.0),
            Point::new(50.0, 100.0),
            Point::new(-20.0, 70.0),
        ];
        let discs: Vec<CoverageDisc> = centers
            .iter()
            .filter(|c| c.distance(m) <= r)
            .map(|c| CoverageDisc::new(*c, r))
            .collect();
        assert!(discs.len() >= 3);
        let est = MLoc::paper().locate(&discs).unwrap();
        assert!(est.covers(m), "region must contain the true position");
        assert!(est.position.distance(m) < r);
        assert_eq!(est.inflation, 1.0);
    }

    #[test]
    fn vertex_average_matches_paper_geometry() {
        // Two equal discs: Δ has the two lens tips; their average is the
        // midpoint of the centers.
        let est = MLoc::paper()
            .locate(&[d(0.0, 0.0, 10.0), d(12.0, 0.0, 10.0)])
            .unwrap();
        assert!(est.position.distance(Point::new(6.0, 0.0)) < 1e-9);
    }

    #[test]
    fn region_centroid_mode_differs_on_asymmetric_input() {
        let discs = [d(0.0, 0.0, 50.0), d(60.0, 0.0, 20.0)];
        let paper = MLoc::paper().locate(&discs).unwrap();
        let region = MLoc::region_centroid().locate(&discs).unwrap();
        // Both land in the region.
        assert!(paper.region.contains(paper.position));
        assert!(region.region.contains(region.position));
        // Asymmetric lens: the two estimators disagree.
        assert!(paper.position.distance(region.position) > 1e-6);
    }

    #[test]
    fn contained_disc_dominates_without_vertices() {
        // Small disc strictly inside a big one: Δ is empty; the paper's
        // AVG(Δ) is undefined. Our fallback returns the region centroid,
        // i.e. the small disc's center.
        let est = MLoc::paper()
            .locate(&[d(0.0, 0.0, 100.0), d(10.0, 0.0, 5.0)])
            .unwrap();
        assert!(est.position.distance(Point::new(10.0, 0.0)) < 1e-9);
    }

    #[test]
    fn disjoint_discs_inflate_until_intersection() {
        // Underestimated radii: discs at distance 100 with radius 20.
        // Inflation must scale them to (just past) touching: m = 2.5.
        let est = MLoc::paper()
            .locate(&[d(0.0, 0.0, 20.0), d(100.0, 0.0, 20.0)])
            .unwrap();
        assert!(
            (est.inflation - 2.5).abs() < 0.01,
            "inflation {}",
            est.inflation
        );
        assert!(est.position.distance(Point::new(50.0, 0.0)) < 1.0);
    }

    #[test]
    fn no_inflation_mode_refuses_disjoint_discs() {
        let mloc = MLoc {
            no_inflation: true,
            ..MLoc::default()
        };
        assert!(mloc
            .locate(&[d(0.0, 0.0, 20.0), d(100.0, 0.0, 20.0)])
            .is_none());
    }

    #[test]
    fn zero_radii_cannot_inflate() {
        // Degenerate: two distinct zero-radius discs can never intersect.
        assert!(MLoc::paper()
            .locate(&[d(0.0, 0.0, 0.0), d(10.0, 0.0, 0.0)])
            .is_none());
    }

    #[test]
    fn area_shrinks_with_more_aps() {
        // Theorem 2's trend on concrete inputs.
        let m = Point::new(0.0, 0.0);
        let r = 50.0;
        let all = [
            Point::new(30.0, 0.0),
            Point::new(-20.0, 25.0),
            Point::new(0.0, -35.0),
            Point::new(25.0, 30.0),
            Point::new(-30.0, -20.0),
        ];
        let mut last_area = f64::INFINITY;
        for k in 1..=all.len() {
            let discs: Vec<CoverageDisc> =
                all[..k].iter().map(|c| CoverageDisc::new(*c, r)).collect();
            let est = MLoc::paper().locate(&discs).unwrap();
            assert!(est.area() <= last_area + 1e-9);
            assert!(est.covers(m));
            last_area = est.area();
        }
    }

    #[test]
    fn estimate_improves_with_more_aps_on_average() {
        // With k >= 3 well-spread APs the estimate lands within a small
        // fraction of the radius.
        let m = Point::new(5.0, -3.0);
        let r = 80.0;
        let centers = [
            Point::new(60.0, 10.0),
            Point::new(-50.0, 30.0),
            Point::new(10.0, -70.0),
            Point::new(-20.0, -55.0),
            Point::new(45.0, 50.0),
            Point::new(-60.0, -10.0),
        ];
        let discs: Vec<CoverageDisc> = centers
            .iter()
            .filter(|c| c.distance(m) <= r)
            .map(|c| CoverageDisc::new(*c, r))
            .collect();
        let est = MLoc::paper().locate(&discs).unwrap();
        assert!(
            est.position.distance(m) < 25.0,
            "error {} too large",
            est.position.distance(m)
        );
    }

    #[test]
    #[should_panic(expected = "coverage radius")]
    fn negative_radius_panics() {
        let _ = CoverageDisc::new(Point::ORIGIN, -1.0);
    }

    #[test]
    fn enclosing_circle_bounds_the_region() {
        let discs = [d(0.0, 0.0, 50.0), d(60.0, 10.0, 55.0), d(20.0, 50.0, 45.0)];
        let est = MLoc::paper().locate(&discs).unwrap();
        let mec = est.enclosing_circle().expect("non-empty region");
        // Every vertex of the region is inside the MEC.
        for v in est.region.vertices() {
            assert!(mec.contains_with_tolerance(*v, 1e-6));
        }
        // The MEC is no bigger than the smallest disc's bounding circle.
        assert!(mec.radius <= 45.0 + 1e-6, "MEC radius {}", mec.radius);
        // Uncertainty radius covers the truth for any point in the region.
        let u = est.uncertainty_radius().expect("non-empty");
        let c = est.region.centroid().expect("non-empty");
        assert!(est.position.distance(c) <= u);
        assert!(u >= mec.radius);
    }

    #[test]
    fn single_disc_enclosing_circle_is_itself() {
        let est = MLoc::paper().locate(&[d(5.0, 5.0, 30.0)]).unwrap();
        let mec = est.enclosing_circle().unwrap();
        assert!(mec.center.distance(Point::new(5.0, 5.0)) < 0.5);
        assert!((mec.radius - 30.0).abs() < 0.5, "radius {}", mec.radius);
    }
}
