//! Typed failures of the attack pipeline.
//!
//! The hot localization path historically reported every failure as a
//! bare `None`, which makes "the discs were degenerate" and "we have
//! never heard of any of these APs" indistinguishable to an operator
//! staring at a dropped fix. Under fault injection (`marauder-fault`)
//! that distinction is the whole point: the degradation report must say
//! *why* each device-window was lost. [`PipelineError`] is the typed
//! hierarchy the ladder in
//! [`MaraudersMap::try_locate`](crate::pipeline::MaraudersMap::try_locate)
//! returns instead.

use std::fmt;

/// Why a localization attempt produced no estimate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The observation window carried no communicable APs at all.
    EmptyObservation,
    /// None of the observed APs is in the attacker's knowledge — the
    /// whole Γ set is unknown MACs (bit-flipped captures produce
    /// these). Carries the number of observed-but-unknown APs.
    NoKnownAps {
        /// How many APs were observed in the window.
        observed: usize,
    },
    /// Known discs existed but their geometry was degenerate beyond
    /// recovery (e.g. distinct zero-radius discs that no finite
    /// inflation can make intersect).
    DegenerateGeometry {
        /// How many known coverage discs were intersected.
        discs: usize,
    },
    /// Some observed APs have known locations but none has a usable
    /// radius, and the policy forbids the location-only rungs of the
    /// ladder ([`DegradationPolicy::Strict`]).
    ///
    /// [`DegradationPolicy::Strict`]: crate::pipeline::DegradationPolicy::Strict
    NoUsableRadii {
        /// How many observed APs have a known location.
        known: usize,
    },
    /// An input carried a NaN or infinite value where a finite number
    /// is required.
    NonFinite {
        /// Which quantity was non-finite.
        what: &'static str,
    },
    /// The replayed text is not a capture log at all: its first line —
    /// where the `time_s src dst subtype [bssid]` header/record shape
    /// is established — is missing or malformed. Deliberately exempt
    /// from the malformed-line error budget: a budget exists to ride
    /// out scattered corruption *inside* a log, not to let an
    /// arbitrary non-log file limp through as "all lines skipped".
    BadHeader,
    /// A malformed-input budget was exhausted (replay with an error
    /// budget, snapshot restore). Carries the 1-based position of the
    /// offending record and the budget that was exceeded.
    BudgetExhausted {
        /// 1-based line/record number of the fatal malformation.
        line: usize,
        /// The configured budget that was exceeded.
        budget: usize,
    },
    /// Localization was deliberately not attempted: the streaming
    /// engine ran with live localization disabled (replay mode), where
    /// per-window estimates are discarded and only the final batch
    /// re-localization matters. Not a failure of the ladder — the
    /// window is perfectly locatable once
    /// [`batch_fixes`](../../marauder_stream/struct.StreamEngine.html#method.batch_fixes)
    /// runs.
    DeferredLocalization,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::EmptyObservation => {
                write!(f, "observation window carries no communicable APs")
            }
            PipelineError::NoKnownAps { observed } => write!(
                f,
                "none of the {observed} observed APs is in the attacker's knowledge"
            ),
            PipelineError::DegenerateGeometry { discs } => write!(
                f,
                "degenerate geometry: {discs} known discs admit no finite intersection"
            ),
            PipelineError::NoUsableRadii { known } => write!(
                f,
                "{known} observed APs have known locations but no usable radius \
                 (strict policy forbids location-only fallbacks)"
            ),
            PipelineError::NonFinite { what } => {
                write!(f, "non-finite {what} where a finite value is required")
            }
            PipelineError::BadHeader => write!(
                f,
                "not a capture log: missing or malformed header line \
                 (line 1 is exempt from the error budget)"
            ),
            PipelineError::BudgetExhausted { line, budget } => write!(
                f,
                "malformed-input budget of {budget} exhausted at line {line}"
            ),
            PipelineError::DeferredLocalization => write!(
                f,
                "live localization disabled: estimate deferred to the batch pass"
            ),
        }
    }
}

impl std::error::Error for PipelineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_cause() {
        assert!(PipelineError::EmptyObservation
            .to_string()
            .contains("no communicable APs"));
        assert!(PipelineError::NoKnownAps { observed: 3 }
            .to_string()
            .contains('3'));
        assert!(PipelineError::DegenerateGeometry { discs: 2 }
            .to_string()
            .contains("degenerate"));
        assert!(PipelineError::NonFinite { what: "radius" }
            .to_string()
            .contains("radius"));
        let e = PipelineError::BudgetExhausted { line: 9, budget: 2 };
        assert!(e.to_string().contains("line 9"));
        assert!(e.to_string().contains("budget of 2"));
        assert!(PipelineError::BadHeader
            .to_string()
            .contains("not a capture log"));
    }
}
