//! Property-based tests for the localization algorithms.
//!
//! The central soundness invariant (paper Section III-C1): "as long as
//! the APs' locations and maximum transmission distances are accurate,
//! the mobile device's real location is always covered in the
//! intersected area".

use marauder_core::algorithms::{ApRad, Centroid, CoverageDisc, MLoc};
use marauder_core::theory;
use marauder_geo::Point;
use marauder_wifi::mac::MacAddr;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// A world instance: a mobile position and APs within range `r` of it.
#[derive(Debug, Clone)]
struct WorldCase {
    mobile: Point,
    r: f64,
    ap_positions: Vec<Point>,
}

fn arb_world() -> impl Strategy<Value = WorldCase> {
    (
        (-100.0..100.0f64, -100.0..100.0f64),
        50.0..150.0f64,
        prop::collection::vec((0.0..1.0f64, 0.0..1.0f64), 1..10),
    )
        .prop_map(|((mx, my), r, raw)| {
            let mobile = Point::new(mx, my);
            // Place each AP inside the disc of radius r around the mobile
            // (uniform via sqrt radius trick).
            let ap_positions = raw
                .into_iter()
                .map(|(u, v)| {
                    let rr = r * u.sqrt();
                    let a = v * std::f64::consts::TAU;
                    Point::new(mobile.x + rr * a.cos(), mobile.y + rr * a.sin())
                })
                .collect();
            WorldCase {
                mobile,
                r,
                ap_positions,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mloc_region_always_covers_truth_with_accurate_knowledge(world in arb_world()) {
        let discs: Vec<CoverageDisc> = world
            .ap_positions
            .iter()
            .map(|p| CoverageDisc::new(*p, world.r))
            .collect();
        let est = MLoc::paper().locate(&discs).expect("non-empty by construction");
        prop_assert!(est.covers(world.mobile),
            "region failed to cover the true position {}", world.mobile);
        prop_assert_eq!(est.inflation, 1.0);
        prop_assert!(est.k == discs.len());
    }

    #[test]
    fn mloc_error_bounded_by_region_diameter(world in arb_world()) {
        let discs: Vec<CoverageDisc> = world
            .ap_positions
            .iter()
            .map(|p| CoverageDisc::new(*p, world.r))
            .collect();
        let est = MLoc::paper().locate(&discs).expect("non-empty");
        // Estimate and truth both lie in the region, whose diameter is at
        // most 2r (it fits inside any single disc).
        prop_assert!(est.position.distance(world.mobile) <= 2.0 * world.r + 1e-6);
    }

    #[test]
    fn overestimated_radii_still_cover_and_grow_area(world in arb_world(), factor in 1.0..2.0f64) {
        let exact: Vec<CoverageDisc> = world
            .ap_positions
            .iter()
            .map(|p| CoverageDisc::new(*p, world.r))
            .collect();
        let over: Vec<CoverageDisc> = world
            .ap_positions
            .iter()
            .map(|p| CoverageDisc::new(*p, world.r * factor))
            .collect();
        let e1 = MLoc::paper().locate(&exact).expect("non-empty");
        let e2 = MLoc::paper().locate(&over).expect("non-empty");
        prop_assert!(e2.covers(world.mobile), "Theorem 3: overestimates always cover");
        prop_assert!(e2.area() >= e1.area() - 1e-6, "area must not shrink");
    }

    #[test]
    fn region_centroid_always_inside_region(world in arb_world()) {
        let discs: Vec<CoverageDisc> = world
            .ap_positions
            .iter()
            .map(|p| CoverageDisc::new(*p, world.r))
            .collect();
        let est = MLoc::region_centroid().locate(&discs).expect("non-empty");
        prop_assert!(est.region.contains(est.position));
    }

    #[test]
    fn mloc_never_worse_than_worst_ap_distance(world in arb_world()) {
        // Sanity vs the trivial "pick any AP" strategy: M-Loc's estimate
        // is within r of the mobile whenever the region is inside the
        // mobile's own disc... which it is, since all discs contain the
        // mobile and have radius r: any point of the region is within 2r
        // of every AP, and within 2r of the mobile. Verify the tighter
        // claim: error <= 2r. (Covered above; here check vs Centroid's
        // worst case as a smoke comparison.)
        let discs: Vec<CoverageDisc> = world
            .ap_positions
            .iter()
            .map(|p| CoverageDisc::new(*p, world.r))
            .collect();
        let est = MLoc::paper().locate(&discs).expect("non-empty");
        let centroid = Centroid.locate(&world.ap_positions).expect("non-empty");
        // Both are within 2r; neither may be NaN.
        prop_assert!(est.position.is_finite());
        prop_assert!(centroid.is_finite());
    }

    #[test]
    fn aprad_radii_satisfy_kept_constraints(
        world in arb_world(),
        probes in prop::collection::vec((0.0..1.0f64, 0.0..1.0f64), 3..12),
    ) {
        // Observation sets generated by probe mobiles placed in the same
        // area; AP-Rad estimates must satisfy every co-observation
        // constraint it keeps.
        let locations: BTreeMap<MacAddr, Point> = world
            .ap_positions
            .iter()
            .enumerate()
            .map(|(i, p)| (MacAddr::from_index(i as u64), *p))
            .collect();
        let observe = |at: Point| -> BTreeSet<MacAddr> {
            locations
                .iter()
                .filter(|(_, p)| p.distance(at) <= world.r)
                .map(|(m, _)| *m)
                .collect()
        };
        let observations: Vec<BTreeSet<MacAddr>> = probes
            .iter()
            .map(|(u, v)| {
                let p = Point::new(
                    world.mobile.x + (u - 0.5) * 2.0 * world.r,
                    world.mobile.y + (v - 0.5) * 2.0 * world.r,
                );
                observe(p)
            })
            .filter(|s| !s.is_empty())
            .collect();
        let aprad = ApRad { max_radius: 4.0 * world.r, ..ApRad::default() };
        let radii = aprad.estimate_radii(&locations, &observations);
        for obs in &observations {
            let macs: Vec<&MacAddr> = obs.iter().collect();
            for (i, a) in macs.iter().enumerate() {
                for b in &macs[i + 1..] {
                    let (Some(ra), Some(rb)) = (radii.get(*a), radii.get(*b)) else { continue };
                    let d = locations[*a].distance(locations[*b]);
                    prop_assert!(ra + rb >= d - 1e-6,
                        "co-observed constraint violated: {ra}+{rb} < {d}");
                }
            }
        }
        for r in radii.values() {
            prop_assert!((0.0..=4.0 * world.r + 1e-6).contains(r));
        }
    }

    #[test]
    fn theorem2_area_positive_and_decreasing(k in 1.0..40.0f64, r in 0.1..100.0f64) {
        let a = theory::expected_intersection_area(k, r);
        let a_next = theory::expected_intersection_area(k + 1.0, r);
        prop_assert!(a > 0.0);
        prop_assert!(a_next < a, "CA must decrease in k: {a_next} !< {a}");
        prop_assert!(a <= std::f64::consts::PI * r * r * 4.0);
    }

    #[test]
    fn theorem3_consistent_with_theorem2(k in 1.0..20.0f64, r in 0.5..5.0f64, factor in 1.0..3.0f64) {
        let base = theory::expected_intersection_area(k, r);
        let over = theory::expected_intersection_area_overestimate(k, r, r * factor);
        prop_assert!(over >= base * 0.99, "overestimate shrank the area: {over} < {base}");
    }

    #[test]
    fn coverage_probability_bounds(k in 1.0..30.0f64, r in 0.1..10.0f64, ratio in 0.01..1.0f64) {
        let p = theory::coverage_probability(k, r, r * ratio);
        prop_assert!((0.0..=1.0).contains(&p));
        // Monotone in the ratio.
        let p2 = theory::coverage_probability(k, r, r * (ratio * 0.9));
        prop_assert!(p2 <= p + 1e-12);
    }
}
