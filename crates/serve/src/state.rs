//! Tracker state as immutable snapshots, and the publisher that
//! builds them on the ingest thread.
//!
//! [`TrackerPublisher`] is a [`SnapshotSink`]: the stream engine hands
//! it every batch of closed windows, it folds the resulting fixes into
//! per-device histories, and it publishes a fresh [`TrackerSnapshot`]
//! onto the [`SnapshotPlane`]. Publish cost is kept proportional to
//! what changed: per-device fix vectors are shared `Arc`s updated
//! copy-on-write (`Arc::make_mut` clones a device's history only when
//! a published snapshot still references it), the tracks map is an
//! O(devices) `Arc`-bump clone, and the engine's full text snapshot —
//! the one genuinely expensive artifact — is regenerated only on a
//! stream-time cadence, not on every publish.

use crate::plane::SnapshotPlane;
use marauder_core::pipeline::TrackFix;
use marauder_geo::Point;
use marauder_stream::{ClosedWindow, SnapshotSink, StreamEngine, StreamStats};
use marauder_wifi::mac::MacAddr;
use std::collections::BTreeMap;
use std::sync::Arc;

/// An axis-aligned bounding box in campus coordinates, as parsed from
/// a `bbox=min_x,min_y,max_x,max_y` query parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    /// West edge.
    pub min_x: f64,
    /// South edge.
    pub min_y: f64,
    /// East edge.
    pub max_x: f64,
    /// North edge.
    pub max_y: f64,
}

impl BBox {
    /// Parses `min_x,min_y,max_x,max_y`.
    ///
    /// # Errors
    ///
    /// A static description of the malformation (wrong field count,
    /// non-finite number, inverted edges) for the router's 400 body.
    pub fn parse(s: &str) -> Result<BBox, &'static str> {
        let fields: Vec<&str> = s.split(',').collect();
        let [min_x, min_y, max_x, max_y] = fields.as_slice() else {
            return Err("bbox takes exactly 4 comma-separated numbers");
        };
        let parse = |f: &str| -> Result<f64, &'static str> {
            let v: f64 = f.trim().parse().map_err(|_| "bbox field is not a number")?;
            v.is_finite().then_some(v).ok_or("bbox field is not finite")
        };
        let bbox = BBox {
            min_x: parse(min_x)?,
            min_y: parse(min_y)?,
            max_x: parse(max_x)?,
            max_y: parse(max_y)?,
        };
        if bbox.min_x > bbox.max_x || bbox.min_y > bbox.max_y {
            return Err("bbox edges are inverted (min > max)");
        }
        Ok(bbox)
    }

    /// Whether the (closed) box contains `p`.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }
}

/// One immutable, internally consistent view of tracker state. Cheap
/// to hold (readers keep it alive across a publish with zero effect on
/// the writer) and cheap to publish (shared per-device histories).
#[derive(Debug)]
pub struct TrackerSnapshot {
    /// Publication sequence number, 1-based (0 = the pre-ingest empty
    /// snapshot).
    pub seq: u64,
    /// The engine watermark at publish time.
    pub watermark_s: Option<f64>,
    /// Engine ingestion counters at publish time.
    pub stats: StreamStats,
    /// Per-device fix history, oldest first, bounded by
    /// [`PublisherConfig::max_fixes_per_device`].
    pub tracks: BTreeMap<MacAddr, Arc<Vec<TrackFix>>>,
    /// The engine's text snapshot (the `marauder stream snapshot v1`
    /// format), regenerated on the publisher's cadence — it may lag
    /// `tracks` by up to `snapshot_every_s` of stream time.
    pub engine_text: Arc<String>,
}

impl TrackerSnapshot {
    /// The snapshot a server boots with, before anything was ingested.
    pub fn empty() -> Self {
        TrackerSnapshot {
            seq: 0,
            watermark_s: None,
            stats: StreamStats::default(),
            tracks: BTreeMap::new(),
            engine_text: Arc::new(String::new()),
        }
    }

    /// Total fixes across all devices.
    pub fn fix_count(&self) -> usize {
        self.tracks.values().map(|fixes| fixes.len()).sum()
    }

    /// A device's history as CSV (the `marauder attack` schema plus a
    /// provenance column), or `None` for an untracked MAC.
    pub fn track_csv(&self, mac: &MacAddr) -> Option<String> {
        let fixes = self.tracks.get(mac)?;
        let mut out = String::from("time_s,mobile,x,y,k,area_m2,provenance\n");
        for fix in fixes.iter() {
            out.push_str(&format!(
                "{:.1},{},{:.2},{:.2},{},{:.0},{}\n",
                fix.time_s,
                fix.mobile,
                fix.estimate.position.x,
                fix.estimate.position.y,
                fix.gamma.len(),
                fix.estimate.area(),
                fix.provenance
            ));
        }
        Some(out)
    }

    /// A device's history as JSON, or `None` for an untracked MAC.
    pub fn track_json(&self, mac: &MacAddr) -> Option<String> {
        let fixes = self.tracks.get(mac)?;
        let mut out = format!(
            "{{\n  \"mobile\": \"{mac}\",\n  \"snapshot_seq\": {},\n  \"fixes\": [\n",
            self.seq
        );
        let rows: Vec<String> = fixes
            .iter()
            .map(|fix| {
                format!(
                    "    {{\"time_s\":{:.1},\"x\":{:.2},\"y\":{:.2},\"k\":{},\
                     \"area_m2\":{:.0},\"provenance\":\"{}\"}}",
                    fix.time_s,
                    fix.estimate.position.x,
                    fix.estimate.position.y,
                    fix.gamma.len(),
                    fix.estimate.area(),
                    fix.provenance
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]\n}\n");
        Some(out)
    }

    /// Every fix inside `bbox`, rendered with the workspace's GeoJSON
    /// builder (fix markers + estimate-region polygons).
    pub fn tiles_geojson(&self, bbox: &BBox) -> String {
        let mut geo = marauder_core::map::MapBuilder::planar();
        for fixes in self.tracks.values() {
            for fix in fixes.iter() {
                if bbox.contains(fix.estimate.position) {
                    geo.add_fix(fix);
                }
            }
        }
        geo.finish()
    }
}

/// Publisher knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct PublisherConfig {
    /// Regenerate the engine text snapshot at most once per this many
    /// seconds of *stream* time (it is the one publish-path artifact
    /// whose cost grows with total state, so it is cadenced rather
    /// than rebuilt per batch).
    pub snapshot_every_s: f64,
    /// Per-device history bound: the oldest fixes are dropped beyond
    /// it, so a long campaign cannot grow server memory without bound.
    pub max_fixes_per_device: usize,
}

impl Default for PublisherConfig {
    fn default() -> Self {
        PublisherConfig {
            snapshot_every_s: 30.0,
            max_fixes_per_device: 4096,
        }
    }
}

/// The writer half: owns the evolving track state and publishes
/// immutable snapshots onto a [`SnapshotPlane`].
#[derive(Debug)]
pub struct TrackerPublisher {
    plane: Arc<SnapshotPlane<TrackerSnapshot>>,
    config: PublisherConfig,
    tracks: BTreeMap<MacAddr, Arc<Vec<TrackFix>>>,
    engine_text: Arc<String>,
    last_text_watermark_s: Option<f64>,
    seq: u64,
}

impl TrackerPublisher {
    /// A publisher and the plane it publishes to (epoch 0 holds
    /// [`TrackerSnapshot::empty`]).
    pub fn new(config: PublisherConfig) -> (Self, Arc<SnapshotPlane<TrackerSnapshot>>) {
        let plane = SnapshotPlane::new(TrackerSnapshot::empty());
        (
            TrackerPublisher {
                plane: Arc::clone(&plane),
                config,
                tracks: BTreeMap::new(),
                engine_text: Arc::new(String::new()),
                last_text_watermark_s: None,
                seq: 0,
            },
            plane,
        )
    }

    /// Publications so far.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

impl SnapshotSink for TrackerPublisher {
    fn publish(&mut self, closed: &[ClosedWindow], engine: &StreamEngine) {
        let mut fixes_appended = 0u64;
        for window in closed {
            let Some(fix) = window.clone().into_fix() else {
                continue;
            };
            let history = self
                .tracks
                .entry(fix.mobile)
                .or_insert_with(|| Arc::new(Vec::new()));
            // Copy-on-write: clones this device's vector only when a
            // published snapshot still holds the same Arc.
            let history = Arc::make_mut(history);
            if history.len() >= self.config.max_fixes_per_device.max(1) {
                history.remove(0);
            }
            history.push(fix);
            fixes_appended += 1;
        }
        // The text snapshot is cadenced on stream time; `None -> Some`
        // (first watermark) always regenerates.
        let watermark = engine.watermark();
        let due = match (self.last_text_watermark_s, watermark) {
            (Some(last), Some(now)) => now - last >= self.config.snapshot_every_s,
            (None, _) => true,
            (Some(_), None) => false,
        };
        if due {
            self.engine_text = Arc::new(engine.snapshot());
            self.last_text_watermark_s = watermark.or(Some(f64::NEG_INFINITY));
        }
        self.seq += 1;
        self.plane.publish(TrackerSnapshot {
            seq: self.seq,
            watermark_s: watermark,
            stats: engine.stats().clone(),
            tracks: self.tracks.clone(),
            engine_text: Arc::clone(&self.engine_text),
        });
        let obs = marauder_obs::global();
        obs.counter_add("serve.publish.snapshots", 1);
        obs.counter_add("serve.publish.fixes", fixes_appended);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marauder_core::apdb::{ApDatabase, ApRecord};
    use marauder_core::pipeline::{AttackConfig, KnowledgeLevel, MaraudersMap};
    use marauder_stream::StreamConfig;
    use marauder_wifi::channel::Channel;
    use marauder_wifi::frame::Frame;
    use marauder_wifi::sniffer::CapturedFrame;
    use marauder_wifi::ssid::Ssid;

    fn test_map() -> MaraudersMap {
        let db: ApDatabase = (0..4)
            .map(|i| ApRecord {
                bssid: MacAddr::from_index(100 + i),
                ssid: None,
                location: Point::new((i % 2) as f64 * 80.0, (i / 2) as f64 * 80.0),
                radius: Some(130.0),
            })
            .collect();
        MaraudersMap::new(db, KnowledgeLevel::Full, AttackConfig::default())
    }

    fn frame(t: f64, ap: u64, mobile: u64) -> CapturedFrame {
        CapturedFrame {
            time_s: t,
            card: 0,
            frame: Frame::probe_response(
                MacAddr::from_index(ap),
                MacAddr::from_index(mobile),
                Ssid::new("n").unwrap(),
                Channel::bg(6).unwrap(),
            ),
        }
    }

    fn ingest_demo() -> (Arc<SnapshotPlane<TrackerSnapshot>>, MacAddr) {
        let (mut publisher, plane) = TrackerPublisher::new(PublisherConfig::default());
        let mut engine = StreamEngine::new(test_map(), StreamConfig::default());
        for k in 0..30 {
            let t = k as f64 * 5.0;
            for ap in [100 + k % 4, 100 + (k + 1) % 4] {
                engine.push_published(&frame(t, ap, 1), &mut publisher);
            }
        }
        engine.finish_published(&mut publisher);
        (plane, MacAddr::from_index(1))
    }

    #[test]
    fn bbox_parses_and_rejects() {
        let bbox = BBox::parse("-10, -10, 10.5, 20").unwrap();
        assert!(bbox.contains(Point::new(0.0, 0.0)));
        assert!(bbox.contains(Point::new(10.5, 20.0)));
        assert!(!bbox.contains(Point::new(11.0, 0.0)));
        for bad in ["", "1,2,3", "1,2,3,4,5", "a,2,3,4", "inf,2,3,4", "5,0,-5,1"] {
            assert!(BBox::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn publisher_builds_queryable_snapshots() {
        let (plane, mac) = ingest_demo();
        let snap = plane.load();
        assert!(snap.seq > 0);
        assert!(snap.fix_count() > 0);

        let csv = snap.track_csv(&mac).expect("tracked device");
        assert!(csv.starts_with("time_s,mobile,x,y,k,area_m2,provenance\n"));
        assert_eq!(csv.lines().count(), snap.tracks[&mac].len() + 1);
        let json = snap.track_json(&mac).expect("tracked device");
        assert!(json.contains("\"fixes\""));
        assert!(snap.track_csv(&MacAddr::from_index(999)).is_none());

        // The engine text snapshot is a restorable v1 document.
        assert!(snap
            .engine_text
            .starts_with("# marauder stream snapshot v1"));

        // Tiles: the full-plane bbox holds every fix, a remote bbox none.
        let all = BBox::parse("-1000,-1000,1000,1000").unwrap();
        let geo = snap.tiles_geojson(&all);
        assert!(geo.contains("FeatureCollection"));
        assert!(geo.matches("\"estimate\"").count() >= snap.fix_count());
        let nowhere = BBox::parse("5000,5000,6000,6000").unwrap();
        assert!(!snap.tiles_geojson(&nowhere).contains("\"estimate\""));
    }

    #[test]
    fn history_is_bounded_and_copy_on_write() {
        let (mut publisher, plane) = TrackerPublisher::new(PublisherConfig {
            max_fixes_per_device: 5,
            ..PublisherConfig::default()
        });
        let mut engine = StreamEngine::new(test_map(), StreamConfig::default());
        let mut held = None;
        for k in 0..60 {
            let t = k as f64 * 5.0;
            for ap in [100 + k % 4, 100 + (k + 1) % 4] {
                engine.push_published(&frame(t, ap, 1), &mut publisher);
            }
            if k == 30 {
                held = Some(plane.load());
            }
        }
        engine.finish_published(&mut publisher);
        let last = plane.load();
        let mac = MacAddr::from_index(1);
        assert!(last.tracks[&mac].len() <= 5, "history bound violated");
        // The snapshot held mid-campaign was not mutated by later
        // publishes: it still ends at the fix it ended at.
        let held = held.expect("mid-campaign snapshot");
        let held_last = held.tracks[&mac].last().unwrap().time_s;
        let final_last = last.tracks[&mac].last().unwrap().time_s;
        assert!(held_last < final_last);
    }
}
