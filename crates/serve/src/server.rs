//! The HTTP server: a threaded accept loop in the style of
//! `marauder-net`'s TCP server, one serving thread per connection,
//! every thread holding its own [`PlaneReader`] so request handling
//! never touches a lock the ingest thread cares about.
//!
//! Robustness posture: every way a client can misbehave maps to a
//! typed outcome, never a panic and never a stuck worker. Malformed
//! heads draw the [`HttpError`] 4xx; heads that stall mid-request
//! (slow-loris) draw `408` when the head deadline passes; connections
//! beyond the admission cap draw `503` and close; disconnects at any
//! point just end the thread. The routing function itself is pure over
//! `(request, snapshot)` — all I/O and all clocks stay in the
//! connection loop, so the determinism contract ("no wall clock in
//! response bodies outside the `nondeterministic` key") holds by
//! construction.

use crate::http::{parse_request, HttpError, Parsed, Request, Response};
use crate::plane::{PlaneReader, SnapshotPlane};
use crate::state::{BBox, TrackerSnapshot};
use crate::ServeError;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poll granularity for socket reads and the accept loop.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Cap on distinct targets the per-epoch response cache will hold.
/// Past it, responses are computed but not cached, so a client
/// spraying unique targets cannot balloon server memory.
const MAX_CACHED_RESPONSES: usize = 512;

/// Per-connection read buffer cap: one maximal head plus one maximal
/// pipeline burst behind it. Beyond this the client is not pipelining,
/// it is ballooning — the head-size error applies.
const MAX_CONN_BUFFER: usize = 2 * crate::http::MAX_HEAD_BYTES;

/// Server knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// How long a request head may take from its first byte to its
    /// terminator before the connection draws `408` (slow-loris cap).
    pub head_timeout: Duration,
    /// How long an idle keep-alive connection is held open waiting
    /// for its next request before being closed (no response owed).
    pub keep_alive_timeout: Duration,
    /// Concurrent-connection admission cap; connections beyond it are
    /// answered `503` and closed without parsing.
    pub max_connections: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            head_timeout: Duration::from_secs(5),
            keep_alive_timeout: Duration::from_secs(5),
            max_connections: 256,
        }
    }
}

/// A running server: its bound address and the means to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Stops accepting, waits for the accept loop to exit, then waits
    /// (briefly) for in-flight connections to drain. Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        // Connection threads observe the flag within one poll interval;
        // give them a bounded grace period rather than joining each.
        let deadline = Instant::now() + Duration::from_secs(2);
        while self.active.load(Ordering::Relaxed) > 0 && Instant::now() < deadline {
            std::thread::sleep(POLL_INTERVAL);
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` and starts serving snapshots from `plane` on a
/// background accept loop.
///
/// # Errors
///
/// [`ServeError::Io`] when the address cannot be bound.
pub fn start(
    addr: &str,
    plane: Arc<SnapshotPlane<TrackerSnapshot>>,
    config: ServeConfig,
) -> Result<ServerHandle, ServeError> {
    let listener = TcpListener::bind(addr).map_err(|e| ServeError::io("bind listener", e))?;
    let addr = listener
        .local_addr()
        .map_err(|e| ServeError::io("resolve bound address", e))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| ServeError::io("set listener non-blocking", e))?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));
    let cache = Arc::new(Mutex::new(ResponseCache::new()));
    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        let active = Arc::clone(&active);
        std::thread::spawn(move || accept_loop(listener, plane, config, shutdown, active, cache))
    };
    Ok(ServerHandle {
        addr,
        shutdown,
        active,
        accept_thread: Some(accept_thread),
    })
}

/// Accepts until shutdown; spawns one serving thread per admitted
/// connection, rejects over-cap connections with `503`.
fn accept_loop(
    listener: TcpListener,
    plane: Arc<SnapshotPlane<TrackerSnapshot>>,
    config: ServeConfig,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    cache: Arc<Mutex<ResponseCache>>,
) {
    let reg = marauder_obs::global();
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                reg.counter_add("serve.conns.accepted", 1);
                if active.load(Ordering::Relaxed) >= config.max_connections {
                    reg.counter_add("serve.conns.rejected_busy", 1);
                    let mut busy = Response::text(503, "server at connection capacity\n");
                    busy.keep_alive = false;
                    let _ = stream.try_clone().and_then(|mut s| {
                        s.write_all(&busy.render())?;
                        s.shutdown(std::net::Shutdown::Both)
                    });
                    continue;
                }
                active.fetch_add(1, Ordering::Relaxed);
                let reader = plane.reader();
                let config = config.clone();
                let shutdown = Arc::clone(&shutdown);
                let active = Arc::clone(&active);
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    serve_connection(stream, reader, &config, &shutdown, &cache);
                    active.fetch_sub(1, Ordering::Relaxed);
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => {
                reg.counter_add("serve.conns.accept_errors", 1);
                std::thread::sleep(POLL_INTERVAL);
            }
        }
    }
}

/// One connection's lifetime: read, parse, route, respond, repeat
/// while keep-alive holds and deadlines are met.
fn serve_connection(
    stream: TcpStream,
    mut reader: PlaneReader<TrackerSnapshot>,
    config: &ServeConfig,
    shutdown: &AtomicBool,
    cache: &Mutex<ResponseCache>,
) {
    let reg = marauder_obs::global();
    let mut stream = stream;
    if stream
        .set_read_timeout(Some(POLL_INTERVAL))
        .and_then(|()| stream.set_nodelay(true))
        .is_err()
    {
        reg.counter_add("serve.conns.setup_errors", 1);
        return;
    }

    let mut buf: Vec<u8> = Vec::new();
    // `head_started` is the instant the *current* request's first byte
    // arrived; `idle_since` paces the keep-alive wait between requests.
    let mut head_started: Option<Instant> = None;
    let mut idle_since = Instant::now();

    'conn: loop {
        if shutdown.load(Ordering::Relaxed) {
            break;
        }
        // Drain every complete pipelined request already buffered.
        loop {
            match parse_request(&buf) {
                Ok(Parsed::Complete { request, consumed }) => {
                    buf.drain(..consumed);
                    head_started = None;
                    idle_since = Instant::now();
                    let keep_alive = respond(&mut stream, &request, &mut reader, cache);
                    if !keep_alive {
                        break 'conn;
                    }
                }
                Ok(Parsed::Incomplete) => break,
                Err(err) => {
                    reject(&mut stream, &err);
                    break 'conn;
                }
            }
        }
        // Enforce deadlines on the partial head (or the idle wait).
        if buf.is_empty() {
            if idle_since.elapsed() > config.keep_alive_timeout {
                break; // Idle keep-alive expiry: close, nothing owed.
            }
        } else {
            let started = *head_started.get_or_insert_with(Instant::now);
            if started.elapsed() > config.head_timeout {
                reg.counter_add("serve.reject.head_timeout", 1);
                let mut timeout = Response::text(408, "request head timed out\n");
                timeout.keep_alive = false;
                let _ = stream.write_all(&timeout.render());
                break;
            }
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => {
                if !buf.is_empty() {
                    reg.counter_add("serve.conns.mid_request_disconnects", 1);
                }
                break;
            }
            Ok(n) => {
                if head_started.is_none() {
                    head_started = Some(Instant::now());
                }
                buf.extend_from_slice(&chunk[..n]);
                if buf.len() > MAX_CONN_BUFFER {
                    reject(
                        &mut stream,
                        &HttpError::HeadTooLarge {
                            limit: crate::http::MAX_HEAD_BYTES,
                        },
                    );
                    break;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => {
                reg.counter_add("serve.conns.read_errors", 1);
                break;
            }
        }
    }
}

/// Rendered responses for the snapshot-pure endpoints, valid for
/// exactly one snapshot epoch. [`route`] is a pure function of
/// `(request, snapshot)`, so a body computed for a target is reusable
/// verbatim by every connection until the next publish; the heavy
/// renders (GeoJSON tiles, track exports) then cost once per snapshot
/// instead of once per request. `/metrics` reads the live registry and
/// is never cached; a publish invalidates the whole map at once.
struct ResponseCache {
    epoch: u64,
    entries: HashMap<String, Response>,
}

impl ResponseCache {
    fn new() -> Self {
        ResponseCache {
            epoch: 0,
            entries: HashMap::new(),
        }
    }
}

/// Whether responses for `path` are pure in the snapshot (and thus
/// cacheable per epoch).
fn cacheable(path: &str) -> bool {
    path == "/tiles" || path == "/snapshot" || path.starts_with("/track/")
}

/// [`route`] behind the per-epoch cache. A miss computes under the
/// cache lock, so a herd of readers asking for the same heavy target
/// renders it exactly once. Note the lock is reader-plane only — the
/// ingest thread never takes it.
fn route_cached(
    request: &Request,
    snapshot: &TrackerSnapshot,
    epoch: u64,
    cache: &Mutex<ResponseCache>,
) -> Response {
    if !cacheable(&request.path) {
        return route(request, snapshot);
    }
    let reg = marauder_obs::global();
    let key = match &request.query {
        Some(q) => format!("{}?{q}", request.path),
        None => request.path.clone(),
    };
    let mut cache = cache.lock().unwrap_or_else(|p| p.into_inner());
    if cache.epoch != epoch {
        cache.entries.clear();
        cache.epoch = epoch;
    }
    if let Some(hit) = cache.entries.get(&key) {
        reg.counter_add("serve.cache.hits", 1);
        return hit.clone();
    }
    reg.counter_add("serve.cache.misses", 1);
    let computed = route(request, snapshot);
    if cache.entries.len() < MAX_CACHED_RESPONSES {
        cache.entries.insert(key, computed.clone());
    }
    computed
}

/// Routes one parsed request against the freshest snapshot and writes
/// the response. Returns whether the connection stays open.
fn respond(
    stream: &mut TcpStream,
    request: &Request,
    reader: &mut PlaneReader<TrackerSnapshot>,
    cache: &Mutex<ResponseCache>,
) -> bool {
    let reg = marauder_obs::global();
    reg.counter_add("serve.requests", 1);
    let _span = marauder_obs::span("serve.request");
    let (snapshot, epoch) = reader.current_with_epoch();
    let mut response = route_cached(request, snapshot, epoch, cache);
    response.keep_alive = response.keep_alive && request.keep_alive;
    let wire = response.render();
    let class = match response.status {
        200..=299 => "serve.responses.2xx",
        400..=499 => "serve.responses.4xx",
        _ => "serve.responses.5xx",
    };
    reg.counter_add(class, 1);
    reg.counter_add("serve.bytes_out", wire.len() as u64);
    match stream.write_all(&wire) {
        Ok(()) => response.keep_alive,
        Err(_) => {
            reg.counter_add("serve.conns.write_errors", 1);
            false
        }
    }
}

/// Answers a typed parse error with its 4xx/5xx and accounts for it
/// under `serve.reject.<kind>`. The connection always closes after —
/// the read stream can no longer be trusted to be request-aligned.
fn reject(stream: &mut TcpStream, err: &HttpError) {
    let reg = marauder_obs::global();
    reg.counter_add("serve.requests", 1);
    reg.counter_add("serve.responses.4xx", 1);
    // Registries are append-only maps keyed by name, so the dynamic
    // key set here is bounded by HttpError's variant count.
    reg.counter_add(&format!("serve.reject.{}", err.kind()), 1);
    let mut response = Response::text(err.status(), format!("{err}\n"));
    response.keep_alive = false;
    let wire = response.render();
    reg.counter_add("serve.bytes_out", wire.len() as u64);
    let _ = stream.write_all(&wire);
}

/// The routing table: a pure function of `(request, snapshot)`.
/// No clock, no I/O, no shared mutable state — everything
/// time-dependent lives in the connection loop, and everything
/// nondeterministic in a body is inside the obs registry's
/// `nondeterministic` section.
pub fn route(request: &Request, snapshot: &TrackerSnapshot) -> Response {
    match request.path.as_str() {
        "/" => Response::text(
            200,
            "marauder serve\n\
             endpoints: /healthz /metrics /snapshot /track/<mac> /tiles?bbox=x0,y0,x1,y1\n",
        ),
        "/healthz" => Response::text(200, "ok\n"),
        "/metrics" => Response::ok("application/json", marauder_obs::global().to_json()),
        "/snapshot" => {
            if snapshot.engine_text.is_empty() {
                Response::text(404, "no engine snapshot published yet\n")
            } else {
                Response::ok("text/plain; charset=utf-8", snapshot.engine_text.as_bytes())
            }
        }
        "/tiles" => match request.query_param("bbox") {
            None => Response::text(400, "missing required query parameter bbox\n"),
            Some(raw) => match BBox::parse(raw) {
                Ok(bbox) => Response::ok("application/geo+json", snapshot.tiles_geojson(&bbox)),
                Err(reason) => Response::text(400, format!("bad bbox: {reason}\n")),
            },
        },
        path => match path.strip_prefix("/track/") {
            Some(mac_str) => match marauder_wifi::mac::MacAddr::from_str(mac_str) {
                Ok(mac) => {
                    let rendered = match request.query_param("format") {
                        Some("json") => snapshot
                            .track_json(&mac)
                            .map(|body| Response::ok("application/json", body)),
                        Some("csv") | None => snapshot
                            .track_csv(&mac)
                            .map(|body| Response::ok("text/csv; charset=utf-8", body)),
                        Some(other) => {
                            return Response::text(
                                400,
                                format!("unknown format {other:?} (csv or json)\n"),
                            )
                        }
                    };
                    rendered.unwrap_or_else(|| Response::text(404, format!("no track for {mac}\n")))
                }
                Err(e) => Response::text(400, format!("bad mac: {e}\n")),
            },
            None => Response::text(404, format!("no such endpoint: {path}\n")),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn get(path_and_query: &str) -> Request {
        let wire = format!("GET {path_and_query} HTTP/1.1\r\n\r\n");
        match parse_request(wire.as_bytes()) {
            Ok(Parsed::Complete { request, .. }) => request,
            other => panic!("bad test request: {other:?}"),
        }
    }

    #[test]
    fn routes_cover_the_surface() {
        let mut snapshot = TrackerSnapshot::empty();
        assert_eq!(route(&get("/healthz"), &snapshot).status, 200);
        assert_eq!(route(&get("/"), &snapshot).status, 200);
        assert_eq!(route(&get("/metrics"), &snapshot).status, 200);
        assert_eq!(route(&get("/nope"), &snapshot).status, 404);
        // Empty state: no engine snapshot, no tracks.
        assert_eq!(route(&get("/snapshot"), &snapshot).status, 404);
        assert_eq!(
            route(&get("/track/00:00:00:00:00:01"), &snapshot).status,
            404
        );
        snapshot.engine_text = Arc::new("# marauder stream snapshot v1\n".to_string());
        assert_eq!(route(&get("/snapshot"), &snapshot).status, 200);
        // Tiles on empty state still renders a (featureless) document.
        let tiles = route(&get("/tiles?bbox=0,0,10,10"), &snapshot);
        assert_eq!(tiles.status, 200);
        assert_eq!(tiles.content_type, "application/geo+json");
    }

    #[test]
    fn bad_parameters_draw_400_not_404() {
        let snapshot = TrackerSnapshot::empty();
        assert_eq!(route(&get("/tiles"), &snapshot).status, 400);
        assert_eq!(route(&get("/tiles?bbox=zz"), &snapshot).status, 400);
        assert_eq!(route(&get("/track/not-a-mac"), &snapshot).status, 400);
        assert_eq!(
            route(&get("/track/00:00:00:00:00:01?format=xml"), &snapshot).status,
            400
        );
    }

    #[test]
    fn response_cache_serves_per_epoch_and_invalidates_on_publish() {
        let cache = Mutex::new(ResponseCache::new());
        let req = get("/snapshot");
        let mut snap_a = TrackerSnapshot::empty();
        snap_a.engine_text = Arc::new("# marauder stream snapshot v1\nA\n".to_string());
        let body_a = route_cached(&req, &snap_a, 1, &cache).body;

        // Same epoch, different snapshot object: the cache answers, so
        // the body must still be A's — this is what proves the hit.
        let mut snap_b = TrackerSnapshot::empty();
        snap_b.engine_text = Arc::new("# marauder stream snapshot v1\nB\n".to_string());
        assert_eq!(route_cached(&req, &snap_b, 1, &cache).body, body_a);

        // Epoch moved: the stale entry is invalidated wholesale.
        let body_b = route_cached(&req, &snap_b, 2, &cache).body;
        assert_ne!(body_b, body_a);

        // Registry-backed and trivial endpoints bypass the cache.
        assert!(!cacheable("/metrics"));
        assert!(!cacheable("/healthz"));
        assert!(cacheable("/track/aa:bb:cc:dd:ee:ff"));
        assert!(cacheable("/tiles"));
    }

    #[test]
    fn metrics_body_keeps_clock_values_quarantined() {
        let snapshot = TrackerSnapshot::empty();
        let body = String::from_utf8(route(&get("/metrics"), &snapshot).body).unwrap();
        // The deterministic section of the obs export must hold even
        // when served over HTTP: wall-clock-derived values appear only
        // under the "nondeterministic" key.
        let deterministic = match body.find("\"nondeterministic\"") {
            Some(at) => &body[..at],
            None => &body,
        };
        assert!(
            !deterministic.contains("duration") && !deterministic.contains("elapsed"),
            "clock values leaked into the deterministic metrics section"
        );
    }
}
